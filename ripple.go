// Package ripple is a from-scratch Go reproduction of
//
//	RIPPLE: A Scalable Framework for Distributed Processing of Rank Queries
//	G. Tsatsanifos, D. Sacharidis, T. Sellis — EDBT 2014
//
// It implements the generic RIPPLE framework (fast / slow / ripple(r) query
// propagation over structured overlays), its instantiations for top-k,
// skyline and k-diversification queries, the MIDAS, CAN, Chord and BATON
// overlay substrates, the DSL / SSP / flooding competitors, the paper's three
// workloads, and a benchmark harness that regenerates every figure of the
// evaluation. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
//
// This root package is the public facade: it re-exports the library's types
// via aliases and offers convenience constructors, so downstream code only
// imports "ripple".
//
// Quick start:
//
//	net := ripple.BuildMIDAS(1024, ripple.MIDASOptions{Dims: 6, Seed: 1})
//	ripple.Load(net, ripple.NBA(0, 1))
//	top, stats := ripple.TopK(net.Peers()[0], ripple.UniformLinear(6), 10, ripple.Fast)
package ripple

import (
	"io"

	"ripple/internal/async"
	"ripple/internal/bench"
	"ripple/internal/cache"
	"ripple/internal/can"
	"ripple/internal/chord"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/geom"
	"ripple/internal/knn"
	"ripple/internal/metrics"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/overlay"
	"ripple/internal/plan"
	"ripple/internal/rangeq"
	"ripple/internal/sim"
	"ripple/internal/skyline"
	"ripple/internal/storage"
	"ripple/internal/topk"
	"ripple/internal/trace"
	"ripple/internal/wire"
)

// Re-exported core types. The implementation lives under internal/; these
// aliases are the supported surface.
type (
	// Tuple is a data item: an ID plus its position in [0,1)^d.
	Tuple = dataset.Tuple
	// Point is a location in d-dimensional space.
	Point = geom.Point
	// Rect is an axis-parallel half-open box.
	Rect = geom.Rect
	// Stats is the per-query cost record (latency, congestion, messages).
	Stats = sim.Stats
	// Aggregate summarises stats over a query batch.
	Aggregate = sim.Aggregate
	// Node is a peer as seen by the RIPPLE engine.
	Node = overlay.Node
	// Network is a structured overlay hosting tuples.
	Network = overlay.Network
	// Region is a union of boxes, the unit of RIPPLE's search delegation.
	Region = overlay.Region
	// Processor is the plug-in interface of the RIPPLE framework — implement
	// it to run a new query type through fast/slow/ripple propagation.
	Processor = core.Processor

	// MIDAS is the k-d-tree DHT the paper showcases RIPPLE on.
	MIDAS = midas.Network
	// MIDASOptions configures a MIDAS network.
	MIDASOptions = midas.Options
	// CAN is the d-dimensional zone DHT used by the baselines.
	CAN = can.Network
	// CANOptions configures a CAN network.
	CANOptions = can.Options
	// Chord is a 1-d ring DHT demonstrating RIPPLE's overlay-genericity.
	Chord = chord.Network

	// Scorer is a top-k scoring function with an upper bound over boxes.
	Scorer = topk.Scorer
	// Linear is the weighted-sum scorer (monotone, hence unimodal).
	Linear = topk.Linear
	// Peak is a non-monotone unimodal scorer with a configurable maximum.
	Peak = topk.Peak

	// DiversifyQuery carries the k-diversification parameters (q, λ, metrics).
	DiversifyQuery = diversify.Query
	// DiversifyResult is the outcome of a greedy k-diversification query.
	DiversifyResult = diversify.GreedyResult

	// BenchConfig parameterises the experiment harness (Table 1).
	BenchConfig = bench.Config
	// BenchResult is one regenerated figure.
	BenchResult = bench.Result
)

// Fast is the ripple parameter of the latency-optimal extreme (Algorithm 1).
const Fast = 0

// Slow is a ripple parameter large enough that processing never leaves the
// communication-optimal slow mode (Algorithm 2) on any realistic overlay.
const Slow = 1 << 20

// Dataset generators (paper §7.1; see DESIGN.md §4 for the substitutions).
var (
	// NBA synthesises the 22,000-tuple player-statistics workload.
	NBA = dataset.NBA
	// MIRFlickr synthesises the image edge-histogram workload.
	MIRFlickr = dataset.MIRFlickr
	// Synth generates the paper's clustered synthetic data.
	Synth = dataset.Synth
	// Uniform generates uniform tuples (testing workload).
	Uniform = dataset.Uniform
)

// SynthConfig parameterises Synth.
type SynthConfig = dataset.SynthConfig

// BuildMIDAS grows a MIDAS overlay of the given size via random joins.
func BuildMIDAS(size int, opts MIDASOptions) *MIDAS { return midas.Build(size, opts) }

// BuildMIDASWithData loads the tuples first and then grows the overlay, so
// zones split at data medians and granularity follows data density (MIDAS's
// load-adaptive behaviour). Prefer this over BuildMIDAS+Load when the data
// is known up front.
func BuildMIDASWithData(size int, opts MIDASOptions, ts []Tuple) *MIDAS {
	return midas.BuildWithData(size, opts, ts)
}

// BuildCAN grows a CAN overlay of the given size.
func BuildCAN(size int, opts CANOptions) *CAN { return can.Build(size, opts) }

// BuildChord grows a Chord ring of the given size.
func BuildChord(size int, seed int64) *Chord { return chord.Build(size, seed) }

// Load inserts every tuple into the network.
func Load(n Network, ts []Tuple) { overlay.Load(n, ts) }

// UniformLinear returns a Linear scorer with d equal weights.
func UniformLinear(d int) Linear { return topk.UniformLinear(d) }

// TopK answers a top-k query from the given peer with ripple parameter r
// (Fast, Slow, or any intermediate value). The result is exact.
func TopK(initiator Node, f Scorer, k, r int) ([]Tuple, Stats) {
	return topk.Run(initiator, f, k, r)
}

// TopKBrute is the centralized reference answer.
func TopKBrute(ts []Tuple, f Scorer, k int) []Tuple { return topk.Brute(ts, f, k) }

// Skyline answers a skyline query (lower values better) from the given peer
// with ripple parameter r. The result is exact.
func Skyline(initiator Node, r int) ([]Tuple, Stats) { return skyline.Run(initiator, r) }

// SkylineBrute computes the skyline of a tuple slice centrally.
func SkylineBrute(ts []Tuple) []Tuple { return skyline.Compute(ts) }

// ConstrainedSkyline answers the skyline of the tuples inside the given box
// (the constrained variant the DSL competitor is originally defined for).
func ConstrainedSkyline(initiator Node, constraint Rect, r int) ([]Tuple, Stats) {
	return skyline.RunConstrained(initiator, constraint, r)
}

// ConstrainedSkylineBrute is the centralized constrained-skyline oracle.
func ConstrainedSkylineBrute(ts []Tuple, constraint Rect) []Tuple {
	return skyline.ComputeConstrained(ts, constraint)
}

// NewDiversifyQuery builds a k-diversification query with the paper's
// defaults (L1 relevance and diversity metrics).
func NewDiversifyQuery(q Point, lambda float64) DiversifyQuery {
	return diversify.NewQuery(q, lambda)
}

// Diversify answers a k-diversification query greedily (Algorithms 22-23),
// resolving every single-tuple sub-query through RIPPLE from the given peer
// with ripple parameter r. maxIters bounds the improvement passes (0 uses
// the paper's MAX_ITERS).
func Diversify(initiator Node, q DiversifyQuery, k, r, maxIters int) DiversifyResult {
	return diversify.Greedy(q, k, diversify.NewRippleSolver(initiator, q, r), maxIters)
}

// Run executes a custom Processor through the RIPPLE engine — the extension
// point for new rank query types.
func Run(initiator Node, p Processor, r int) ([]Tuple, Stats) {
	res := core.Run(initiator, p, r)
	return res.Answers, res.Stats
}

// Query observability: hop-tree tracing and the metrics registry.
type (
	// Result is the full outcome of an engine query: answers, cost stats,
	// lost regions, and — when traced — the reconstructed hop tree.
	Result = core.Result
	// TraceTree is a query's reconstructed propagation tree.
	TraceTree = trace.Tree
	// TraceNode is one peer visit in a hop tree.
	TraceNode = trace.Node
	// TraceSpan is one link-traversal record.
	TraceSpan = trace.Span
	// MetricsRegistry is the dependency-free counter/histogram registry with
	// Prometheus text exposition and pprof mounting (see internal/metrics).
	MetricsRegistry = metrics.Registry
)

// RunDetailed executes a Processor and returns the full Result, including
// the partial-answer accounting.
func RunDetailed(initiator Node, p Processor, r int) *Result {
	return core.Run(initiator, p, r)
}

// RunTraced is RunDetailed with hop-tree tracing: every link traversal is
// recorded as a span and Result.Trace holds the recursion tree.
func RunTraced(initiator Node, p Processor, r int) *Result {
	return core.RunOpts(initiator, p, r, core.Options{Trace: true})
}

// NewMetrics returns a fresh metrics registry.
func NewMetrics() *MetricsRegistry { return metrics.New() }

// TopKSelect picks the k best tuples from a collected answer set.
func TopKSelect(ts []Tuple, f Scorer, k int) []Tuple { return topk.Select(ts, f, k) }

// Additional query types and runtime surfaces.
type (
	// RangeShape is a range-query search area (box or ball).
	RangeShape = rangeq.Shape
	// RangeBox is an axis-parallel range query area.
	RangeBox = rangeq.Box
	// RangeBall is a distance-ball range query area.
	RangeBall = rangeq.Ball
	// Nearest turns k-nearest-neighbour search into a top-k rank query.
	Nearest = topk.Nearest
	// Metric is a distance function with point-to-box bounds.
	Metric = geom.Metric

	// TopKProcessor, SkylineProcessor and DiversifyProcessor are the paper's
	// three instantiations as engine plug-ins, exposed for use with Cluster
	// or custom drivers.
	TopKProcessor = topk.Processor
	// SkylineProcessor is the skyline plug-in (§5).
	SkylineProcessor = skyline.Processor
	// DiversifyProcessor is the single-tuple diversification plug-in (§6.2).
	DiversifyProcessor = diversify.Processor
	// KNNProcessor is the k-nearest-neighbour plug-in, stated directly in
	// distance space over the storage engine (the exact dual of top-k with
	// the Nearest scorer).
	KNNProcessor = knn.Processor

	// Cluster is the asynchronous actor runtime: one goroutine per peer,
	// queries as real messages, validated to match the structural engine.
	Cluster = async.Cluster
)

// L1 and L2 are the Minkowski metrics used throughout the paper.
var (
	L1 = geom.L1
	L2 = geom.L2
)

// Range answers a range query (explicit search area) from the given peer.
func Range(initiator Node, area RangeShape) ([]Tuple, Stats) {
	return rangeq.Run(initiator, area)
}

// KNN answers a k-nearest-neighbour query under the given metric with the
// dedicated kNN processor: local steps are best-first descents of the peer's
// storage engine, and answers are byte-identical to running a top-k rank
// query with the Nearest distance scorer (the two are exact duals). A nil
// metric means Euclidean.
func KNN(initiator Node, center Point, k int, m Metric, r int) ([]Tuple, Stats) {
	return knn.Run(initiator, center, k, m, r)
}

// KNNBrute is the centralized kNN reference answer.
func KNNBrute(ts []Tuple, center Point, k int, m Metric) []Tuple {
	return knn.Brute(ts, center, k, m)
}

// KNNSelect merges convergecast answers into the final k nearest tuples.
func KNNSelect(answers []Tuple, center Point, k int, m Metric) []Tuple {
	return knn.Select(answers, center, k, m)
}

// NewCluster starts the asynchronous actor runtime over an overlay snapshot
// with the given query plug-in. Close it when done.
func NewCluster(net Network, p Processor) *Cluster { return async.NewCluster(net, p) }

// ReadCSV / WriteCSV / NormalizeTuples load and store tuples as CSV (id
// column plus coordinates), with min-max normalisation and optional
// per-dimension inversion for raw data.
func ReadCSV(r io.Reader) ([]Tuple, error)      { return dataset.ReadCSV(r) }
func WriteCSV(w io.Writer, ts []Tuple) error    { return dataset.WriteCSV(w, ts) }
func NormalizeTuples(ts []Tuple, invert []bool) { dataset.Normalize(ts, invert) }

// ReadCSVRaw loads a CSV of raw attribute values, optionally min-max
// normalising into [0,1) with per-dimension inversion (see NormalizeTuples).
// Without normalisation the coordinates must already be in [0,1).
func ReadCSVRaw(r io.Reader, normalize bool, invert []bool) ([]Tuple, error) {
	if !normalize {
		return dataset.ReadCSV(r)
	}
	ts, err := dataset.ReadRawCSV(r)
	if err != nil {
		return nil, err
	}
	dataset.Normalize(ts, invert)
	return ts, nil
}

// Networked deployment: peers as TCP servers speaking the wire protocol.
type (
	// PeerServer is one RIPPLE peer process listening on TCP.
	PeerServer = netpeer.Server
	// PeerConfig describes a peer's share of the overlay.
	PeerConfig = netpeer.Config
	// PeerLink is a neighbour address plus its delegated region.
	PeerLink = netpeer.LinkSpec
	// QueryCodec serialises one query type's parameters and states.
	QueryCodec = wire.Codec
	// TopKWire and SkylineWire are the built-in wire codecs.
	TopKWire = topk.WireCodec
	// SkylineWire serialises skyline queries.
	SkylineWire = skyline.WireCodec
	// KNNWire serialises k-nearest-neighbour queries.
	KNNWire = knn.WireCodec
)

// Peer-local storage engine (DESIGN.md §14): every peer serves its zone share
// through the Store interface, with a flat-scan baseline and an R-tree.
type (
	// Store is the peer-local storage engine interface.
	Store = storage.Store
	// StorageKind selects a storage engine by name.
	StorageKind = storage.Kind
)

// Storage engine selections for overlay, engine and server options.
const (
	// StorageAuto defers to the node's own engine (options zero value).
	StorageAuto = storage.KindAuto
	// StorageScan selects the flat-slice reference baseline.
	StorageScan = storage.KindScan
	// StorageRTree selects the R-tree engine.
	StorageRTree = storage.KindRTree
)

// ParseStorageKind validates a -storage flag value ("scan" or "rtree").
func ParseStorageKind(s string) (StorageKind, error) { return storage.ParseKind(s) }

// StoreOf returns the storage engine serving a node's tuples: the node's own
// store when it provides one, a flat scan view otherwise.
func StoreOf(w Node) Store { return overlay.StoreOf(w) }

// DeployTCP starts one TCP server per peer of an overlay snapshot on
// loopback addresses and wires the neighbour tables. Close every returned
// server when done.
func DeployTCP(net Network, codecs ...QueryCodec) ([]*PeerServer, map[string]string, error) {
	return netpeer.Deploy(net, codecs...)
}

// QueryTCP runs a query against a deployment starting at the peer server
// bound to addr.
func QueryTCP(addr, queryType string, params []byte, dims, r int) ([]Tuple, Stats, error) {
	return netpeer.Query(addr, queryType, params, dims, r)
}

// Hot-region result cache and wire-level data mutation (DESIGN.md §15).
type (
	// ResultCache is the bounded, sharded query-result cache with z-order
	// cell invalidation: cached answers are dropped exactly when a mutation
	// lands inside a region their query covered (plus a TTL backstop).
	ResultCache = cache.Cache
	// ResultCacheOptions configures a ResultCache (size budget, TTL, shards).
	ResultCacheOptions = cache.Options
	// RunOptions tunes a single engine run: tracing, storage engine override,
	// query scope, and the result cache to consult.
	RunOptions = core.Options
	// ClusterOptions tunes the async actor runtime the same way.
	ClusterOptions = async.ClusterOptions
	// PeerOptions tunes a TCP peer server (fault tolerance, storage, cache).
	PeerOptions = netpeer.Options
)

// NewResultCache builds a result cache; a zero MaxBytes returns nil, which
// every cache operation treats as "caching disabled".
func NewResultCache(opts ResultCacheOptions) *ResultCache { return cache.New(opts) }

// CacheKey derives the canonical cache identity of a query: its type, encoded
// parameters, dimensionality, ripple radius r and scope. r is part of the
// identity because Answers are the propagation's candidate set, which the
// radius shapes; only the initiating peer is excluded, which is safe because
// caches are peer-local.
func CacheKey(queryType string, params []byte, dims, r int, scope Region) []byte {
	return cache.Key(queryType, params, dims, r, scope)
}

// Adaptive query planning (DESIGN.md §16): a Planner picks the execution mode
// — fast, slow, or ripple(r) — per query from a self-tuning cost model, and
// every completed run (planned or static) feeds its observed cost back in.
type (
	// Planner is the per-process mode/r selector; safe for concurrent use.
	Planner = plan.Planner
	// PlannerOptions tunes the cost model (latency/message weights, EWMA
	// smoothing, exploration cadence, candidate arms).
	PlannerOptions = plan.Options
	// PlanDecision is one resolved choice: the mode, the concrete r, the
	// estimated cost, and whether the pick was an exploration.
	PlanDecision = plan.Decision
	// PlanQuery describes a query to the planner (family, k, dimensionality,
	// overlay shape, local storage statistics).
	PlanQuery = plan.Query
)

// RAuto is the ripple-parameter sentinel that asks the runtime's Planner to
// choose the mode: pass it as r wherever a static value would go. Without a
// configured planner it degrades to Fast.
const RAuto = plan.RAuto

// NewPlanner builds an adaptive planner; the zero PlannerOptions selects the
// defaults (see plan.Options).
func NewPlanner(opts PlannerOptions) *Planner { return plan.New(opts) }

// DefaultPlanner is NewPlanner with default options.
func DefaultPlanner() *Planner { return plan.Default() }

// RunWithOptions executes a Processor with explicit run options (scope,
// cache, tracing, storage override).
func RunWithOptions(initiator Node, p Processor, r int, opts RunOptions) *Result {
	return core.RunOpts(initiator, p, r, opts)
}

// NewClusterWithOptions starts the async actor runtime with explicit options.
func NewClusterWithOptions(net Network, p Processor, opts ClusterOptions) *Cluster {
	return async.NewClusterOpts(net, p, opts)
}

// Insert adds a tuple to a simulated overlay at the owner of its point.
func Insert(n Network, t Tuple) { n.Insert(t) }

// Delete removes the tuple with t.ID from the peer owning t.Vec, reporting
// whether it was found. Overlays without delete support report false.
func Delete(n Network, t Tuple) bool {
	if d, ok := n.(overlay.Deleter); ok {
		return d.Delete(t)
	}
	return false
}

// InsertTCP applies an insert mutation through the deployment peer at addr:
// routed to the owner, applied, mirrored, and result caches invalidated
// before the call returns. It reports how many peers applied the op.
func InsertTCP(addr string, t Tuple) (int, error) { return netpeer.Insert(addr, t, 0) }

// DeleteTCP applies a delete mutation through the deployment peer at addr.
func DeleteTCP(addr string, t Tuple) (int, error) { return netpeer.Delete(addr, t, 0) }

// Worst-case latency formulas of §3.2 (Lemmas 1-3) for RIPPLE over MIDAS.
var (
	// FastWorstLatency is L_f(δ) = ∆−δ.
	FastWorstLatency = core.FastWorstLatency
	// SlowWorstLatency is L_s(δ) = 2^(∆−δ)−1.
	SlowWorstLatency = core.SlowWorstLatency
	// RippleWorstLatency evaluates the Lemma 3 recurrence exactly.
	RippleWorstLatency = core.RippleWorstLatency
)
