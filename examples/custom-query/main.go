// Custom query type: RIPPLE is a framework, not three algorithms. This
// example plugs a new rank query into the engine through the Processor
// interface: a distributed nearest-neighbour query (the top-1 tuple under a
// distance-to-query ranking), implemented with a Peak scorer so the search
// contracts around the query point from any initiator.
//
// It also demonstrates overlay-genericity by running the same query over
// MIDAS and over CAN.
package main

import (
	"fmt"
	"math/rand"

	"ripple"
)

func main() {
	ts := ripple.Synth(ripple.SynthConfig{N: 30000, Dims: 3, Centers: 50, Seed: 21})

	mnet := ripple.BuildMIDAS(512, ripple.MIDASOptions{Dims: 3, Seed: 4})
	ripple.Load(mnet, ts)
	cnet := ripple.BuildCAN(512, ripple.CANOptions{Dims: 3, Seed: 4})
	ripple.Load(cnet, ts)

	rng := rand.New(rand.NewSource(2))
	q := ripple.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	// A sharply peaked unimodal scorer turns nearest-neighbour search into a
	// top-1 rank query: f(x) = exp(-s·||x-q||²) is maximal at q.
	scorer := ripple.Peak{Center: q, Sharpness: 200}

	fmt.Printf("nearest neighbour of %v:\n\n", q)
	for _, sub := range []struct {
		name string
		node ripple.Node
	}{
		{"MIDAS", mnet.Peers()[0]},
		{"CAN", cnet.Peers()[0]},
	} {
		for _, r := range []int{ripple.Fast, 2, ripple.Slow} {
			nn, stats := ripple.TopK(sub.node, scorer, 1, r)
			fmt.Printf("  %-5s r=%-7d -> tuple #%-6d at %v  (%v)\n",
				sub.name, r, nn[0].ID, nn[0].Vec, &stats)
		}
		fmt.Println()
	}

	// Sanity: both substrates and all modes agree with the brute answer.
	want := ripple.TopKBrute(ts, scorer, 1)[0]
	nn, _ := ripple.TopK(mnet.Peers()[0], scorer, 1, ripple.Fast)
	if nn[0].ID != want.ID {
		panic("distributed nearest neighbour disagrees with brute force")
	}
	fmt.Printf("verified against brute force: tuple #%d\n", want.ID)
}
