// Hotels skyline: the classic motivating scenario for skyline queries —
// hotels with a price and a distance-to-the-beach attribute, where no guest
// agrees on a single trade-off. The skyline (hotels not beaten on both
// price and distance simultaneously) is computed over a distributed MIDAS
// overlay with the paper's §5.2 border-link optimisation enabled, at both
// RIPPLE extremes, and verified against the centralized answer.
package main

import (
	"fmt"
	"math/rand"

	"ripple"
)

func main() {
	// 5,000 hotels: price correlates loosely with proximity (closer =
	// pricier), which is what makes the skyline interesting.
	rng := rand.New(rand.NewSource(3))
	hotels := make([]ripple.Tuple, 5000)
	for i := range hotels {
		distance := rng.Float64()
		price := clamp(1 - distance + 0.35*rng.NormFloat64())
		hotels[i] = ripple.Tuple{ID: uint64(i), Vec: ripple.Point{price, distance}}
	}

	net := ripple.BuildMIDASWithData(256, ripple.MIDASOptions{Dims: 2, Seed: 9, PreferBorder: true}, hotels)

	want := ripple.SkylineBrute(hotels)
	fmt.Printf("%d hotels, %d on the skyline\n\n", len(hotels), len(want))

	for _, mode := range []struct {
		name string
		r    int
	}{{"fast", ripple.Fast}, {"slow", ripple.Slow}} {
		sky, stats := ripple.Skyline(net.Peers()[0], mode.r)
		fmt.Printf("ripple-%s: %d skyline hotels, %v\n", mode.name, len(sky), &stats)
		if len(sky) != len(want) {
			panic("distributed skyline does not match the centralized answer")
		}
	}

	fmt.Println("\ncheapest five skyline hotels (price, distance):")
	sky, _ := ripple.Skyline(net.Peers()[0], ripple.Fast)
	for i := 0; i < 5 && i < len(sky); i++ {
		h := pickByPrice(sky, i)
		fmt.Printf("  hotel #%-5d price %.2f  distance %.2f\n", h.ID, h.Vec[0], h.Vec[1])
	}
}

func pickByPrice(sky []ripple.Tuple, rank int) ripple.Tuple {
	s := append([]ripple.Tuple(nil), sky...)
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j].Vec[0] < s[i].Vec[0] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[rank]
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return 0.999999
	}
	return v
}
