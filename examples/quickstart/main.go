// Quickstart: build a MIDAS overlay, load the NBA workload, and answer one
// top-k query with each of RIPPLE's extremes, printing the answers and what
// they cost the network.
package main

import (
	"fmt"

	"ripple"
)

func main() {
	// A 1,024-peer overlay indexing the six NBA statistics dimensions;
	// loading the data first makes the zone layout follow data density.
	net := ripple.BuildMIDASWithData(1024, ripple.MIDASOptions{Dims: 6, Seed: 1}, ripple.NBA(0, 1))

	f := ripple.UniformLinear(6) // equal-weight "best all-around player"
	initiator := net.Peers()[42]

	fmt.Println("top-5 all-around players, fast mode (optimises latency):")
	top, stats := ripple.TopK(initiator, f, 5, ripple.Fast)
	for i, t := range top {
		fmt.Printf("  %d. player #%d  score %.3f\n", i+1, t.ID, f.Score(t.Vec))
	}
	fmt.Printf("  cost: %v\n\n", &stats)

	fmt.Println("same query, slow mode (optimises communication):")
	top, stats = ripple.TopK(initiator, f, 5, ripple.Slow)
	for i, t := range top {
		fmt.Printf("  %d. player #%d  score %.3f\n", i+1, t.ID, f.Score(t.Vec))
	}
	fmt.Printf("  cost: %v\n\n", &stats)

	fmt.Println("same query, ripple r=2 (the tunable middle ground):")
	top, stats = ripple.TopK(initiator, f, 5, 2)
	for i, t := range top {
		fmt.Printf("  %d. player #%d  score %.3f\n", i+1, t.ID, f.Score(t.Vec))
	}
	fmt.Printf("  cost: %v\n", &stats)
}
