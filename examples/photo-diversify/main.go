// Photo diversification: the paper's MIRFLICKR scenario. Given a query
// image (its 5-bucket edge histogram), retrieve k photos that are both
// relevant (close to the query under L1) and diverse (far from each other),
// for several settings of the relevance/diversity trade-off λ — the first
// distributed solution to this problem (§6).
package main

import (
	"fmt"

	"ripple"
)

func main() {
	photos := ripple.MIRFlickr(20000, 5)
	net := ripple.BuildMIDASWithData(512, ripple.MIDASOptions{Dims: 5, Seed: 11}, photos)

	query := photos[123].Vec
	fmt.Printf("query photo histogram: %v\n\n", query)

	for _, lambda := range []float64{0.0, 0.5, 1.0} {
		q := ripple.NewDiversifyQuery(query, lambda)
		res := ripple.Diversify(net.Peers()[7], q, 6, ripple.Fast, 0)
		fmt.Printf("λ=%.1f (%s): objective %.4f after %d improvement passes\n",
			lambda, describe(lambda), res.Objective, res.Iterations)
		for _, t := range res.Set {
			fmt.Printf("  photo #%-6d rel=%.3f\n", t.ID, q.Dr.Dist(t.Vec, query))
		}
		fmt.Printf("  cost: %v\n\n", &res.Stats)
	}
}

func describe(lambda float64) string {
	switch {
	case lambda == 0:
		return "pure diversity"
	case lambda == 1:
		return "pure relevance"
	default:
		return "balanced"
	}
}
