// Distributed deployment: every peer of a MIDAS overlay runs as a real TCP
// server on loopback, speaking the RIPPLE wire protocol; a top-k query is
// then issued against the live deployment at both extremes and checked
// against the centralized answer. This is the same protocol the in-process
// engines simulate — over actual sockets.
package main

import (
	"fmt"

	"ripple"
)

func main() {
	ts := ripple.NBA(8000, 1)
	overlay := ripple.BuildMIDAS(32, ripple.MIDASOptions{Dims: 6, Seed: 1})
	ripple.Load(overlay, ts)

	servers, addrs, err := ripple.DeployTCP(overlay, ripple.TopKWire{}, ripple.SkylineWire{})
	if err != nil {
		panic(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	fmt.Printf("deployed %d peer servers on loopback TCP\n", len(servers))
	fmt.Printf("example peer %s listens at %s\n\n", overlay.Peers()[0].ID(), addrs[overlay.Peers()[0].ID()])

	f := ripple.UniformLinear(6)
	params, err := (ripple.TopKWire{}).EncodeParams(f, 5)
	if err != nil {
		panic(err)
	}

	want := ripple.TopKBrute(ts, f, 5)
	for _, mode := range []struct {
		name string
		r    int
	}{{"fast", ripple.Fast}, {"slow", ripple.Slow}} {
		answers, stats, err := ripple.QueryTCP(servers[7].Addr(), "topk", params, 6, mode.r)
		if err != nil {
			panic(err)
		}
		got := ripple.TopKBrute(answers, f, 5)
		fmt.Printf("ripple-%s over TCP: top-1 = player #%d (score %.3f), %v\n",
			mode.name, got[0].ID, f.Score(got[0].Vec), &stats)
		if got[0].ID != want[0].ID {
			panic("networked answer differs from centralized truth")
		}
	}

	// Skyline over the same live deployment.
	answers, stats, err := ripple.QueryTCP(servers[0].Addr(), "skyline", nil, 6, ripple.Fast)
	if err != nil {
		panic(err)
	}
	sky := ripple.SkylineBrute(answers)
	fmt.Printf("skyline over TCP: %d tuples, %v\n", len(sky), &stats)
	if len(sky) != len(ripple.SkylineBrute(ts)) {
		panic("networked skyline differs from centralized truth")
	}
	fmt.Println("all networked answers verified against centralized truth")
}
