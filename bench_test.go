// Benchmarks regenerating every table and figure of the paper's evaluation,
// one testing.B benchmark per experiment, at a configuration small enough
// for `go test -bench=.` to finish in minutes. Reported custom metrics are
// the paper's two (§7.1): hops/query (latency) and msgs/query (congestion),
// taken from the first method series of each figure. For full-size tables
// use cmd/ripple-bench.
package ripple_test

import (
	"testing"

	"ripple/internal/bench"
)

var benchSink *bench.Result

func benchConfig() bench.Config {
	cfg := bench.Quick()
	cfg.OverlaySizes = []int{256, 512}
	cfg.Dims = []int{2, 5}
	cfg.ResultSizes = []int{10, 50}
	cfg.Lambdas = []float64{0, 0.5, 1}
	cfg.DefaultSize = 256
	cfg.NBASize = 6000
	cfg.FlickrSize = 4000
	cfg.SynthSize = 4000
	cfg.Networks = 1
	cfg.TopKQueries = 4
	cfg.SkyQueries = 3
	cfg.DivQueries = 1
	cfg.DivMaxIters = 2
	return cfg
}

func runFigure(b *testing.B, name string) {
	b.Helper()
	r := bench.Find(name)
	if r == nil {
		b.Fatalf("unknown experiment %s", name)
	}
	cfg := benchConfig()
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = r.Run(cfg)
	}
	benchSink = res
	if len(res.Rows) > 0 {
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Latency[0], "hops/query")
		b.ReportMetric(last.Congestion[0], "msgs/query")
	}
}

// BenchmarkLemmas regenerates the §3.2 worst-case latency table (Lemmas 1-3).
func BenchmarkLemmas(b *testing.B) { runFigure(b, "lemmas") }

// BenchmarkFig4TopKOverlaySize regenerates Figure 4 (top-k vs overlay size).
func BenchmarkFig4TopKOverlaySize(b *testing.B) { runFigure(b, "fig4") }

// BenchmarkFig5TopKDimensionality regenerates Figure 5 (top-k vs dims).
func BenchmarkFig5TopKDimensionality(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFig6TopKResultSize regenerates Figure 6 (top-k vs k).
func BenchmarkFig6TopKResultSize(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFig7SkylineOverlaySize regenerates Figure 7 (skyline vs size).
func BenchmarkFig7SkylineOverlaySize(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig8SkylineDimensionality regenerates Figure 8 (skyline vs dims).
func BenchmarkFig8SkylineDimensionality(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig9DiversifyOverlaySize regenerates Figure 9 (k-div vs size).
func BenchmarkFig9DiversifyOverlaySize(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFig10DiversifyDimensionality regenerates Figure 10 (k-div vs dims).
func BenchmarkFig10DiversifyDimensionality(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkFig11DiversifyResultSize regenerates Figure 11 (k-div vs k).
func BenchmarkFig11DiversifyResultSize(b *testing.B) { runFigure(b, "fig11") }

// BenchmarkFig12DiversifyLambda regenerates Figure 12 (k-div vs λ).
func BenchmarkFig12DiversifyLambda(b *testing.B) { runFigure(b, "fig12") }

// BenchmarkAblationBorder regenerates the §5.2 border-link ablation.
func BenchmarkAblationBorder(b *testing.B) { runFigure(b, "ablation-border") }

// BenchmarkAblationOverlay regenerates the MIDAS-vs-CAN substrate ablation.
func BenchmarkAblationOverlay(b *testing.B) { runFigure(b, "ablation-overlay") }

// BenchmarkChurn regenerates the §7.1 dynamic-topology experiment.
func BenchmarkChurn(b *testing.B) { runFigure(b, "churn") }
