// Cross-runtime result-cache equivalence: a cached answer must be
// byte-identical to a freshly computed one. For seeded random overlays,
// every query family and every runtime (structural engine, actor cluster,
// TCP deployment), the canonical wire encoding of a cache hit must equal the
// uncached engine's — and a mutation must make the very next query fresh
// (the z-order invalidation contract), while faults must never seed the
// cache with a degraded answer. This is the property that makes the cache
// safe to flip on in production: it can only change how fast a repeated
// query returns, never what it returns.
package ripple_test

import (
	"bytes"
	"testing"
	"time"

	"ripple/internal/async"
	"ripple/internal/cache"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/geom"
	"ripple/internal/knn"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
	"ripple/internal/topk"

	"ripple/internal/diversify"
)

func cachedTCPFleet(t *testing.T, n *midas.Network, inj *faults.Injector) (map[string]string, []*netpeer.Server) {
	t.Helper()
	opts := netpeer.Options{Logf: func(string, ...interface{}) {}, CacheSize: 8 << 20, Faults: inj}
	if inj.Enabled() {
		opts.Retry = netpeer.RetryPolicy{MaxRetries: 0, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond}
	}
	servers, addrs, err := netpeer.DeployOpts(n, opts,
		topk.WireCodec{}, skyline.WireCodec{}, diversify.WireCodec{}, knn.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return addrs, servers
}

// TestCachedAnswersByteIdenticalAcrossRuntimes: for each query family and
// ripple radius, a fill followed by a hit in each runtime; every arm's
// canonical encoding must equal the uncached engine's at the same radius.
// The radius is part of the cache key — fast and slow propagation emit
// different candidate sets — so the TCP fleet's cache, which persists across
// the r loop, must miss on the first query of each radius rather than serve
// the other radius's fill.
func TestCachedAnswersByteIdenticalAcrossRuntimes(t *testing.T) {
	n := storageNet(3)
	init := n.Peers()[5]
	addrs, _ := cachedTCPFleet(t, n, nil)

	for _, tc := range storageCases(t) {
		for _, r := range []int{0, 1 << 20} {
			key := cache.Key(tc.name, tc.params, 3, r, overlay.Region{})
			want := cache.EncodeAnswers(core.RunOpts(init, tc.proc, r, core.Options{}).Answers)

			// Engine: fresh cache per r, fill then hit.
			c := cache.New(cache.Options{MaxBytes: 1 << 20})
			fill := core.RunOpts(init, tc.proc, r, core.Options{Cache: c, CacheKey: key})
			hit := core.RunOpts(init, tc.proc, r, core.Options{Cache: c, CacheKey: key})
			if fill.CacheHit || !hit.CacheHit {
				t.Fatalf("%s r=%d: engine fill/hit = %t/%t, want false/true", tc.name, r, fill.CacheHit, hit.CacheHit)
			}
			for arm, res := range map[string]*core.Result{"fill": fill, "hit": hit} {
				if !bytes.Equal(cache.EncodeAnswers(res.Answers), want) {
					t.Fatalf("%s r=%d: engine %s answer not byte-identical to uncached", tc.name, r, arm)
				}
			}

			// Actor cluster.
			ac := cache.New(cache.Options{MaxBytes: 1 << 20})
			cl := async.NewClusterOpts(n, tc.proc, async.ClusterOptions{Cache: ac, CacheKey: key})
			afill := cl.Run(init.ID(), r)
			ahit := cl.Run(init.ID(), r)
			cl.Close()
			if afill.CacheHit || !ahit.CacheHit {
				t.Fatalf("%s r=%d: actor fill/hit = %t/%t, want false/true", tc.name, r, afill.CacheHit, ahit.CacheHit)
			}
			for arm, res := range map[string]*core.Result{"fill": afill, "hit": ahit} {
				if !bytes.Equal(cache.EncodeAnswers(res.Answers), want) {
					t.Fatalf("%s r=%d: actor %s answer not byte-identical to uncached engine", tc.name, r, arm)
				}
			}

			// TCP: the fleet's shared per-peer cache must miss (the other
			// radius's fill has a different key) and then hit.
			for qi, wantHit := range []bool{false, true} {
				res, err := netpeer.QueryDetailed(addrs[init.ID()], tc.name, tc.params, 3, r, 10*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				if res.CacheHit != wantHit {
					t.Fatalf("%s r=%d query %d: tcp CacheHit = %t, want %t (key includes r)", tc.name, r, qi, res.CacheHit, wantHit)
				}
				if !bytes.Equal(cache.EncodeAnswers(res.Answers), want) {
					t.Fatalf("%s r=%d query %d: tcp answer not byte-identical to uncached engine", tc.name, r, qi)
				}
			}
		}
	}
}

// TestCacheMutateThenQueryInProcess: the in-process runtimes share the
// invalidation contract — after a mutation plus InvalidatePoint, the next
// run must recompute and see the change; re-filling resumes hits.
func TestCacheMutateThenQueryInProcess(t *testing.T) {
	n := storageNet(7)
	init := n.Peers()[3]
	center := geom.Point{0.4, 0.6, 0.3}
	proc := &knn.Processor{Center: center, K: 5}
	params, err := (knn.WireCodec{}).EncodeParams(center, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := cache.Key("knn", params, 3, 0, overlay.Region{})
	tup := dataset.Tuple{ID: 1 << 40, Vec: center.Clone()}

	c := cache.New(cache.Options{MaxBytes: 1 << 20})
	opts := core.Options{Cache: c, CacheKey: key}
	core.RunOpts(init, proc, 0, opts)
	if !core.RunOpts(init, proc, 0, opts).CacheHit {
		t.Fatal("engine: repeated query not cached")
	}

	n.Insert(tup)
	c.InvalidatePoint(tup.Vec)
	res := core.RunOpts(init, proc, 0, opts)
	if res.CacheHit {
		t.Fatal("engine: query served from cache across a mutation")
	}
	if !hasAnswerID(res.Answers, tup.ID) {
		t.Fatal("engine: inserted tuple (distance 0) missing from refreshed answers")
	}

	// Actor cluster over the mutated overlay: same fill/invalidate cycle
	// through the delete path.
	ac := cache.New(cache.Options{MaxBytes: 1 << 20})
	cl := async.NewClusterOpts(n, proc, async.ClusterOptions{Cache: ac, CacheKey: key})
	defer cl.Close()
	cl.Run(init.ID(), 0)
	if !cl.Run(init.ID(), 0).CacheHit {
		t.Fatal("actor: repeated query not cached")
	}
	if !n.Delete(tup) {
		t.Fatal("overlay delete failed")
	}
	ac.InvalidatePoint(tup.Vec)
	ares := cl.Run(init.ID(), 0)
	if ares.CacheHit {
		t.Fatal("actor: query served from cache across a mutation")
	}
	if hasAnswerID(ares.Answers, tup.ID) {
		t.Fatal("actor: deleted tuple still answered")
	}
}

// TestCacheNeverServesStaleUnderFaults: on a faulty fleet, partial answers
// must never seed the cache — every cache hit must be byte-identical to the
// fault-free ground truth, and no hit may be marked partial.
func TestCacheNeverServesStaleUnderFaults(t *testing.T) {
	n := storageNet(3)
	center := geom.Point{0.4, 0.6, 0.3}
	proc := &knn.Processor{Center: center, K: 5}
	params, err := (knn.WireCodec{}).EncodeParams(center, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The candidate set a query returns depends on its initiator (the initial
	// state carries the initiator's local pruning bound), so ground truth is
	// per-peer: a fault-free engine run from each.
	want := make(map[string][]byte)
	for _, p := range n.Peers() {
		want[p.ID()] = cache.EncodeAnswers(core.RunOpts(p, proc, 0, core.Options{}).Answers)
	}

	// A query crosses ~2 fault-checked messages per peer, so the per-message
	// drop rate must stay low enough that some queries complete cleanly (and
	// fill the cache) while others degrade — both arms must be exercised.
	// Rotating the initiator keeps fault-exposed fills flowing: each peer's
	// cache fills independently, and a peer whose fill came back partial
	// retries from scratch on its next turn.
	inj := faults.New(faults.Config{Seed: 5, DropRate: 0.03})
	addrs, _ := cachedTCPFleet(t, n, inj)

	peers := n.Peers()
	partials, hits := 0, 0
	for i := 0; i < 60; i++ {
		id := peers[i%len(peers)].ID()
		res, err := netpeer.QueryDetailed(addrs[id], "knn", params, 3, 0, 10*time.Second)
		if err != nil {
			continue // a dropped initiator hop surfaces as an error, not staleness
		}
		if res.Partial() {
			partials++
			if res.CacheHit {
				t.Fatal("cache served a partial answer")
			}
			continue
		}
		if res.CacheHit {
			hits++
			if !bytes.Equal(cache.EncodeAnswers(res.Answers), want[id]) {
				t.Fatal("cache hit differs from fault-free ground truth; a degraded answer was cached")
			}
		}
	}
	if partials == 0 || hits == 0 {
		t.Fatalf("vacuous fault run: %d partials, %d hits over 60 queries (tune the seed or rate if this fires)", partials, hits)
	}
}

func hasAnswerID(ts []dataset.Tuple, id uint64) bool {
	for _, tt := range ts {
		if tt.ID == id {
			return true
		}
	}
	return false
}
