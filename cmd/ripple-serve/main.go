// Command ripple-serve runs one RIPPLE peer as a standalone process (serving
// the wire protocol on TCP with the built-in query codecs), or acts as a
// client issuing a query against a running deployment.
//
//	ripple-serve -config deploy/peer-000.json        # run one peer
//	ripple-serve -config deploy/peer-000.json -storage rtree
//	ripple-serve -config deploy/peer-000.json -cache-size 8388608 -cache-ttl 30s
//	ripple-serve -call 127.0.0.1:7400 -query topk -k 5 -r slow
//	ripple-serve -call 127.0.0.1:7400 -query skyline
//	ripple-serve -call 127.0.0.1:7400 -query knn -k 3 -at 0.2,0.8
//	ripple-serve -call 127.0.0.1:7400 -query insert -id 99 -at 0.4,0.6
//	ripple-serve -call 127.0.0.1:7400 -query delete -id 99 -at 0.4,0.6
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/faults"
	"ripple/internal/geom"
	"ripple/internal/knn"
	"ripple/internal/metrics"
	"ripple/internal/netpeer"
	"ripple/internal/plan"
	"ripple/internal/skyline"
	"ripple/internal/storage"
	"ripple/internal/topk"
)

func main() {
	def := netpeer.DefaultOptions()
	config := flag.String("config", "", "peer config written by ripple-plan (server mode)")
	call := flag.String("call", "", "peer address to query (client mode)")
	queryKind := flag.String("query", "topk", "client query type: topk | skyline | knn")
	k := flag.Int("k", 10, "result size for topk and knn")
	at := flag.String("at", "", "knn query point as comma-separated coordinates (default: domain center)")
	metricName := flag.String("metric", "L2", "knn distance metric: L1 | L2")
	dims := flag.Int("dims", 0, "data dimensionality (client mode; read from answers if 0)")
	rFlag := flag.String("r", "fast", "ripple parameter: fast | slow | integer")
	callTimeout := flag.Duration("call-timeout", def.CallTimeout, "end-to-end deadline per peer RPC (and for the client call)")
	dialTimeout := flag.Duration("dial-timeout", def.DialTimeout, "server mode: TCP connect deadline per peer dial")
	retries := flag.Int("retries", def.Retry.MaxRetries, "server mode: retransmissions per failed peer RPC")
	recoveryBudget := flag.Duration("recovery-budget", def.RecoveryBudget, "server mode: wall-clock cap on replica failovers per processed call (replicated deployments)")
	maxConcurrent := flag.Int("max-concurrent-calls", def.MaxConcurrentCalls, "server mode: calls processed at once per multiplexed connection")
	maxQueue := flag.Int("max-call-queue", def.MaxCallQueue, "server mode: admitted calls that may wait for a worker before admission control rejects")
	disableMux := flag.Bool("disable-mux", false, "server mode: refuse stream multiplexing and serve the sequential one-call-per-connection protocol")
	faultDrop := flag.Float64("fault-drop", 0, "server mode: injected per-RPC drop probability (testing)")
	faultCrash := flag.Float64("fault-crash", 0, "server mode: injected perform-then-lose-reply probability (testing)")
	faultDelayRate := flag.Float64("fault-delay-rate", 0, "server mode: injected per-RPC delay probability (testing)")
	faultDelay := flag.Duration("fault-delay", 50*time.Millisecond, "server mode: duration of an injected delay")
	faultSeed := flag.Int64("fault-seed", 1, "server mode: fault-injection seed (decisions are deterministic per link)")
	metricsAddr := flag.String("metrics-addr", "", "server mode: serve Prometheus /metrics and /debug/pprof on this address")
	storageFlag := flag.String("storage", "", "server mode: peer-local storage engine: scan | rtree (default: $RIPPLE_STORAGE, then scan)")
	cacheSize := flag.Int64("cache-size", 0, "server mode: result-cache budget in bytes (0 disables caching)")
	cacheTTL := flag.Duration("cache-ttl", 0, "server mode: result-cache entry lifetime (0 uses the cache default)")
	tupleID := flag.Uint64("id", 0, "client mode: tuple id for -query insert | delete")
	planMode := flag.String("plan", "static", "server mode: auto resolves r=auto queries with the adaptive planner; client mode: auto sends r=auto (overrides -r)")
	flag.Parse()

	switch *planMode {
	case "auto", "static":
	default:
		fatal(fmt.Errorf("bad -plan %q (want auto or static)", *planMode))
	}

	opts := def
	if *storageFlag != "" {
		kind, err := storage.ParseKind(*storageFlag)
		if err != nil {
			fatal(err)
		}
		opts.Storage = kind
	}
	opts.CallTimeout = *callTimeout
	opts.DialTimeout = *dialTimeout
	opts.Retry.MaxRetries = *retries
	opts.RecoveryBudget = *recoveryBudget
	opts.MaxConcurrentCalls = *maxConcurrent
	opts.MaxCallQueue = *maxQueue
	opts.DisableMux = *disableMux
	opts.CacheSize = *cacheSize
	opts.CacheTTL = *cacheTTL
	if *faultDrop > 0 || *faultCrash > 0 || *faultDelayRate > 0 {
		opts.Faults = faults.New(faults.Config{
			Seed:      *faultSeed,
			DropRate:  *faultDrop,
			CrashRate: *faultCrash,
			DelayRate: *faultDelayRate,
			Delay:     *faultDelay,
		})
	}

	switch {
	case *config != "":
		serve(*config, opts, *metricsAddr, *planMode == "auto")
	case *call != "":
		r := parseR(*rFlag)
		if *planMode == "auto" {
			r = plan.RAuto
		}
		client(*call, *queryKind, *k, *dims, r, *callTimeout, *at, *metricName, *tupleID)
	default:
		fmt.Fprintln(os.Stderr, "need -config (server) or -call (client); see -help")
		os.Exit(2)
	}
}

func serve(path string, opts netpeer.Options, metricsAddr string, planAuto bool) {
	fc, err := netpeer.ReadConfigFile(path)
	if err != nil {
		fatal(err)
	}
	if metricsAddr != "" {
		opts.Metrics = metrics.New()
		msrv, errc := opts.Metrics.Serve(metricsAddr)
		defer msrv.Close()
		go func() {
			if err := <-errc; err != nil {
				fmt.Fprintln(os.Stderr, "ripple-serve: metrics endpoint:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics, profiles on http://%s/debug/pprof/\n",
			metricsAddr, metricsAddr)
	}
	if planAuto {
		opts.Planner = plan.New(plan.Options{Metrics: opts.Metrics})
	}
	srv := netpeer.NewServerOpts(fc.Peer, opts, topk.WireCodec{}, skyline.WireCodec{}, diversify.WireCodec{}, knn.WireCodec{})
	if opts.Faults.Enabled() {
		fmt.Printf("fault injection armed: %+v\n", opts.Faults.Config())
	}
	addr, err := srv.Start(fc.Addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("peer %s serving on %s (%d tuples, %d links, %d replica shares)\n",
		fc.Peer.ID, addr, len(fc.Peer.Tuples), len(fc.Peer.Links), len(fc.Peer.Replicas))
	st := srv.StorageStats()
	fmt.Printf("peer %s storage: engine=%s tuples=%d index_nodes=%d index_height=%d\n",
		fc.Peer.ID, st.Kind, st.Len, st.Nodes, st.Height)
	if planAuto {
		fmt.Printf("peer %s adaptive planner armed: r=auto root queries resolve per query\n", fc.Peer.ID)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	fmt.Printf("peer %s stopped\n", fc.Peer.ID)
}

func client(addr, queryKind string, k, dims, r int, timeout time.Duration, at, metricName string, tupleID uint64) {
	if dims <= 0 {
		dims = probeDims(addr)
	}
	switch queryKind {
	case "insert", "delete":
		t := dataset.Tuple{ID: tupleID, Vec: parsePoint(at, dims)}
		mutate := netpeer.Insert
		if queryKind == "delete" {
			mutate = netpeer.Delete
		}
		acks, err := mutate(addr, t, timeout)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s %v: applied at %d peer(s)\n", queryKind, t, acks)
		return
	}
	switch queryKind {
	case "topk":
		f := topk.UniformLinear(dims)
		params, err := (topk.WireCodec{}).EncodeParams(f, k)
		if err != nil {
			fatal(err)
		}
		res, err := netpeer.QueryDetailed(addr, "topk", params, dims, r, timeout)
		if err != nil {
			fatal(err)
		}
		for i, t := range topk.Select(res.Answers, f, k) {
			fmt.Printf("%3d. %v  score %.4f\n", i+1, t, f.Score(t.Vec))
		}
		report(res)
	case "skyline":
		res, err := netpeer.QueryDetailed(addr, "skyline", nil, dims, r, timeout)
		if err != nil {
			fatal(err)
		}
		for i, t := range skyline.Compute(res.Answers) {
			fmt.Printf("%3d. %v\n", i+1, t)
		}
		report(res)
	case "knn":
		center := parsePoint(at, dims)
		m := parseMetric(metricName)
		params, err := (knn.WireCodec{}).EncodeParams(center, k, m)
		if err != nil {
			fatal(err)
		}
		res, err := netpeer.QueryDetailed(addr, "knn", params, dims, r, timeout)
		if err != nil {
			fatal(err)
		}
		for i, t := range knn.Select(res.Answers, center, k, m) {
			fmt.Printf("%3d. %v  dist %.4f\n", i+1, t, m.Dist(center, t.Vec))
		}
		report(res)
	default:
		fatal(fmt.Errorf("client mode supports topk, skyline, knn, insert and delete, not %q", queryKind))
	}
}

// parsePoint reads a comma-separated coordinate list, defaulting to the
// center of the unit domain.
func parsePoint(s string, dims int) geom.Point {
	p := make(geom.Point, dims)
	if s == "" {
		for i := range p {
			p[i] = 0.5
		}
		return p
	}
	parts := strings.Split(s, ",")
	if len(parts) != dims {
		fatal(fmt.Errorf("-at has %d coordinates, data is %d-dimensional", len(parts), dims))
	}
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -at coordinate %q", part))
		}
		p[i] = v
	}
	return p
}

func parseMetric(name string) geom.Metric {
	switch name {
	case "L1":
		return geom.L1
	case "L2", "":
		return geom.L2
	}
	fatal(fmt.Errorf("bad -metric %q (want L1 or L2)", name))
	return nil
}

// report prints the query cost and, for a degraded answer, which parts of the
// data space went unanswered.
func report(res *netpeer.QueryResult) {
	if res.Plan != "" {
		fmt.Printf("plan: %s (r=%d)\n", res.Plan, res.PlanR)
	}
	fmt.Printf("cost: %v\n", &res.Stats)
	if !res.Partial() {
		return
	}
	fmt.Fprintf(os.Stderr, "WARNING: answer is PARTIAL — %d region(s) of the data space were lost to peer failures:\n",
		len(res.FailedRegions))
	for _, reg := range res.FailedRegions {
		fmt.Fprintf(os.Stderr, "  lost %v\n", reg)
	}
}

// probeDims discovers the data dimensionality by asking for one answer.
func probeDims(addr string) int {
	for d := 1; d <= 16; d++ {
		params, err := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(d), 1)
		if err != nil {
			continue
		}
		answers, _, err := netpeer.Query(addr, "topk", params, d, 0)
		if err == nil && len(answers) > 0 && len(answers[0].Vec) == d {
			return d
		}
	}
	fatal(fmt.Errorf("could not determine dimensionality; pass -dims"))
	return 0
}

func parseR(s string) int {
	switch s {
	case "fast":
		return 0
	case "slow":
		return 1 << 20
	case "auto":
		return plan.RAuto
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad -r %q", s))
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ripple-serve:", err)
	os.Exit(1)
}
