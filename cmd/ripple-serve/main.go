// Command ripple-serve runs one RIPPLE peer as a standalone process (serving
// the wire protocol on TCP with the built-in query codecs), or acts as a
// client issuing a query against a running deployment.
//
//	ripple-serve -config deploy/peer-000.json        # run one peer
//	ripple-serve -call 127.0.0.1:7400 -query topk -k 5 -r slow
//	ripple-serve -call 127.0.0.1:7400 -query skyline
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"ripple/internal/diversify"
	"ripple/internal/netpeer"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

func main() {
	config := flag.String("config", "", "peer config written by ripple-plan (server mode)")
	call := flag.String("call", "", "peer address to query (client mode)")
	queryKind := flag.String("query", "topk", "client query type: topk | skyline")
	k := flag.Int("k", 10, "result size for topk")
	dims := flag.Int("dims", 0, "data dimensionality (client mode; read from answers if 0)")
	rFlag := flag.String("r", "fast", "ripple parameter: fast | slow | integer")
	flag.Parse()

	switch {
	case *config != "":
		serve(*config)
	case *call != "":
		client(*call, *queryKind, *k, *dims, parseR(*rFlag))
	default:
		fmt.Fprintln(os.Stderr, "need -config (server) or -call (client); see -help")
		os.Exit(2)
	}
}

func serve(path string) {
	fc, err := netpeer.ReadConfigFile(path)
	if err != nil {
		fatal(err)
	}
	srv := netpeer.NewServer(fc.Peer, topk.WireCodec{}, skyline.WireCodec{}, diversify.WireCodec{})
	addr, err := srv.Start(fc.Addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("peer %s serving on %s (%d tuples, %d links)\n",
		fc.Peer.ID, addr, len(fc.Peer.Tuples), len(fc.Peer.Links))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	fmt.Printf("peer %s stopped\n", fc.Peer.ID)
}

func client(addr, queryKind string, k, dims, r int) {
	if dims <= 0 {
		dims = probeDims(addr)
	}
	switch queryKind {
	case "topk":
		f := topk.UniformLinear(dims)
		params, err := (topk.WireCodec{}).EncodeParams(f, k)
		if err != nil {
			fatal(err)
		}
		answers, stats, err := netpeer.Query(addr, "topk", params, dims, r)
		if err != nil {
			fatal(err)
		}
		for i, t := range topk.Select(answers, f, k) {
			fmt.Printf("%3d. %v  score %.4f\n", i+1, t, f.Score(t.Vec))
		}
		fmt.Printf("cost: %v\n", &stats)
	case "skyline":
		answers, stats, err := netpeer.Query(addr, "skyline", nil, dims, r)
		if err != nil {
			fatal(err)
		}
		for i, t := range skyline.Compute(answers) {
			fmt.Printf("%3d. %v\n", i+1, t)
		}
		fmt.Printf("cost: %v\n", &stats)
	default:
		fatal(fmt.Errorf("client mode supports topk and skyline, not %q", queryKind))
	}
}

// probeDims discovers the data dimensionality by asking for one answer.
func probeDims(addr string) int {
	for d := 1; d <= 16; d++ {
		params, err := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(d), 1)
		if err != nil {
			continue
		}
		answers, _, err := netpeer.Query(addr, "topk", params, d, 0)
		if err == nil && len(answers) > 0 && len(answers[0].Vec) == d {
			return d
		}
	}
	fatal(fmt.Errorf("could not determine dimensionality; pass -dims"))
	return 0
}

func parseR(s string) int {
	switch s {
	case "fast":
		return 0
	case "slow":
		return 1 << 20
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad -r %q", s))
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ripple-serve:", err)
	os.Exit(1)
}
