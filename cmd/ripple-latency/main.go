// Command ripple-latency prints the worst-case latency of RIPPLE over MIDAS
// (§3.2, Lemmas 1-3) for a range of ripple parameters, both analytically
// (the Lemma 3 recurrence) and measured on an actual perfect virtual tree
// flooded with a never-pruning query — the two columns must agree exactly.
package main

import (
	"flag"
	"fmt"

	"ripple/internal/bench"
)

func main() {
	depth := flag.Int("depth", 10, "depth ∆ of the perfect MIDAS virtual tree (2^∆ peers)")
	flag.Parse()
	fmt.Println(bench.Lemmas(*depth))
	fmt.Println("L_r(0,r) interpolates between L_f(0) = ∆ (network diameter) and")
	fmt.Println("L_s(0) = 2^∆ - 1 (network size), growing as O(∆^(r+1)) = O(log^(r+1) n).")
}
