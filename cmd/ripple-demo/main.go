// Command ripple-demo walks through the paper's illustrative figures on a
// small two-dimensional MIDAS overlay: the virtual k-d tree and peer zones
// (Figure 1), the §5.2 border patterns (Figure 2), and the hop-by-hop
// progress of a fast skyline query (Figure 3), followed by a side-by-side
// cost comparison of the fast and slow extremes.
package main

import (
	"flag"
	"fmt"
	"sort"

	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

func main() {
	size := flag.Int("size", 12, "number of peers in the demo overlay")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	net := midas.Build(*size, midas.Options{Dims: 2, Seed: *seed, PreferBorder: true})
	ts := dataset.Synth(dataset.SynthConfig{N: 500, Dims: 2, Centers: 8, Seed: *seed})
	overlay.Load(net, ts)

	fmt.Println("=== Figure 1: the virtual k-d tree and peer zones ===")
	fmt.Print(net)

	fmt.Println("\n=== Figure 1(c): links of one peer ===")
	w := net.Peers()[0]
	fmt.Printf("peer %q (zone %v) has %d links:\n", w.ID(), w.Rect(), len(w.Links()))
	for i, l := range w.Links() {
		fmt.Printf("  link %d -> peer %q, region %v\n", i, l.To.ID(), l.Region)
	}

	fmt.Println("\n=== Figure 2: peers matching the border patterns p_h, p_v ===")
	var ids []string
	for _, p := range net.Peers() {
		ids = append(ids, p.ID())
	}
	sort.Strings(ids)
	for _, id := range ids {
		mark := " "
		if matchesPattern(id, 2) {
			mark = "*"
		}
		fmt.Printf("  %s %s\n", mark, id)
	}
	fmt.Println("  (* = identifier obeys a pattern p_j: zone hugs the lower borders)")

	fmt.Println("\n=== Figure 3: fast vs slow skyline processing ===")
	skyFast, stFast := skyline.Run(w, 0)
	skySlow, stSlow := skyline.Run(w, 1<<20)
	fmt.Printf("skyline size: %d (fast) / %d (slow), both exact\n", len(skyFast), len(skySlow))
	fmt.Printf("fast: %v\n", &stFast)
	fmt.Printf("slow: %v\n", &stSlow)

	fmt.Println("\n=== Bonus: top-3 tuples by equal-weight score ===")
	f := topk.UniformLinear(2)
	top, st := topk.Run(w, f, 3, 1)
	for i, t := range top {
		fmt.Printf("  %d. %v score %.3f\n", i+1, t, f.Score(t.Vec))
	}
	fmt.Printf("cost: %v\n", &st)
}

func matchesPattern(id string, d int) bool {
	for j := 0; j < d; j++ {
		ok := true
		for i := 0; i < len(id); i++ {
			if i%d != j && id[i] == '1' {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
