// Command ripple-bench regenerates the tables and figures of the paper's
// experimental evaluation (§7). Each figure prints as a pair of text tables —
// (a) latency in hops and (b) congestion in messages per query — with one
// column per method, mirroring the published plots.
//
// Usage:
//
//	ripple-bench                 # run everything at laptop scale
//	ripple-bench -fig fig7       # one experiment
//	ripple-bench -list           # list experiments and the Table 1 config
//	ripple-bench -scale quick    # tiny configuration (CI)
//	ripple-bench -scale paper    # the published Table 1 ranges (slow!)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ripple/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run (see -list), or 'all'")
	scale := flag.String("scale", "default", "configuration scale: quick | default | paper")
	seed := flag.Int64("seed", 1, "master random seed")
	list := flag.Bool("list", false, "list experiments and the configuration, then exit")
	csvDir := flag.String("csv", "", "also export each figure's data points as CSV into this directory")
	networks := flag.Int("networks", 0, "override: overlays per data point")
	divQueries := flag.Int("div-queries", 0, "override: diversification queries per overlay")
	resultSizes := flag.String("result-sizes", "", "override: comma-separated k values for Figures 6/11")
	dims := flag.String("dims", "", "override: comma-separated dimensionalities for Figures 5/8/10")
	synthSize := flag.Int("synth-size", 0, "override: SYNTH dataset cardinality")
	faultRates := flag.String("fault-rates", "", "override: comma-separated drop probabilities for churn-faults")
	concurrency := flag.String("concurrency", "", "override: comma-separated worker counts for the throughput experiment")
	jsonDir := flag.String("json", "", "also export each figure's full result as JSON into this directory")
	replication := flag.String("replication", "", "override: comma-separated zone replication factors for the recovery experiment (1 = off)")
	recoveryRates := flag.String("recovery-rates", "", "override: comma-separated drop probabilities for the recovery experiment")
	zipfSkews := flag.String("zipf", "", "override: comma-separated zipf skews for the zipf-cache experiment")
	mutateRate := flag.Float64("mutate-rate", -1, "override: insert fraction of the zipf-cache workload, in [0,1]")
	flag.Parse()

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.Quick()
	case "default":
		cfg = bench.Default()
	case "paper":
		cfg = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	if *networks > 0 {
		cfg.Networks = *networks
	}
	if *divQueries > 0 {
		cfg.DivQueries = *divQueries
	}
	if *resultSizes != "" {
		cfg.ResultSizes = parseInts(*resultSizes, "-result-sizes")
	}
	if *dims != "" {
		cfg.Dims = parseInts(*dims, "-dims")
	}
	if *synthSize > 0 {
		cfg.SynthSize = *synthSize
	}
	if *faultRates != "" {
		cfg.FaultRates = parseFloats(*faultRates, "-fault-rates")
	}
	if *concurrency != "" {
		cfg.Concurrency = parseInts(*concurrency, "-concurrency")
	}
	if *replication != "" {
		cfg.ReplicationFactors = parseInts(*replication, "-replication")
	}
	if *recoveryRates != "" {
		cfg.RecoveryRates = parseFloats(*recoveryRates, "-recovery-rates")
	}
	if *zipfSkews != "" {
		cfg.ZipfSkews = parseSkews(*zipfSkews, "-zipf")
	}
	if *mutateRate >= 0 {
		if *mutateRate > 1 {
			fmt.Fprintf(os.Stderr, "bad -mutate-rate %v (want a fraction in [0,1])\n", *mutateRate)
			os.Exit(2)
		}
		cfg.MutateRate = *mutateRate
	}

	if *list {
		fmt.Println("Experimental configuration (Table 1):")
		fmt.Println(" ", cfg)
		fmt.Println("\nExperiments:")
		for _, r := range bench.Runners() {
			fmt.Printf("  %-18s %s\n", r.Name, r.Desc)
		}
		return
	}

	runners := bench.Runners()
	if *fig != "all" {
		r := bench.Find(*fig)
		if r == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *fig)
			os.Exit(2)
		}
		runners = []bench.Runner{*r}
	}

	fmt.Printf("configuration: %s\n\n", cfg)
	for _, r := range runners {
		start := time.Now()
		res := r.Run(cfg)
		fmt.Printf("%s  [%s, %v]\n\n", res, r.Name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := exportCSV(*csvDir, r.Name, res); err != nil {
				fmt.Fprintln(os.Stderr, "csv export:", err)
			}
		}
		if *jsonDir != "" {
			if err := exportJSON(*jsonDir, r.Name, res); err != nil {
				fmt.Fprintln(os.Stderr, "json export:", err)
			}
		}
	}
}

func parseInts(csv, flagName string) []int {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad %s entry %q\n", flagName, part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(csv, flagName string) []float64 {
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "bad %s entry %q (want probabilities in [0,1])\n", flagName, part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// parseSkews is parseFloats without the probability cap: zipf exponents
// above 1 are the interesting regime.
func parseSkews(csv, flagName string) []float64 {
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "bad %s entry %q (want skews >= 0)\n", flagName, part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func exportCSV(dir, name string, res *bench.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteCSV(f)
}

func exportJSON(dir, name string, res *bench.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteJSON(f)
}
