// Command ripple-vet is the repository's invariant checker: a multichecker
// over the internal/lint analyzers (determinism, statealias, lockcheck,
// ctxdeadline, errlost). It runs as part of `make verify` and CI; see
// DESIGN.md §10 for the enforced invariants and the suppression convention.
//
// Usage:
//
//	ripple-vet ./...                  # the pre-merge gate
//	ripple-vet -list                  # what is enforced
//	ripple-vet -analyzers errlost ./internal/netpeer
package main

import (
	"os"

	"ripple/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Stdout, os.Stderr, ".", os.Args[1:]))
}
