// Command ripple-vet is the repository's invariant checker: a multichecker
// over the internal/lint analyzers — the syntactic five (determinism,
// statealias, lockcheck, ctxdeadline, errlost) plus the flow-sensitive five
// built on the per-function CFG and cross-package fact base (poolcheck,
// wiredet, lockorder, storeinval, goroleak). Stale //lint:ignore
// suppressions are reported too. It runs as part of `make verify` and CI;
// see DESIGN.md §10 for the enforced invariants and the suppression
// convention.
//
// Usage:
//
//	ripple-vet ./...                  # the pre-merge gate
//	ripple-vet -list                  # what is enforced
//	ripple-vet -analyzers errlost ./internal/netpeer
//	ripple-vet -json ./...            # findings as a JSON array
//	ripple-vet -sarif ./...           # findings as SARIF 2.1.0 (CI artifact)
package main

import (
	"os"

	"ripple/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Stdout, os.Stderr, ".", os.Args[1:]))
}
