// Command ripple-trace runs one traced rank query over a simulated overlay
// and renders its hop tree: every link traversal as a span, annotated with
// the restriction region, mode phase, hop clock and fault outcome, with
// per-subtree rollups at the branch points. The same query can be executed
// on any of the three runtimes — the structural engine, the actor cluster,
// or a real TCP deployment on loopback — which produce structurally
// identical trees, so the flag doubles as a live cross-runtime check.
//
//	ripple-trace -peers 32 -r 2                        # engine runtime
//	ripple-trace -peers 32 -r 2 -runtime tcp           # same tree over TCP
//	ripple-trace -peers 64 -fault-drop 0.1 -r slow     # see lost subtrees
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"ripple/internal/async"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

func main() {
	peers := flag.Int("peers", 32, "overlay size")
	dims := flag.Int("dims", 3, "data dimensionality")
	size := flag.Int("size", 2000, "number of tuples")
	seed := flag.Int64("seed", 1, "overlay and data seed")
	queryKind := flag.String("query", "topk", "query type: topk | skyline")
	k := flag.Int("k", 10, "result size for topk")
	rFlag := flag.String("r", "fast", "ripple parameter: fast | slow | integer")
	runtime := flag.String("runtime", "engine", "execution runtime: engine | actor | tcp")
	initiator := flag.Int("initiator", 0, "index of the initiating peer")
	faultDrop := flag.Float64("fault-drop", 0, "injected per-link drop probability")
	faultCrash := flag.Float64("fault-crash", 0, "injected per-link crash probability")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection seed")
	flag.Parse()

	r := parseR(*rFlag)
	net := midas.Build(*peers, midas.Options{Dims: *dims, Seed: *seed})
	overlay.Load(net, dataset.Uniform(*size, *dims, *seed))
	init := net.Peers()[*initiator%net.Size()]

	var inj *faults.Injector
	if *faultDrop > 0 || *faultCrash > 0 {
		inj = faults.New(faults.Config{Seed: *faultSeed, DropRate: *faultDrop, CrashRate: *faultCrash})
	}

	var proc core.Processor
	switch *queryKind {
	case "topk":
		proc = &topk.Processor{F: topk.UniformLinear(*dims), K: *k}
	case "skyline":
		proc = &skyline.Processor{}
	default:
		fatal(fmt.Errorf("unknown query type %q", *queryKind))
	}

	var res *core.Result
	switch *runtime {
	case "engine":
		res = core.RunOpts(init, proc, r, core.Options{Faults: inj, Trace: true})
	case "actor":
		c := async.NewClusterInjected(net, proc, inj)
		res = c.RunTraced(init.ID(), r)
		c.Close()
	case "tcp":
		res = runTCP(net, init.ID(), *queryKind, proc, *dims, *k, r, inj)
	default:
		fatal(fmt.Errorf("unknown runtime %q (engine | actor | tcp)", *runtime))
	}

	if res.Trace == nil || res.Trace.Root == nil {
		fatal(fmt.Errorf("query produced no trace"))
	}
	fmt.Printf("%s query, r=%s, runtime=%s, %d peers\n\n", *queryKind, *rFlag, *runtime, *peers)
	res.Trace.Render(os.Stdout)
	roll := res.Trace.Root.Rollup()
	fmt.Printf("\n%d spans, depth %d, %d state / %d answer tuples, %d lost subtree(s)\n",
		roll.Spans, roll.MaxDepth, roll.StateTuples, roll.AnswerTuples, roll.Lost)
	fmt.Printf("cost: %v\n", &res.Stats)
	if res.Partial() {
		fmt.Printf("answer is PARTIAL: %d region(s) lost\n", len(res.FailedRegions))
	}
}

// runTCP deploys the overlay as loopback TCP servers and issues the traced
// query for real. Retries are disabled when faults are armed so the tree
// shows exactly the engine's losses instead of recovering them.
func runTCP(net overlay.Network, initID, queryKind string, proc core.Processor, dims, k, r int, inj *faults.Injector) *core.Result {
	opts := netpeer.Options{
		Faults: inj,
		Logf:   func(string, ...interface{}) {},
	}
	if inj.Enabled() {
		opts.Retry = netpeer.RetryPolicy{MaxRetries: 0, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond}
	}
	servers, addrs, err := netpeer.DeployOpts(net, opts, topk.WireCodec{}, skyline.WireCodec{})
	if err != nil {
		fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	var params []byte
	if queryKind == "topk" {
		params, err = (topk.WireCodec{}).EncodeParams(proc.(*topk.Processor).F, k)
		if err != nil {
			fatal(err)
		}
	}
	qres, err := netpeer.QueryTraced(addrs[initID], queryKind, params, dims, r, 0)
	if err != nil {
		fatal(err)
	}
	return &core.Result{
		Answers:       qres.Answers,
		Stats:         qres.Stats,
		FailedRegions: qres.FailedRegions,
		Trace:         qres.Trace,
	}
}

func parseR(s string) int {
	switch s {
	case "fast":
		return 0
	case "slow":
		return 1 << 20
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad -r value %q", s))
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ripple-trace:", err)
	os.Exit(1)
}
