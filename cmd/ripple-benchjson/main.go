// ripple-benchjson converts `go test -bench -benchmem` text output (stdin)
// into deterministic JSON (stdout), for committing benchmark baselines:
//
//	go test -run=NONE -bench=. -benchmem ./... | ripple-benchjson > BENCH.json
//
// See `make bench-json`.
package main

import (
	"fmt"
	"os"

	"ripple/internal/benchfmt"
)

func main() {
	results, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ripple-benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "ripple-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if err := benchfmt.WriteJSON(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, "ripple-benchjson:", err)
		os.Exit(1)
	}
}
