// ripple-benchjson converts `go test -bench -benchmem` text output (stdin)
// into deterministic JSON (stdout), for committing benchmark baselines:
//
//	go test -run=NONE -bench=. -benchmem ./... | ripple-benchjson > BENCH.json
//
// With -check it gates instead of records: the fresh run on stdin is compared
// against a committed baseline, and any benchmark regressing past -max-ratio
// (or missing entirely) fails the run loudly:
//
//	go test -run=NONE -bench=. -benchtime=1x ./... | \
//	    ripple-benchjson -check BENCH.json -max-ratio 3 -min-ns 100000
//
// With -check-recovery it gates a committed figure-shaped baseline instead:
// the recovery figure (BENCH_PR6.json) is validated against its replication
// invariants — recall within [0,1] and monotone in the replication factor,
// and the highest factor recovering nearly everything — without reading
// stdin (seeded figures regenerate bit-identically, so the gate checks the
// committed values themselves):
//
//	ripple-benchjson -check-recovery BENCH_PR6.json
//
// See `make bench-json` and the bench-smoke-* targets.
package main

import (
	"flag"
	"fmt"
	"os"

	"ripple/internal/benchfmt"
)

func main() {
	check := flag.String("check", "", "committed baseline JSON to gate against instead of emitting JSON")
	maxRatio := flag.Float64("max-ratio", 3, "fail when fresh ns/op exceeds this multiple of the committed ns/op")
	minNs := flag.Float64("min-ns", 0, "skip the ratio gate for baseline rows faster than this (timer noise floor)")
	checkRecovery := flag.String("check-recovery", "", "committed recovery figure JSON to validate (no stdin)")
	flag.Parse()

	if *checkRecovery != "" {
		f, err := os.Open(*checkRecovery)
		if err != nil {
			fatal(err)
		}
		fig, err := benchfmt.ReadFigure(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *checkRecovery, err))
		}
		if violations := benchfmt.CheckRecovery(fig); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "ripple-benchjson: %d recovery violation(s) in %s:\n", len(violations), *checkRecovery)
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  "+v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ripple-benchjson: %s holds its replication invariants (%d rows x %d series)\n",
			*checkRecovery, len(fig.Rows), len(fig.Series))
		return
	}

	results, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	if *check == "" {
		if err := benchfmt.WriteJSON(os.Stdout, results); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Open(*check)
	if err != nil {
		fatal(err)
	}
	base, err := benchfmt.ReadBaseline(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *check, err))
	}
	if violations := benchfmt.Check(results, base, *maxRatio, *minNs); len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "ripple-benchjson: %d regression(s) against %s:\n", len(violations), *check)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ripple-benchjson: %d benchmarks within %.1fx of %s\n", len(base), *maxRatio, *check)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ripple-benchjson:", err)
	os.Exit(1)
}
