// Command ripple-query runs rank queries over a user-supplied CSV dataset on
// a simulated RIPPLE/MIDAS overlay — a self-contained way to try the library
// on real data.
//
// The CSV format is one row per tuple: an integer id column followed by the
// coordinate columns. With -normalize, raw attribute values are min-max
// rescaled into [0,1); the optional -invert flag lists comma-separated
// dimensions whose raw values are better when higher (the engine's
// convention is lower-is-better).
//
// Examples:
//
//	ripple-query -data players.csv -normalize -invert 0,1,2 -query topk -k 5
//	ripple-query -data hotels.csv -query skyline -r slow
//	ripple-query -data photos.csv -query diversify -k 8 -lambda 0.3
//	ripple-query -data points.csv -query knn -k 3 -at 0.5,0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ripple"
)

func main() {
	data := flag.String("data", "", "CSV file: id column plus coordinates (required)")
	normalize := flag.Bool("normalize", false, "min-max rescale raw attributes into [0,1)")
	invert := flag.String("invert", "", "comma-separated dims where higher raw values are better")
	queryKind := flag.String("query", "topk", "query type: topk | skyline | knn | range | diversify")
	k := flag.Int("k", 10, "result size for topk/knn/diversify")
	rFlag := flag.String("r", "fast", "ripple parameter: fast | slow | an integer")
	peers := flag.Int("peers", 256, "overlay size")
	seed := flag.Int64("seed", 1, "random seed")
	lambda := flag.Float64("lambda", 0.5, "diversification relevance/diversity trade-off")
	at := flag.String("at", "", "query point for knn/range/diversify, e.g. 0.5,0.5 (default: first tuple)")
	radius := flag.Float64("radius", 0.1, "radius for range queries")
	showTrace := flag.Bool("trace", false, "render the query's hop tree (topk, skyline and knn)")
	storageFlag := flag.String("storage", "", "peer-local storage engine: scan | rtree (default: $RIPPLE_STORAGE, then scan)")
	noCache := flag.Bool("no-cache", false, "disable the result cache (every -repeat run re-executes the query)")
	repeat := flag.Int("repeat", 1, "run the query this many times (repeats hit the result cache unless -no-cache)")
	planMode := flag.String("plan", "static", "auto lets the adaptive planner pick the mode/r per query (overrides -r)")
	flag.Parse()

	if *data == "" {
		fmt.Fprintln(os.Stderr, "missing -data; see -help")
		os.Exit(2)
	}
	f, err := os.Open(*data)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	ts, err := ripple.ReadCSVRaw(f, *normalize, parseDims(*invert))
	if err != nil {
		fatal(err)
	}
	if len(ts) == 0 {
		fatal(fmt.Errorf("no tuples in %s", *data))
	}
	dims := len(ts[0].Vec)
	fmt.Printf("loaded %d tuples (%d dims); building %d-peer MIDAS overlay\n", len(ts), dims, *peers)

	mopts := ripple.MIDASOptions{Dims: dims, Seed: *seed, PreferBorder: true}
	if *storageFlag != "" {
		kind, err := ripple.ParseStorageKind(*storageFlag)
		if err != nil {
			fatal(err)
		}
		mopts.Storage = kind
	}
	net := ripple.BuildMIDASWithData(*peers, mopts, ts)
	initiator := net.Peers()[0]
	r := parseR(*rFlag)
	switch *planMode {
	case "static":
	case "auto":
		planner = ripple.DefaultPlanner()
		r = ripple.RAuto
	default:
		fatal(fmt.Errorf("bad -plan %q (want auto or static)", *planMode))
	}

	center := ts[0].Vec
	if *at != "" {
		center = parsePoint(*at, dims)
	}

	// The result cache turns repeated identical queries (-repeat) into cache
	// hits; -no-cache re-executes every run, which is also what the traced
	// paths do (a cached answer has no hop tree to render).
	var rc *ripple.ResultCache
	if !*noCache {
		rc = ripple.NewResultCache(ripple.ResultCacheOptions{MaxBytes: 8 << 20})
	}

	switch *queryKind {
	case "topk":
		f := ripple.UniformLinear(dims)
		if *showTrace {
			res := ripple.RunTraced(initiator, &ripple.TopKProcessor{F: f, K: *k}, r)
			printTuples(ripple.TopKSelect(res.Answers, f, *k))
			printTrace(res)
			return
		}
		params, err := (ripple.TopKWire{}).EncodeParams(f, *k)
		if err != nil {
			fatal(err)
		}
		res := runRepeated(initiator, &ripple.TopKProcessor{F: f, K: *k}, r, rc, "topk", params, dims, *repeat)
		printTuples(ripple.TopKSelect(res.Answers, f, *k))
		fmt.Printf("cost: %v\n", &res.Stats)
	case "skyline":
		if *showTrace {
			res := ripple.RunTraced(initiator, &ripple.SkylineProcessor{}, r)
			printTuples(ripple.SkylineBrute(res.Answers))
			printTrace(res)
			return
		}
		res := runRepeated(initiator, &ripple.SkylineProcessor{}, r, rc, "skyline", nil, dims, *repeat)
		printTuples(ripple.SkylineBrute(res.Answers))
		fmt.Printf("cost: %v\n", &res.Stats)
	case "knn":
		if *showTrace {
			res := ripple.RunTraced(initiator, &ripple.KNNProcessor{Center: center, K: *k, Metric: ripple.L2}, r)
			printTuples(ripple.KNNSelect(res.Answers, center, *k, ripple.L2))
			printTrace(res)
			return
		}
		params, err := (ripple.KNNWire{}).EncodeParams(center, *k, ripple.L2)
		if err != nil {
			fatal(err)
		}
		res := runRepeated(initiator, &ripple.KNNProcessor{Center: center, K: *k, Metric: ripple.L2}, r, rc, "knn", params, dims, *repeat)
		printTuples(ripple.KNNSelect(res.Answers, center, *k, ripple.L2))
		fmt.Printf("cost: %v\n", &res.Stats)
	case "range":
		res, stats := ripple.Range(initiator, ripple.RangeBall{Center: center, Radius: *radius, Metric: ripple.L2})
		printTuples(res)
		fmt.Printf("cost: %v\n", &stats)
	case "diversify":
		q := ripple.NewDiversifyQuery(center, *lambda)
		res := ripple.Diversify(initiator, q, *k, r, 0)
		printTuples(res.Set)
		fmt.Printf("objective: %.4f after %d passes; cost: %v\n", res.Objective, res.Iterations, &res.Stats)
	default:
		fatal(fmt.Errorf("unknown query type %q", *queryKind))
	}
}

// planner is the -plan=auto adaptive planner; nil for static runs.
var planner *ripple.Planner

// runRepeated executes the query `repeat` times through the result cache,
// reporting how many runs were served from it, and returns the last result.
// With -plan=auto the first run resolves the mode; the resolved r keys the
// cache for the repeats (the cache identity includes r, so a planned query
// must share entries with the static run it selected).
func runRepeated(initiator ripple.Node, p ripple.Processor, r int, rc *ripple.ResultCache, queryType string, params []byte, dims, repeat int) *ripple.Result {
	opts := ripple.RunOptions{Planner: planner}
	if planner != nil {
		res := ripple.RunWithOptions(initiator, p, r, opts)
		if res.Plan != nil {
			fmt.Printf("plan: %s (r=%d)\n", res.Plan, res.Plan.R)
			r = res.Plan.R
		}
		if repeat == 1 {
			return res
		}
		repeat-- // the resolving run was the first repeat
	}
	if rc != nil {
		opts.Cache = rc
		opts.CacheKey = ripple.CacheKey(queryType, params, dims, r, ripple.Region{})
	}
	var res *ripple.Result
	hits := 0
	for i := 0; i < repeat; i++ {
		res = ripple.RunWithOptions(initiator, p, r, opts)
		if res.CacheHit {
			hits++
		}
	}
	if repeat > 1 {
		fmt.Printf("%d runs, %d served from the result cache\n", repeat, hits)
	}
	return res
}

func printTuples(ts []ripple.Tuple) {
	for i, t := range ts {
		fmt.Printf("%3d. %v\n", i+1, t)
	}
}

func printTrace(res *ripple.Result) {
	fmt.Println()
	res.Trace.Render(os.Stdout)
	fmt.Printf("\ncost: %v\n", &res.Stats)
}

func parseR(s string) int {
	switch s {
	case "fast":
		return ripple.Fast
	case "slow":
		return ripple.Slow
	case "auto":
		return ripple.RAuto
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad -r value %q", s))
	}
	return v
}

func parseDims(s string) []bool {
	if s == "" {
		return nil
	}
	var out []bool
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 0 {
			fatal(fmt.Errorf("bad -invert dim %q", part))
		}
		for len(out) <= d {
			out = append(out, false)
		}
		out[d] = true
	}
	return out
}

func parsePoint(s string, dims int) ripple.Point {
	parts := strings.Split(s, ",")
	if len(parts) != dims {
		fatal(fmt.Errorf("-at needs %d coordinates", dims))
	}
	p := make(ripple.Point, dims)
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad coordinate %q", part))
		}
		p[i] = v
	}
	return p
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ripple-query:", err)
	os.Exit(1)
}
