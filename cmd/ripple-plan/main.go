// Command ripple-plan slices a dataset across a MIDAS overlay and writes one
// JSON config per peer, ready to launch as real processes with ripple-serve:
//
//	ripple-plan -size 8 -data tuples.csv -out deploy/
//	for f in deploy/peer-*.json; do ripple-serve -config $f & done
//	ripple-serve -call 127.0.0.1:7400 -query topk -k 5
//
// Without -data, a synthetic clustered dataset is generated.
//
// The plan subcommand explains what the adaptive query planner would choose
// for a given query — against a fleet described by the sizing flags, or
// against a peer config written by the deployment planner:
//
//	ripple-plan plan -query topk -k 10 -size 64 -dims 3
//	ripple-plan plan -query skyline -config deploy/peer-000.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/plan"
	"ripple/internal/storage"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "plan" {
		explainPlan(os.Args[2:])
		return
	}
	size := flag.Int("size", 8, "number of peers")
	dims := flag.Int("dims", 0, "dimensionality (required without -data)")
	data := flag.String("data", "", "CSV dataset (id + normalised coordinates); synthetic if empty")
	n := flag.Int("n", 10000, "synthetic tuple count when -data is empty")
	host := flag.String("host", "127.0.0.1", "host for peer addresses")
	basePort := flag.Int("base-port", 7400, "first peer port")
	out := flag.String("out", "deploy", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	replication := flag.Int("replication", 1, "zone replication factor: each peer's share is mirrored onto this many - 1 other peers, and queries fail over to them when the primary dies (1 = off)")
	flag.Parse()
	if *replication < 1 {
		fatal(fmt.Errorf("-replication must be at least 1, got %d", *replication))
	}

	var ts []dataset.Tuple
	switch {
	case *data != "":
		f, err := os.Open(*data)
		if err != nil {
			fatal(err)
		}
		ts, err = dataset.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		if *dims <= 0 {
			*dims = 3
		}
		ts = dataset.Synth(dataset.SynthConfig{N: *n, Dims: *dims, Centers: *n / 20, Seed: *seed})
	}
	d := dataset.Dims(ts)

	net := midas.BuildWithData(*size, midas.Options{Dims: d, Seed: *seed}, ts)
	plans, err := netpeer.PlanOpts(net, *host, *basePort, *replication)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for i, fc := range plans {
		path := filepath.Join(*out, fmt.Sprintf("peer-%03d.json", i))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := netpeer.WriteConfig(f, fc); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("%s  id=%s addr=%s tuples=%d links=%d shares=%d\n",
			path, fc.Peer.ID, fc.Addr, len(fc.Peer.Tuples), len(fc.Peer.Links), len(fc.Peer.Replicas))
	}
	fmt.Printf("\n%d peers planned over %d tuples (%d dims); start them with:\n", len(plans), len(ts), d)
	fmt.Printf("  for f in %s/peer-*.json; do ripple-serve -config $f & done\n", *out)
}

// explainPlan is the plan subcommand: it builds the planner's view of one
// query — from a live peer config or from the sizing flags — and prints the
// cold-start cost estimate of every candidate arm, marking the one a planning
// peer would pick. The estimates are the closed-form priors of the paper's
// fast/slow analysis; a long-running peer refines them online from observed
// queries, so this is the decision a fresh fleet makes.
func explainPlan(args []string) {
	fs := flag.NewFlagSet("ripple-plan plan", flag.ExitOnError)
	query := fs.String("query", "topk", "query family: topk | skyline | knn | diversify")
	k := fs.Int("k", 10, "result size (topk/knn) or base-set size (diversify)")
	size := fs.Int("size", 64, "overlay size the query would run against")
	dims := fs.Int("dims", 3, "data dimensionality")
	n := fs.Int("n", 10000, "fleet-wide tuple count (sets the per-peer load estimate)")
	seed := fs.Int64("seed", 1, "seed for the synthetic per-peer share")
	storageFlag := fs.String("storage", "", "peer storage engine: scan | rtree (default: $RIPPLE_STORAGE, then scan)")
	config := fs.String("config", "", "peer config written by ripple-plan; overrides -size/-dims/-n")
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	switch *query {
	case "topk", "skyline", "knn", "diversify":
	default:
		fatal(fmt.Errorf("unknown query family %q", *query))
	}

	kind := storage.EnvKind()
	if *storageFlag != "" {
		var err error
		kind, err = storage.ParseKind(*storageFlag)
		if err != nil {
			fatal(err)
		}
	}

	q := plan.Query{Family: *query, K: *k, Dims: *dims, OverlaySize: *size}
	if *config != "" {
		fc, err := netpeer.ReadConfigFile(*config)
		if err != nil {
			fatal(err)
		}
		q.Dims = fc.Dims
		q.Degree = len(fc.Peer.Links)
		q.OverlaySize = 0 // unknown from one config; the degree bounds the depth
		q.Local = storage.New(kind, fc.Peer.Tuples).Stats()
		fmt.Printf("peer %s: %d tuples, %d links, %s storage\n",
			fc.Peer.ID, len(fc.Peer.Tuples), len(fc.Peer.Links), q.Local.Kind)
	} else {
		if *size < 1 {
			fatal(fmt.Errorf("-size must be at least 1, got %d", *size))
		}
		share := dataset.Uniform(*n / *size, *dims, *seed)
		q.Local = storage.New(kind, share).Stats()
		fmt.Printf("planned fleet: %d peers, %d tuples (%d per peer), %d dims, %s storage\n",
			*size, *n, len(share), *dims, q.Local.Kind)
	}
	if *query == "skyline" {
		q.K = 0
	}

	p := plan.Default()
	fmt.Printf("query: %s k=%d\n\n", *query, q.K)
	fmt.Printf("%-10s %-10s %12s %14s  %s\n", "arm", "mode", "est. cost", "observations", "")
	for _, a := range p.Explain(q) {
		r := fmt.Sprintf("r=%d", a.R)
		if a.Mode == plan.ModeSlow {
			r = "r=slow"
		}
		mark := ""
		if a.Chosen {
			mark = "<- chosen"
		}
		fmt.Printf("%-10s %-10s %12.2f %14d  %s\n", r, a.Mode, a.Cost, a.Observations, mark)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ripple-plan:", err)
	os.Exit(1)
}
