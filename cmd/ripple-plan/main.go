// Command ripple-plan slices a dataset across a MIDAS overlay and writes one
// JSON config per peer, ready to launch as real processes with ripple-serve:
//
//	ripple-plan -size 8 -data tuples.csv -out deploy/
//	for f in deploy/peer-*.json; do ripple-serve -config $f & done
//	ripple-serve -call 127.0.0.1:7400 -query topk -k 5
//
// Without -data, a synthetic clustered dataset is generated.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
)

func main() {
	size := flag.Int("size", 8, "number of peers")
	dims := flag.Int("dims", 0, "dimensionality (required without -data)")
	data := flag.String("data", "", "CSV dataset (id + normalised coordinates); synthetic if empty")
	n := flag.Int("n", 10000, "synthetic tuple count when -data is empty")
	host := flag.String("host", "127.0.0.1", "host for peer addresses")
	basePort := flag.Int("base-port", 7400, "first peer port")
	out := flag.String("out", "deploy", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	replication := flag.Int("replication", 1, "zone replication factor: each peer's share is mirrored onto this many - 1 other peers, and queries fail over to them when the primary dies (1 = off)")
	flag.Parse()
	if *replication < 1 {
		fatal(fmt.Errorf("-replication must be at least 1, got %d", *replication))
	}

	var ts []dataset.Tuple
	switch {
	case *data != "":
		f, err := os.Open(*data)
		if err != nil {
			fatal(err)
		}
		ts, err = dataset.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		if *dims <= 0 {
			*dims = 3
		}
		ts = dataset.Synth(dataset.SynthConfig{N: *n, Dims: *dims, Centers: *n / 20, Seed: *seed})
	}
	d := dataset.Dims(ts)

	net := midas.BuildWithData(*size, midas.Options{Dims: d, Seed: *seed}, ts)
	plans, err := netpeer.PlanOpts(net, *host, *basePort, *replication)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for i, fc := range plans {
		path := filepath.Join(*out, fmt.Sprintf("peer-%03d.json", i))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := netpeer.WriteConfig(f, fc); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("%s  id=%s addr=%s tuples=%d links=%d shares=%d\n",
			path, fc.Peer.ID, fc.Addr, len(fc.Peer.Tuples), len(fc.Peer.Links), len(fc.Peer.Replicas))
	}
	fmt.Printf("\n%d peers planned over %d tuples (%d dims); start them with:\n", len(plans), len(ts), d)
	fmt.Printf("  for f in %s/peer-*.json; do ripple-serve -config $f & done\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ripple-plan:", err)
	os.Exit(1)
}
