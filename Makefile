# Convenience targets for the RIPPLE reproduction.

GO ?= go

# Pinned linter versions for CI (and for anyone running `make tools`).
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build test race test-race test-faults verify ripple-vet vet-sarif staticcheck govulncheck lint tools bench bench-smoke bench-smoke-storage bench-json bench-recovery bench-storage examples results results-paper trace-demo clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

# Shuffled so accidental inter-test ordering dependencies surface instead of
# calcifying.
test:
	$(GO) test -shuffle=on ./...

# Race-detect the concurrency hot spots only (fast).
race:
	$(GO) test -race ./internal/async/ ./internal/netpeer/ .

# Race-detect everything; part of the verify flow.
test-race:
	$(GO) test -race ./...

# Seeded fault matrix: every fault-injection, replication, and recovery test
# re-runs under the race detector with several shuffle seeds, so scheduling-
# dependent failover bugs surface instead of hiding behind one lucky order.
# The matrix is two-dimensional since PR 7: each seed runs once per storage
# engine (RIPPLE_STORAGE=scan|rtree), so recovery and failover are exercised
# over the R-tree stores too, not just the flat-scan baseline.
FAULT_SEEDS   = 1 7 42
FAULT_ENGINES = scan rtree
FAULT_TESTS = 'Fault|Recover|Failover|Replica|Killed|Churn|Partial|Canonical|Storage'
FAULT_PKGS  = ./internal/faults/ ./internal/overlay/ ./internal/core/ \
              ./internal/netpeer/ ./internal/bench/ .

test-faults:
	@for eng in $(FAULT_ENGINES); do \
		for seed in $(FAULT_SEEDS); do \
			echo "== fault matrix: -race -shuffle=$$seed RIPPLE_STORAGE=$$eng =="; \
			RIPPLE_STORAGE=$$eng $(GO) test -race -shuffle=$$seed -run $(FAULT_TESTS) $(FAULT_PKGS) || exit 1; \
		done; \
	done

# ripple-vet: the repository's own invariant checker (internal/lint). It
# enforces the determinism, aliasing, locking, deadline, failure-accounting,
# pool-hygiene, wire-order, lock-order, store-invalidation, and shutdown-
# coverage contracts documented in DESIGN.md §10, and exits non-zero on any
# finding (including stale //lint:ignore suppressions). The driver caches
# the `go list -export` package graph per process and analyses packages in
# parallel, so the whole-tree run stays a small fraction of verify.
ripple-vet:
	$(GO) run ./cmd/ripple-vet ./...

# Same gate, emitting a SARIF 2.1.0 log for CI artifact upload / code
# scanning. `|| true` would hide findings, so the target fails like
# ripple-vet does but still leaves the log behind for the upload step.
vet-sarif:
	@mkdir -p results
	$(GO) run ./cmd/ripple-vet -sarif ./... > results/ripple-vet.sarif

# staticcheck and govulncheck run when installed (CI installs the pinned
# versions; locally they are optional so the gate works offline).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (run 'make tools' to install $(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (run 'make tools' to install $(GOVULNCHECK_VERSION))"; \
	fi

# Install the pinned external linters (network required).
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# All static analysis beyond the compiler: go vet runs in build; this adds
# the project-specific invariants and the external linters.
lint: ripple-vet staticcheck govulncheck

# The full pre-merge gate: build + go vet + ripple-vet + external linters +
# shuffled tests + full race sweep + seeded fault matrix + benchmark smoke
# (every benchmark must still compile and run one iteration).
verify: build lint test test-race test-faults bench-smoke

# One testing.B benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# Run every benchmark exactly once: catches benchmarks that rot (fail to
# compile or panic) without paying for real measurement.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Storage bench smoke: one iteration of every paired scan-vs-rtree benchmark,
# including the 1M-tuple fixtures, so the committed BENCH_PR7.json can always
# be regenerated. Part of CI.
bench-smoke-storage:
	$(GO) test -run=NONE -bench=BenchmarkStorage -benchtime=1x ./internal/storage/

# Hot-path benchmark packages measured for the committed baseline.
BENCH_JSON_PKGS = ./internal/wire/ ./internal/topk/ ./internal/netpeer/ .

# Regenerate the committed benchmark baseline (ns/op, B/op, allocs/op per
# benchmark) as deterministic JSON.
bench-json:
	$(GO) test -run=NONE -bench=. -benchmem $(BENCH_JSON_PKGS) | $(GO) run ./cmd/ripple-benchjson > BENCH_PR5.json

# Regenerate the committed recovery baseline: top-k recall and unrecoverable
# regions per zone replication factor across drop rates (BENCH_PR6.json).
bench-recovery:
	$(GO) run ./cmd/ripple-bench -fig recovery -scale default -json results
	cp results/recovery.json BENCH_PR6.json

# Regenerate the committed storage baseline: paired scan-vs-rtree local
# compute (top-k state/answer, kNN, MBR search) at 10k/100k/1M tuples per
# peer (BENCH_PR7.json).
bench-storage:
	$(GO) test -run=NONE -bench=BenchmarkStorage -benchmem ./internal/storage/ | $(GO) run ./cmd/ripple-benchjson > BENCH_PR7.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotels-skyline
	$(GO) run ./examples/photo-diversify
	$(GO) run ./examples/custom-query
	$(GO) run ./examples/distributed

# Render one query's hop tree on each runtime, plus a lossy run: the same
# overlay, query and seed must produce structurally identical trees.
trace-demo:
	$(GO) run ./cmd/ripple-trace -peers 16 -query skyline -r 2 -initiator 7 -runtime engine
	$(GO) run ./cmd/ripple-trace -peers 16 -query skyline -r 2 -initiator 7 -runtime actor
	$(GO) run ./cmd/ripple-trace -peers 16 -query skyline -r 2 -initiator 7 -runtime tcp
	$(GO) run ./cmd/ripple-trace -peers 16 -query skyline -r fast -initiator 7 -fault-drop 0.15

# Regenerate every figure at laptop scale into results/.
results:
	mkdir -p results
	$(GO) run ./cmd/ripple-bench -scale default | tee results/all.txt

# The published Table 1 configuration (very slow; serious hardware).
results-paper:
	mkdir -p results
	$(GO) run ./cmd/ripple-bench -scale paper | tee results/all-paper.txt

clean:
	rm -f test_output.txt bench_output.txt
