# Convenience targets for the RIPPLE reproduction.

GO ?= go

.PHONY: all build test race test-race verify bench examples results results-paper clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrency hot spots only (fast).
race:
	$(GO) test -race ./internal/async/ ./internal/netpeer/ .

# Race-detect everything; part of the verify flow.
test-race:
	$(GO) test -race ./...

# The full pre-merge gate: build + vet + tests + full race sweep.
verify: build test test-race

# One testing.B benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotels-skyline
	$(GO) run ./examples/photo-diversify
	$(GO) run ./examples/custom-query
	$(GO) run ./examples/distributed

# Regenerate every figure at laptop scale into results/.
results:
	mkdir -p results
	$(GO) run ./cmd/ripple-bench -scale default | tee results/all.txt

# The published Table 1 configuration (very slow; serious hardware).
results-paper:
	mkdir -p results
	$(GO) run ./cmd/ripple-bench -scale paper | tee results/all-paper.txt

clean:
	rm -f test_output.txt bench_output.txt
