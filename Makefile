# Convenience targets for the RIPPLE reproduction.

GO ?= go

.PHONY: all build test race test-race verify bench examples results results-paper trace-demo clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrency hot spots only (fast).
race:
	$(GO) test -race ./internal/async/ ./internal/netpeer/ .

# Race-detect everything; part of the verify flow.
test-race:
	$(GO) test -race ./...

# The full pre-merge gate: build + vet + tests + full race sweep.
verify: build test test-race

# One testing.B benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotels-skyline
	$(GO) run ./examples/photo-diversify
	$(GO) run ./examples/custom-query
	$(GO) run ./examples/distributed

# Render one query's hop tree on each runtime, plus a lossy run: the same
# overlay, query and seed must produce structurally identical trees.
trace-demo:
	$(GO) run ./cmd/ripple-trace -peers 16 -query skyline -r 2 -initiator 7 -runtime engine
	$(GO) run ./cmd/ripple-trace -peers 16 -query skyline -r 2 -initiator 7 -runtime actor
	$(GO) run ./cmd/ripple-trace -peers 16 -query skyline -r 2 -initiator 7 -runtime tcp
	$(GO) run ./cmd/ripple-trace -peers 16 -query skyline -r fast -initiator 7 -fault-drop 0.15

# Regenerate every figure at laptop scale into results/.
results:
	mkdir -p results
	$(GO) run ./cmd/ripple-bench -scale default | tee results/all.txt

# The published Table 1 configuration (very slow; serious hardware).
results-paper:
	mkdir -p results
	$(GO) run ./cmd/ripple-bench -scale paper | tee results/all-paper.txt

clean:
	rm -f test_output.txt bench_output.txt
