// Facade-level integration tests: everything a downstream user would do
// through the public package, exercised end to end.
package ripple_test

import (
	"bytes"
	"math/rand"
	"testing"

	"ripple"
)

func TestFacadeTopKEndToEnd(t *testing.T) {
	ts := ripple.NBA(4000, 3)
	net := ripple.BuildMIDAS(128, ripple.MIDASOptions{Dims: 6, Seed: 1})
	ripple.Load(net, ts)
	f := ripple.UniformLinear(6)
	want := ripple.TopKBrute(ts, f, 10)
	for _, r := range []int{ripple.Fast, 2, ripple.Slow} {
		got, stats := ripple.TopK(net.Peers()[0], f, 10, r)
		if len(got) != 10 {
			t.Fatalf("r=%d: %d results", r, len(got))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("r=%d: result %d mismatch", r, i)
			}
		}
		if stats.QueryMsgs == 0 {
			t.Fatal("no cost recorded")
		}
	}
}

func TestFacadeSkylineEndToEnd(t *testing.T) {
	ts := ripple.Synth(ripple.SynthConfig{N: 3000, Dims: 3, Centers: 20, Seed: 2})
	net := ripple.BuildMIDAS(64, ripple.MIDASOptions{Dims: 3, Seed: 2, PreferBorder: true})
	ripple.Load(net, ts)
	want := ripple.SkylineBrute(ts)
	got, _ := ripple.Skyline(net.Peers()[3], ripple.Fast)
	if len(got) != len(want) {
		t.Fatalf("skyline %d vs brute %d", len(got), len(want))
	}
}

func TestFacadeDiversifyEndToEnd(t *testing.T) {
	ts := ripple.MIRFlickr(1500, 3)
	net := ripple.BuildMIDAS(32, ripple.MIDASOptions{Dims: 5, Seed: 3})
	ripple.Load(net, ts)
	q := ripple.NewDiversifyQuery(ts[0].Vec, 0.5)
	res := ripple.Diversify(net.Peers()[0], q, 5, ripple.Fast, 0)
	if len(res.Set) != 5 {
		t.Fatalf("set size %d", len(res.Set))
	}
	if res.Objective != q.Objective(res.Set) {
		t.Fatal("objective inconsistent with set")
	}
}

func TestFacadeChordAndCAN(t *testing.T) {
	ts := ripple.Uniform(500, 1, 4)
	ring := ripple.BuildChord(16, 5)
	ripple.Load(ring, ts)
	f := ripple.UniformLinear(1)
	got, _ := ripple.TopK(ring.Peers()[0], f, 5, ripple.Fast)
	want := ripple.TopKBrute(ts, f, 5)
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatal("chord top-k mismatch")
		}
	}

	ts3 := ripple.Uniform(800, 3, 5)
	cnet := ripple.BuildCAN(24, ripple.CANOptions{Dims: 3, Seed: 6})
	ripple.Load(cnet, ts3)
	f3 := ripple.UniformLinear(3)
	got3, _ := ripple.TopK(cnet.Peers()[0], f3, 5, ripple.Slow)
	want3 := ripple.TopKBrute(ts3, f3, 5)
	for i := range want3 {
		if got3[i].ID != want3[i].ID {
			t.Fatal("CAN top-k mismatch")
		}
	}
}

func TestFacadeLatencyFormulas(t *testing.T) {
	if ripple.FastWorstLatency(10, 0) != 10 {
		t.Fatal("L_f wrong")
	}
	if ripple.SlowWorstLatency(10, 0) != 1023 {
		t.Fatal("L_s wrong")
	}
	if ripple.RippleWorstLatency(10, 0, 1) != 55 {
		t.Fatal("L_r wrong")
	}
}

func TestFacadeTradeoffStory(t *testing.T) {
	// The paper's headline: r interpolates latency vs congestion. Averaged
	// over initiators, fast must be the latency extreme and slow the
	// congestion extreme.
	ts := ripple.NBA(0, 7)
	net := ripple.BuildMIDAS(512, ripple.MIDASOptions{Dims: 6, Seed: 7})
	ripple.Load(net, ts)
	f := ripple.UniformLinear(6)
	rng := rand.New(rand.NewSource(8))
	var fastLat, slowLat, fastCong, slowCong float64
	const q = 12
	for i := 0; i < q; i++ {
		w := net.RandomPeer(rng)
		_, sf := ripple.TopK(w, f, 10, ripple.Fast)
		_, ss := ripple.TopK(w, f, 10, ripple.Slow)
		fastLat += float64(sf.Latency)
		slowLat += float64(ss.Latency)
		fastCong += sf.Congestion()
		slowCong += ss.Congestion()
	}
	if fastLat >= slowLat {
		t.Fatalf("fast latency %v !< slow %v", fastLat/q, slowLat/q)
	}
	if slowCong >= fastCong {
		t.Fatalf("slow congestion %v !< fast %v", slowCong/q, fastCong/q)
	}
}

func TestFacadeRangeAndKNN(t *testing.T) {
	ts := ripple.Uniform(2000, 3, 11)
	net := ripple.BuildMIDAS(64, ripple.MIDASOptions{Dims: 3, Seed: 12})
	ripple.Load(net, ts)

	// Range query (ball) vs brute force.
	area := ripple.RangeBall{Center: ripple.Point{0.5, 0.5, 0.5}, Radius: 0.2, Metric: ripple.L2}
	got, _ := ripple.Range(net.Peers()[0], area)
	count := 0
	for _, tp := range ts {
		if ripple.L2.Dist(tp.Vec, area.Center) <= area.Radius {
			count++
		}
	}
	if len(got) != count {
		t.Fatalf("range: %d results, want %d", len(got), count)
	}

	// kNN as a top-k rank query vs brute force.
	center := ripple.Point{0.3, 0.7, 0.3}
	knn, _ := ripple.KNN(net.Peers()[5], center, 7, ripple.L2, 1)
	want := ripple.TopKBrute(ts, ripple.Nearest{Center: center, Metric: ripple.L2}, 7)
	for i := range want {
		if knn[i].ID != want[i].ID {
			t.Fatalf("knn rank %d: got %d want %d", i, knn[i].ID, want[i].ID)
		}
	}
}

func TestFacadeAsyncCluster(t *testing.T) {
	ts := ripple.NBA(2000, 13)
	net := ripple.BuildMIDAS(48, ripple.MIDASOptions{Dims: 6, Seed: 14})
	ripple.Load(net, ts)
	proc := &ripple.TopKProcessor{F: ripple.UniformLinear(6), K: 5}
	cluster := ripple.NewCluster(net, proc)
	defer cluster.Close()
	res := cluster.Run(net.Peers()[0].ID(), ripple.Fast)
	want := ripple.TopKBrute(ts, proc.F, 5)
	gotTop := ripple.TopKBrute(res.Answers, proc.F, 5)
	for i := range want {
		if gotTop[i].ID != want[i].ID {
			t.Fatalf("async facade rank %d mismatch", i)
		}
	}
}

func TestFacadeCSV(t *testing.T) {
	ts := ripple.Uniform(50, 2, 15)
	var buf bytes.Buffer
	if err := ripple.WriteCSV(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ripple.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("csv round trip size %d", len(got))
	}
	raw := []ripple.Tuple{{ID: 1, Vec: ripple.Point{100, 3}}, {ID: 2, Vec: ripple.Point{50, 9}}}
	ripple.NormalizeTuples(raw, []bool{false, true})
	if raw[1].Vec[0] != 0 {
		t.Fatal("normalize failed")
	}
}

func TestFacadeConstrainedSkyline(t *testing.T) {
	ts := ripple.Uniform(3000, 2, 31)
	net := ripple.BuildMIDASWithData(64, ripple.MIDASOptions{Dims: 2, Seed: 32}, ts)
	box := ripple.Rect{Lo: ripple.Point{0.3, 0.3}, Hi: ripple.Point{0.7, 0.7}}
	want := ripple.ConstrainedSkylineBrute(ts, box)
	got, stats := ripple.ConstrainedSkyline(net.Peers()[0], box, ripple.Fast)
	if len(got) != len(want) {
		t.Fatalf("constrained skyline %d vs %d", len(got), len(want))
	}
	if stats.QueryMsgs >= 64 {
		t.Fatal("constrained query should not touch every peer")
	}
}
