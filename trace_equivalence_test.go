// Cross-runtime trace equivalence: the structural engine, the actor cluster
// and a real TCP deployment must reconstruct structurally identical hop trees
// for the same overlay, query and ripple parameter — same parent/child span
// relation, same restriction regions, same mode phases, and (under a shared
// fault seed) the same lost subtrees. Span IDs are deterministic hashes of
// the traversal path, so the comparison is exact, not just shape-isomorphic.
package ripple_test

import (
	"testing"
	"time"

	"ripple/internal/async"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/overlay"
	"ripple/internal/topk"
	"ripple/internal/trace"
)

// traceOverlay builds the shared fixture: a 24-peer MIDAS overlay with
// uniform data and a pruning top-k processor, so the hop tree is a proper
// subtree of the overlay (pruning must agree across runtimes too).
func traceOverlay() (*midas.Network, *topk.Processor, int) {
	n := midas.Build(24, midas.Options{Dims: 3, Seed: 5})
	overlay.Load(n, dataset.Uniform(600, 3, 5))
	return n, &topk.Processor{F: topk.UniformLinear(3), K: 5}, 3
}

// tcpTrace runs the traced query over a real loopback deployment.
func tcpTrace(t *testing.T, n *midas.Network, initID string, k, r int, inj *faults.Injector) *trace.Tree {
	t.Helper()
	opts := netpeer.Options{Faults: inj, Logf: func(string, ...interface{}) {}}
	if inj.Enabled() {
		// The in-process engines have no retry loop: disable recovery so the
		// TCP tree loses exactly the subtrees the engines lose.
		opts.Retry = netpeer.RetryPolicy{MaxRetries: 0, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond}
	}
	servers, addrs, err := netpeer.DeployOpts(n, opts, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	params, err := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(3), k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := netpeer.QueryTraced(addrs[initID], "topk", params, 3, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

// spanEdges flattens a tree into its exact (id, parent, peer) relation.
func spanEdges(tr *trace.Tree) map[uint64]string {
	edges := make(map[uint64]string)
	tr.Walk(func(n *trace.Node) {
		edges[n.ID] = n.Peer
	})
	return edges
}

func TestTraceEquivalenceAcrossRuntimes(t *testing.T) {
	n, proc, _ := traceOverlay()
	init := n.Peers()[7]
	cluster := async.NewCluster(n, proc)
	defer cluster.Close()

	for _, r := range []int{0, 2, 1 << 20} {
		engine := core.RunOpts(init, proc, r, core.Options{Trace: true})
		if engine.Trace == nil || engine.Trace.Root == nil {
			t.Fatalf("r=%d: engine produced no trace", r)
		}
		actor := cluster.RunTraced(init.ID(), r)
		tcp := tcpTrace(t, n, init.ID(), proc.K, r, nil)

		want := engine.Trace.Canonical()
		if got := actor.Trace.Canonical(); got != want {
			t.Fatalf("r=%d: actor tree differs from engine:\nengine: %s\nactor:  %s", r, want, got)
		}
		if got := tcp.Canonical(); got != want {
			t.Fatalf("r=%d: tcp tree differs from engine:\nengine: %s\ntcp:    %s", r, want, got)
		}
		// Span identities (not just shapes) must match: IDs are path hashes.
		we := spanEdges(engine.Trace)
		for name, tr := range map[string]*trace.Tree{"actor": actor.Trace, "tcp": tcp} {
			ge := spanEdges(tr)
			if len(ge) != len(we) {
				t.Fatalf("r=%d: %s has %d spans, engine %d", r, name, len(ge), len(we))
			}
			for id, peer := range we {
				if ge[id] != peer {
					t.Fatalf("r=%d: %s span %x on peer %q, engine has %q", r, name, id, ge[id], peer)
				}
			}
		}
		// A traced run must not change the answer or the cost accounting.
		plain := core.Run(init, proc, r)
		if engine.Stats.Latency != plain.Stats.Latency || engine.Stats.QueryMsgs != plain.Stats.QueryMsgs {
			t.Fatalf("r=%d: tracing changed the engine's costs", r)
		}
	}
}

// clientTrace runs the traced query over a loopback deployment through a
// warm netpeer.Client. sequential disables multiplexing fleet-wide (servers
// ack hellos with version 0 and call each other over the legacy pooled
// path), so the two settings exercise entirely different transports.
func clientTrace(t *testing.T, n *midas.Network, initID string, k, r int, sequential bool) *trace.Tree {
	t.Helper()
	opts := netpeer.Options{Logf: func(string, ...interface{}) {}, DisableMux: sequential}
	servers, addrs, err := netpeer.DeployOpts(n, opts, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	params, err := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(3), k)
	if err != nil {
		t.Fatal(err)
	}
	var c *netpeer.Client
	if sequential {
		c = netpeer.NewSequentialClient(addrs[initID], 0)
	} else {
		c = netpeer.NewClient(addrs[initID], 0)
	}
	defer c.Close()
	res, err := c.QueryTraced("topk", params, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

// TestTraceEquivalenceUnderMux: multiplexing changes how calls share
// connections, never what the protocol does — the hop tree a muxed fleet
// reconstructs must be canonically identical, span for span, to the
// structural engine's and to a fleet pinned to the sequential transport.
func TestTraceEquivalenceUnderMux(t *testing.T) {
	n, proc, _ := traceOverlay()
	init := n.Peers()[7]

	for _, r := range []int{0, 2, 1 << 20} {
		engine := core.RunOpts(init, proc, r, core.Options{Trace: true})
		if engine.Trace == nil || engine.Trace.Root == nil {
			t.Fatalf("r=%d: engine produced no trace", r)
		}
		want := engine.Trace.Canonical()
		muxed := clientTrace(t, n, init.ID(), proc.K, r, false)
		seq := clientTrace(t, n, init.ID(), proc.K, r, true)
		if got := muxed.Canonical(); got != want {
			t.Fatalf("r=%d: muxed tree differs from engine:\nengine: %s\nmux:    %s", r, want, got)
		}
		if got := seq.Canonical(); got != want {
			t.Fatalf("r=%d: sequential tree differs from engine:\nengine: %s\nseq:    %s", r, want, got)
		}
		we := spanEdges(engine.Trace)
		for name, tr := range map[string]*trace.Tree{"mux": muxed, "seq": seq} {
			ge := spanEdges(tr)
			if len(ge) != len(we) {
				t.Fatalf("r=%d: %s has %d spans, engine %d", r, name, len(ge), len(we))
			}
			for id, peer := range we {
				if ge[id] != peer {
					t.Fatalf("r=%d: %s span %x on peer %q, engine has %q", r, name, id, ge[id], peer)
				}
			}
		}
	}
}

func TestTraceEquivalenceUnderFaults(t *testing.T) {
	n, proc, _ := traceOverlay()
	init := n.Peers()[7]
	inj := faults.New(faults.Config{Seed: 3, DropRate: 0.25})
	cluster := async.NewClusterInjected(n, proc, inj)
	defer cluster.Close()

	for _, r := range []int{0, 1 << 20} {
		engine := core.RunOpts(init, proc, r, core.Options{Trace: true, Faults: inj})
		actor := cluster.RunTraced(init.ID(), r)
		tcp := tcpTrace(t, n, init.ID(), proc.K, r, inj)

		lost := 0
		engine.Trace.Walk(func(nd *trace.Node) {
			if trace.Lost(nd.Outcome) {
				lost++
			}
		})
		if lost == 0 {
			t.Fatalf("r=%d: fault seed produced no losses; test is vacuous", r)
		}
		want := engine.Trace.Canonical()
		if got := actor.Trace.Canonical(); got != want {
			t.Fatalf("r=%d: actor tree differs under faults:\nengine: %s\nactor:  %s", r, want, got)
		}
		if got := tcp.Canonical(); got != want {
			t.Fatalf("r=%d: tcp tree differs under faults:\nengine: %s\ntcp:    %s", r, want, got)
		}
		// The lost subtrees bound the partial answer on every runtime alike.
		if !engine.Partial() || !actor.Partial() {
			t.Fatalf("r=%d: losses recorded but result not marked partial", r)
		}
	}
}
