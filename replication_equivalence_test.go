// Cross-runtime replication equivalence. Zone replication must be invisible
// when nothing fails: a replicated run returns byte-identical answers, costs
// and hop trees to an unreplicated one on every runtime. And when links do
// fail, all three runtimes must recover the same subtrees the same way —
// identical recovered spans, identical residual failed regions — because
// replica placement, failover order and span naming are all deterministic.
package ripple_test

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"ripple/internal/async"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/overlay"
	"ripple/internal/topk"
	"ripple/internal/trace"
)

// tcpReplicated runs the traced query over a loopback deployment with the
// given zone replication factor. Under faults the per-link retry loop is
// disabled so the TCP runtime loses (and recovers) exactly the traversals the
// in-process engines do.
func tcpReplicated(t *testing.T, n *midas.Network, initID string, k, r, factor int, inj *faults.Injector) *netpeer.QueryResult {
	t.Helper()
	opts := netpeer.Options{Faults: inj, Logf: func(string, ...interface{}) {}, Replication: factor}
	if inj.Enabled() {
		opts.Retry = netpeer.RetryPolicy{MaxRetries: 0, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond}
	}
	servers, addrs, err := netpeer.DeployOpts(n, opts, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	params, err := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(3), k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := netpeer.QueryTraced(addrs[initID], "topk", params, 3, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// regionStrings renders a failed-region list for comparison across runtimes
// (gob round-trips make DeepEqual on regions fragile; rendering is exact).
func regionStrings(rs []overlay.Region) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.String()
	}
	return out
}

// sortedAnswerIDs projects an answer set onto its sorted tuple IDs: the actor
// runtime emits answers in scheduling order, so sets — not sequences — are
// what must agree.
func sortedAnswerIDs(ts []dataset.Tuple) []uint64 {
	ids := make([]uint64, len(ts))
	for i, t := range ts {
		ids[i] = t.ID
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func countOutcome(tr *trace.Tree, outcome string) int {
	n := 0
	tr.Walk(func(nd *trace.Node) {
		if nd.Outcome == outcome {
			n++
		}
	})
	return n
}

// TestReplicationZeroFaultIdentity: with no faults injected, replication must
// change nothing — same answers, same costs, same canonical hop tree as the
// unreplicated run, on each of the three runtimes, for R = 2 and 3.
func TestReplicationZeroFaultIdentity(t *testing.T) {
	n, proc, _ := traceOverlay()
	init := n.Peers()[7]
	baseCluster := async.NewCluster(n, proc)
	defer baseCluster.Close()

	for _, factor := range []int{2, 3} {
		rm := overlay.BuildReplicas(n, factor)
		if err := overlay.CheckReplication(n, rm); err != nil {
			t.Fatalf("factor %d: %v", factor, err)
		}
		repCluster := async.NewClusterOpts(n, proc, async.ClusterOptions{Replicas: rm})

		for _, r := range []int{0, 2, 1 << 20} {
			engBase := core.RunOpts(init, proc, r, core.Options{Trace: true})
			engRep := core.RunOpts(init, proc, r, core.Options{Trace: true, Replicas: rm})
			if !reflect.DeepEqual(engRep.Answers, engBase.Answers) {
				t.Fatalf("factor %d r=%d: engine answers changed under replication", factor, r)
			}
			if engRep.Stats.String() != engBase.Stats.String() || engRep.Stats.Recovered != 0 || engRep.Stats.Failovers != 0 {
				t.Fatalf("factor %d r=%d: engine costs changed under replication:\nbase: %s\nrep:  %s",
					factor, r, engBase.Stats.String(), engRep.Stats.String())
			}
			want := engBase.Trace.Canonical()
			if got := engRep.Trace.Canonical(); got != want {
				t.Fatalf("factor %d r=%d: engine hop tree changed under replication", factor, r)
			}

			actBase := baseCluster.RunTraced(init.ID(), r)
			actRep := repCluster.RunTraced(init.ID(), r)
			if !reflect.DeepEqual(sortedAnswerIDs(actRep.Answers), sortedAnswerIDs(actBase.Answers)) {
				t.Fatalf("factor %d r=%d: actor answers changed under replication", factor, r)
			}
			if got := actRep.Trace.Canonical(); got != want {
				t.Fatalf("factor %d r=%d: actor hop tree changed under replication", factor, r)
			}

			tcpBase := tcpReplicated(t, n, init.ID(), proc.K, r, 1, nil)
			tcpRep := tcpReplicated(t, n, init.ID(), proc.K, r, factor, nil)
			if !reflect.DeepEqual(tcpRep.Answers, tcpBase.Answers) {
				t.Fatalf("factor %d r=%d: tcp answers changed under replication", factor, r)
			}
			if tcpRep.Partial() || tcpRep.Stats.Recovered != 0 || tcpRep.Stats.Failovers != 0 {
				t.Fatalf("factor %d r=%d: zero-fault tcp run reports recovery activity: %+v", factor, r, tcpRep.Stats)
			}
			if got := tcpRep.Trace.Canonical(); got != want {
				t.Fatalf("factor %d r=%d: tcp hop tree changed under replication", factor, r)
			}
		}
		repCluster.Close()
	}
}

// TestRecoveredSubtreeTraceEquivalence: under a shared fault seed and R = 2,
// the three runtimes must fail over identically — the same subtrees recovered
// via the same replicas (canonical trees carry the |recovered:<via> marks),
// the same recovery accounting, and the same residual failed regions.
func TestRecoveredSubtreeTraceEquivalence(t *testing.T) {
	n, proc, _ := traceOverlay()
	init := n.Peers()[7]
	inj := faults.New(faults.Config{Seed: 3, DropRate: 0.25})
	rm := overlay.BuildReplicas(n, 2)
	cluster := async.NewClusterOpts(n, proc, async.ClusterOptions{Faults: inj, Replicas: rm})
	defer cluster.Close()

	for _, r := range []int{0, 1 << 20} {
		engine := core.RunOpts(init, proc, r, core.Options{Trace: true, Faults: inj, Replicas: rm})
		actor := cluster.RunTraced(init.ID(), r)
		tcp := tcpReplicated(t, n, init.ID(), proc.K, r, 2, inj)

		if countOutcome(engine.Trace, trace.OutcomeRecovered) == 0 {
			t.Fatalf("r=%d: fault seed produced no recovered subtrees; test is vacuous", r)
		}
		if engine.Stats.Recovered == 0 || engine.Stats.Failovers < engine.Stats.Recovered {
			t.Fatalf("r=%d: engine recovery accounting inconsistent: %+v", r, engine.Stats)
		}
		want := engine.Trace.Canonical()
		if got := actor.Trace.Canonical(); got != want {
			t.Fatalf("r=%d: actor tree differs under recovery:\nengine: %s\nactor:  %s", r, want, got)
		}
		if got := tcp.Trace.Canonical(); got != want {
			t.Fatalf("r=%d: tcp tree differs under recovery:\nengine: %s\ntcp:    %s", r, want, got)
		}
		for name, st := range map[string]struct{ recovered, failovers, failures int }{
			"actor": {actor.Stats.Recovered, actor.Stats.Failovers, actor.Stats.RPCFailures},
			"tcp":   {tcp.Stats.Recovered, tcp.Stats.Failovers, tcp.Stats.RPCFailures},
		} {
			if st.recovered != engine.Stats.Recovered || st.failovers != engine.Stats.Failovers || st.failures != engine.Stats.RPCFailures {
				t.Fatalf("r=%d: %s recovery stats (rec=%d fo=%d fail=%d) differ from engine (rec=%d fo=%d fail=%d)",
					r, name, st.recovered, st.failovers, st.failures,
					engine.Stats.Recovered, engine.Stats.Failovers, engine.Stats.RPCFailures)
			}
		}
		// Residual losses — regions no replica could serve — must agree too.
		for name, regs := range map[string][]overlay.Region{
			"actor": actor.FailedRegions, "tcp": tcp.FailedRegions,
		} {
			if !reflect.DeepEqual(regionStrings(regs), regionStrings(engine.FailedRegions)) {
				t.Fatalf("r=%d: %s failed regions %v differ from engine %v",
					r, name, regionStrings(regs), regionStrings(engine.FailedRegions))
			}
		}
	}
}

// TestFailedRegionsCanonical: every runtime reports FailedRegions in the same
// canonical form — sorted by rendering, exact duplicates collapsed — so
// results are comparable regardless of the order losses were recorded in.
func TestFailedRegionsCanonical(t *testing.T) {
	n, proc, _ := traceOverlay()
	init := n.Peers()[7]
	inj := faults.New(faults.Config{Seed: 3, DropRate: 0.25})
	cluster := async.NewClusterInjected(n, proc, inj)
	defer cluster.Close()

	for _, r := range []int{0, 1 << 20} {
		engine := core.RunOpts(init, proc, r, core.Options{Faults: inj})
		actor := cluster.Run(init.ID(), r)
		tcp := tcpReplicated(t, n, init.ID(), proc.K, r, 1, inj)

		if len(engine.FailedRegions) == 0 {
			t.Fatalf("r=%d: fault seed produced no losses; test is vacuous", r)
		}
		for name, regs := range map[string][]overlay.Region{
			"engine": engine.FailedRegions, "actor": actor.FailedRegions, "tcp": tcp.FailedRegions,
		} {
			keys := regionStrings(regs)
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					t.Fatalf("r=%d: %s failed regions not canonical at %d: %q then %q", r, name, i, keys[i-1], keys[i])
				}
			}
		}
		if !reflect.DeepEqual(regionStrings(actor.FailedRegions), regionStrings(engine.FailedRegions)) ||
			!reflect.DeepEqual(regionStrings(tcp.FailedRegions), regionStrings(engine.FailedRegions)) {
			t.Fatalf("r=%d: runtimes disagree on failed regions:\nengine: %v\nactor:  %v\ntcp:    %v", r,
				regionStrings(engine.FailedRegions), regionStrings(actor.FailedRegions), regionStrings(tcp.FailedRegions))
		}
	}
}
