// Micro-benchmarks of the library's hot paths: overlay construction, point
// location, per-query engine cost at each extreme, and the centralized
// primitives used inside peers.
package ripple_test

import (
	"math/rand"
	"testing"

	"ripple"
	"ripple/internal/skyline"
)

func BenchmarkMIDASBuild1K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := ripple.BuildMIDAS(1024, ripple.MIDASOptions{Dims: 5, Seed: int64(i)})
		if net.Size() != 1024 {
			b.Fatal("bad size")
		}
	}
}

func BenchmarkMIDASLocate(b *testing.B) {
	net := ripple.BuildMIDAS(4096, ripple.MIDASOptions{Dims: 5, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	pts := make([]ripple.Point, 256)
	for i := range pts {
		pts[i] = ripple.Point{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Locate(pts[i%len(pts)])
	}
}

func benchTopKQuery(b *testing.B, r int) {
	b.Helper()
	ts := ripple.NBA(0, 1)
	net := ripple.BuildMIDAS(1024, ripple.MIDASOptions{Dims: 6, Seed: 1})
	ripple.Load(net, ts)
	f := ripple.UniformLinear(6)
	peers := net.Peers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ripple.TopK(peers[i%len(peers)], f, 10, r)
	}
}

func BenchmarkTopKQueryFast(b *testing.B) { benchTopKQuery(b, ripple.Fast) }
func BenchmarkTopKQuerySlow(b *testing.B) { benchTopKQuery(b, ripple.Slow) }

func BenchmarkSkylineQuerySlow(b *testing.B) {
	ts := ripple.NBA(0, 2)
	net := ripple.BuildMIDAS(512, ripple.MIDASOptions{Dims: 6, Seed: 2, PreferBorder: true})
	ripple.Load(net, ts)
	peers := net.Peers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ripple.Skyline(peers[i%len(peers)], ripple.Slow)
	}
}

func BenchmarkSkylineCompute(b *testing.B) {
	ts := ripple.Synth(ripple.SynthConfig{N: 5000, Dims: 4, Centers: 100, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.Compute(ts)
	}
}

func BenchmarkDiversifySingleFast(b *testing.B) {
	ts := ripple.MIRFlickr(10000, 4)
	net := ripple.BuildMIDAS(512, ripple.MIDASOptions{Dims: 5, Seed: 4})
	ripple.Load(net, ts)
	q := ripple.NewDiversifyQuery(ts[9].Vec, 0.5)
	peers := net.Peers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ripple.Diversify(peers[i%len(peers)], q, 5, ripple.Fast, 1)
		if len(res.Set) != 5 {
			b.Fatal("bad result")
		}
	}
}
