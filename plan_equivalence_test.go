// Planner equivalence: an adaptively planned query must be observationally
// identical to the static-r run it selected. For every query family and every
// runtime (structural engine, actor cluster, TCP deployment), running with
// r = RAuto through a planner and re-running with the decision's concrete r
// must return byte-identical answers, identical cost accounting, and
// identical canonical hop trees — the planner may only choose *which* static
// execution happens, never change what one computes. This is the property
// that makes `-plan=auto` safe to flip on in production.
package ripple_test

import (
	"reflect"
	"testing"

	"ripple/internal/async"
	"ripple/internal/core"
	"ripple/internal/netpeer"
	"ripple/internal/plan"
	"ripple/internal/storage"
	"ripple/internal/topk"

	"ripple/internal/diversify"
	"ripple/internal/knn"
	"ripple/internal/skyline"
)

// testPlanner builds a deterministic planner for equivalence runs:
// exploration is disabled so the greedy choice is a pure function of the
// (seeded) cost table and the decision never depends on how many queries ran
// before it.
func testPlanner() *plan.Planner {
	return plan.New(plan.Options{ExploreEvery: -1})
}

func TestPlannerEquivalenceEngine(t *testing.T) {
	n := storageNet(3)
	init := n.Peers()[5]
	for _, tc := range storageCases(t) {
		p := testPlanner()
		planned := core.RunOpts(init, tc.proc, plan.RAuto, core.Options{Trace: true, Planner: p})
		if planned.Plan == nil {
			t.Fatalf("%s: planned run carries no decision", tc.name)
		}
		r := planned.Plan.R
		static := core.RunOpts(init, tc.proc, r, core.Options{Trace: true})
		if !reflect.DeepEqual(planned.Answers, static.Answers) {
			t.Fatalf("%s: planned answers differ from static r=%d", tc.name, r)
		}
		if planned.Stats.String() != static.Stats.String() {
			t.Fatalf("%s: planned cost differs from static r=%d:\nplanned: %s\nstatic:  %s",
				tc.name, r, planned.Stats.String(), static.Stats.String())
		}
		if got, want := planned.Trace.Canonical(), static.Trace.Canonical(); got != want {
			t.Fatalf("%s: planned hop tree differs from static r=%d:\nplanned: %s\nstatic:  %s",
				tc.name, r, got, want)
		}
		// The root span carries the decision annotation — and only there, so
		// the canonical comparison above is not vacuous.
		if planned.Trace == nil || planned.Trace.Root == nil || planned.Trace.Root.Plan == "" {
			t.Fatalf("%s: planned root span missing the decision annotation", tc.name)
		}
	}
}

func TestPlannerEquivalenceActors(t *testing.T) {
	n := storageNet(3)
	init := n.Peers()[5]
	for _, tc := range storageCases(t) {
		p := testPlanner()
		pc := async.NewClusterOpts(n, tc.proc, async.ClusterOptions{Planner: p})
		planned := pc.RunTraced(init.ID(), plan.RAuto)
		pc.Close()
		if planned.Plan == nil {
			t.Fatalf("%s: planned run carries no decision", tc.name)
		}
		r := planned.Plan.R
		sc := async.NewClusterOpts(n, tc.proc, async.ClusterOptions{})
		static := sc.RunTraced(init.ID(), r)
		sc.Close()
		if !reflect.DeepEqual(sortedAnswerIDs(planned.Answers), sortedAnswerIDs(static.Answers)) {
			t.Fatalf("%s: planned actor answers differ from static r=%d", tc.name, r)
		}
		if planned.Stats.String() != static.Stats.String() {
			t.Fatalf("%s: planned actor cost differs from static r=%d:\nplanned: %s\nstatic:  %s",
				tc.name, r, planned.Stats.String(), static.Stats.String())
		}
		if got, want := planned.Trace.Canonical(), static.Trace.Canonical(); got != want {
			t.Fatalf("%s: planned actor hop tree differs from static r=%d:\nplanned: %s\nstatic:  %s",
				tc.name, r, got, want)
		}
	}
}

func TestPlannerEquivalenceTCP(t *testing.T) {
	n := storageNet(3)
	init := n.Peers()[5]
	deploy := func(p *plan.Planner) ([]*netpeer.Server, map[string]string) {
		t.Helper()
		opts := netpeer.Options{Logf: func(string, ...interface{}) {}, Storage: storage.KindRTree, Planner: p}
		servers, addrs, err := netpeer.DeployOpts(n, opts,
			topk.WireCodec{}, skyline.WireCodec{}, diversify.WireCodec{}, knn.WireCodec{})
		if err != nil {
			t.Fatal(err)
		}
		return servers, addrs
	}
	for _, tc := range storageCases(t) {
		servers, addrs := deploy(testPlanner())
		planned, err := netpeer.QueryTraced(addrs[init.ID()], tc.name, tc.params, 3, plan.RAuto, 0)
		for _, s := range servers {
			s.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
		if planned.Plan == "" {
			t.Fatalf("%s: planned reply carries no decision", tc.name)
		}
		r := planned.PlanR

		servers, addrs = deploy(nil)
		static, err := netpeer.QueryTraced(addrs[init.ID()], tc.name, tc.params, 3, r, 0)
		for _, s := range servers {
			s.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(planned.Answers, static.Answers) {
			t.Fatalf("%s: planned tcp answers differ from static r=%d", tc.name, r)
		}
		if planned.Stats.String() != static.Stats.String() {
			t.Fatalf("%s: planned tcp cost differs from static r=%d:\nplanned: %s\nstatic:  %s",
				tc.name, r, planned.Stats.String(), static.Stats.String())
		}
		if got, want := planned.Trace.Canonical(), static.Trace.Canonical(); got != want {
			t.Fatalf("%s: planned tcp hop tree differs from static r=%d:\nplanned: %s\nstatic:  %s",
				tc.name, r, got, want)
		}
	}
}

// TestPlannerUnplannedAutoDegradesToFast pins the fallback: r = RAuto against
// a runtime with no planner configured must behave exactly like r = 0, in all
// three runtimes, rather than panic or leak the sentinel into hop counts.
func TestPlannerUnplannedAutoDegradesToFast(t *testing.T) {
	n := storageNet(3)
	init := n.Peers()[5]
	tc := storageCases(t)[0] // topk

	want := core.RunOpts(init, tc.proc, 0, core.Options{Trace: true})

	eng := core.RunOpts(init, tc.proc, plan.RAuto, core.Options{Trace: true})
	if !reflect.DeepEqual(eng.Answers, want.Answers) || eng.Trace.Canonical() != want.Trace.Canonical() {
		t.Fatal("engine: unplanned r=auto differs from r=0")
	}
	if eng.Plan != nil {
		t.Fatal("engine: unplanned run must not carry a decision")
	}

	c := async.NewCluster(n, tc.proc)
	act := c.RunTraced(init.ID(), plan.RAuto)
	c.Close()
	if !reflect.DeepEqual(sortedAnswerIDs(act.Answers), sortedAnswerIDs(want.Answers)) || act.Trace.Canonical() != want.Trace.Canonical() {
		t.Fatal("actors: unplanned r=auto differs from r=0")
	}

	tcp := tcpStorage(t, n, init.ID(), tc.name, tc.params, plan.RAuto, storage.KindRTree, 1, nil)
	if !reflect.DeepEqual(sortedAnswerIDs(tcp.Answers), sortedAnswerIDs(want.Answers)) || tcp.Trace.Canonical() != want.Trace.Canonical() {
		t.Fatal("tcp: unplanned r=auto differs from r=0")
	}
	if tcp.Plan != "" {
		t.Fatal("tcp: unplanned reply must not carry a decision")
	}
}
