// Package skyline instantiates RIPPLE for skyline queries (§5 of the paper,
// Algorithms 10-15). The query is empty; the RIPPLE state is a partial
// skyline (a set of mutually non-dominated tuples). A link is pruned when a
// state tuple dominates its entire region, and links are prioritised by the
// minimum distance of their region to the origin — the region closest to the
// domain's best corner is explored first.
//
// Lower attribute values are better throughout.
package skyline

import (
	"sort"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/plan"
	"ripple/internal/sim"
	"ripple/internal/storage"
)

// Compute returns the skyline of ts: every tuple not dominated by another.
// Deterministic: ties and duplicates resolve by ascending tuple ID. The
// sort-filter-scan implementation is O(n log n + n·s) with s the skyline
// size, adequate for per-peer local sets and initiator-side merges.
func Compute(ts []dataset.Tuple) []dataset.Tuple {
	if len(ts) == 0 {
		return nil
	}
	sorted := make([]dataset.Tuple, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool {
		si, sj := coordSum(sorted[i].Vec), coordSum(sorted[j].Vec)
		if si != sj {
			return si < sj
		}
		return sorted[i].ID < sorted[j].ID
	})
	var sky []dataset.Tuple
	seen := make(map[uint64]bool)
	for _, t := range sorted {
		if seen[t.ID] {
			continue
		}
		dominated := false
		for _, s := range sky {
			// A tuple later in coordinate-sum order can never dominate an
			// earlier one, so a single forward pass suffices.
			if s.Vec.Dominates(t.Vec) || s.Vec.Equal(t.Vec) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, t)
			seen[t.ID] = true
		}
	}
	return sky
}

// Merge folds additional tuples into an existing skyline (whose members are
// already mutually non-dominated) and returns the skyline of the union. It
// costs O(|add|·|sky|) instead of recomputing from scratch, which is what
// keeps repeated state merges affordable when skylines are large.
func Merge(sky, add []dataset.Tuple) []dataset.Tuple {
	if len(add) == 0 {
		return sky
	}
	if len(sky) == 0 {
		return Compute(add)
	}
	out := append([]dataset.Tuple(nil), sky...)
	seen := make(map[uint64]bool, len(sky)+len(add))
	for _, s := range sky {
		seen[s.ID] = true
	}
	for _, t := range Compute(add) {
		if seen[t.ID] {
			continue
		}
		dominated := false
		for _, s := range out {
			if s.Vec.Dominates(t.Vec) || (s.Vec.Equal(t.Vec) && s.ID < t.ID) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		keep := out[:0]
		for _, s := range out {
			if t.Vec.Dominates(s.Vec) || (t.Vec.Equal(s.Vec) && t.ID < s.ID) {
				delete(seen, s.ID)
				continue
			}
			keep = append(keep, s)
		}
		out = append(keep, t)
		seen[t.ID] = true
	}
	return out
}

func coordSum(p geom.Point) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

// Processor is the RIPPLE plug-in for skyline queries. Its state is a
// partial skyline represented as a tuple slice. A non-nil Constraint
// restricts the query to tuples inside the given box (the constrained
// skyline variant that DSL is originally defined for): only constrained
// tuples participate, and only overlay regions intersecting the constraint
// are searched.
type Processor struct {
	Constraint *geom.Rect
}

var _ core.Processor = (*Processor)(nil)
var _ plan.Hinter = (*Processor)(nil)

// PlanHints implements plan.Hinter: skylines have no result-size parameter;
// the planner's dimensionality bucket captures their growth instead.
func (p *Processor) PlanHints() plan.Hints { return plan.Hints{Family: "skyline"} }

type state []dataset.Tuple

// InitialState implements core.Processor.
func (p *Processor) InitialState() core.State { return state(nil) }

// StateTuples implements core.Processor.
func (p *Processor) StateTuples(s core.State) int { return len(s.(state)) }

// LocalState implements computeLocalState (Algorithm 10): the local skyline,
// restricted to the tuples that survive against the received global state.
// The store computes the local skyline branch-and-bound style — on an R-tree
// zone, subtrees dominated by an accepted tuple are never opened — with
// output byte-identical to Compute over the constrained tuple slice.
func (p *Processor) LocalState(w overlay.Node, global core.State) core.State {
	localSky := storage.Skyline(storage.Of(w), p.Constraint)
	merged := Merge(global.(state), localSky)
	inMerged := idSet(merged)
	var out state
	for _, t := range localSky {
		if inMerged[t.ID] {
			out = append(out, t)
		}
	}
	return out
}

// GlobalState implements computeGlobalState (Algorithm 11).
func (p *Processor) GlobalState(w overlay.Node, global, local core.State) core.State {
	return state(Merge(global.(state), local.(state)))
}

// MergeStates implements updateLocalState (Algorithm 13).
func (p *Processor) MergeStates(w overlay.Node, states []core.State) core.State {
	var acc []dataset.Tuple
	for i, s := range states {
		if i == 0 {
			acc = Compute(s.(state))
			continue
		}
		acc = Merge(acc, s.(state))
	}
	return state(acc)
}

// LinkRelevant implements the content half of isLinkRelevant (Algorithm 14):
// the region is worth visiting unless some state tuple dominates all of it.
func (p *Processor) LinkRelevant(w overlay.Node, region overlay.Region, global core.State) bool {
	for _, b := range region.Boxes {
		if p.Constraint != nil {
			b = b.Intersect(*p.Constraint)
			if b.IsEmpty() {
				continue
			}
		}
		dominated := false
		for _, s := range global.(state) {
			if geom.DominatesRect(s.Vec, b) {
				dominated = true
				break
			}
		}
		if !dominated {
			return true
		}
	}
	return false
}

// LinkPriority implements comp (Algorithm 15): d⁻(region, origin) — with a
// constraint, distance to the constraint's best corner.
func (p *Processor) LinkPriority(w overlay.Node, region overlay.Region) float64 {
	origin := geom.Origin(len(region.Boxes[0].Lo))
	if p.Constraint != nil {
		origin = p.Constraint.Lo
	}
	best := geom.L2.MinDist(origin, region.Boxes[0])
	for _, b := range region.Boxes[1:] {
		if d := geom.L2.MinDist(origin, b); d < best {
			best = d
		}
	}
	return best
}

// LocalAnswer implements computeLocalAnswer (Algorithm 12): the tuples of the
// final local state that are stored at this peer.
func (p *Processor) LocalAnswer(w overlay.Node, local core.State) []dataset.Tuple {
	localIDs := idSet(w.Tuples())
	var out []dataset.Tuple
	for _, t := range local.(state) {
		if localIDs[t.ID] {
			out = append(out, t)
		}
	}
	return out
}

func idSet(ts []dataset.Tuple) map[uint64]bool {
	m := make(map[uint64]bool, len(ts))
	for _, t := range ts {
		m[t.ID] = true
	}
	return m
}

// Run processes a skyline query from the given initiator with ripple
// parameter r. The initiator merges the collected local answers into the
// exact global skyline.
func Run(initiator overlay.Node, r int) ([]dataset.Tuple, sim.Stats) {
	res := core.Run(initiator, &Processor{}, r)
	return Compute(res.Answers), res.Stats
}

// RunConstrained processes a constrained skyline query: the skyline of the
// tuples inside the given box.
func RunConstrained(initiator overlay.Node, constraint geom.Rect, r int) ([]dataset.Tuple, sim.Stats) {
	res := core.Run(initiator, &Processor{Constraint: &constraint}, r)
	return Compute(res.Answers), res.Stats
}

// ComputeConstrained is the centralized constrained-skyline oracle.
func ComputeConstrained(ts []dataset.Tuple, constraint geom.Rect) []dataset.Tuple {
	var in []dataset.Tuple
	for _, t := range ts {
		if constraint.Contains(t.Vec) {
			in = append(in, t)
		}
	}
	return Compute(in)
}
