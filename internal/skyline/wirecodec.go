package skyline

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// WireCodec serialises skyline queries and states for networked peers; it
// implements the wire.Codec interface. A full-space skyline query carries no
// parameters; a constrained query carries its constraint box. States are
// partial skylines (tuple sets).
type WireCodec struct{}

// Name implements wire.Codec.
func (WireCodec) Name() string { return "skyline" }

// EncodeParams returns the query descriptor: nil for a full-space skyline,
// the encoded box for a constrained one.
func (WireCodec) EncodeParams(constraint *geom.Rect) ([]byte, error) {
	if constraint == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(*constraint); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// NewProcessor implements wire.Codec.
func (WireCodec) NewProcessor(params []byte) (core.Processor, error) {
	if len(params) == 0 {
		return &Processor{}, nil
	}
	var box geom.Rect
	if err := gob.NewDecoder(bytes.NewReader(params)).Decode(&box); err != nil {
		return nil, fmt.Errorf("skyline: decode constraint: %w", err)
	}
	return &Processor{Constraint: &box}, nil
}

// EncodeState implements wire.Codec.
func (WireCodec) EncodeState(s core.State) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode([]dataset.Tuple(s.(state))); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeState implements wire.Codec. Empty input yields the neutral state.
func (WireCodec) DecodeState(b []byte) (core.State, error) {
	if len(b) == 0 {
		return state(nil), nil
	}
	var ts []dataset.Tuple
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ts); err != nil {
		return nil, fmt.Errorf("skyline: decode state: %w", err)
	}
	return state(ts), nil
}
