package skyline

import (
	"fmt"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/wire"
)

// WireCodec serialises skyline queries and states for networked peers; it
// implements the wire.Codec interface. A full-space skyline query carries no
// parameters; a constrained query carries its constraint box. States are
// partial skylines (tuple sets).
type WireCodec struct{}

var (
	boxPool   = wire.NewPayloadPool(&geom.Rect{})
	tuplePool = wire.NewPayloadPool(&[]dataset.Tuple{})
)

// Name implements wire.Codec.
func (WireCodec) Name() string { return "skyline" }

// EncodeParams returns the query descriptor: nil for a full-space skyline,
// the encoded box for a constrained one.
func (WireCodec) EncodeParams(constraint *geom.Rect) ([]byte, error) {
	if constraint == nil {
		return nil, nil
	}
	return boxPool.Encode(constraint)
}

// NewProcessor implements wire.Codec.
func (WireCodec) NewProcessor(params []byte) (core.Processor, error) {
	if len(params) == 0 {
		return &Processor{}, nil
	}
	var box geom.Rect
	if err := boxPool.Decode(params, &box); err != nil {
		return nil, fmt.Errorf("skyline: decode constraint: %w", err)
	}
	return &Processor{Constraint: &box}, nil
}

// EncodeState implements wire.Codec.
func (WireCodec) EncodeState(s core.State) ([]byte, error) {
	ts := []dataset.Tuple(s.(state))
	return tuplePool.Encode(&ts)
}

// DecodeState implements wire.Codec. Empty input yields the neutral state.
func (WireCodec) DecodeState(b []byte) (core.State, error) {
	if len(b) == 0 {
		return state(nil), nil
	}
	var ts []dataset.Tuple
	if err := tuplePool.Decode(b, &ts); err != nil {
		return nil, fmt.Errorf("skyline: decode state: %w", err)
	}
	return state(ts), nil
}
