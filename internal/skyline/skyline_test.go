package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/midas"
	"ripple/internal/overlay"
)

// bruteSkyline is an O(n^2) oracle independent of Compute's implementation.
func bruteSkyline(ts []dataset.Tuple) map[uint64]bool {
	out := make(map[uint64]bool)
	for i, t := range ts {
		dominated := false
		for j, s := range ts {
			if i == j {
				continue
			}
			if s.Vec.Dominates(t.Vec) || (s.Vec.Equal(t.Vec) && s.ID < t.ID) {
				dominated = true
				break
			}
		}
		if !dominated {
			out[t.ID] = true
		}
	}
	return out
}

func TestComputeMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		ts := dataset.Uniform(400, 3, seed)
		got := Compute(ts)
		want := bruteSkyline(ts)
		if len(got) != len(want) {
			t.Fatalf("seed %d: skyline size %d, want %d", seed, len(got), len(want))
		}
		for _, s := range got {
			if !want[s.ID] {
				t.Fatalf("seed %d: tuple %v wrongly in skyline", seed, s)
			}
		}
	}
}

func TestComputeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		d := 2 + rng.Intn(3)
		ts := dataset.Uniform(n, d, seed)
		sky := Compute(ts)
		inSky := make(map[uint64]bool)
		// No skyline member dominates another.
		for i, a := range sky {
			inSky[a.ID] = true
			for j, b := range sky {
				if i != j && a.Vec.Dominates(b.Vec) {
					return false
				}
			}
		}
		// Every excluded tuple is dominated by (or coordinate-equal to) a
		// skyline member.
		for _, t := range ts {
			if inSky[t.ID] {
				continue
			}
			covered := false
			for _, s := range sky {
				if s.Vec.Dominates(t.Vec) || s.Vec.Equal(t.Vec) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeEdgeCases(t *testing.T) {
	if got := Compute(nil); got != nil {
		t.Fatalf("empty skyline = %v", got)
	}
	one := []dataset.Tuple{{ID: 1, Vec: geom.Point{0.5, 0.5}}}
	if got := Compute(one); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("singleton skyline = %v", got)
	}
	// Duplicates keep the lowest ID.
	dup := []dataset.Tuple{
		{ID: 9, Vec: geom.Point{0.3, 0.3}},
		{ID: 2, Vec: geom.Point{0.3, 0.3}},
	}
	if got := Compute(dup); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("duplicate handling = %v", got)
	}
}

func buildLoaded(t *testing.T, size, dims int, ts []dataset.Tuple, opts midas.Options) *midas.Network {
	t.Helper()
	opts.Dims = dims
	n := midas.Build(size, opts)
	overlay.Load(n, ts)
	return n
}

func TestDistributedSkylineCorrectAcrossModes(t *testing.T) {
	ts := dataset.NBA(2000, 3)
	want := Compute(ts)
	n := buildLoaded(t, 64, 6, ts, midas.Options{Seed: 5})
	rng := rand.New(rand.NewSource(8))
	for _, r := range []int{0, 1, 3, 1 << 20} {
		for q := 0; q < 4; q++ {
			got, stats := Run(n.RandomPeer(rng), r)
			if !sameIDs(got, want) {
				t.Fatalf("r=%d: skyline mismatch: got %d tuples, want %d", r, len(got), len(want))
			}
			if stats.MaxPerPeer() != 1 {
				t.Fatalf("r=%d: duplicate delivery", r)
			}
		}
	}
}

func TestDistributedSkylineWithBorderOptimisation(t *testing.T) {
	ts := dataset.Synth(dataset.SynthConfig{N: 3000, Dims: 4, Centers: 30, Seed: 2})
	want := Compute(ts)
	plain := buildLoaded(t, 96, 4, ts, midas.Options{Seed: 7})
	optim := buildLoaded(t, 96, 4, ts, midas.Options{Seed: 7, PreferBorder: true})
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 5; q++ {
		i := rng.Intn(96)
		gotPlain, _ := Run(plain.Peers()[i], 0)
		gotOptim, _ := Run(optim.Peers()[i], 0)
		if !sameIDs(gotPlain, want) || !sameIDs(gotOptim, want) {
			t.Fatalf("border optimisation changed the answer")
		}
	}
}

func TestSkylinePrunesPeers(t *testing.T) {
	// On clustered data the skyline search must not touch every peer.
	ts := dataset.Synth(dataset.SynthConfig{N: 4000, Dims: 2, Centers: 15, Seed: 4})
	n := buildLoaded(t, 256, 2, ts, midas.Options{Seed: 11})
	_, stats := Run(n.Peers()[0], 1<<20)
	if stats.QueryMsgs >= 256 {
		t.Fatalf("slow skyline touched %d peers out of 256; pruning ineffective", stats.QueryMsgs)
	}
}

func TestSkylineEmptyNetwork(t *testing.T) {
	n := midas.Build(8, midas.Options{Dims: 2, Seed: 1})
	got, stats := Run(n.Peers()[0], 0)
	if len(got) != 0 {
		t.Fatalf("skyline of empty data = %v", got)
	}
	if stats.QueryMsgs == 0 {
		t.Fatal("initiator must still process the query")
	}
}

func sameIDs(a, b []dataset.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[uint64]bool, len(a))
	for _, t := range a {
		m[t.ID] = true
	}
	for _, t := range b {
		if !m[t.ID] {
			return false
		}
	}
	return true
}

// Merge must agree with recomputing the skyline of the union.
func TestMergeEquivalentToCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		a := dataset.Uniform(1+rng.Intn(200), 3, int64(trial))
		b := dataset.Uniform(1+rng.Intn(200), 3, int64(trial)+1000)
		// Give b distinct IDs.
		for i := range b {
			b[i].ID += 1 << 20
		}
		merged := Merge(Compute(a), b)
		want := Compute(append(append([]dataset.Tuple(nil), a...), b...))
		if !sameIDs(merged, want) {
			t.Fatalf("trial %d: Merge %d tuples, Compute %d", trial, len(merged), len(want))
		}
	}
	if got := Merge(nil, nil); got != nil {
		t.Fatal("empty merge")
	}
}

func TestConstrainedSkyline(t *testing.T) {
	ts := dataset.Uniform(4000, 3, 21)
	n := buildLoaded(t, 128, 3, ts, midas.Options{Seed: 22})
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		lo := geom.Point{0.2 + rng.Float64()*0.3, 0.2 + rng.Float64()*0.3, 0.2 + rng.Float64()*0.3}
		box := geom.Rect{Lo: lo, Hi: geom.Point{lo[0] + 0.35, lo[1] + 0.35, lo[2] + 0.35}}
		want := ComputeConstrained(ts, box)
		for _, r := range []int{0, 1 << 20} {
			got, stats := RunConstrained(n.RandomPeer(rng), box, r)
			if !sameIDs(got, want) {
				t.Fatalf("trial %d r=%d: constrained skyline %d vs %d", trial, r, len(got), len(want))
			}
			// A constrained query must search far less than the full space.
			if stats.QueryMsgs >= 128 {
				t.Fatalf("trial %d r=%d: constrained query touched every peer", trial, r)
			}
		}
	}
}

func TestWireCodecInPackage(t *testing.T) {
	c := WireCodec{}
	if c.Name() != "skyline" {
		t.Fatal("codec name")
	}
	box := geom.Rect{Lo: geom.Point{0.1, 0.1}, Hi: geom.Point{0.6, 0.6}}
	params, err := c.EncodeParams(&box)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := c.NewProcessor(params)
	if err != nil {
		t.Fatal(err)
	}
	if got := proc.(*Processor).Constraint; got == nil || !got.Equal(box) {
		t.Fatalf("constraint lost: %v", got)
	}
	ts := []dataset.Tuple{{ID: 1, Vec: geom.Point{0.2, 0.2}}}
	enc, err := c.EncodeState(state(ts))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.DecodeState(enc)
	if err != nil || len(st.(state)) != 1 || st.(state)[0].ID != 1 {
		t.Fatalf("state round trip: %v %v", st, err)
	}
	if _, err := c.DecodeState([]byte("junk")); err == nil {
		t.Fatal("junk state must error")
	}
	if _, err := c.NewProcessor([]byte("junk")); err == nil {
		t.Fatal("junk params must error")
	}
}
