// Package can implements the CAN overlay (Ratnasamy et al., SIGCOMM 2001):
// the d-dimensional domain is partitioned into rectangular zones, one per
// peer, and two peers are neighbours when their zones abut — they share a
// (d−1)-dimensional face. CAN hosts the paper's DSL skyline competitor and
// the adapted baseline diversification method, and doubles as a second
// RIPPLE substrate for ablation studies.
//
// For RIPPLE, each peer's links are its face neighbours and their regions
// form an exact box partition of the domain minus the zone: the "staircase"
// slabs per dimension/side, refined among the neighbours of each face by
// clamp-preimages (see DESIGN.md §6; this replaces the paper's pyramidal
// frustums with equal-coverage boxes so every bound is exact).
package can

import (
	"fmt"
	"math/rand"
	"sync"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/storage"
)

// Options configures a CAN network.
type Options struct {
	Dims int
	Seed int64
	// Storage selects the engine peers serve their zone share with
	// (default/KindAuto: the flat-scan baseline).
	Storage storage.Kind
}

// Network is a simulated CAN overlay. Zones are tracked as the leaves of the
// binary split history, which makes point location O(log n) and keeps
// departures simple (buddy merges), while neighbour sets are derived from the
// tree on demand.
type Network struct {
	opts  Options
	root  *node
	rng   *rand.Rand
	count int
	seq   int // monotone peer id counter, never reused across churn
}

type node struct {
	parent      *node
	left, right *node
	rect        geom.Rect
	splitDim    int
	splitVal    float64
	peer        *Peer
	size        int
}

func (n *node) isLeaf() bool { return n.left == nil }

// Peer is a CAN overlay participant.
type Peer struct {
	net    *Network
	leaf   *node
	seq    int // stable identifier
	tuples []dataset.Tuple

	storeMu sync.Mutex
	store   storage.Store // lazy; dropped whenever the share changes
}

// New creates a network of one peer owning the whole domain.
func New(opts Options) *Network {
	if opts.Dims <= 0 {
		panic("can: non-positive dimensionality")
	}
	n := &Network{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	root := &node{rect: geom.UnitCube(opts.Dims), size: 1}
	root.peer = &Peer{net: n, leaf: root, seq: 0}
	n.root = root
	n.count = 1
	return n
}

// Build grows a network to the given size via successive joins.
func Build(size int, opts Options) *Network {
	n := New(opts)
	for n.count < size {
		n.Join()
	}
	return n
}

// Dims implements overlay.Network.
func (n *Network) Dims() int { return n.opts.Dims }

// Size implements overlay.Network.
func (n *Network) Size() int { return n.count }

// Nodes implements overlay.Network.
func (n *Network) Nodes() []overlay.Node {
	out := make([]overlay.Node, 0, n.count)
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.isLeaf() {
			out = append(out, nd.peer)
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(n.root)
	return out
}

// Peers returns all peers in leaf order.
func (n *Network) Peers() []*Peer {
	nodes := n.Nodes()
	out := make([]*Peer, len(nodes))
	for i, w := range nodes {
		out[i] = w.(*Peer)
	}
	return out
}

// Locate implements overlay.Network.
func (n *Network) Locate(p geom.Point) overlay.Node { return n.locatePeer(p) }

func (n *Network) locatePeer(p geom.Point) *Peer {
	nd := n.root
	for !nd.isLeaf() {
		if p[nd.splitDim] < nd.splitVal {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.peer
}

// Insert implements overlay.Network.
func (n *Network) Insert(t dataset.Tuple) {
	w := n.locatePeer(t.Vec)
	w.tuples = append(w.tuples, t)
	w.dropStore()
}

// Delete implements overlay.Deleter: it removes the tuple with t.ID from the
// peer owning t.Vec, rebuilding the share into a fresh backing array so
// snapshots taken by in-flight queries stay intact.
func (n *Network) Delete(t dataset.Tuple) bool {
	w := n.locatePeer(t.Vec)
	for i, u := range w.tuples {
		if u.ID == t.ID {
			w.tuples = append(w.tuples[:i:i], w.tuples[i+1:]...)
			w.dropStore()
			return true
		}
	}
	return false
}

// RandomPeer returns a uniformly random peer.
func (n *Network) RandomPeer(rng *rand.Rand) *Peer {
	nd := n.root
	for !nd.isLeaf() {
		if rng.Intn(nd.size) < nd.left.size {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.peer
}

// Join adds a peer the CAN way: the newcomer picks a uniformly random point
// of the domain and splits the zone that contains it (zone choice is thus
// volume-weighted, as in the original protocol). Zones split cyclically by
// dimension, falling back to the widest side for degenerate extents.
func (n *Network) Join() *Peer {
	p := make(geom.Point, n.opts.Dims)
	for i := range p {
		p[i] = n.rng.Float64()
	}
	target := n.locatePeer(p).leaf

	dim := nodeDepth(target) % n.opts.Dims
	if target.rect.Extent(dim) <= 0 {
		dim = target.rect.WidestDim()
	}
	mid := (target.rect.Lo[dim] + target.rect.Hi[dim]) / 2
	loRect, hiRect := target.rect.Split(dim, mid)

	oldPeer := target.peer
	newPeer := &Peer{net: n, seq: n.nextSeq()}
	left := &node{parent: target, rect: loRect, size: 1}
	right := &node{parent: target, rect: hiRect, size: 1}
	if n.rng.Intn(2) == 0 {
		left.peer, right.peer = oldPeer, newPeer
	} else {
		left.peer, right.peer = newPeer, oldPeer
	}
	left.peer.leaf = left
	right.peer.leaf = right
	target.peer = nil
	target.left, target.right = left, right
	target.splitDim, target.splitVal = dim, mid

	old := oldPeer.tuples
	oldPeer.tuples, newPeer.tuples = nil, nil
	for _, t := range old {
		host := left.peer
		if right.rect.Contains(t.Vec) {
			host = right.peer
		}
		host.tuples = append(host.tuples, t)
	}

	oldPeer.dropStore()
	newPeer.dropStore()
	n.count++
	for nd := target; nd != nil; nd = nd.parent {
		nd.size = nd.left.size + nd.right.size
	}
	return newPeer
}

func (n *Network) nextSeq() int {
	n.seq++
	return n.seq
}

// Leave removes a peer via the buddy protocol: if its split sibling is a
// leaf, the sibling absorbs the merged zone; otherwise the deepest leaf pair
// of the sibling subtree merges and the freed peer takes over the zone.
func (n *Network) Leave(p *Peer) {
	if n.count == 1 {
		panic("can: cannot remove the last peer")
	}
	leaf := p.leaf
	parent := leaf.parent
	sib := parent.left
	if sib == leaf {
		sib = parent.right
	}
	if sib.isLeaf() {
		survivor := sib.peer
		survivor.tuples = append(survivor.tuples, p.tuples...)
		parent.peer = survivor
		parent.left, parent.right = nil, nil
		survivor.leaf = parent
		n.count--
		p.leaf, p.tuples = nil, nil
		survivor.dropStore()
		p.dropStore()
		for nd := parent; nd != nil; nd = nd.parent {
			if !nd.isLeaf() {
				nd.size = nd.left.size + nd.right.size
			} else {
				nd.size = 1
			}
		}
		return
	}
	q := deepestLeafPair(sib)
	keeper, donor := q.left.peer, q.right.peer
	keeper.tuples = append(keeper.tuples, donor.tuples...)
	q.peer = keeper
	q.left, q.right = nil, nil
	keeper.leaf = q
	donor.tuples = p.tuples
	donor.leaf = leaf
	leaf.peer = donor
	n.count--
	p.leaf, p.tuples = nil, nil
	keeper.dropStore()
	donor.dropStore()
	p.dropStore()
	for nd := q; nd != nil; nd = nd.parent {
		if nd.isLeaf() {
			nd.size = 1
		} else {
			nd.size = nd.left.size + nd.right.size
		}
	}
}

func deepestLeafPair(sub *node) *node {
	var best *node
	bestDepth := -1
	var walk func(nd *node, d int)
	walk = func(nd *node, d int) {
		if nd.isLeaf() {
			return
		}
		if nd.left.isLeaf() && nd.right.isLeaf() && d > bestDepth {
			best, bestDepth = nd, d
		}
		walk(nd.left, d+1)
		walk(nd.right, d+1)
	}
	walk(sub, 0)
	return best
}

func nodeDepth(nd *node) int {
	d := 0
	for p := nd.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// ID implements overlay.Node.
func (p *Peer) ID() string { return fmt.Sprintf("can-%d", p.seq) }

// Zone implements overlay.Node.
func (p *Peer) Zone() overlay.Region { return overlay.FromRect(p.leaf.rect) }

// Rect returns the peer's zone rectangle.
func (p *Peer) Rect() geom.Rect { return p.leaf.rect }

// Tuples implements overlay.Node.
func (p *Peer) Tuples() []dataset.Tuple { return p.tuples }

// Store implements storage.Provider: the peer's zone share behind the engine
// selected by Options.Storage, built lazily and dropped whenever the share
// changes (inserts, zone splits on join, departures).
func (p *Peer) Store() storage.Store {
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	if p.store == nil {
		p.store = storage.New(p.net.opts.Storage, p.tuples)
	}
	return p.store
}

func (p *Peer) dropStore() {
	p.storeMu.Lock()
	p.store = nil
	p.storeMu.Unlock()
}

// FaceNeighbors returns the peers whose zones abut the given face of p's
// zone (side = -1 for the lower face along dim, +1 for the upper face).
func (p *Peer) FaceNeighbors(dim, side int) []*Peer {
	z := p.leaf.rect
	var plane float64
	if side < 0 {
		if z.Lo[dim] <= 0 {
			return nil
		}
		plane = z.Lo[dim]
	} else {
		if z.Hi[dim] >= 1 {
			return nil
		}
		plane = z.Hi[dim]
	}
	var out []*Peer
	var walk func(nd *node)
	walk = func(nd *node) {
		r := nd.rect
		// Prune subtrees that cannot touch the face plane or z's span.
		if r.Lo[dim] > plane || r.Hi[dim] < plane {
			return
		}
		for j := range r.Lo {
			if j == dim {
				continue
			}
			if r.Lo[j] >= z.Hi[j] || r.Hi[j] <= z.Lo[j] {
				return
			}
		}
		if nd.isLeaf() {
			if nd.peer == p {
				return
			}
			ok := side < 0 && nd.rect.Hi[dim] == plane || side > 0 && nd.rect.Lo[dim] == plane
			if ok {
				out = append(out, nd.peer)
			}
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(p.net.root)
	return out
}

// Neighbors returns all of p's CAN neighbours (zones sharing a face).
func (p *Peer) Neighbors() []*Peer {
	var out []*Peer
	for dim := 0; dim < p.net.opts.Dims; dim++ {
		out = append(out, p.FaceNeighbors(dim, -1)...)
		out = append(out, p.FaceNeighbors(dim, +1)...)
	}
	return out
}

// Links implements overlay.Node with the exact staircase box partition: the
// slab of dimension i (zone-span in dims < i, beyond the zone along i, whole
// domain in dims > i) is divided among the face-i neighbours by extending
// each neighbour's face portion to the slab boundaries where it touches the
// zone's edges.
func (p *Peer) Links() []overlay.Link {
	z := p.leaf.rect
	d := p.net.opts.Dims
	var links []overlay.Link
	for dim := 0; dim < d; dim++ {
		for _, side := range []int{-1, +1} {
			for _, nb := range p.FaceNeighbors(dim, side) {
				nz := nb.leaf.rect
				lo, hi := make(geom.Point, d), make(geom.Point, d)
				for j := 0; j < d; j++ {
					switch {
					case j == dim && side < 0:
						lo[j], hi[j] = 0, z.Lo[dim]
					case j == dim:
						lo[j], hi[j] = z.Hi[dim], 1
					default:
						a := nz.Lo[j]
						if a < z.Lo[j] {
							a = z.Lo[j]
						}
						b := nz.Hi[j]
						if b > z.Hi[j] {
							b = z.Hi[j]
						}
						// Extend portions touching the zone edge to the slab
						// boundary: dims before the slab dimension stay within
						// the zone span, later dims stretch to the domain.
						if j > dim {
							if a == z.Lo[j] {
								a = 0
							}
							if b == z.Hi[j] {
								b = 1
							}
						}
						lo[j], hi[j] = a, b
					}
				}
				links = append(links, overlay.Link{
					To:     nb,
					Region: overlay.FromRect(geom.Rect{Lo: lo, Hi: hi}),
				})
			}
		}
	}
	return links
}
