package can

import (
	"math/rand"
	"testing"

	"ripple/internal/baselines/naive"
	"ripple/internal/dataset"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

func TestBuildInvariants(t *testing.T) {
	for _, size := range []int{1, 2, 7, 64, 200} {
		n := Build(size, Options{Dims: 3, Seed: int64(size)})
		if n.Size() != size {
			t.Fatalf("size = %d, want %d", n.Size(), size)
		}
		if err := overlay.CheckInvariants(n, 200, 2); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestNeighborsAreSymmetricAndAbutting(t *testing.T) {
	n := Build(80, Options{Dims: 2, Seed: 4})
	for _, w := range n.Peers() {
		for _, nb := range w.Neighbors() {
			if nb == w {
				t.Fatal("peer neighbours itself")
			}
			// Abutment: touching along exactly one dimension, positive
			// overlap elsewhere.
			touch, overlap := 0, 0
			for j := 0; j < 2; j++ {
				a, b := w.Rect(), nb.Rect()
				switch {
				case a.Hi[j] == b.Lo[j] || b.Hi[j] == a.Lo[j]:
					touch++
				case a.Lo[j] < b.Hi[j] && b.Lo[j] < a.Hi[j]:
					overlap++
				}
			}
			if touch < 1 || touch+overlap != 2 {
				t.Fatalf("zones %v and %v do not abut", w.Rect(), nb.Rect())
			}
			// Symmetry.
			back := false
			for _, x := range nb.Neighbors() {
				if x == w {
					back = true
					break
				}
			}
			if !back {
				t.Fatalf("neighbour relation not symmetric for %s / %s", w.ID(), nb.ID())
			}
		}
	}
}

func TestBroadcastCoversEveryPeerAndAnswersOnce(t *testing.T) {
	// Over CAN the restriction areas deliver every *point* of the domain
	// exactly once: each peer is reached (possibly via several disjoint zone
	// fragments) and contributes its local answer exactly once.
	for _, size := range []int{1, 2, 13, 100} {
		n := Build(size, Options{Dims: 3, Seed: int64(size) + 7})
		overlay.Load(n, dataset.Uniform(300, 3, int64(size)))
		res := naive.Broadcast(n.Peers()[0], func(w overlay.Node) []dataset.Tuple { return w.Tuples() })
		if res.Stats.PeersReached() != size {
			t.Fatalf("size %d: reached %d peers, want all", size, res.Stats.PeersReached())
		}
		if len(res.Answers) != 300 {
			t.Fatalf("size %d: collected %d tuples, want each exactly once (300)", size, len(res.Answers))
		}
	}
}

func TestTopKOverCAN(t *testing.T) {
	// RIPPLE is overlay-generic: the full top-k stack must work over CAN.
	ts := dataset.NBA(2000, 5)
	n := Build(40, Options{Dims: 6, Seed: 3})
	overlay.Load(n, ts)
	f := topk.UniformLinear(6)
	want := topk.Brute(ts, f, 10)
	for _, r := range []int{0, 2, 1 << 20} {
		got, stats := topk.Run(n.Peers()[0], f, 10, r)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("r=%d: result %d = %v, want %v", r, i, got[i], want[i])
			}
		}
		if stats.MaxPerPeer() != 1 {
			t.Fatalf("r=%d: duplicate delivery over CAN", r)
		}
	}
}

func TestChurnKeepsInvariants(t *testing.T) {
	n := Build(30, Options{Dims: 2, Seed: 9})
	overlay.Load(n, dataset.Uniform(200, 2, 4))
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		if rng.Intn(2) == 0 && n.Size() > 2 {
			peers := n.Peers()
			n.Leave(peers[rng.Intn(len(peers))])
		} else {
			n.Join()
		}
	}
	if err := overlay.CheckInvariants(n, 150, 8); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	total := 0
	for _, w := range n.Peers() {
		total += len(w.Tuples())
	}
	if total != 200 {
		t.Fatalf("churn lost tuples: %d/200", total)
	}
	ids := map[string]bool{}
	for _, w := range n.Peers() {
		if ids[w.ID()] {
			t.Fatalf("duplicate peer id %s after churn", w.ID())
		}
		ids[w.ID()] = true
	}
}

func TestVolumeWeightedJoin(t *testing.T) {
	// CAN picks zones by random point, so large zones split more often; after
	// many joins zone volumes should be fairly balanced (max/min not insane).
	n := Build(256, Options{Dims: 2, Seed: 12})
	minV, maxV := 1.0, 0.0
	for _, w := range n.Peers() {
		v := w.Rect().Volume()
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV/minV > 64 {
		t.Fatalf("zone volume ratio %v too skewed for volume-weighted joins", maxV/minV)
	}
}
