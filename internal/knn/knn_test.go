package knn

import (
	"math"
	"reflect"
	"testing"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

func knnOverlay() (*midas.Network, []dataset.Tuple) {
	n := midas.Build(24, midas.Options{Dims: 3, Seed: 5})
	data := dataset.Uniform(600, 3, 7)
	overlay.Load(n, data)
	return n, data
}

func TestKNNMatchesBrute(t *testing.T) {
	n, data := knnOverlay()
	init := n.Peers()[3]
	center := geom.Point{0.3, 0.6, 0.5}
	for _, m := range []geom.Metric{nil, geom.L1, geom.L2} {
		for _, k := range []int{1, 5, 20} {
			want := Brute(data, center, k, m)
			for _, r := range []int{0, 1, 2, 1 << 20} {
				got, stats := Run(init, center, k, m, r)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("m=%v k=%d r=%d: answers differ from brute force", m, k, r)
				}
				if stats.QueryMsgs == 0 {
					t.Fatalf("m=%v k=%d r=%d: no query messages recorded", m, k, r)
				}
			}
		}
	}
}

// TestKNNMatchesNearestTopK pins the duality this package documents: for the
// same overlay, query and r, the kNN processor must produce byte-identical
// answers, statistics and hop trees to top-k with the Nearest scorer.
func TestKNNMatchesNearestTopK(t *testing.T) {
	n, _ := knnOverlay()
	init := n.Peers()[7]
	center := geom.Point{0.25, 0.5, 0.75}
	for _, k := range []int{1, 4, 16} {
		for _, r := range []int{0, 2, 1 << 20} {
			kp := &Processor{Center: center, K: k, Metric: geom.L2}
			tp := &topk.Processor{F: topk.Nearest{Center: center, Metric: geom.L2}, K: k}
			resK := core.RunOpts(init, kp, r, core.Options{Trace: true})
			resT := core.RunOpts(init, tp, r, core.Options{Trace: true})
			if !reflect.DeepEqual(resK.Answers, resT.Answers) {
				t.Fatalf("k=%d r=%d: answers diverge from Nearest top-k", k, r)
			}
			if resK.Stats.String() != resT.Stats.String() {
				t.Fatalf("k=%d r=%d: stats diverge:\nknn:  %s\ntopk: %s",
					k, r, resK.Stats.String(), resT.Stats.String())
			}
			if resK.Trace.Canonical() != resT.Trace.Canonical() {
				t.Fatalf("k=%d r=%d: hop trees diverge", k, r)
			}
		}
	}
}

func TestSelectDedupAndTies(t *testing.T) {
	center := geom.Point{0, 0}
	ts := []dataset.Tuple{
		{ID: 3, Vec: geom.Point{0.5, 0}},
		{ID: 1, Vec: geom.Point{0, 0.5}}, // same distance as ID 3: tie by ID
		{ID: 3, Vec: geom.Point{0.5, 0}}, // duplicate, dropped
		{ID: 2, Vec: geom.Point{0.1, 0}},
	}
	got := Select(ts, center, 2, geom.L2)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("Select = %v, want IDs [2 1]", got)
	}
	if got := Select(nil, center, 3, nil); len(got) != 0 {
		t.Fatalf("Select(nil) = %v", got)
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	c := WireCodec{}
	if c.Name() != "knn" {
		t.Fatalf("Name = %q", c.Name())
	}
	center := geom.Point{0.1, 0.9}
	params, err := c.EncodeParams(center, 7, geom.L1)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic encoding: same query, same bytes.
	params2, err := c.EncodeParams(center, 7, geom.L1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(params, params2) {
		t.Fatal("EncodeParams is not deterministic")
	}
	proc, err := c.NewProcessor(params)
	if err != nil {
		t.Fatal(err)
	}
	p := proc.(*Processor)
	if p.K != 7 || !reflect.DeepEqual(p.Center, center) || p.Metric.Name() != "L1" {
		t.Fatalf("decoded processor %+v", p)
	}

	for _, s := range []state{
		{m: 0, rho: math.Inf(-1)},
		{m: 3, rho: 0.25},
		{m: 10, rho: 0},
	} {
		b, err := c.EncodeState(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeState(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.(state) != s {
			t.Fatalf("state round trip: %+v -> %+v", s, got)
		}
	}
	neutral, err := c.DecodeState(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := neutral.(state); s.m != 0 || !math.IsInf(s.rho, -1) {
		t.Fatalf("neutral state = %+v", s)
	}

	if _, err := c.EncodeParams(center, 1, geom.LpMetric{P: 3}); err == nil {
		t.Fatal("expected error for non-wire metric")
	}
}

func TestMergeStatesNeutralAndAccumulation(t *testing.T) {
	p := &Processor{Center: geom.Point{0, 0}, K: 5}
	merged := p.MergeStates(nil, []core.State{
		state{m: 0, rho: math.Inf(-1)},
		state{m: 2, rho: 0.3},
		state{m: 2, rho: 0.1},
		state{m: 4, rho: 0.7},
	}).(state)
	// Smallest radii first: 2@0.1 + 2@0.3 + 4@0.7 reaches K=5 at rho 0.7.
	if merged.m != 8 || merged.rho != 0.7 {
		t.Fatalf("merged = %+v", merged)
	}
	neutral := p.MergeStates(nil, []core.State{
		state{m: 0, rho: math.Inf(-1)},
		state{m: 0, rho: math.Inf(-1)},
	}).(state)
	if neutral.m != 0 || !math.IsInf(neutral.rho, -1) {
		t.Fatalf("neutral merge = %+v", neutral)
	}
}
