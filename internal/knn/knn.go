// Package knn instantiates RIPPLE for k-nearest-neighbour queries: given a
// query point q and a metric, find the k stored tuples closest to q. kNN is
// the mirror image of top-k under the scoring function f(x) = −dist(x, q)
// (the topk.Nearest scorer), but it is the natural first query type of the
// storage engine era: a peer's local step is a best-first R-tree descent, so
// this package states it directly in distance space — the RIPPLE state is the
// pair (m, ρ) asserting that m tuples within distance ρ of q have already
// been located, links prune by the minimum distance of their restriction
// region to q, and local answers are range scans Within(q, ρ).
//
// The duality is exact: for the same overlay, query and r, this processor's
// hop tree, statistics and per-peer answers are byte-identical to running
// topk.Processor with the Nearest scorer (pinned by TestKNNMatchesNearestTopK).
package knn

import (
	"math"
	"sort"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/plan"
	"ripple/internal/sim"
	"ripple/internal/storage"
)

// state is the kNN RIPPLE state (m, ρ): m tuples at distance at most ρ from
// the query point are known. The neutral state is (0, −Inf) — no tuples, no
// radius claim — mirroring top-k's (0, +Inf) under τ = −ρ.
type state struct {
	m   int
	rho float64
}

// Processor is the RIPPLE plug-in for kNN queries.
type Processor struct {
	Center geom.Point
	K      int
	// Metric defaults to Euclidean distance when nil.
	Metric geom.Metric
}

var _ core.Processor = (*Processor)(nil)
var _ plan.Hinter = (*Processor)(nil)

// PlanHints implements plan.Hinter: the planner's cost model keys on the
// query family and result size.
func (p *Processor) PlanHints() plan.Hints { return plan.Hints{Family: "knn", K: p.K} }

func (p *Processor) metric() geom.Metric {
	if p.Metric == nil {
		return geom.L2
	}
	return p.Metric
}

// InitialState implements core.Processor.
func (p *Processor) InitialState() core.State { return state{m: 0, rho: math.Inf(-1)} }

// StateTuples implements core.Processor: kNN states carry only (m, ρ).
func (p *Processor) StateTuples(core.State) int { return 0 }

// regionMinDist is d⁻(q, region): the smallest distance from the query point
// to any point of the union-of-boxes region.
func (p *Processor) regionMinDist(r overlay.Region) float64 {
	m := p.metric()
	best := math.Inf(1)
	for _, b := range r.Boxes {
		if d := m.MinDist(p.Center, b); d < best {
			best = d
		}
	}
	return best
}

// LocalState implements computeLocalState: gather up to K local tuples
// strictly inside the global radius, topping up with farther tuples while the
// global count is still short of K. On an R-tree zone the distance spectrum
// is a best-first descent that only opens nodes within the running frontier.
func (p *Processor) LocalState(w overlay.Node, global core.State) core.State {
	g := global.(state)
	st := storage.Of(w)
	dists := storage.NearestDists(st, p.Center, p.K, p.metric())
	n := st.Len()

	within := 0
	for _, d := range dists {
		if d < g.rho && within < p.K {
			within++
		}
	}
	take := within
	if g.m+within < p.K {
		take += min(p.K-g.m-within, n-within)
	}
	if take == 0 {
		return state{m: 0, rho: math.Inf(-1)}
	}
	return state{m: take, rho: dists[take-1]}
}

// GlobalState implements computeGlobalState: the tightest radius guaranteed
// to cover at least K tuples (the top-k Algorithm 7 combine, mirrored).
func (p *Processor) GlobalState(w overlay.Node, global, local core.State) core.State {
	return p.MergeStates(w, []core.State{global, local})
}

// MergeStates implements updateLocalState: accumulate claims from the
// smallest radius upward until K tuples are covered.
func (p *Processor) MergeStates(w overlay.Node, states []core.State) core.State {
	ss := make([]state, len(states))
	for i, s := range states {
		ss[i] = s.(state)
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].rho < ss[j].rho })
	merged := state{m: 0, rho: math.Inf(-1)}
	for _, s := range ss {
		if s.m == 0 {
			continue
		}
		merged.m += s.m
		merged.rho = s.rho
		if merged.m >= p.K {
			break
		}
	}
	return merged
}

// LinkRelevant implements the content half of isLinkRelevant: a region is
// worth visiting while fewer than K tuples are known, or when it comes closer
// to the query point than the current radius.
func (p *Processor) LinkRelevant(w overlay.Node, region overlay.Region, global core.State) bool {
	g := global.(state)
	return g.m < p.K || p.regionMinDist(region) <= g.rho
}

// LinkPriority implements comp: regions nearest the query point first.
func (p *Processor) LinkPriority(w overlay.Node, region overlay.Region) float64 {
	return p.regionMinDist(region)
}

// LocalAnswer implements computeLocalAnswer: every local tuple within the
// final local radius, in canonical (distance ascending, ID ascending) order.
func (p *Processor) LocalAnswer(w overlay.Node, local core.State) []dataset.Tuple {
	l := local.(state)
	if l.m == 0 {
		return nil
	}
	return storage.Within(storage.Of(w), p.Center, l.rho, p.metric())
}

// Run processes a kNN query from the given initiator with ripple parameter r,
// returning the exact k nearest tuples (ties broken by tuple ID) and the cost.
// A nil metric means Euclidean.
func Run(initiator overlay.Node, center geom.Point, k int, m geom.Metric, r int) ([]dataset.Tuple, sim.Stats) {
	res := core.Run(initiator, &Processor{Center: center, K: k, Metric: m}, r)
	return Select(res.Answers, center, k, m), res.Stats
}

// Select extracts the k nearest tuples from a candidate set: the initiator's
// final merge step. Ties break by ascending tuple ID and duplicate IDs are
// dropped, so the result is deterministic.
func Select(candidates []dataset.Tuple, center geom.Point, k int, m geom.Metric) []dataset.Tuple {
	if m == nil {
		m = geom.L2
	}
	type keyed struct {
		d float64
		t dataset.Tuple
	}
	seen := make(map[uint64]bool, len(candidates))
	uniq := make([]keyed, 0, len(candidates))
	for _, t := range candidates {
		if !seen[t.ID] {
			seen[t.ID] = true
			uniq = append(uniq, keyed{d: m.Dist(center, t.Vec), t: t})
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].d != uniq[j].d {
			return uniq[i].d < uniq[j].d
		}
		return uniq[i].t.ID < uniq[j].t.ID
	})
	if len(uniq) > k {
		uniq = uniq[:k]
	}
	out := make([]dataset.Tuple, len(uniq))
	for i := range uniq {
		out[i] = uniq[i].t
	}
	return out
}

// Brute computes the exact kNN over a full tuple slice; the reference answer
// used by tests and sanity checks.
func Brute(ts []dataset.Tuple, center geom.Point, k int, m geom.Metric) []dataset.Tuple {
	return Select(append([]dataset.Tuple(nil), ts...), center, k, m)
}
