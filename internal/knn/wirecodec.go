package knn

import (
	"fmt"
	"math"

	"ripple/internal/core"
	"ripple/internal/geom"
	"ripple/internal/wire"
)

// WireCodec serialises kNN queries and states for networked peers; it
// implements the wire.Codec interface. The metric travels as its canonical
// name ("L1"/"L2"), so encodings are deterministic and ripple-vet clean.
type WireCodec struct{}

// wireParams is the on-wire query descriptor.
type wireParams struct {
	K      int
	Center geom.Point
	Metric string // "L1" | "L2"
}

// stateWire is the on-wire (m, ρ) pair, flat so the pooled gob path is
// allocation-free (see internal/wire/pool.go).
type stateWire struct {
	M   int
	Rho float64
}

var (
	paramsPool = wire.NewPayloadPool(&wireParams{})
	statePool  = wire.NewPayloadPool(&stateWire{})
)

// Name implements wire.Codec.
func (WireCodec) Name() string { return "knn" }

// EncodeParams builds the wire descriptor for a query. A nil metric encodes
// as Euclidean.
func (WireCodec) EncodeParams(center geom.Point, k int, m geom.Metric) ([]byte, error) {
	name := "L2"
	if m != nil {
		name = m.Name()
	}
	if name != "L1" && name != "L2" {
		return nil, fmt.Errorf("knn: metric %q not wire-encodable", name)
	}
	return paramsPool.Encode(&wireParams{K: k, Center: center, Metric: name})
}

// NewProcessor implements wire.Codec.
func (WireCodec) NewProcessor(params []byte) (core.Processor, error) {
	var p wireParams
	if err := paramsPool.Decode(params, &p); err != nil {
		return nil, fmt.Errorf("knn: decode params: %w", err)
	}
	m := geom.Metric(geom.L2)
	if p.Metric == "L1" {
		m = geom.L1
	}
	return &Processor{Center: p.Center, K: p.K, Metric: m}, nil
}

// EncodeState implements wire.Codec: the (m, ρ) pair.
func (WireCodec) EncodeState(s core.State) ([]byte, error) {
	st := s.(state)
	return statePool.Encode(&stateWire{M: st.m, Rho: st.rho})
}

// DecodeState implements wire.Codec. Empty input yields the neutral state.
func (WireCodec) DecodeState(b []byte) (core.State, error) {
	if len(b) == 0 {
		return state{m: 0, rho: math.Inf(-1)}, nil
	}
	var st stateWire
	if err := statePool.Decode(b, &st); err != nil {
		return nil, fmt.Errorf("knn: decode state: %w", err)
	}
	return state{m: st.M, rho: st.Rho}, nil
}
