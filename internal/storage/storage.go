// Package storage is the peer-local storage engine: every peer's zone share
// lives behind the Store interface instead of a raw tuple slice, so local
// query processing (computeLocalState / computeLocalAnswer) can prune with
// spatial and score bounds instead of scanning.
//
// Two implementations ship:
//
//   - ScanStore: the repository's original flat-slice layout, kept as the
//     always-available reference baseline. Every derived operation is a full
//     pass over the tuples.
//   - RTree: a thread-safe in-memory R-tree (quadratic split for inserts, STR
//     bulk load, best-first priority-queue traversal), which answers the same
//     operations by expanding only the subtrees whose bounds can qualify.
//
// The two are interchangeable by construction: every query-facing operation
// is defined through Ascend, a deterministic best-first traversal that visits
// tuples in ascending (key, tuple ID) order, so for any sound bound functions
// both stores produce byte-identical results — the property the cross-runtime
// equivalence suite pins down (DESIGN.md §14).
package storage

import (
	"fmt"
	"os"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// Kind names a storage engine selection.
type Kind string

const (
	// KindAuto defers to the node's own engine: nodes exposing a Store keep
	// it, everything else falls back to a flat scan. It is the zero value, so
	// untouched Options behave exactly as before this subsystem existed.
	KindAuto Kind = ""
	// KindScan selects the flat-slice reference baseline.
	KindScan Kind = "scan"
	// KindRTree selects the R-tree engine.
	KindRTree Kind = "rtree"
)

// ParseKind validates a -storage flag value.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case KindAuto, KindScan, KindRTree:
		return Kind(s), nil
	}
	return KindAuto, fmt.Errorf("storage: unknown engine %q (want scan or rtree)", s)
}

// EnvKind returns the engine selected by the RIPPLE_STORAGE environment
// variable, defaulting to the scan baseline when unset or unparseable. It is
// the default for network- and server-level options, which is what lets the
// seeded fault matrix re-run the whole suite over the R-tree engine without
// touching every test (`RIPPLE_STORAGE=rtree make test-faults`).
func EnvKind() Kind {
	if k, err := ParseKind(os.Getenv("RIPPLE_STORAGE")); err == nil && k != KindAuto {
		return k
	}
	return KindScan
}

// Query is a best-first traversal specification for Store.Ascend.
//
// Bound boxes passed to Lower and Skip are subtree minimum bounding
// rectangles with CLOSED semantics — both faces inclusive, unlike the
// half-open zone boxes of the overlay layer. The geometric bound helpers used
// throughout the repository (Metric.MinDist/MaxDist, DominatesRect, corner
// evaluations) are continuous and treat boxes closed already, so they are
// sound here as-is.
type Query struct {
	// Key is the traversal key: tuples are visited in ascending (Key, ID)
	// order. Required.
	Key func(t dataset.Tuple) float64
	// Lower returns a lower bound of Key over every tuple inside the closed
	// box b. Optional (nil disables bound-based ordering/pruning for the
	// R-tree); the scan store never calls it.
	Lower func(b geom.Rect) float64
	// Skip prunes a whole subtree: when it returns true for a subtree's
	// closed MBR, none of that subtree's tuples are visited. It must be
	// sound with respect to the visit callback — Skip(b) may only be true
	// when visit would reject (continue past) every tuple in b — because the
	// scan store ignores Skip and visits everything. Optional.
	Skip func(b geom.Rect) bool
}

// Store is a peer-local tuple store. Implementations guarantee:
//
//   - Tuples() preserves insertion order (construction order, then Insert
//     order), so a store is a drop-in replacement for the raw slice a peer
//     used to hold and overlay snapshots remain byte-stable.
//   - Ascend visits tuples in ascending (Query.Key, tuple ID) order; together
//     with sound bounds this makes every derived operation (ops.go)
//     implementation-independent.
//   - Concurrent reads are safe. Insert may run concurrently with reads on
//     the R-tree; the scan store requires external synchronisation between
//     Insert and reads (the engine mutates only between queries).
type Store interface {
	// Len returns the number of stored tuples.
	Len() int
	// Tuples returns the stored tuples in insertion order. The slice aliases
	// the store; callers must not modify it.
	Tuples() []dataset.Tuple
	// Insert adds one tuple.
	Insert(t dataset.Tuple)
	// Bounds returns the closed minimum bounding rectangle of the stored
	// tuples; ok is false for an empty store.
	Bounds() (mbr geom.Rect, ok bool)
	// Search visits every tuple inside the half-open box b in ascending
	// tuple-ID order, stopping early when visit returns false.
	Search(b geom.Rect, visit func(t dataset.Tuple) bool)
	// Ascend runs the best-first traversal described by q, stopping early
	// when visit returns false. visit receives each tuple with its key.
	Ascend(q Query, visit func(t dataset.Tuple, key float64) bool)
	// Stats describes the store for planners and diagnostics.
	Stats() Stats
}

// Stats summarises a store instance. Height and Nodes are zero for flat
// stores. These are the per-zone statistics an adaptive planner (ROADMAP
// item 3) reads to cost local work.
type Stats struct {
	Kind   Kind
	Len    int
	Height int
	Nodes  int
}

// Provider is implemented by node types that own a Store for their share.
// The engine asks via Of; nodes without one are served by a scan view.
type Provider interface {
	Store() Store
}

// TupleSource is the subset of overlay.Node the storage layer needs
// (declared locally to keep the import direction overlay -> storage).
type TupleSource interface {
	Tuples() []dataset.Tuple
}

// Of returns w's own store when it provides one, or a scan view over its
// tuples otherwise. This is the single entry point processors use, so a node
// type gains indexed local processing by just implementing Provider.
func Of(w TupleSource) Store {
	if p, ok := w.(Provider); ok {
		if st := p.Store(); st != nil {
			return st
		}
	}
	return NewScan(w.Tuples())
}

// New builds a store of the given kind over ts, taking ownership of the
// slice. KindAuto builds the scan baseline.
func New(kind Kind, ts []dataset.Tuple) Store {
	if kind == KindRTree {
		return NewRTree(ts)
	}
	return NewScan(ts)
}
