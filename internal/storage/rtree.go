package storage

import (
	"math"
	"sort"
	"sync"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// R-tree node fan-out. The 2..8 band follows the in-memory spatial indexes
// this engine is modelled on: small enough that a node scan stays in one or
// two cache lines, large enough that a million tuples fit in ~7 levels.
const (
	rtreeMinEntries = 2
	rtreeMaxEntries = 8
)

// RTree is a thread-safe in-memory R-tree over a zone's tuples. Bulk
// construction uses sort-tile-recursive packing; single inserts use Guttman's
// quadratic split. All tie-breaks (split seeds, subtree choice, traversal
// order) are deterministic, so the same tuple sequence always yields the same
// tree and the same visit order — a repository-wide invariant (DESIGN.md §10).
//
// An RWMutex guards the tree structure; queries hold the read lock for their
// whole traversal, so Insert is safe concurrently with reads but must not be
// called from inside a visit callback.
type RTree struct {
	mu     sync.RWMutex
	dims   int
	root   *rnode
	all    []dataset.Tuple
	nodes  int
	height int
}

// rnode MBRs are closed boxes ([Lo, Hi] inclusive): a zone's point-set bound
// must include its maximum coordinates, unlike the half-open overlay zones.
type rnode struct {
	leaf     bool
	mbr      geom.Rect
	children []*rnode
	tuples   []dataset.Tuple
}

// NewRTree bulk-loads ts with STR packing, taking ownership of the slice
// (which keeps serving Tuples() in insertion order; the tree holds its own
// sorted arrangement).
func NewRTree(ts []dataset.Tuple) *RTree {
	t := &RTree{all: ts}
	if len(ts) == 0 {
		return t
	}
	t.dims = len(ts[0].Vec)
	work := append([]dataset.Tuple(nil), ts...)
	var tiles [][]dataset.Tuple
	strTiles(work, 0, t.dims, &tiles)

	level := make([]*rnode, len(tiles))
	for i, tile := range tiles {
		n := &rnode{leaf: true, tuples: tile, mbr: pointRect(tile[0].Vec)}
		for _, tp := range tile[1:] {
			n.mbr = extendPoint(n.mbr, tp.Vec)
		}
		level[i] = n
	}
	t.nodes = len(level)
	t.height = 1
	for len(level) > 1 {
		groups := evenGroups(len(level), rtreeMaxEntries)
		parents := make([]*rnode, 0, len(groups))
		start := 0
		for _, size := range groups {
			kids := level[start : start+size]
			start += size
			p := &rnode{children: kids, mbr: cloneRect(kids[0].mbr)}
			for _, c := range kids[1:] {
				p.mbr = extendRect(p.mbr, c.mbr)
			}
			parents = append(parents, p)
		}
		t.nodes += len(parents)
		t.height++
		level = parents
	}
	t.root = level[0]
	return t
}

// strTiles recursively slices ts into leaf tiles of at most rtreeMaxEntries
// tuples: sort by the current dimension, cut into ~P^(1/d) slabs, recurse on
// the next dimension, and chunk evenly on the last. Sort ties fall back to
// tuple ID so packing is deterministic.
func strTiles(ts []dataset.Tuple, dim, dims int, out *[][]dataset.Tuple) {
	if len(ts) <= rtreeMaxEntries {
		*out = append(*out, ts)
		return
	}
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i].Vec[dim], ts[j].Vec[dim]
		if a != b {
			return a < b
		}
		return ts[i].ID < ts[j].ID
	})
	if dim >= dims-1 {
		for _, size := range evenGroups(len(ts), rtreeMaxEntries) {
			*out = append(*out, ts[:size])
			ts = ts[size:]
		}
		return
	}
	leaves := (len(ts) + rtreeMaxEntries - 1) / rtreeMaxEntries
	rest := dims - dim
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(rest))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(ts) + slabs - 1) / slabs
	for i := 0; i < len(ts); i += slabSize {
		end := i + slabSize
		if end > len(ts) {
			end = len(ts)
		}
		strTiles(ts[i:end], dim+1, dims, out)
	}
}

// evenGroups splits n items into ceil(n/max) groups whose sizes differ by at
// most one, so no tail group degenerates below the minimum fill.
func evenGroups(n, max int) []int {
	g := (n + max - 1) / max
	base, rem := n/g, n%g
	sizes := make([]int, g)
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return sizes
}

// Len implements Store.
func (t *RTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.all)
}

// Tuples implements Store: insertion order, independent of tree arrangement.
func (t *RTree) Tuples() []dataset.Tuple {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.all
}

// Bounds implements Store.
func (t *RTree) Bounds() (geom.Rect, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil {
		return geom.Rect{}, false
	}
	return cloneRect(t.root.mbr), true
}

// Stats implements Store.
func (t *RTree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Stats{Kind: KindRTree, Len: len(t.all), Height: t.height, Nodes: t.nodes}
}

// Insert implements Store with Guttman's algorithm: descend by least volume
// enlargement (ties: smaller volume, then first child), quadratic split on
// overflow, root split grows the tree.
func (t *RTree) Insert(tp dataset.Tuple) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dims == 0 {
		t.dims = len(tp.Vec)
	}
	t.all = append(t.all, tp)
	if t.root == nil {
		t.root = &rnode{leaf: true, tuples: []dataset.Tuple{tp}, mbr: pointRect(tp.Vec)}
		t.nodes, t.height = 1, 1
		return
	}
	if split := t.insertAt(t.root, tp); split != nil {
		old := t.root
		t.root = &rnode{
			children: []*rnode{old, split},
			mbr:      extendRect(cloneRect(old.mbr), split.mbr),
		}
		t.nodes++
		t.height++
	}
}

func (t *RTree) insertAt(n *rnode, tp dataset.Tuple) *rnode {
	n.mbr = extendPoint(n.mbr, tp.Vec)
	if n.leaf {
		n.tuples = append(n.tuples, tp)
		if len(n.tuples) > rtreeMaxEntries {
			return t.splitLeaf(n)
		}
		return nil
	}
	child := chooseSubtree(n.children, tp.Vec)
	if split := t.insertAt(child, tp); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > rtreeMaxEntries {
			return t.splitInternal(n)
		}
	}
	return nil
}

func chooseSubtree(children []*rnode, p geom.Point) *rnode {
	best := children[0]
	bestEnl, bestVol := enlargement(best.mbr, p), volClosed(best.mbr)
	for _, c := range children[1:] {
		enl := enlargement(c.mbr, p)
		vol := volClosed(c.mbr)
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = c, enl, vol
		}
	}
	return best
}

func (t *RTree) splitLeaf(n *rnode) *rnode {
	rects := make([]geom.Rect, len(n.tuples))
	for i, tp := range n.tuples {
		rects[i] = pointRect(tp.Vec)
	}
	ga, gb := quadraticPartition(rects)
	keep := pickTuples(n.tuples, ga)
	give := pickTuples(n.tuples, gb)
	n.tuples = keep
	n.mbr = tuplesMBR(keep)
	t.nodes++
	return &rnode{leaf: true, tuples: give, mbr: tuplesMBR(give)}
}

func (t *RTree) splitInternal(n *rnode) *rnode {
	rects := make([]geom.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.mbr
	}
	ga, gb := quadraticPartition(rects)
	keep := pickNodes(n.children, ga)
	give := pickNodes(n.children, gb)
	n.children = keep
	n.mbr = nodesMBR(keep)
	t.nodes++
	return &rnode{children: give, mbr: nodesMBR(give)}
}

// quadraticPartition splits entry indices 0..len(rects)-1 into two groups per
// Guttman's quadratic method. Every comparison uses strict improvement so the
// first candidate wins ties, keeping the partition deterministic.
func quadraticPartition(rects []geom.Rect) (ga, gb []int) {
	n := len(rects)
	// Seeds: the pair whose combined box wastes the most volume.
	seedA, seedB, worst := 0, 1, math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			u := extendRect(cloneRect(rects[i]), rects[j])
			waste := volClosed(u) - volClosed(rects[i]) - volClosed(rects[j])
			if waste > worst {
				seedA, seedB, worst = i, j, waste
			}
		}
	}
	ga, gb = []int{seedA}, []int{seedB}
	mbrA, mbrB := cloneRect(rects[seedA]), cloneRect(rects[seedB])
	rest := make([]int, 0, n-2)
	for i := 0; i < n; i++ {
		if i != seedA && i != seedB {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// Fill a group that cannot otherwise reach minimum occupancy.
		if len(ga)+len(rest) <= rtreeMinEntries {
			ga = append(ga, rest...)
			return ga, gb
		}
		if len(gb)+len(rest) <= rtreeMinEntries {
			gb = append(gb, rest...)
			return ga, gb
		}
		// Next entry: maximal preference between the groups.
		pick, pickAt, pref := rest[0], 0, math.Inf(-1)
		var pickDA, pickDB float64
		for at, i := range rest {
			dA := volClosed(extendRect(cloneRect(mbrA), rects[i])) - volClosed(mbrA)
			dB := volClosed(extendRect(cloneRect(mbrB), rects[i])) - volClosed(mbrB)
			if d := math.Abs(dA - dB); d > pref {
				pick, pickAt, pref = i, at, d
				pickDA, pickDB = dA, dB
			}
		}
		rest = append(rest[:pickAt], rest[pickAt+1:]...)
		toA := pickDA < pickDB
		if pickDA == pickDB {
			volA, volB := volClosed(mbrA), volClosed(mbrB)
			if volA != volB {
				toA = volA < volB
			} else {
				toA = len(ga) <= len(gb)
			}
		}
		if toA {
			ga = append(ga, pick)
			mbrA = extendRect(mbrA, rects[pick])
		} else {
			gb = append(gb, pick)
			mbrB = extendRect(mbrB, rects[pick])
		}
	}
	return ga, gb
}

func pickTuples(ts []dataset.Tuple, idx []int) []dataset.Tuple {
	out := make([]dataset.Tuple, len(idx))
	for i, j := range idx {
		out[i] = ts[j]
	}
	return out
}

func pickNodes(ns []*rnode, idx []int) []*rnode {
	out := make([]*rnode, len(idx))
	for i, j := range idx {
		out[i] = ns[j]
	}
	return out
}

func tuplesMBR(ts []dataset.Tuple) geom.Rect {
	mbr := pointRect(ts[0].Vec)
	for _, tp := range ts[1:] {
		mbr = extendPoint(mbr, tp.Vec)
	}
	return mbr
}

func nodesMBR(ns []*rnode) geom.Rect {
	mbr := cloneRect(ns[0].mbr)
	for _, c := range ns[1:] {
		mbr = extendRect(mbr, c.mbr)
	}
	return mbr
}

func volClosed(r geom.Rect) float64 {
	v := 1.0
	for i := range r.Lo {
		d := r.Hi[i] - r.Lo[i]
		if d < 0 {
			d = 0
		}
		v *= d
	}
	return v
}

func enlargement(r geom.Rect, p geom.Point) float64 {
	ext := extendPoint(cloneRect(r), p)
	return volClosed(ext) - volClosed(r)
}

// Search implements Store: descend only subtrees whose closed MBR meets the
// half-open query box, then report matches in ascending ID order.
func (t *RTree) Search(b geom.Rect, visit func(dataset.Tuple) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var hits []dataset.Tuple
	collectSearch(t.root, b, &hits)
	sort.Slice(hits, func(i, j int) bool { return hits[i].ID < hits[j].ID })
	for _, tp := range hits {
		if !visit(tp) {
			return
		}
	}
}

func collectSearch(n *rnode, b geom.Rect, hits *[]dataset.Tuple) {
	if n == nil || !closedOverlapsQuery(n.mbr, b) {
		return
	}
	if n.leaf {
		for _, tp := range n.tuples {
			if b.Contains(tp.Vec) {
				*hits = append(*hits, tp)
			}
		}
		return
	}
	for _, c := range n.children {
		collectSearch(c, b, hits)
	}
}

// Ascend implements Store as a best-first traversal: a priority queue holds
// subtrees keyed by Query.Lower and tuples keyed by Query.Key. At equal
// priority, subtrees expand before tuples emit (a subtree at the bound may
// still contain an equal-keyed tuple with a smaller ID) and tuples tie-break
// by ID — which is exactly what makes the visit order identical to the scan
// store's for any sound Lower.
func (t *RTree) Ascend(q Query, visit func(dataset.Tuple, float64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil {
		return
	}
	lower := func(b geom.Rect) float64 {
		if q.Lower == nil {
			return math.Inf(-1)
		}
		return q.Lower(b)
	}
	var h bfHeap
	var seq uint64
	h.push(bfEntry{key: lower(t.root.mbr), node: t.root})
	for len(h) > 0 {
		e := h.pop()
		if e.tup {
			if !visit(e.t, e.key) {
				return
			}
			continue
		}
		n := e.node
		if q.Skip != nil && q.Skip(n.mbr) {
			continue
		}
		if n.leaf {
			for _, tp := range n.tuples {
				h.push(bfEntry{key: q.Key(tp), tup: true, ord: tp.ID, t: tp})
			}
		} else {
			for _, c := range n.children {
				seq++
				h.push(bfEntry{key: lower(c.mbr), ord: seq, node: c})
			}
		}
	}
}

// bfEntry orders the best-first frontier by (key, kind, ord): nodes (tup ==
// false) sort before tuples at the same key, tuples tie-break by ID, and
// nodes by push sequence so heap order never depends on pointer values.
type bfEntry struct {
	key  float64
	tup  bool
	ord  uint64
	node *rnode
	t    dataset.Tuple
}

type bfHeap []bfEntry

func (h bfHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.key != b.key {
		return a.key < b.key
	}
	if a.tup != b.tup {
		return !a.tup
	}
	return a.ord < b.ord
}

func (h *bfHeap) push(e bfEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *bfHeap) pop() bfEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = bfEntry{}
	s = s[:last]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= len(s) {
			break
		}
		best := left
		if right := left + 1; right < len(s) && s.less(right, left) {
			best = right
		}
		if !s.less(best, i) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}
