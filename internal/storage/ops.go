package storage

import (
	"math"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// The operations in this file are the storage-level halves of the RIPPLE
// local algorithms (computeLocalState / computeLocalAnswer for top-k,
// skyline, diversification, and kNN). Each is written once against
// Store.Ascend, so the scan baseline and the R-tree return byte-identical
// results by construction; only the amount of work differs.

// TopScores returns the min(k, Len) highest scores in descending order.
// upper must bound score from above over any closed box (it may be nil, which
// only disables R-tree pruning).
func TopScores(st Store, k int, score func(geom.Point) float64, upper func(geom.Rect) float64) []float64 {
	if k <= 0 {
		return nil
	}
	q := Query{Key: func(t dataset.Tuple) float64 { return -score(t.Vec) }}
	if upper != nil {
		q.Lower = func(b geom.Rect) float64 { return -upper(b) }
	}
	out := make([]float64, 0, k)
	st.Ascend(q, func(_ dataset.Tuple, key float64) bool {
		out = append(out, -key)
		return len(out) < k
	})
	return out
}

// Above returns every tuple scoring at least tau, ordered by (score
// descending, ID ascending) — the canonical local-answer order for
// threshold queries.
func Above(st Store, tau float64, score func(geom.Point) float64, upper func(geom.Rect) float64) []dataset.Tuple {
	q := Query{Key: func(t dataset.Tuple) float64 { return -score(t.Vec) }}
	if upper != nil {
		q.Lower = func(b geom.Rect) float64 { return -upper(b) }
	}
	var out []dataset.Tuple
	st.Ascend(q, func(t dataset.Tuple, key float64) bool {
		if -key < tau {
			return false
		}
		out = append(out, t)
		return true
	})
	return out
}

// KNN returns the k tuples nearest to center under m, ordered by (distance
// ascending, ID ascending): a best-first search that, on the R-tree, expands
// only nodes whose MBR MinDist beats the current frontier.
func KNN(st Store, center geom.Point, k int, m geom.Metric) []dataset.Tuple {
	if k <= 0 {
		return nil
	}
	out := make([]dataset.Tuple, 0, k)
	st.Ascend(nearQuery(center, m), func(t dataset.Tuple, _ float64) bool {
		out = append(out, t)
		return len(out) < k
	})
	return out
}

// NearestDists returns the min(k, Len) smallest distances from center in
// ascending order: the distance spectrum kNN's computeLocalState consumes.
func NearestDists(st Store, center geom.Point, k int, m geom.Metric) []float64 {
	if k <= 0 {
		return nil
	}
	out := make([]float64, 0, k)
	st.Ascend(nearQuery(center, m), func(_ dataset.Tuple, key float64) bool {
		out = append(out, key)
		return len(out) < k
	})
	return out
}

// Within returns every tuple at distance at most rho from center, ordered by
// (distance ascending, ID ascending): kNN's computeLocalAnswer.
func Within(st Store, center geom.Point, rho float64, m geom.Metric) []dataset.Tuple {
	var out []dataset.Tuple
	st.Ascend(nearQuery(center, m), func(t dataset.Tuple, key float64) bool {
		if key > rho {
			return false
		}
		out = append(out, t)
		return true
	})
	return out
}

func nearQuery(center geom.Point, m geom.Metric) Query {
	return Query{
		Key:   func(t dataset.Tuple) float64 { return m.Dist(center, t.Vec) },
		Lower: func(b geom.Rect) float64 { return m.MinDist(center, b) },
	}
}

// MinBy returns the tuple minimising key (ties by ascending ID). Keys of
// +Inf mark ineligible tuples (diversification's exclusion set); ok is false
// when no eligible tuple exists. lower must bound key from below over any
// closed box of *eligible* tuples (ineligible ones score +Inf, above any
// bound) and may be nil.
func MinBy(st Store, key func(t dataset.Tuple) float64, lower func(b geom.Rect) float64) (dataset.Tuple, float64, bool) {
	var (
		best  dataset.Tuple
		score float64
		found bool
	)
	st.Ascend(Query{Key: key, Lower: lower}, func(t dataset.Tuple, k float64) bool {
		best, score, found = t, k, true
		return false
	})
	if !found || math.IsInf(score, 1) {
		return dataset.Tuple{}, math.Inf(1), false
	}
	return best, score, true
}

// Skyline returns the skyline of the stored tuples (optionally restricted to
// the half-open constraint box), byte-identical to skyline.Compute over the
// constrained tuple slice: ascending (coordinate-sum, ID) traversal with a
// forward dominance filter. The R-tree additionally prunes subtrees that lie
// outside the constraint or are wholly dominated by an accepted tuple — the
// branch-and-bound skyline of Papadias et al., sound because an accepted
// tuple s with s ≼ b.Lo dominates (or equals) every point of the closed box b.
func Skyline(st Store, constraint *geom.Rect) []dataset.Tuple {
	var sky []dataset.Tuple
	seen := make(map[uint64]bool)
	q := Query{
		Key: func(t dataset.Tuple) float64 {
			s := 0.0
			for _, v := range t.Vec {
				s += v
			}
			return s
		},
		Lower: func(b geom.Rect) float64 {
			s := 0.0
			for _, v := range b.Lo {
				s += v
			}
			return s
		},
		Skip: func(b geom.Rect) bool {
			if constraint != nil && !closedOverlapsQuery(b, *constraint) {
				return true
			}
			for _, s := range sky {
				if geom.DominatesRect(s.Vec, b) {
					return true
				}
			}
			return false
		},
	}
	st.Ascend(q, func(t dataset.Tuple, _ float64) bool {
		if constraint != nil && !constraint.Contains(t.Vec) {
			return true
		}
		if seen[t.ID] {
			return true
		}
		for _, s := range sky {
			if s.Vec.Dominates(t.Vec) || s.Vec.Equal(t.Vec) {
				return true
			}
		}
		sky = append(sky, t)
		seen[t.ID] = true
		return true
	})
	return sky
}
