package storage

import (
	"sort"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// ScanStore is the flat-slice reference baseline: the exact layout peers used
// before the storage engine existed. Ascend evaluates the key for every tuple
// and drains an index heap, so results match the R-tree's best-first order
// while the cost stays the familiar O(n) (+ O(log n) per visited tuple).
//
// Reads are safe concurrently; Insert requires external synchronisation with
// reads (overlay mutations happen between queries, never during one).
type ScanStore struct {
	ts []dataset.Tuple
}

// NewScan builds a scan store over ts, taking ownership of the slice.
func NewScan(ts []dataset.Tuple) *ScanStore {
	return &ScanStore{ts: ts}
}

// Len implements Store.
func (s *ScanStore) Len() int { return len(s.ts) }

// Tuples implements Store: the backing slice itself, in insertion order.
func (s *ScanStore) Tuples() []dataset.Tuple { return s.ts }

// Insert implements Store.
func (s *ScanStore) Insert(t dataset.Tuple) { s.ts = append(s.ts, t) }

// Bounds implements Store by scanning; it is not cached because nothing on
// the query path needs it and caching would make reads racy.
func (s *ScanStore) Bounds() (geom.Rect, bool) {
	if len(s.ts) == 0 {
		return geom.Rect{}, false
	}
	mbr := pointRect(s.ts[0].Vec)
	for _, t := range s.ts[1:] {
		mbr = extendPoint(mbr, t.Vec)
	}
	return mbr, true
}

// Search implements Store.
func (s *ScanStore) Search(b geom.Rect, visit func(dataset.Tuple) bool) {
	var hits []dataset.Tuple
	for _, t := range s.ts {
		if b.Contains(t.Vec) {
			hits = append(hits, t)
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].ID < hits[j].ID })
	for _, t := range hits {
		if !visit(t) {
			return
		}
	}
}

// Ascend implements Store: keys are evaluated once per tuple, then an index
// min-heap ordered by (key, ID) is drained, stopping as soon as visit does.
// Early-terminating queries (top-k, kNN) therefore pay O(n) key evaluations
// but only k log n heap pops.
func (s *ScanStore) Ascend(q Query, visit func(dataset.Tuple, float64) bool) {
	n := len(s.ts)
	if n == 0 {
		return
	}
	keys := make([]float64, n)
	idx := make([]int32, n)
	for i, t := range s.ts {
		keys[i] = q.Key(t)
		idx[i] = int32(i)
	}
	h := scanHeap{ts: s.ts, keys: keys, idx: idx}
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	for len(h.idx) > 0 {
		top := h.idx[0]
		if !visit(s.ts[top], keys[top]) {
			return
		}
		last := len(h.idx) - 1
		h.idx[0] = h.idx[last]
		h.idx = h.idx[:last]
		h.siftDown(0)
	}
}

// Stats implements Store.
func (s *ScanStore) Stats() Stats {
	return Stats{Kind: KindScan, Len: len(s.ts)}
}

// scanHeap is a binary min-heap over tuple indices ordered by (key, ID).
type scanHeap struct {
	ts   []dataset.Tuple
	keys []float64
	idx  []int32
}

func (h *scanHeap) less(a, b int32) bool {
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return h.ts[a].ID < h.ts[b].ID
}

func (h *scanHeap) siftDown(i int) {
	n := len(h.idx)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && h.less(h.idx[right], h.idx[left]) {
			best = right
		}
		if !h.less(h.idx[best], h.idx[i]) {
			return
		}
		h.idx[i], h.idx[best] = h.idx[best], h.idx[i]
		i = best
	}
}

// pointRect is the degenerate closed box holding exactly p. Lo and Hi are
// fresh copies so later extension never writes through to tuple vectors.
func pointRect(p geom.Point) geom.Rect {
	lo := make(geom.Point, len(p))
	hi := make(geom.Point, len(p))
	copy(lo, p)
	copy(hi, p)
	return geom.Rect{Lo: lo, Hi: hi}
}

// extendPoint grows the closed box r in place to cover p.
func extendPoint(r geom.Rect, p geom.Point) geom.Rect {
	for i, v := range p {
		if v < r.Lo[i] {
			r.Lo[i] = v
		}
		if v > r.Hi[i] {
			r.Hi[i] = v
		}
	}
	return r
}

// extendRect grows the closed box r in place to cover the closed box b.
func extendRect(r geom.Rect, b geom.Rect) geom.Rect {
	for i := range r.Lo {
		if b.Lo[i] < r.Lo[i] {
			r.Lo[i] = b.Lo[i]
		}
		if b.Hi[i] > r.Hi[i] {
			r.Hi[i] = b.Hi[i]
		}
	}
	return r
}

// cloneRect deep-copies a closed box so in-place extension stays local.
func cloneRect(r geom.Rect) geom.Rect {
	lo := make(geom.Point, len(r.Lo))
	hi := make(geom.Point, len(r.Hi))
	copy(lo, r.Lo)
	copy(hi, r.Hi)
	return geom.Rect{Lo: lo, Hi: hi}
}

// closedOverlapsQuery reports whether the closed box mbr intersects the
// half-open query box b ([b.Lo, b.Hi)). Used for MBR search, where the query
// box follows overlay zone semantics but tree bounds are closed.
func closedOverlapsQuery(mbr, b geom.Rect) bool {
	for i := range mbr.Lo {
		if mbr.Lo[i] >= b.Hi[i] || mbr.Hi[i] < b.Lo[i] {
			return false
		}
	}
	return true
}
