package storage

import (
	"fmt"
	"sync"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// Paired scan-vs-rtree measurements of the peer-local compute path at
// realistic per-peer zone sizes (10k / 100k / 1M tuples). Every benchmark
// runs the identical derived operation (ops.go) on both engines, so the
// ratio between arms is exactly the local-compute speedup the R-tree buys;
// `make bench-storage` commits the numbers as BENCH_PR7.json.

const benchDims = 4

var benchSizes = []struct {
	name string
	n    int
}{
	{"10k", 10_000},
	{"100k", 100_000},
	{"1m", 1_000_000},
}

// Stores are built once per (engine, size) and shared across benchmarks: a
// 1M-tuple STR bulk load is part of overlay construction, not of the
// per-query cost being measured.
var (
	benchMu     sync.Mutex
	benchData   = map[int][]dataset.Tuple{}
	benchStores = map[string]Store{}
)

func benchStore(kind Kind, n int) Store {
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s-%d", kind, n)
	if st, ok := benchStores[key]; ok {
		return st
	}
	ts, ok := benchData[n]
	if !ok {
		ts = dataset.Uniform(n, benchDims, 42)
		benchData[n] = ts
	}
	own := make([]dataset.Tuple, len(ts))
	copy(own, ts)
	st := New(kind, own)
	benchStores[key] = st
	return st
}

// benchScore is a fixed positive-weight linear scorer; benchUpper bounds it
// from above over a closed box (the monotone corner evaluation).
func benchScore(p geom.Point) float64 {
	s := 0.0
	for i, v := range p {
		s += float64(i+1) * v
	}
	return s
}

func benchUpper(b geom.Rect) float64 {
	s := 0.0
	for i, v := range b.Hi {
		s += float64(i+1) * v
	}
	return s
}

var benchCenter = geom.Point{0.31, 0.62, 0.48, 0.77}

// forEachArm runs one benchmark body per (engine, size) pair.
func forEachArm(b *testing.B, body func(b *testing.B, st Store)) {
	for _, kind := range []Kind{KindScan, KindRTree} {
		for _, sz := range benchSizes {
			b.Run(fmt.Sprintf("%s-%s", kind, sz.name), func(b *testing.B) {
				st := benchStore(kind, sz.n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					body(b, st)
				}
			})
		}
	}
}

// BenchmarkStorageTopK is top-k's computeLocalState half: the k best scores
// in descending order.
func BenchmarkStorageTopK(b *testing.B) {
	forEachArm(b, func(b *testing.B, st Store) {
		if got := TopScores(st, 10, benchScore, benchUpper); len(got) != 10 {
			b.Fatalf("got %d scores, want 10", len(got))
		}
	})
}

// BenchmarkStorageThresholdAnswer is top-k's computeLocalAnswer half: every
// tuple at or above the threshold the store's own top-10 establishes.
func BenchmarkStorageThresholdAnswer(b *testing.B) {
	for _, kind := range []Kind{KindScan, KindRTree} {
		for _, sz := range benchSizes {
			b.Run(fmt.Sprintf("%s-%s", kind, sz.name), func(b *testing.B) {
				st := benchStore(kind, sz.n)
				scores := TopScores(st, 10, benchScore, benchUpper)
				tau := scores[len(scores)-1]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := Above(st, tau, benchScore, benchUpper); len(got) < 10 {
						b.Fatalf("got %d answers, want >= 10", len(got))
					}
				}
			})
		}
	}
}

// BenchmarkStorageKNN is the kNN local step: best-first search for the 10
// nearest tuples under Euclidean distance.
func BenchmarkStorageKNN(b *testing.B) {
	forEachArm(b, func(b *testing.B, st Store) {
		if got := KNN(st, benchCenter, 10, geom.L2); len(got) != 10 {
			b.Fatalf("got %d neighbours, want 10", len(got))
		}
	})
}

// BenchmarkStorageMBRSearch is the raw spatial primitive: report every tuple
// inside a box covering ~0.1% of the unit domain.
func BenchmarkStorageMBRSearch(b *testing.B) {
	box := geom.Rect{
		Lo: geom.Point{0.3, 0.3, 0.3, 0.3},
		Hi: geom.Point{0.48, 0.48, 0.48, 0.48},
	}
	forEachArm(b, func(b *testing.B, st Store) {
		n := 0
		st.Search(box, func(dataset.Tuple) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty search result; box too small")
		}
	})
}
