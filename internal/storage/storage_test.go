package storage

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// testSets yields seeded tuple sets of assorted sizes and dimensionalities,
// including duplicate-coordinate sets that stress tie-breaking.
func testSets(t *testing.T) []([]dataset.Tuple) {
	t.Helper()
	var sets [][]dataset.Tuple
	for _, cfg := range []struct {
		n, dims int
		seed    int64
	}{
		{0, 2, 1}, {1, 2, 2}, {7, 2, 3}, {8, 2, 4}, {9, 2, 5},
		{64, 2, 6}, {200, 3, 7}, {333, 4, 8}, {500, 2, 9},
	} {
		sets = append(sets, dataset.Uniform(cfg.n, cfg.dims, cfg.seed))
	}
	// Heavy ties: every coordinate drawn from {0, 0.25, 0.5, 0.75}.
	rng := rand.New(rand.NewSource(99))
	tied := make([]dataset.Tuple, 150)
	for i := range tied {
		vec := make(geom.Point, 2)
		for d := range vec {
			vec[d] = float64(rng.Intn(4)) / 4
		}
		tied[i] = dataset.Tuple{ID: uint64(i + 1), Vec: vec}
	}
	sets = append(sets, tied)
	return sets
}

func bothStores(ts []dataset.Tuple) (scan, rtree Store) {
	own := append([]dataset.Tuple(nil), ts...)
	return NewScan(own), NewRTree(append([]dataset.Tuple(nil), ts...))
}

// visitSeq drains Ascend fully and records the (ID, key) sequence.
func visitSeq(st Store, q Query, limit int) [][2]float64 {
	var seq [][2]float64
	st.Ascend(q, func(t dataset.Tuple, key float64) bool {
		seq = append(seq, [2]float64{float64(t.ID), key})
		return limit <= 0 || len(seq) < limit
	})
	return seq
}

func TestAscendVisitOrderMatchesScan(t *testing.T) {
	center := geom.Point{0.3, 0.7}
	for si, ts := range testSets(t) {
		scan, rtree := bothStores(ts)
		dims := 2
		if len(ts) > 0 {
			dims = len(ts[0].Vec)
		}
		c := center
		if dims != len(center) {
			c = make(geom.Point, dims)
			for i := range c {
				c[i] = 0.4
			}
		}
		q := nearQuery(c, geom.L2)
		for _, limit := range []int{0, 1, 5, len(ts)} {
			a := visitSeq(scan, q, limit)
			b := visitSeq(rtree, q, limit)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("set %d limit %d: scan and rtree visit sequences differ:\n%v\n%v", si, limit, a, b)
			}
		}
		// Without Lower the R-tree degenerates to exhaustive best-first; order
		// must still match.
		noLower := Query{Key: q.Key}
		if a, b := visitSeq(scan, noLower, 0), visitSeq(rtree, noLower, 0); !reflect.DeepEqual(a, b) {
			t.Fatalf("set %d: visit sequences differ without Lower", si)
		}
	}
}

func TestOpsEquivalenceScanVsRTree(t *testing.T) {
	for si, ts := range testSets(t) {
		if len(ts) == 0 {
			continue
		}
		dims := len(ts[0].Vec)
		center := make(geom.Point, dims)
		for i := range center {
			center[i] = 0.42
		}
		score := func(p geom.Point) float64 {
			s := 0.0
			for _, v := range p {
				s += 1 - v
			}
			return s
		}
		upper := func(r geom.Rect) float64 { return score(r.Lo) }

		scan, rtree := bothStores(ts)
		for _, k := range []int{0, 1, 3, 10, len(ts), len(ts) + 5} {
			if a, b := TopScores(scan, k, score, upper), TopScores(rtree, k, score, upper); !reflect.DeepEqual(a, b) {
				t.Fatalf("set %d k=%d: TopScores differ\n%v\n%v", si, k, a, b)
			}
			if a, b := KNN(scan, center, k, geom.L2), KNN(rtree, center, k, geom.L2); !reflect.DeepEqual(a, b) {
				t.Fatalf("set %d k=%d: KNN differ", si, k)
			}
			if a, b := NearestDists(scan, center, k, geom.L1), NearestDists(rtree, center, k, geom.L1); !reflect.DeepEqual(a, b) {
				t.Fatalf("set %d k=%d: NearestDists differ", si, k)
			}
		}
		for _, tau := range []float64{math.Inf(1), 1.2, 0.5, 0, math.Inf(-1)} {
			if a, b := Above(scan, tau, score, upper), Above(rtree, tau, score, upper); !reflect.DeepEqual(a, b) {
				t.Fatalf("set %d tau=%v: Above differ", si, tau)
			}
		}
		for _, rho := range []float64{0, 0.1, 0.4, 2} {
			if a, b := Within(scan, center, rho, geom.L2), Within(rtree, center, rho, geom.L2); !reflect.DeepEqual(a, b) {
				t.Fatalf("set %d rho=%v: Within differ", si, rho)
			}
		}
		if a, b := Skyline(scan, nil), Skyline(rtree, nil); !reflect.DeepEqual(a, b) {
			t.Fatalf("set %d: Skyline differ\n%v\n%v", si, a, b)
		}
		lo, hi := make(geom.Point, dims), make(geom.Point, dims)
		for i := range lo {
			lo[i], hi[i] = 0.2, 0.8
		}
		constraint := geom.Rect{Lo: lo, Hi: hi}
		if a, b := Skyline(scan, &constraint), Skyline(rtree, &constraint); !reflect.DeepEqual(a, b) {
			t.Fatalf("set %d: constrained Skyline differ", si)
		}
		// MinBy with an exclusion set, diversification-style.
		exclude := map[uint64]bool{ts[0].ID: true}
		key := func(tp dataset.Tuple) float64 {
			if exclude[tp.ID] {
				return math.Inf(1)
			}
			return geom.L1.Dist(center, tp.Vec)
		}
		lowerK := func(b geom.Rect) float64 { return geom.L1.MinDist(center, b) }
		at, ak, aok := MinBy(scan, key, lowerK)
		bt, bk, bok := MinBy(rtree, key, lowerK)
		if aok != bok || ak != bk || at.ID != bt.ID {
			t.Fatalf("set %d: MinBy differ: (%v %v %v) vs (%v %v %v)", si, at.ID, ak, aok, bt.ID, bk, bok)
		}
	}
}

func TestInsertBuiltTreeMatchesBulk(t *testing.T) {
	for si, ts := range testSets(t) {
		bulk := NewRTree(append([]dataset.Tuple(nil), ts...))
		inc := NewRTree(nil)
		for _, tp := range ts {
			inc.Insert(tp)
		}
		if !reflect.DeepEqual(bulk.Tuples(), inc.Tuples()) && len(ts) > 0 {
			t.Fatalf("set %d: insertion order not preserved", si)
		}
		if len(ts) == 0 {
			continue
		}
		center := make(geom.Point, len(ts[0].Vec))
		q := nearQuery(center, geom.L2)
		if a, b := visitSeq(bulk, q, 0), visitSeq(inc, q, 0); !reflect.DeepEqual(a, b) {
			t.Fatalf("set %d: bulk vs incremental visit sequences differ", si)
		}
	}
}

func TestSearchMatchesScanAndIsHalfOpen(t *testing.T) {
	ts := dataset.Uniform(300, 2, 17)
	scan, rtree := bothStores(ts)
	boxes := []geom.Rect{
		{Lo: geom.Point{0.1, 0.1}, Hi: geom.Point{0.6, 0.9}},
		{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}},
		{Lo: geom.Point{0.5, 0.5}, Hi: geom.Point{0.5, 0.9}}, // empty: Lo==Hi in dim 0
	}
	// A box whose Hi face passes exactly through a stored point: half-open
	// semantics must exclude it in both stores.
	p := ts[0].Vec
	boxes = append(boxes, geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{p[0], 1}})
	for bi, b := range boxes {
		collect := func(st Store) []uint64 {
			var ids []uint64
			st.Search(b, func(tp dataset.Tuple) bool {
				ids = append(ids, tp.ID)
				return true
			})
			return ids
		}
		got, want := collect(rtree), collect(scan)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("box %d: rtree %v want %v", bi, got, want)
		}
		for _, id := range want {
			for _, tp := range ts {
				if tp.ID == id && !b.Contains(tp.Vec) {
					t.Fatalf("box %d: returned tuple %d outside box", bi, id)
				}
			}
		}
	}
}

// TestRTreeInvariants walks the tree: every node's MBR covers its entries,
// fan-out stays within [min, max] (root excepted), and all leaves sit at the
// same depth.
func TestRTreeInvariants(t *testing.T) {
	for si, ts := range testSets(t) {
		for mode, tree := range map[string]*RTree{
			"bulk": NewRTree(append([]dataset.Tuple(nil), ts...)),
			"incremental": func() *RTree {
				tr := NewRTree(nil)
				for _, tp := range ts {
					tr.Insert(tp)
				}
				return tr
			}(),
		} {
			if tree.root == nil {
				if len(ts) != 0 {
					t.Fatalf("set %d %s: nil root with %d tuples", si, mode, len(ts))
				}
				continue
			}
			var leafDepths []int
			var count, nodes int
			var walk func(n *rnode, depth int, isRoot bool)
			walk = func(n *rnode, depth int, isRoot bool) {
				nodes++
				if n.leaf {
					leafDepths = append(leafDepths, depth)
					if !isRoot && (len(n.tuples) < rtreeMinEntries || len(n.tuples) > rtreeMaxEntries) {
						t.Fatalf("set %d %s: leaf fan-out %d", si, mode, len(n.tuples))
					}
					for _, tp := range n.tuples {
						count++
						for d := range tp.Vec {
							if tp.Vec[d] < n.mbr.Lo[d] || tp.Vec[d] > n.mbr.Hi[d] {
								t.Fatalf("set %d %s: tuple %d outside leaf MBR", si, mode, tp.ID)
							}
						}
					}
					return
				}
				if len(n.children) < rtreeMinEntries || len(n.children) > rtreeMaxEntries {
					if !isRoot || len(n.children) < 2 {
						t.Fatalf("set %d %s: internal fan-out %d", si, mode, len(n.children))
					}
				}
				for _, c := range n.children {
					for d := range n.mbr.Lo {
						if c.mbr.Lo[d] < n.mbr.Lo[d] || c.mbr.Hi[d] > n.mbr.Hi[d] {
							t.Fatalf("set %d %s: child MBR escapes parent", si, mode)
						}
					}
					walk(c, depth+1, false)
				}
			}
			walk(tree.root, 1, true)
			for _, d := range leafDepths {
				if d != leafDepths[0] {
					t.Fatalf("set %d %s: leaves at depths %v", si, mode, leafDepths)
				}
			}
			if count != len(ts) {
				t.Fatalf("set %d %s: tree holds %d tuples, want %d", si, mode, count, len(ts))
			}
			st := tree.Stats()
			if st.Height != leafDepths[0] || st.Nodes != nodes || st.Len != len(ts) {
				t.Fatalf("set %d %s: Stats %+v vs walked height=%d nodes=%d len=%d",
					si, mode, st, leafDepths[0], nodes, len(ts))
			}
		}
	}
}

func TestRTreeConcurrentReadsAndInserts(t *testing.T) {
	tree := NewRTree(dataset.Uniform(500, 2, 23))
	extra := dataset.Uniform(200, 2, 24)
	center := geom.Point{0.5, 0.5}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				KNN(tree, center, 10, geom.L2)
				tree.Bounds()
				tree.Stats()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range extra {
			// Fresh IDs so determinism of the final set is checkable.
			tp := extra[i]
			tp.ID += 1 << 32
			tree.Insert(tp)
		}
	}()
	wg.Wait()
	if tree.Len() != 700 {
		t.Fatalf("Len = %d after concurrent inserts, want 700", tree.Len())
	}
}

func TestKindSelection(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"", KindAuto, true}, {"scan", KindScan, true}, {"rtree", KindRTree, true},
		{"btree", KindAuto, false}, {"RTREE", KindAuto, false},
	} {
		got, err := ParseKind(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	t.Setenv("RIPPLE_STORAGE", "")
	if k := EnvKind(); k != KindScan {
		t.Fatalf("EnvKind() with empty env = %v, want scan", k)
	}
	t.Setenv("RIPPLE_STORAGE", "rtree")
	if k := EnvKind(); k != KindRTree {
		t.Fatalf("EnvKind() = %v, want rtree", k)
	}
	t.Setenv("RIPPLE_STORAGE", "bogus")
	if k := EnvKind(); k != KindScan {
		t.Fatalf("EnvKind() with bogus env = %v, want scan", k)
	}

	ts := dataset.Uniform(10, 2, 1)
	if _, ok := New(KindRTree, ts).(*RTree); !ok {
		t.Fatal("New(rtree) did not build an R-tree")
	}
	if _, ok := New(KindScan, ts).(*ScanStore); !ok {
		t.Fatal("New(scan) did not build a scan store")
	}
	if _, ok := New(KindAuto, ts).(*ScanStore); !ok {
		t.Fatal("New(auto) should default to the scan baseline")
	}
}

type providerNode struct{ st Store }

func (p providerNode) Tuples() []dataset.Tuple { return p.st.Tuples() }
func (p providerNode) Store() Store            { return p.st }

type plainSource struct{ ts []dataset.Tuple }

func (p plainSource) Tuples() []dataset.Tuple { return p.ts }

func TestOf(t *testing.T) {
	ts := dataset.Uniform(10, 2, 1)
	rt := NewRTree(ts)
	if Of(providerNode{st: rt}) != Store(rt) {
		t.Fatal("Of should return the node's own store")
	}
	st := Of(plainSource{ts: ts})
	if _, ok := st.(*ScanStore); !ok || st.Len() != 10 {
		t.Fatal("Of should wrap plain nodes in a scan view")
	}
}
