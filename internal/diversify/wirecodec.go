package diversify

import (
	"fmt"
	"math"
	"sort"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/wire"
)

// WireCodec serialises single-tuple diversification queries and states for
// networked peers; it implements the wire.Codec interface. The query carries
// the query point, λ, the metric names, the base set O, the exclusion list
// and the initial threshold; states are the φ threshold.
type WireCodec struct{}

type wireParams struct {
	Q       geom.Point
	Lambda  float64
	Dr, Dv  string // "L1" | "L2"
	Base    []dataset.Tuple
	Exclude []uint64
	Tau0    float64
}

// Name implements wire.Codec.
func (WireCodec) Name() string { return "diversify" }

var (
	paramsPool = wire.NewPayloadPool(&wireParams{})
	phiPool    = wire.NewPayloadPool(new(float64))
)

// EncodeParams builds the wire descriptor for one single-tuple query.
func (WireCodec) EncodeParams(q Query, base []dataset.Tuple, exclude map[uint64]bool, tau0 float64) ([]byte, error) {
	p := wireParams{Q: q.Q, Lambda: q.Lambda, Dr: q.Dr.Name(), Dv: q.Dv.Name(), Base: base, Tau0: tau0}
	for id := range exclude {
		p.Exclude = append(p.Exclude, id)
	}
	// Sort so the wire bytes are a pure function of the query: map iteration
	// order would otherwise make byte-identical replays impossible.
	sort.Slice(p.Exclude, func(i, j int) bool { return p.Exclude[i] < p.Exclude[j] })
	return paramsPool.Encode(&p)
}

// NewProcessor implements wire.Codec.
func (WireCodec) NewProcessor(params []byte) (core.Processor, error) {
	var p wireParams
	if err := paramsPool.Decode(params, &p); err != nil {
		return nil, fmt.Errorf("diversify: decode params: %w", err)
	}
	metric := func(name string) geom.Metric {
		if name == "L2" {
			return geom.L2
		}
		return geom.L1
	}
	exclude := make(map[uint64]bool, len(p.Exclude))
	for _, id := range p.Exclude {
		exclude[id] = true
	}
	return &Processor{
		Query:   Query{Q: p.Q, Lambda: p.Lambda, Dr: metric(p.Dr), Dv: metric(p.Dv)},
		Base:    p.Base,
		Exclude: exclude,
		Tau0:    p.Tau0,
	}, nil
}

// EncodeState implements wire.Codec: the φ threshold.
func (WireCodec) EncodeState(s core.State) ([]byte, error) {
	phi := float64(s.(state))
	return phiPool.Encode(&phi)
}

// DecodeState implements wire.Codec. Empty input yields +Inf (note that the
// networked caller should pass the real Tau0 through the params, since the
// engine-side initial state comes from the processor).
func (WireCodec) DecodeState(b []byte) (core.State, error) {
	if len(b) == 0 {
		return state(math.Inf(1)), nil
	}
	var v float64
	if err := phiPool.Decode(b, &v); err != nil {
		return nil, fmt.Errorf("diversify: decode state: %w", err)
	}
	return state(v), nil
}
