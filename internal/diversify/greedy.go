package diversify

import (
	"math"
	"sort"

	"ripple/internal/dataset"
	"ripple/internal/overlay"
	"ripple/internal/sim"
)

// SingleSolver answers one single-tuple diversification query: the best
// eligible tuple outside base/exclude whose φ score is below tau, or nil.
// Both the RIPPLE-based method and the CAN baseline implement this signature
// and share the greedy driver below, which realises the paper's fairness rule
// ("we force both heuristic diversification algorithms to produce the same
// result at each step" — §7.1): identical solvers yield identical iterates,
// so the metrics compare cost only.
type SingleSolver func(base []dataset.Tuple, exclude map[uint64]bool, tau float64) (*dataset.Tuple, sim.Stats)

// NewRippleSolver returns the RIPPLE-based SingleSolver: every single-tuple
// query is processed from the given initiator with ripple parameter r.
func NewRippleSolver(initiator overlay.Node, q Query, r int) SingleSolver {
	return func(base []dataset.Tuple, exclude map[uint64]bool, tau float64) (*dataset.Tuple, sim.Stats) {
		return RunSingle(initiator, q, base, exclude, tau, r)
	}
}

// NewBruteSolver returns a centralized oracle SingleSolver over a full tuple
// slice (zero network cost); tests use it to check solver-agnostic greedy
// behaviour and the baseline-fairness rule.
func NewBruteSolver(ts []dataset.Tuple, q Query) SingleSolver {
	return func(base []dataset.Tuple, exclude map[uint64]bool, tau float64) (*dataset.Tuple, sim.Stats) {
		return BruteSingle(ts, q, base, exclude, tau), sim.Stats{}
	}
}

// GreedyResult is the outcome of a full k-diversification query.
type GreedyResult struct {
	Set        []dataset.Tuple
	Objective  float64
	Iterations int
	Stats      sim.Stats
}

// MaxIters is the paper's MAX_ITERS bound on improvement passes.
const MaxIters = 10

// Greedy answers the k-diversification query (Algorithms 22-23): initialise
// O by solving k single-tuple queries greedily, then repeatedly swap one
// member for the best outside tuple while the objective improves.
//
// The threshold passed to the solver for candidate t_i is the exact pruning
// bound τ_i = f_best − f(O∖{t_i}) (with f_best the best objective seen so
// far), which is what Algorithm 23's lines 6/8 approximate: any returned
// candidate is then a guaranteed improvement (see DESIGN.md §6).
func Greedy(q Query, k int, solve SingleSolver, maxIters int) GreedyResult {
	if maxIters <= 0 {
		maxIters = MaxIters
	}
	var res GreedyResult

	// Initialisation: k greedy single-tuple insertions (the paper's more
	// elaborate initialise variant).
	exclude := make(map[uint64]bool)
	var O []dataset.Tuple
	for len(O) < k {
		t, stats := solve(O, exclude, math.Inf(1))
		res.Stats.Add(&stats)
		if t == nil {
			break // fewer than k tuples in the network
		}
		O = append(O, *t)
		exclude[t.ID] = true
	}

	fBest := q.Objective(O)
	for iter := 0; iter < maxIters && len(O) == k && k > 0; iter++ {
		res.Iterations++
		improved, newO, newF := q.improvePass(O, fBest, solve, &res.Stats)
		if !improved {
			break
		}
		O, fBest = newO, newF
	}
	res.Set, res.Objective = O, fBest
	return res
}

// improvePass is Algorithm 23 (div-improve): examine each member of O in
// descending φ order and search the network for a replacement that improves
// the objective beyond the best set seen so far.
func (q Query) improvePass(O []dataset.Tuple, fBest float64, solve SingleSolver, stats *sim.Stats) (bool, []dataset.Tuple, float64) {
	type scored struct {
		idx int
		phi float64
	}
	order := make([]scored, len(O))
	for i := range O {
		order[i] = scored{idx: i, phi: q.Phi(O[i].Vec, without(O, i))}
	}
	// Descending φ: the member whose removal leaves the best set goes first.
	sort.Slice(order, func(a, b int) bool { return order[a].phi > order[b].phi })

	exclude := make(map[uint64]bool, len(O))
	for _, t := range O {
		exclude[t.ID] = true
	}

	var tin *dataset.Tuple
	tout := -1
	for _, s := range order {
		base := without(O, s.idx)
		tau := fBest - q.Objective(base)
		cand, st := solve(base, exclude, tau)
		stats.Add(&st)
		if cand == nil {
			continue
		}
		if f := q.Objective(append(append([]dataset.Tuple(nil), base...), *cand)); f < fBest {
			fBest, tin, tout = f, cand, s.idx
		}
	}
	if tin == nil {
		return false, O, fBest
	}
	newO := append(without(O, tout), *tin)
	return true, newO, fBest
}

func without(O []dataset.Tuple, i int) []dataset.Tuple {
	out := make([]dataset.Tuple, 0, len(O)-1)
	out = append(out, O[:i]...)
	out = append(out, O[i+1:]...)
	return out
}
