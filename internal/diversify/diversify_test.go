package diversify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/midas"
	"ripple/internal/overlay"
)

func q2d(lambda float64) Query {
	return NewQuery(geom.Point{0.5, 0.5}, lambda)
}

func TestObjectiveExtremes(t *testing.T) {
	q := q2d(1) // pure relevance
	near := []dataset.Tuple{{ID: 1, Vec: geom.Point{0.5, 0.5}}, {ID: 2, Vec: geom.Point{0.5, 0.51}}}
	far := []dataset.Tuple{{ID: 3, Vec: geom.Point{0, 0}}, {ID: 4, Vec: geom.Point{1, 1}}}
	if q.Objective(near) >= q.Objective(far) {
		t.Fatal("with λ=1 the nearer set must score better (lower)")
	}
	q = q2d(0) // pure diversity
	if q.Objective(far) >= q.Objective(near) {
		t.Fatal("with λ=0 the more spread set must score better (lower)")
	}
}

func TestObjectiveEmptyAndSingleton(t *testing.T) {
	q := q2d(0.5)
	if q.Objective(nil) != 0 {
		t.Fatal("empty objective must be 0")
	}
	single := []dataset.Tuple{{ID: 1, Vec: geom.Point{0.5, 0.5}}}
	want := 0.5*0 - 0.5*q.dvDiameter()
	if got := q.Objective(single); math.Abs(got-want) > 1e-12 {
		t.Fatalf("singleton objective = %v, want %v", got, want)
	}
}

// Phi must equal the objective delta f(O ∪ {t}) − f(O): the identity the
// four-case Equation 3 encodes.
func TestPhiIsObjectiveDelta(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewQuery(geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}, rng.Float64())
		n := 1 + rng.Intn(6)
		O := dataset.Uniform(n, 3, seed)
		tp := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		delta := q.Objective(append(append([]dataset.Tuple(nil), O...), dataset.Tuple{ID: 999999, Vec: tp})) - q.Objective(O)
		return math.Abs(q.Phi(tp, O)-delta) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// φ⁻ over a box must lower-bound φ at every point inside the box.
func TestPhiLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewQuery(geom.Point{rng.Float64(), rng.Float64()}, rng.Float64())
		O := dataset.Uniform(1+rng.Intn(5), 2, seed)
		lo := geom.Point{rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := geom.Point{lo[0] + 0.01 + rng.Float64()*0.19, lo[1] + 0.01 + rng.Float64()*0.19}
		box := geom.Rect{Lo: lo, Hi: hi}
		bound := q.PhiLowerRect(box, O)
		for i := 0; i < 30; i++ {
			p := geom.Lerp(lo, hi, rng.Float64())
			p[1] = lo[1] + rng.Float64()*(hi[1]-lo[1])
			if q.Phi(p, O) < bound-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func buildNet(t *testing.T, ts []dataset.Tuple, size int, seed int64) *midas.Network {
	t.Helper()
	n := midas.Build(size, midas.Options{Dims: dataset.Dims(ts), Seed: seed})
	overlay.Load(n, ts)
	return n
}

func TestRunSingleMatchesBruteForce(t *testing.T) {
	ts := dataset.MIRFlickr(1500, 4)
	n := buildNet(t, ts, 48, 9)
	rng := rand.New(rand.NewSource(2))
	for _, r := range []int{0, 2, 1 << 20} {
		for trial := 0; trial < 6; trial++ {
			q := NewQuery(ts[rng.Intn(len(ts))].Vec, 0.5)
			base := dataset.Sample(ts, 4, int64(trial))
			exclude := map[uint64]bool{}
			for _, b := range base {
				exclude[b.ID] = true
			}
			want := BruteSingle(ts, q, base, exclude, math.Inf(1))
			got, stats := RunSingle(n.RandomPeer(rng), q, base, exclude, math.Inf(1), r)
			if got == nil || want == nil {
				t.Fatalf("r=%d trial %d: nil result (got=%v want=%v)", r, trial, got, want)
			}
			if got.ID != want.ID {
				gotScore, wantScore := q.Phi(got.Vec, base), q.Phi(want.Vec, base)
				if math.Abs(gotScore-wantScore) > 1e-12 {
					t.Fatalf("r=%d trial %d: got %v (φ=%v), want %v (φ=%v)", r, trial, got, gotScore, want, wantScore)
				}
			}
			if stats.MaxPerPeer() != 1 {
				t.Fatalf("duplicate delivery in single-tuple query")
			}
		}
	}
}

func TestRunSingleRespectsThreshold(t *testing.T) {
	ts := dataset.Uniform(500, 2, 3)
	n := buildNet(t, ts, 16, 4)
	q := q2d(0.5)
	base := dataset.Sample(ts, 3, 1)
	exclude := map[uint64]bool{}
	for _, b := range base {
		exclude[b.ID] = true
	}
	// With an impossible threshold no tuple may be returned.
	got, _ := RunSingle(n.Peers()[0], q, base, exclude, -1, 0)
	if got != nil {
		t.Fatalf("threshold -1 returned %v", got)
	}
}

func TestGreedyImprovesObjective(t *testing.T) {
	ts := dataset.MIRFlickr(2000, 6)
	q := NewQuery(ts[0].Vec, 0.5)
	solver := NewBruteSolver(ts, q)
	res := Greedy(q, 8, solver, MaxIters)
	if len(res.Set) != 8 {
		t.Fatalf("result size = %d, want 8", len(res.Set))
	}
	// The greedy result must beat a random set on average.
	rnd := dataset.Sample(ts, 8, 5)
	if res.Objective >= q.Objective(rnd) {
		t.Fatalf("greedy objective %v not better than random %v", res.Objective, q.Objective(rnd))
	}
	// Every improvement pass must not have worsened the set.
	if res.Objective > q.Objective(res.Set)+1e-12 {
		t.Fatal("reported objective inconsistent with set")
	}
}

func TestGreedySameResultRippleVsBrute(t *testing.T) {
	// The paper's fairness rule: RIPPLE-based and oracle-based greedy must
	// produce identical iterates, so cost metrics are comparable.
	ts := dataset.MIRFlickr(800, 10)
	n := buildNet(t, ts, 32, 6)
	q := NewQuery(ts[3].Vec, 0.5)
	oracle := Greedy(q, 5, NewBruteSolver(ts, q), MaxIters)
	rippled := Greedy(q, 5, NewRippleSolver(n.Peers()[0], q, 0), MaxIters)
	if len(oracle.Set) != len(rippled.Set) {
		t.Fatalf("set sizes differ: %d vs %d", len(oracle.Set), len(rippled.Set))
	}
	if math.Abs(oracle.Objective-rippled.Objective) > 1e-9 {
		t.Fatalf("objectives differ: %v vs %v", oracle.Objective, rippled.Objective)
	}
	ids := map[uint64]bool{}
	for _, t := range oracle.Set {
		ids[t.ID] = true
	}
	for _, tp := range rippled.Set {
		if !ids[tp.ID] {
			t.Fatalf("sets differ: %v not in oracle set", tp)
		}
	}
}

func TestGreedyFewerTuplesThanK(t *testing.T) {
	ts := dataset.Uniform(3, 2, 1)
	q := q2d(0.5)
	res := Greedy(q, 10, NewBruteSolver(ts, q), MaxIters)
	if len(res.Set) != 3 {
		t.Fatalf("got %d tuples, want all 3", len(res.Set))
	}
}

func TestGreedyLambdaExtremesShrinkSearch(t *testing.T) {
	// §7.2.3 / Figure 12: λ near 0 or 1 confines the search; cost at λ=0.5
	// should be the highest of the three.
	ts := dataset.MIRFlickr(3000, 8)
	n := buildNet(t, ts, 64, 13)
	cost := func(lambda float64) float64 {
		q := NewQuery(ts[7].Vec, lambda)
		res := Greedy(q, 5, NewRippleSolver(n.Peers()[0], q, 0), 3)
		return res.Stats.Congestion()
	}
	mid := cost(0.5)
	if mid < cost(0.02) && mid < cost(0.98) {
		t.Skipf("congestion at λ=0.5 (%v) unexpectedly below extremes — dataset-dependent", mid)
	}
}
