// Package diversify instantiates RIPPLE for k-diversification queries (§6 of
// the paper) — the first distributed treatment of this query type. The
// objective (Equation 1, minimised: low = relevant and diverse)
//
//	f(O, q) = λ·max_{x∈O} dr(x, q) − (1−λ)·min_{y,z∈O} dv(y, z)
//
// is optimised greedily: the single-tuple diversification sub-query (find
// t* ∉ O minimising the marginal score φ(t, q, O) of Equation 3) is a RIPPLE
// instantiation (Algorithms 16-21), and the full query is the iterative
// improve loop of Algorithms 22-23 built on top of it.
package diversify

import (
	"math"
	"sync"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/plan"
	"ripple/internal/sim"
	"ripple/internal/storage"
)

// Query carries the k-diversification parameters: the query point, the
// relevance/diversity trade-off λ ∈ [0,1], and the two distance functions
// (the paper uses L1 for both on the MIRFLICKR workload).
type Query struct {
	Q      geom.Point
	Lambda float64
	Dr, Dv geom.Metric
}

// NewQuery returns a Query with the paper's defaults (L1 metrics).
func NewQuery(q geom.Point, lambda float64) Query {
	return Query{Q: q, Lambda: lambda, Dr: geom.L1, Dv: geom.L1}
}

// dvDiameter is the diversity value assigned to sets with fewer than two
// members, making the objective well-defined during greedy construction: the
// dv-diameter of the unit domain (an unreachable ideal, so growing a set
// always "pays" the true pairwise distance).
func (q Query) dvDiameter() float64 {
	d := len(q.Q)
	return q.Dv.Dist(geom.Origin(d), onesPoint(d))
}

func onesPoint(d int) geom.Point {
	p := make(geom.Point, d)
	for i := range p {
		p[i] = 1
	}
	return p
}

// Objective evaluates Equation 1 for a set O (lower is better).
func (q Query) Objective(O []dataset.Tuple) float64 {
	if len(O) == 0 {
		return 0
	}
	maxRel := math.Inf(-1)
	for _, x := range O {
		if d := q.Dr.Dist(x.Vec, q.Q); d > maxRel {
			maxRel = d
		}
	}
	minPair := q.dvDiameter()
	for i := range O {
		for j := i + 1; j < len(O); j++ {
			if d := q.Dv.Dist(O[i].Vec, O[j].Vec); d < minPair {
				minPair = d
			}
		}
	}
	return q.Lambda*maxRel - (1-q.Lambda)*minPair
}

// baseContext caches the O-dependent constants of φ — the maximum relevance
// distance and the minimum pairwise diversity of the base set — so that
// evaluating φ for a candidate costs O(|O|) instead of O(|O|²). All peers
// evaluating the same single-tuple query share the same O, so the context is
// computed once per query.
type baseContext struct {
	maxRel  float64
	minPair float64
}

func (q Query) context(O []dataset.Tuple) baseContext {
	c := baseContext{maxRel: math.Inf(-1), minPair: q.dvDiameter()}
	for _, x := range O {
		if d := q.Dr.Dist(x.Vec, q.Q); d > c.maxRel {
			c.maxRel = d
		}
	}
	for i := range O {
		for j := i + 1; j < len(O); j++ {
			if d := q.Dv.Dist(O[i].Vec, O[j].Vec); d < c.minPair {
				c.minPair = d
			}
		}
	}
	return c
}

// Phi evaluates the marginal score of Equation 3: the increase of the
// objective when t joins O. The four cases of the paper collapse to
//
//	φ(t,q,O) = λ·(dr(t,q) − max_{x∈O}dr(x,q))₊ + (1−λ)·(min-pair(O) − min_{x∈O}dv(t,x))₊
//
// with (·)₊ the positive part; for empty O it degenerates to pure relevance.
func (q Query) Phi(t geom.Point, O []dataset.Tuple) float64 {
	if len(O) == 0 {
		return q.Lambda * q.Dr.Dist(t, q.Q)
	}
	return q.phiCtx(t, O, q.context(O))
}

func (q Query) phiCtx(t geom.Point, O []dataset.Tuple, c baseContext) float64 {
	if len(O) == 0 {
		return q.Lambda * q.Dr.Dist(t, q.Q)
	}
	minToT := math.Inf(1)
	for _, x := range O {
		if d := q.Dv.Dist(t, x.Vec); d < minToT {
			minToT = d
		}
	}
	return q.Lambda*pos(q.Dr.Dist(t, q.Q)-c.maxRel) + (1-q.Lambda)*pos(c.minPair-minToT)
}

// PhiLowerRect is φ⁻ over a single box: a lower bound of Phi over every
// point of the box, combining the relevance lower bound (min distance of the
// box to q) with the diversity lower bound (no point of the box can be
// farther from its nearest O-member than min_x MaxDist(x, box)).
func (q Query) PhiLowerRect(b geom.Rect, O []dataset.Tuple) float64 {
	if len(O) == 0 {
		return q.Lambda * q.Dr.MinDist(q.Q, b)
	}
	return q.phiLowerRectCtx(b, O, q.context(O))
}

func (q Query) phiLowerRectCtx(b geom.Rect, O []dataset.Tuple, c baseContext) float64 {
	if len(O) == 0 {
		return q.Lambda * q.Dr.MinDist(q.Q, b)
	}
	minToBoxUB := math.Inf(1)
	for _, x := range O {
		if d := q.Dv.MaxDist(x.Vec, b); d < minToBoxUB {
			minToBoxUB = d
		}
	}
	return q.Lambda*pos(q.Dr.MinDist(q.Q, b)-c.maxRel) + (1-q.Lambda)*pos(c.minPair-minToBoxUB)
}

// PhiLower is φ⁻ over a union-of-boxes region.
func (q Query) PhiLower(region overlay.Region, O []dataset.Tuple) float64 {
	c := q.context(O)
	best := math.Inf(1)
	for _, b := range region.Boxes {
		if v := q.phiLowerRectCtx(b, O, c); v < best {
			best = v
		}
	}
	return best
}

func pos(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

// Processor is the RIPPLE plug-in for the single-tuple diversification query
// (Algorithms 16-21). Its state is the best φ score found so far (τ).
type Processor struct {
	Query Query
	// Base is the set O the new tuple must diversify; its members are
	// excluded as candidates.
	Base []dataset.Tuple
	// Exclude lists tuple IDs that may not be returned (the full current
	// result set during greedy improvement).
	Exclude map[uint64]bool
	// Tau0 is the initial threshold (+Inf for a plain query; the greedy
	// driver passes the improvement bound of Algorithm 23).
	Tau0 float64

	ctx     baseContext
	ctxOnce sync.Once
}

// prepare caches the O-dependent φ constants once; safe under concurrent use
// (a Processor is shared by every actor of an async Cluster).
func (p *Processor) prepare() {
	p.ctxOnce.Do(func() { p.ctx = p.Query.context(p.Base) })
}

var _ core.Processor = (*Processor)(nil)
var _ plan.Hinter = (*Processor)(nil)

// PlanHints implements plan.Hinter. One diversification pass retrieves a
// single improvement candidate over the base set, so K counts the tuples the
// pass must diversify against rather than a result size.
func (p *Processor) PlanHints() plan.Hints { return plan.Hints{Family: "diversify", K: len(p.Base) + 1} }

type state float64

// InitialState implements core.Processor.
func (p *Processor) InitialState() core.State { return state(p.Tau0) }

// StateTuples implements core.Processor: states carry only a threshold.
func (p *Processor) StateTuples(core.State) int { return 0 }

// bestLocal is the paper's getMostDiverseLocalObject: the eligible local
// tuple with the lowest φ score (ties by ID), or nil. Excluded tuples are
// keyed +Inf, so the store's best-first minimum — which on an R-tree only
// opens subtrees whose φ⁻ can still win — lands on the same tuple the
// original insertion-order scan selected.
func (p *Processor) bestLocal(w overlay.Node) (*dataset.Tuple, float64) {
	p.prepare()
	key := func(t dataset.Tuple) float64 {
		if p.Exclude[t.ID] {
			return math.Inf(1)
		}
		return p.Query.phiCtx(t.Vec, p.Base, p.ctx)
	}
	lower := func(b geom.Rect) float64 { return p.Query.phiLowerRectCtx(b, p.Base, p.ctx) }
	t, s, ok := storage.MinBy(storage.Of(w), key, lower)
	if !ok {
		return nil, math.Inf(1)
	}
	return &t, s
}

// LocalState implements computeLocalState (Algorithm 16).
func (p *Processor) LocalState(w overlay.Node, global core.State) core.State {
	tau := float64(global.(state))
	if _, s := p.bestLocal(w); s < tau {
		return state(s)
	}
	return state(tau)
}

// GlobalState implements computeGlobalState (Algorithm 17).
func (p *Processor) GlobalState(w overlay.Node, global, local core.State) core.State {
	return local
}

// MergeStates implements updateLocalState (Algorithm 19).
func (p *Processor) MergeStates(w overlay.Node, states []core.State) core.State {
	best := math.Inf(1)
	for _, s := range states {
		if v := float64(s.(state)); v < best {
			best = v
		}
	}
	return state(best)
}

// LinkRelevant implements the content half of isLinkRelevant (Algorithm 20).
func (p *Processor) LinkRelevant(w overlay.Node, region overlay.Region, global core.State) bool {
	return p.phiLowerRegion(region) < float64(global.(state))
}

// LinkPriority implements comp (Algorithm 21).
func (p *Processor) LinkPriority(w overlay.Node, region overlay.Region) float64 {
	return p.phiLowerRegion(region)
}

func (p *Processor) phiLowerRegion(region overlay.Region) float64 {
	p.prepare()
	best := math.Inf(1)
	for _, b := range region.Boxes {
		if v := p.Query.phiLowerRectCtx(b, p.Base, p.ctx); v < best {
			best = v
		}
	}
	return best
}

// LocalAnswer implements computeLocalAnswer (Algorithm 18): the best local
// tuple, only if it attains the final local threshold.
func (p *Processor) LocalAnswer(w overlay.Node, local core.State) []dataset.Tuple {
	t, s := p.bestLocal(w)
	if t != nil && s == float64(local.(state)) {
		return []dataset.Tuple{*t}
	}
	return nil
}

// RunSingle answers a single-tuple diversification query: the tuple outside
// base (and exclude) minimising φ, provided its score beats tau0. Returns
// nil when no tuple qualifies.
func RunSingle(initiator overlay.Node, q Query, base []dataset.Tuple, exclude map[uint64]bool, tau0 float64, r int) (*dataset.Tuple, sim.Stats) {
	p := &Processor{Query: q, Base: base, Exclude: exclude, Tau0: tau0}
	res := core.Run(initiator, p, r)
	var best *dataset.Tuple
	bestScore := math.Inf(1)
	for i := range res.Answers {
		t := &res.Answers[i]
		s := q.Phi(t.Vec, base)
		if s < bestScore || (s == bestScore && best != nil && t.ID < best.ID) {
			best, bestScore = t, s
		}
	}
	if best != nil && bestScore >= tau0 {
		best = nil
	}
	return best, res.Stats
}

// BruteSingle is the centralized oracle for RunSingle, used by tests and the
// baseline-fairness checks.
func BruteSingle(ts []dataset.Tuple, q Query, base []dataset.Tuple, exclude map[uint64]bool, tau0 float64) *dataset.Tuple {
	var best *dataset.Tuple
	bestScore := math.Inf(1)
	for i := range ts {
		t := &ts[i]
		if exclude[t.ID] {
			continue
		}
		s := q.Phi(t.Vec, base)
		if s < bestScore || (s == bestScore && best != nil && t.ID < best.ID) {
			best, bestScore = t, s
		}
	}
	if best != nil && bestScore >= tau0 {
		return nil
	}
	return best
}
