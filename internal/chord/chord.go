// Package chord implements the Chord overlay (Stoica et al.): peers sit at
// positions of the unit ring [0,1), each owning the arc from its key to its
// successor's key, with finger links at exponentially increasing distances.
// The paper uses Chord to illustrate that RIPPLE is overlay-generic (§3.1):
// the region of the i-th finger is the arc stretching from the beginning of
// that finger's zone to the beginning of the next finger's zone, which — as a
// union of at most two half-open intervals after unwrapping — fits the
// repository's box-union Region type directly.
package chord

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/storage"
)

// Network is a simulated Chord ring over the one-dimensional unit domain.
type Network struct {
	peers []*Peer // sorted by key
	rng   *rand.Rand
	seq   int
	// storage is the engine peers serve their arc share with. Chord has no
	// options struct, so Build reads RIPPLE_STORAGE (storage.EnvKind).
	storage storage.Kind
}

// Peer is a Chord participant at a fixed ring position.
type Peer struct {
	net    *Network
	key    float64
	seq    int
	tuples []dataset.Tuple

	storeMu sync.Mutex
	store   storage.Store // lazy; dropped whenever the share changes
}

// Build creates a ring of size peers at uniformly random positions.
func Build(size int, seed int64) *Network {
	n := &Network{rng: rand.New(rand.NewSource(seed)), storage: storage.EnvKind()}
	for i := 0; i < size; i++ {
		n.Join()
	}
	return n
}

// Join adds a peer at a fresh random ring position. Tuples of the split arc
// move to the newcomer as in the Chord protocol.
func (n *Network) Join() *Peer {
	key := n.rng.Float64()
	for _, p := range n.peers {
		if p.key == key { // vanishingly unlikely; keep keys distinct
			key = math.Nextafter(key, 1)
		}
	}
	p := &Peer{net: n, key: key, seq: n.seq}
	n.seq++
	idx := sort.Search(len(n.peers), func(i int) bool { return n.peers[i].key >= key })
	n.peers = append(n.peers, nil)
	copy(n.peers[idx+1:], n.peers[idx:])
	n.peers[idx] = p
	// The predecessor previously owned the newcomer's arc; hand over tuples.
	if len(n.peers) > 1 {
		pred := n.peers[(idx-1+len(n.peers))%len(n.peers)]
		var keep, give []dataset.Tuple
		for _, t := range pred.tuples {
			if p.Zone().Contains(t.Vec) {
				give = append(give, t)
			} else {
				keep = append(keep, t)
			}
		}
		pred.tuples, p.tuples = keep, give
		pred.dropStore()
		p.dropStore()
	}
	return p
}

// Leave removes a peer, handing its tuples to the predecessor (which absorbs
// the arc).
func (n *Network) Leave(p *Peer) {
	if len(n.peers) == 1 {
		panic("chord: cannot remove the last peer")
	}
	idx := n.indexOf(p)
	pred := n.peers[(idx-1+len(n.peers))%len(n.peers)]
	pred.tuples = append(pred.tuples, p.tuples...)
	n.peers = append(n.peers[:idx], n.peers[idx+1:]...)
	p.tuples = nil
	pred.dropStore()
	p.dropStore()
}

func (n *Network) indexOf(p *Peer) int {
	idx := sort.Search(len(n.peers), func(i int) bool { return n.peers[i].key >= p.key })
	return idx
}

// Dims implements overlay.Network: Chord indexes a one-dimensional domain.
func (n *Network) Dims() int { return 1 }

// Size implements overlay.Network.
func (n *Network) Size() int { return len(n.peers) }

// Nodes implements overlay.Network.
func (n *Network) Nodes() []overlay.Node {
	out := make([]overlay.Node, len(n.peers))
	for i, p := range n.peers {
		out[i] = p
	}
	return out
}

// Peers returns the ring in key order.
func (n *Network) Peers() []*Peer { return n.peers }

// Locate implements overlay.Network: the owner of point p is the last peer
// whose key does not exceed it (wrapping below the first peer).
func (n *Network) Locate(p geom.Point) overlay.Node { return n.owner(p[0]) }

func (n *Network) owner(k float64) *Peer {
	idx := sort.Search(len(n.peers), func(i int) bool { return n.peers[i].key > k })
	if idx == 0 {
		return n.peers[len(n.peers)-1] // wrap: arc of the last peer
	}
	return n.peers[idx-1]
}

// Insert implements overlay.Network.
func (n *Network) Insert(t dataset.Tuple) {
	w := n.owner(t.Vec[0])
	w.tuples = append(w.tuples, t)
	w.dropStore()
}

// Delete implements overlay.Deleter: it removes the tuple with t.ID from the
// peer owning t.Vec[0], rebuilding the share into a fresh backing array so
// snapshots taken by in-flight queries stay intact.
func (n *Network) Delete(t dataset.Tuple) bool {
	w := n.owner(t.Vec[0])
	for i, u := range w.tuples {
		if u.ID == t.ID {
			w.tuples = append(w.tuples[:i:i], w.tuples[i+1:]...)
			w.dropStore()
			return true
		}
	}
	return false
}

// RandomPeer returns a uniformly random peer.
func (n *Network) RandomPeer(rng *rand.Rand) *Peer {
	return n.peers[rng.Intn(len(n.peers))]
}

// ID implements overlay.Node.
func (p *Peer) ID() string { return fmt.Sprintf("chord-%d@%.6f", p.seq, p.key) }

// Tuples implements overlay.Node.
func (p *Peer) Tuples() []dataset.Tuple { return p.tuples }

// Store implements storage.Provider: the peer's arc share behind the engine
// selected at Build time, built lazily and dropped whenever the share changes.
func (p *Peer) Store() storage.Store {
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	if p.store == nil {
		p.store = storage.New(p.net.storage, p.tuples)
	}
	return p.store
}

func (p *Peer) dropStore() {
	p.storeMu.Lock()
	p.store = nil
	p.storeMu.Unlock()
}

// successor returns the next peer clockwise.
func (p *Peer) successor() *Peer {
	n := p.net
	idx := n.indexOf(p)
	return n.peers[(idx+1)%len(n.peers)]
}

// Zone implements overlay.Node: the arc [key, successor.key), which wraps
// into two intervals for the last peer on the ring.
func (p *Peer) Zone() overlay.Region { return arc(p.key, p.successor().key) }

// arc renders the ring interval [from, to) as a union of boxes, splitting at
// the origin when it wraps. from == to denotes the full ring.
func arc(from, to float64) overlay.Region {
	switch {
	case from < to:
		return overlay.FromRect(geom.Rect{Lo: geom.Point{from}, Hi: geom.Point{to}})
	default:
		return overlay.Region{Boxes: []geom.Rect{
			{Lo: geom.Point{from}, Hi: geom.Point{1}},
			{Lo: geom.Point{0}, Hi: geom.Point{to}},
		}}
	}
}

// Links implements overlay.Node: the successor plus the finger peers at
// ring distances 2^-i, deduplicated; the region of each link is the arc from
// the beginning of its zone to the beginning of the next link's zone (the
// last region ends at this peer's own key), exactly the paper's Chord region
// construction. Together the regions cover the ring minus the peer's zone.
func (p *Peer) Links() []overlay.Link {
	n := p.net
	if len(n.peers) == 1 {
		return nil
	}
	targets := map[*Peer]bool{p.successor(): true}
	m := int(math.Ceil(math.Log2(float64(len(n.peers))))) + 1
	for i := 1; i <= m; i++ {
		t := math.Mod(p.key+math.Pow(2, -float64(i)), 1)
		f := n.owner(t)
		if f != p {
			targets[f] = true
		}
	}
	// Order fingers by clockwise distance of their zone start from the end
	// of p's own zone.
	succKey := p.successor().key
	type entry struct {
		peer *Peer
		dist float64
	}
	entries := make([]entry, 0, len(targets))
	for f := range targets {
		entries = append(entries, entry{peer: f, dist: math.Mod(f.key-succKey+1, 1)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].dist < entries[j].dist })

	links := make([]overlay.Link, len(entries))
	for i, e := range entries {
		endKey := p.key // last region stretches to the peer's own zone
		if i+1 < len(entries) {
			endKey = entries[i+1].peer.key
		}
		links[i] = overlay.Link{To: e.peer, Region: arc(e.peer.key, endKey)}
	}
	return links
}
