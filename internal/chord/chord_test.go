package chord

import (
	"math/rand"
	"testing"

	"ripple/internal/baselines/naive"
	"ripple/internal/dataset"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

func TestBuildInvariants(t *testing.T) {
	for _, size := range []int{1, 2, 3, 50, 150} {
		n := Build(size, int64(size))
		if err := overlay.CheckInvariants(n, 300, 5); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestBroadcastCoverage(t *testing.T) {
	for _, size := range []int{2, 9, 64} {
		n := Build(size, int64(size)+3)
		overlay.Load(n, dataset.Uniform(100, 1, 2))
		res := naive.Broadcast(n.Peers()[0], func(w overlay.Node) []dataset.Tuple { return w.Tuples() })
		if res.Stats.PeersReached() != size {
			t.Fatalf("size %d: reached %d peers", size, res.Stats.PeersReached())
		}
		if len(res.Answers) != 100 {
			t.Fatalf("size %d: %d answers, want 100 exactly once", size, len(res.Answers))
		}
	}
}

func TestBroadcastLatencyLogarithmic(t *testing.T) {
	n := Build(512, 7)
	res := naive.Broadcast(n.Peers()[0], func(w overlay.Node) []dataset.Tuple { return nil })
	// Chord fingers give O(log n) flooding depth; allow generous slack.
	if res.Stats.Latency > 4*10 {
		t.Fatalf("broadcast latency %d too high for 512-peer Chord", res.Stats.Latency)
	}
}

func TestTopKOverChord(t *testing.T) {
	// Generic RIPPLE over a 1-d Chord ring: rank tuples by their key.
	ts := dataset.Uniform(1000, 1, 9)
	n := Build(32, 11)
	overlay.Load(n, ts)
	f := topk.UniformLinear(1)
	want := topk.Brute(ts, f, 10)
	rng := rand.New(rand.NewSource(1))
	for _, r := range []int{0, 2, 1 << 20} {
		got, _ := topk.Run(n.RandomPeer(rng), f, 10, r)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("r=%d: result %d = %v, want %v", r, i, got[i], want[i])
			}
		}
	}
}

func TestChurn(t *testing.T) {
	n := Build(20, 13)
	overlay.Load(n, dataset.Uniform(150, 1, 5))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		if rng.Intn(2) == 0 && n.Size() > 2 {
			n.Leave(n.RandomPeer(rng))
		} else {
			n.Join()
		}
	}
	if err := overlay.CheckInvariants(n, 200, 9); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	total := 0
	for _, w := range n.Peers() {
		total += len(w.Tuples())
	}
	if total != 150 {
		t.Fatalf("churn lost tuples: %d/150", total)
	}
}

func TestOwnerWraps(t *testing.T) {
	n := Build(5, 17)
	first := n.Peers()[0]
	// A key below the first peer belongs to the last peer's wrapping arc.
	if first.key > 0 {
		w := n.owner(first.key / 2)
		if w != n.Peers()[len(n.Peers())-1] {
			t.Fatalf("wrap-around ownership broken")
		}
	}
}
