// Package plan is the adaptive query planner: it chooses a query's execution
// mode — fast (r = 0), slow (r = ∞) or ripple(r) — per query, from a
// self-tuning cost model instead of a static user-supplied knob.
//
// The planner estimates a composite cost
//
//	cost = α·latency + β·messages
//
// for every candidate ripple parameter ("arm") and picks the cheapest. Arms
// are bucketed by (query family, dimensionality, overlay depth, result-size
// magnitude); each bucket's estimates are seeded by a closed-form prior
// derived from the paper's §3.2 worst-case analysis (Lemmas 1–3, reproduced
// in prior.go so the package stays import-light) and then refined online:
// every completed query reports its observed hop latency and message count
// back through Observe, which folds them in with an exponentially weighted
// moving average. A deterministic exploration schedule (every ExploreEvery-th
// decision per bucket rotates through the non-best arms) keeps stale
// estimates from pinning a bucket forever — no randomness and no wall clock,
// so planned runs stay replayable under the repository's determinism
// invariants.
//
// The planner is shared mutable state on the initiator: one instance serves
// every query of a runtime (core.Options.Planner, async.ClusterOptions,
// netpeer.Options) and all access is serialised by an internal mutex.
package plan

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"ripple/internal/metrics"
	"ripple/internal/storage"
)

// RAuto is the sentinel ripple parameter meaning "let the planner choose".
// Runtimes that receive RAuto without a configured planner degrade to the
// fast algorithm (r = 0) — the documented fallback, so an auto query against
// a legacy or unplanned peer still answers.
const RAuto = -1

// RSlow is the effectively infinite ripple parameter the planner uses for
// its slow arm. It matches the facade's Slow constant: no overlay approaches
// depth 2^20, so the parameter never decays to fast mode.
const RSlow = 1 << 20

// Mode names the three template algorithms a decision can select.
type Mode int

const (
	// ModeFast is Algorithm 1: forward to all relevant links at once (r = 0).
	ModeFast Mode = iota
	// ModeRipple is Algorithm 3 with an intermediate r.
	ModeRipple
	// ModeSlow is Algorithm 2: one link at a time, bound-pruned (r = ∞).
	ModeSlow
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeFast:
		return "fast"
	case ModeSlow:
		return "slow"
	default:
		return "ripple"
	}
}

// ModeOf classifies a concrete ripple parameter.
func ModeOf(r int) Mode {
	switch {
	case r <= 0:
		return ModeFast
	case r >= RSlow:
		return ModeSlow
	default:
		return ModeRipple
	}
}

// Query describes one query to be planned: everything the cost model reads.
// Zero fields are tolerated — the planner falls back to conservative
// defaults — so every runtime can fill in whatever it knows.
type Query struct {
	// Family is the query type ("topk", "skyline", "diversify", "knn", ...).
	Family string
	// K is the result size for top-k-shaped families (0 when not applicable).
	K int
	// Dims is the dimensionality of the indexed domain.
	Dims int
	// OverlaySize is the number of peers when known (the actor cluster and
	// the harness know it; a TCP peer does not and leaves it 0).
	OverlaySize int
	// Degree is the initiator's link count. Over MIDAS the link count tracks
	// the virtual k-d tree depth, so it substitutes for log2(OverlaySize)
	// when the overlay size is unknown.
	Degree int
	// Local is the initiator's storage-engine statistics (engine kind, tuple
	// count, tree height): the per-zone local-work input of the cost model.
	Local storage.Stats
}

// deltaMax estimates ∆, the MIDAS virtual-tree depth the latency lemmas are
// parameterised by.
func (q Query) deltaMax() int {
	if q.OverlaySize > 1 {
		return log2int(q.OverlaySize)
	}
	if q.Degree > 0 {
		return q.Degree
	}
	return 4
}

// peers estimates the overlay size.
func (q Query) peers() int {
	if q.OverlaySize > 1 {
		return q.OverlaySize
	}
	return 1 << uint(q.deltaMax())
}

// key buckets the query for the cost table: family, dimensionality, overlay
// depth, and the magnitude of k. Buckets are coarse on purpose — estimates
// must accumulate across queries that behave alike.
func (q Query) key() string {
	family := q.Family
	if family == "" {
		family = "?"
	}
	return fmt.Sprintf("%s/d%d/t%d/k%d", family, q.Dims, q.deltaMax(), bits.Len(uint(q.K)))
}

// Hints is the planner-relevant shape of a query, reported by processors that
// implement Hinter so runtimes can plan without knowing concrete types.
type Hints struct {
	// Family names the query type.
	Family string
	// K is the result size (0 when the family has none).
	K int
}

// Hinter is implemented by query processors that can describe themselves to
// the planner.
type Hinter interface {
	PlanHints() Hints
}

// Decision is one planning outcome.
type Decision struct {
	// Mode classifies R.
	Mode Mode
	// R is the ripple parameter the query should run with.
	R int
	// Cost is the arm's estimated composite cost at decision time.
	Cost float64
	// Explored marks a decision made by the deterministic exploration
	// schedule rather than greedily (the arm was not the current minimum).
	Explored bool
	// Key is the cost-table bucket the decision was read from.
	Key string
}

// String renders the decision the way traces and replies carry it:
// "fast", "ripple(2)", "slow", with "+explore" appended for exploration picks.
func (d Decision) String() string {
	s := d.Mode.String()
	if d.Mode == ModeRipple {
		s = fmt.Sprintf("ripple(%d)", d.R)
	}
	if d.Explored {
		s += "+explore"
	}
	return s
}

// Options tunes a Planner. The zero value selects the defaults.
type Options struct {
	// Alpha weights observed latency (hops) in the composite cost. Zero
	// means the default (1).
	Alpha float64
	// Beta weights observed messages. Zero means the default (0.05): one
	// hop of latency trades against twenty messages, which keeps the slow
	// extreme from winning every bucket on congestion alone.
	Beta float64
	// Gamma is the EWMA blending factor for observations: estimate =
	// γ·observed + (1−γ)·estimate. Zero means the default (0.3).
	Gamma float64
	// ExploreEvery makes every n-th decision per bucket rotate through the
	// non-best arms so estimates stay current. Zero means the default (16);
	// negative disables exploration (pure greedy, fully static once
	// converged).
	ExploreEvery int
	// Arms are the candidate ripple parameters. Nil means the default
	// {0, 1, 2, 4, RSlow}.
	Arms []int
	// Metrics optionally receives the ripple_plan_* series (decision counts
	// per mode, explorations, observations, live bucket count). Nil disables
	// instrumentation at zero cost.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Beta == 0 {
		o.Beta = 0.05
	}
	if o.Gamma == 0 {
		o.Gamma = 0.3
	}
	if o.ExploreEvery == 0 {
		o.ExploreEvery = 16
	}
	if len(o.Arms) == 0 {
		o.Arms = []int{0, 1, 2, 4, RSlow}
	}
	return o
}

// arm is one candidate ripple parameter's running estimate within a bucket.
type arm struct {
	cost  float64 // current composite-cost estimate (prior, then EWMA)
	prior float64 // the closed-form seed, kept for Explain
	obs   int     // observations folded in
}

// entry is one bucket of the cost table.
type entry struct {
	arms  []arm
	picks int // decisions served from this bucket (drives exploration)
}

// Planner is the shared, self-tuning cost model. Safe for concurrent use.
type Planner struct {
	opts Options

	mu    sync.Mutex
	table map[string]*entry

	decisions    [3]*metrics.Counter // indexed by Mode
	explorations *metrics.Counter
	observations *metrics.Counter
	buckets      *metrics.Gauge
}

// New builds a planner. A nil Options.Metrics registry is fine (instruments
// are nil-safe).
func New(o Options) *Planner {
	o = o.withDefaults()
	p := &Planner{opts: o, table: make(map[string]*entry)}
	r := o.Metrics
	for _, m := range []Mode{ModeFast, ModeRipple, ModeSlow} {
		p.decisions[m] = r.Counter(
			metrics.Label("ripple_plan_decisions_total", "mode", m.String()),
			"planner decisions by chosen mode")
	}
	p.explorations = r.Counter("ripple_plan_explorations_total",
		"decisions made by the deterministic exploration schedule instead of greedily")
	p.observations = r.Counter("ripple_plan_observations_total",
		"completed queries whose observed cost was folded into the model")
	p.buckets = r.Gauge("ripple_plan_buckets",
		"live cost-table buckets (query-shape classes with estimates)")
	return p
}

// Default is a planner with default options and no metrics.
func Default() *Planner { return New(Options{}) }

// entryFor returns the bucket for q, seeding priors on first use. Callers
// hold p.mu.
func (p *Planner) entryFor(q Query) *entry {
	key := q.key()
	e := p.table[key]
	if e == nil {
		e = &entry{arms: make([]arm, len(p.opts.Arms))}
		for i, r := range p.opts.Arms {
			c := p.priorCost(q, r)
			e.arms[i] = arm{cost: c, prior: c}
		}
		p.table[key] = e
		p.buckets.Set(int64(len(p.table)))
	}
	return e
}

// Choose picks the execution mode and ripple parameter for q.
func (p *Planner) Choose(q Query) Decision {
	p.mu.Lock()
	e := p.entryFor(q)
	e.picks++
	best := 0
	for i := range e.arms {
		if e.arms[i].cost < e.arms[best].cost {
			best = i
		}
	}
	idx, explored := best, false
	if n := p.opts.ExploreEvery; n > 0 && len(e.arms) > 1 && e.picks%n == 0 {
		// Rotate deterministically through the non-best arms: the rotation
		// counter is the bucket's own decision count, so replaying the same
		// query sequence replays the same exploration picks.
		rot := (e.picks/n - 1) % (len(e.arms) - 1)
		idx = rot
		if idx >= best {
			idx++
		}
		explored = true
	}
	r := p.opts.Arms[idx]
	d := Decision{Mode: ModeOf(r), R: r, Cost: e.arms[idx].cost, Explored: explored, Key: q.key()}
	p.mu.Unlock()

	p.decisions[d.Mode].Inc()
	if explored {
		p.explorations.Inc()
	}
	return d
}

// Observe feeds one completed query's measured cost back into the model:
// latency in hops and total messages, exactly as sim.Stats accounts them.
// The r reported is mapped onto the nearest arm, so static runs (and legacy
// callers with off-arm parameters) refine the model too.
func (p *Planner) Observe(q Query, r, latencyHops, msgs int) {
	if latencyHops < 0 || msgs < 0 {
		return
	}
	observed := p.opts.Alpha*float64(latencyHops) + p.opts.Beta*float64(msgs)
	p.mu.Lock()
	e := p.entryFor(q)
	a := &e.arms[p.armFor(r)]
	a.cost = p.opts.Gamma*observed + (1-p.opts.Gamma)*a.cost
	a.obs++
	p.mu.Unlock()
	p.observations.Inc()
}

// armFor maps a concrete ripple parameter onto the nearest arm index.
// Distance is taken in log space: ripple parameters act multiplicatively
// (each unit of r roughly doubles the sequential rounds), so r = 2^19 is a
// slow-family setting, not "closest to 4". Callers hold p.mu.
func (p *Planner) armFor(r int) int {
	if r < 0 {
		r = 0
	}
	best, bestDist := 0, math.Inf(1)
	for i, a := range p.opts.Arms {
		d := math.Abs(math.Log2(1+float64(a)) - math.Log2(1+float64(r)))
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// ArmEstimate is one row of an Explain table.
type ArmEstimate struct {
	R            int
	Mode         Mode
	Cost         float64 // current estimate
	Prior        float64 // the closed-form seed
	Observations int
	Chosen       bool // the arm a greedy Choose would pick now
}

// Explain returns the bucket's full per-arm cost table for q (seeding priors
// if the bucket is new), in arm order, with the greedy pick marked. It never
// advances the exploration schedule — explaining a query does not perturb
// planning.
func (p *Planner) Explain(q Query) []ArmEstimate {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entryFor(q)
	best := 0
	for i := range e.arms {
		if e.arms[i].cost < e.arms[best].cost {
			best = i
		}
	}
	out := make([]ArmEstimate, len(e.arms))
	for i, a := range e.arms {
		r := p.opts.Arms[i]
		out[i] = ArmEstimate{R: r, Mode: ModeOf(r), Cost: a.cost, Prior: a.prior, Observations: a.obs, Chosen: i == best}
	}
	return out
}

func log2int(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n)
}
