package plan

import (
	"math"

	"ripple/internal/storage"
)

// Closed-form cold-start priors, derived from the paper's §3.2 worst-case
// analysis. The latency lemmas are reproduced here rather than imported from
// internal/core so the import direction stays core → plan (the engine
// consumes the planner, never the reverse).
//
//	Lemma 1 (fast):  L_f(δ) = ∆ − δ
//	Lemma 2 (slow):  L_s(δ) = 2^(∆−δ) − 1
//	Lemma 3 (ripple): L_r(δ, r) = 1 + L_r(δ+1, r) + L_r(δ+1, r−1),
//	                 L_r(δ, 0) = ∆ − δ,  L_r(∆, r) = 0
//
// Messages have no closed form in the paper, so the prior uses the geometric
// interpolation the ripple template implies: fast floods every peer (≈ 2N
// messages: one query and one state/answer per peer), slow visits only the
// fraction the family's bound pruning admits, and each unit of r halves the
// gap (one extra sequential round doubles the state a peer can prune with).
// The prior only has to make cold-start picks sane; Observe refines every
// estimate with measured costs from the first completed query on.

// priorLatency evaluates the worst-case hop latency of arm r for a tree of
// depth deltaMax, from the lemmas above (δ = 0: the initiator plans for the
// whole domain).
func priorLatency(deltaMax, r int) int {
	if deltaMax <= 0 {
		return 0
	}
	if r <= 0 {
		return deltaMax // Lemma 1
	}
	if r >= deltaMax {
		return (1 << uint(deltaMax)) - 1 // Lemma 2 (r ≥ ∆ degenerates to slow)
	}
	// Lemma 3 by dynamic programming: table[d][k] = L_r(d, k).
	table := make([][]int, deltaMax+1)
	for d := deltaMax; d >= 0; d-- {
		table[d] = make([]int, r+1)
		for k := 0; k <= r; k++ {
			switch {
			case d == deltaMax:
				table[d][k] = 0
			case k == 0:
				table[d][k] = deltaMax - d
			default:
				table[d][k] = 1 + table[d+1][k] + table[d+1][k-1]
			}
		}
	}
	return table[0][r]
}

// selectivity estimates the fraction of peers a fully sequential (slow)
// traversal still visits after bound pruning. Top-k-shaped families prune
// aggressively once k tuples are held; skylines prune less and degrade with
// dimensionality (higher-dimensional skylines are larger); diversification
// re-examines candidates and prunes least. These are heuristics — the
// feedback loop corrects them per bucket.
func selectivity(q Query) float64 {
	n := float64(q.peers())
	var s float64
	switch q.Family {
	case "topk", "knn":
		s = 0.15 + float64(q.K)/n
	case "skyline":
		s = 0.3 + 0.05*float64(q.Dims)
	case "diversify":
		s = 0.45 + float64(q.K)/n
	default:
		s = 0.5
	}
	return math.Min(1, math.Max(0.05, s))
}

// priorMessages interpolates the expected message count of arm r between the
// fast flood (2N) and the pruned slow traversal (2N·selectivity).
func priorMessages(q Query, r int) float64 {
	n := float64(q.peers())
	msgsFast := 2 * n
	msgsSlow := 2 * n * selectivity(q)
	if r <= 0 {
		return msgsFast
	}
	if r >= 63 {
		return msgsSlow
	}
	return msgsSlow + (msgsFast-msgsSlow)/float64(int64(1)<<uint(r))
}

// localUnit converts the initiator's storage statistics into a per-visited-
// peer local-work charge in hop-equivalents: an indexed store descends its
// tree (≈ height node visits), a flat store scans its share. The charge is a
// tiebreaker — it grows the message term for stores where every extra
// visited peer is expensive — not a primary driver.
func localUnit(st storage.Stats) float64 {
	if st.Height > 0 {
		return float64(st.Height) / 64
	}
	return float64(st.Len) / 4096
}

// priorCost seeds one arm's composite cost estimate.
func (p *Planner) priorCost(q Query, r int) float64 {
	lat := float64(priorLatency(q.deltaMax(), r))
	msgs := priorMessages(q, r)
	visited := msgs / 2
	return p.opts.Alpha*lat + p.opts.Beta*msgs + visited*localUnit(q.Local)
}
