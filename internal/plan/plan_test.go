package plan

import (
	"testing"

	"ripple/internal/metrics"
	"ripple/internal/storage"
)

func topkQuery(size int) Query {
	return Query{Family: "topk", K: 10, Dims: 3, OverlaySize: size,
		Local: storage.Stats{Kind: storage.KindScan, Len: 100}}
}

// TestPriorLatencyMatchesLemmas pins the reproduced closed forms to the
// lemmas' fixed points: fast is ∆, slow is 2^∆−1, and ripple(r) is monotone
// between them.
func TestPriorLatencyMatchesLemmas(t *testing.T) {
	for _, deltaMax := range []int{1, 4, 10} {
		if got := priorLatency(deltaMax, 0); got != deltaMax {
			t.Errorf("∆=%d fast: got %d, want %d", deltaMax, got, deltaMax)
		}
		if got, want := priorLatency(deltaMax, RSlow), (1<<uint(deltaMax))-1; got != want {
			t.Errorf("∆=%d slow: got %d, want %d", deltaMax, got, want)
		}
		prev := priorLatency(deltaMax, 0)
		for r := 1; r <= deltaMax; r++ {
			cur := priorLatency(deltaMax, r)
			if cur < prev {
				t.Errorf("∆=%d: latency not monotone in r: L(%d)=%d < L(%d)=%d", deltaMax, r, cur, r-1, prev)
			}
			prev = cur
		}
	}
	// Lemma 3 recurrence spot check: ∆=3, r=1 → L(0,1)=1+L(1,1)+L(1,0)
	// = 1 + (1+L(2,1)+L(2,0)) + 2 = 1 + (1+1+1) + 2 = 6.
	if got := priorLatency(3, 1); got != 6 {
		t.Errorf("L_r(∆=3, r=1): got %d, want 6", got)
	}
}

// TestPriorMessagesInterpolates: fast floods, slow prunes, and r interpolates
// monotonically between them.
func TestPriorMessagesInterpolates(t *testing.T) {
	q := topkQuery(1024)
	fast, slow := priorMessages(q, 0), priorMessages(q, RSlow)
	if fast != 2*1024 {
		t.Errorf("fast messages: got %.0f, want %d", fast, 2*1024)
	}
	if slow >= fast {
		t.Errorf("slow messages %.0f not below fast %.0f", slow, fast)
	}
	prev := fast
	for r := 1; r <= 8; r++ {
		cur := priorMessages(q, r)
		if cur > prev {
			t.Errorf("messages not monotone in r: m(%d)=%.1f > m(%d)=%.1f", r, cur, r-1, prev)
		}
		prev = cur
	}
}

// TestColdStartDecisions: with priors only, the planner must avoid both
// extremes' pathologies — never slow on a large overlay (exponential
// latency), never a negative or absurd r.
func TestColdStartDecisions(t *testing.T) {
	p := New(Options{ExploreEvery: -1})
	for _, fam := range []string{"topk", "skyline", "diversify", "knn"} {
		q := topkQuery(4096)
		q.Family = fam
		d := p.Choose(q)
		if d.R < 0 {
			t.Errorf("%s: planner chose r=%d < 0", fam, d.R)
		}
		if d.Mode == ModeSlow {
			t.Errorf("%s: planner chose slow on a 4096-peer overlay (worst-case latency 2^12−1)", fam)
		}
	}
}

// TestObserveConvergence: feeding consistent observed costs must converge the
// chosen arm onto the measured optimum even when the priors preferred
// another arm.
func TestObserveConvergence(t *testing.T) {
	p := New(Options{ExploreEvery: -1})
	q := topkQuery(256)
	// Report arm r=4 as dramatically cheap and every other arm as expensive.
	for i := 0; i < 50; i++ {
		p.Observe(q, 4, 1, 2)
		for _, r := range []int{0, 1, 2, RSlow} {
			p.Observe(q, r, 500, 5000)
		}
	}
	if d := p.Choose(q); d.R != 4 {
		t.Fatalf("after convergent feedback planner chose r=%d, want 4", d.R)
	}
}

// TestDeterministicExploration: the same decision sequence replays the same
// exploration picks, and exploration actually visits non-best arms.
func TestDeterministicExploration(t *testing.T) {
	run := func() []Decision {
		p := New(Options{ExploreEvery: 4})
		q := topkQuery(256)
		out := make([]Decision, 0, 40)
		for i := 0; i < 40; i++ {
			out = append(out, p.Choose(q))
		}
		return out
	}
	a, b := run(), run()
	explored := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identical replays: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Explored {
			explored++
		}
	}
	if explored != 10 { // every 4th of 40 decisions
		t.Fatalf("explored %d of 40 decisions, want 10", explored)
	}
	seen := map[int]bool{}
	for _, d := range a {
		if d.Explored {
			seen[d.R] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("exploration rotated through %d arms, want several: %v", len(seen), seen)
	}
}

// TestExplain: the table covers every arm, priors are kept, and the greedy
// pick is marked exactly once. Explain must not advance the exploration
// schedule.
func TestExplain(t *testing.T) {
	p := New(Options{ExploreEvery: 2})
	q := topkQuery(512)
	for i := 0; i < 10; i++ {
		p.Explain(q)
	}
	table := p.Explain(q)
	if len(table) != 5 {
		t.Fatalf("explain rows: got %d, want 5 default arms", len(table))
	}
	chosen := 0
	for _, row := range table {
		if row.Chosen {
			chosen++
		}
		if row.Prior <= 0 {
			t.Errorf("arm r=%d: prior %.3f not positive", row.R, row.Prior)
		}
	}
	if chosen != 1 {
		t.Fatalf("%d arms marked chosen, want 1", chosen)
	}
	// Ten Explains must not have consumed exploration slots: the first real
	// decision is greedy (picks counter still at 1).
	if d := p.Choose(q); d.Explored {
		t.Fatal("Explain advanced the exploration schedule")
	}
}

// TestObserveMapsOffArmParameters: static runs with r values between arms
// still land on the nearest arm.
func TestObserveMapsOffArmParameters(t *testing.T) {
	p := New(Options{})
	if got := p.armFor(3); p.opts.Arms[got] != 2 && p.opts.Arms[got] != 4 {
		t.Fatalf("r=3 mapped to arm %d", p.opts.Arms[got])
	}
	if got := p.armFor(1 << 19); p.opts.Arms[got] != RSlow {
		t.Fatalf("r=2^19 mapped to arm %d, want slow", p.opts.Arms[got])
	}
	if got := p.armFor(-5); p.opts.Arms[got] != 0 {
		t.Fatalf("r=-5 mapped to arm %d, want 0", p.opts.Arms[got])
	}
}

// TestPlanMetrics: decision, exploration and observation counters move.
func TestPlanMetrics(t *testing.T) {
	reg := metrics.New()
	p := New(Options{Metrics: reg, ExploreEvery: 2})
	q := topkQuery(256)
	for i := 0; i < 4; i++ {
		p.Observe(q, p.Choose(q).R, 5, 50)
	}
	if got := p.observations.Value(); got != 4 {
		t.Fatalf("observations counter %d, want 4", got)
	}
	if got := p.explorations.Value(); got != 2 {
		t.Fatalf("explorations counter %d, want 2", got)
	}
	var total int64
	for _, c := range p.decisions {
		total += c.Value()
	}
	if total != 4 {
		t.Fatalf("decision counters sum %d, want 4", total)
	}
	if got := p.buckets.Value(); got != 1 {
		t.Fatalf("bucket gauge %d, want 1", got)
	}
}
