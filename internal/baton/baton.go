// Package baton implements the BATON overlay (Jagadish, Ooi, Vu — VLDB 2005):
// a BAlanced Tree Overlay Network in which every node of a balanced binary
// tree is a peer responsible for a contiguous range of a one-dimensional
// keyspace (in-order traversal yields key order). Besides parent/child and
// adjacent (in-order neighbour) links, each peer keeps left and right routing
// tables pointing to same-level peers at distances 2^j, giving O(log n)
// routing. BATON hosts the paper's SSP skyline competitor, which maps
// multidimensional data onto the keyspace with a Z-curve.
package baton

import (
	"fmt"
	"math/bits"
	"sort"

	"ripple/internal/dataset"
)

// Network is a simulated BATON overlay with a fixed peer population laid out
// as a complete binary tree (heap order, last level filled left to right).
type Network struct {
	peers  []*Peer   // heap order; index 0 is the root
	byRank []*Peer   // in-order rank -> peer
	bounds []float64 // len(peers)+1 ascending range boundaries over [0,1)
}

// Peer is a BATON participant: one node of the balanced tree.
type Peer struct {
	net    *Network
	idx    int // heap index
	rank   int // in-order rank
	tuples []dataset.Tuple
}

// Build creates a network of size peers partitioning [0,1) at the given
// boundaries (bounds must be ascending with bounds[0] = 0, bounds[size] = 1;
// pass nil for a uniform partition). Range r — [bounds[r], bounds[r+1]) —
// goes to the peer with in-order rank r, so key order equals in-order
// traversal order, BATON's defining property.
func Build(size int, bounds []float64) *Network {
	if size <= 0 {
		panic("baton: non-positive size")
	}
	if bounds == nil {
		bounds = make([]float64, size+1)
		for i := range bounds {
			bounds[i] = float64(i) / float64(size)
		}
	}
	if len(bounds) != size+1 {
		panic(fmt.Sprintf("baton: %d bounds for %d peers", len(bounds), size))
	}
	n := &Network{bounds: bounds}
	n.peers = make([]*Peer, size)
	for i := range n.peers {
		n.peers[i] = &Peer{net: n, idx: i}
	}
	n.byRank = make([]*Peer, size)
	rank := 0
	var inorder func(idx int)
	inorder = func(idx int) {
		if idx >= size {
			return
		}
		inorder(2*idx + 1)
		n.peers[idx].rank = rank
		n.byRank[rank] = n.peers[idx]
		rank++
		inorder(2*idx + 2)
	}
	inorder(0)
	return n
}

// EqualCountBounds derives range boundaries that split the given keys (not
// necessarily sorted) into size ranges of near-equal cardinality — the load
// balance BATON's rotations maintain.
func EqualCountBounds(keys []float64, size int) []float64 {
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	bounds := make([]float64, size+1)
	bounds[size] = 1
	for r := 1; r < size; r++ {
		i := r * len(sorted) / size
		if i < len(sorted) {
			bounds[r] = sorted[i]
		} else {
			bounds[r] = 1
		}
	}
	// Guard against duplicate keys collapsing a range; enforce monotonicity.
	for r := 1; r <= size; r++ {
		if bounds[r] < bounds[r-1] {
			bounds[r] = bounds[r-1]
		}
	}
	return bounds
}

// Size returns the number of peers.
func (n *Network) Size() int { return len(n.peers) }

// Peers returns all peers in heap order.
func (n *Network) Peers() []*Peer { return n.peers }

// ByRank returns the peer with the given in-order rank.
func (n *Network) ByRank(r int) *Peer { return n.byRank[r] }

// Owner returns the peer responsible for key.
func (n *Network) Owner(key float64) *Peer {
	r := sort.SearchFloat64s(n.bounds, key)
	// SearchFloat64s finds the first bound >= key; range r-1 = [b[r-1], b[r])
	// contains key unless key equals the bound exactly.
	if r < len(n.bounds) && n.bounds[r] == key {
		r++
	}
	r--
	if r < 0 {
		r = 0
	}
	if r >= len(n.byRank) {
		r = len(n.byRank) - 1
	}
	return n.byRank[r]
}

// Insert stores a tuple at the owner of the given 1-d key.
func (n *Network) Insert(key float64, t dataset.Tuple) {
	w := n.Owner(key)
	w.tuples = append(w.tuples, t)
}

// ID identifies the peer.
func (p *Peer) ID() string { return fmt.Sprintf("baton-%d", p.idx) }

// Rank returns the peer's in-order rank.
func (p *Peer) Rank() int { return p.rank }

// Range returns the peer's key range [lo, hi).
func (p *Peer) Range() (lo, hi float64) {
	return p.net.bounds[p.rank], p.net.bounds[p.rank+1]
}

// Tuples returns the peer's stored tuples.
func (p *Peer) Tuples() []dataset.Tuple { return p.tuples }

// Level returns the peer's tree level (root = 0).
func (p *Peer) Level() int { return bits.Len(uint(p.idx+1)) - 1 }

// Links returns the peer's BATON links: parent, children, the two adjacent
// (in-order) peers, and the left/right routing tables (same-level peers at
// distances 2^j).
func (p *Peer) Links() []*Peer {
	n := p.net
	size := len(n.peers)
	var out []*Peer
	add := func(idx int) {
		if idx >= 0 && idx < size && idx != p.idx {
			out = append(out, n.peers[idx])
		}
	}
	if p.idx > 0 {
		add((p.idx - 1) / 2)
	}
	add(2*p.idx + 1)
	add(2*p.idx + 2)
	// Adjacent links by in-order rank.
	if p.rank > 0 {
		out = append(out, n.byRank[p.rank-1])
	}
	if p.rank+1 < size {
		out = append(out, n.byRank[p.rank+1])
	}
	// Routing tables: same level, positions ±2^j.
	level := p.Level()
	levelStart := 1<<uint(level) - 1
	pos := p.idx - levelStart
	levelSize := 1 << uint(level)
	for j := 0; ; j++ {
		d := 1 << uint(j)
		if d >= levelSize && j > 0 {
			break
		}
		if pos-d >= 0 {
			add(levelStart + pos - d)
		}
		if pos+d < levelSize {
			add(levelStart + pos + d)
		}
		if d >= levelSize {
			break
		}
	}
	// Deduplicate while preserving order.
	seen := make(map[int]bool, len(out))
	uniq := out[:0]
	for _, q := range out {
		if !seen[q.idx] {
			seen[q.idx] = true
			uniq = append(uniq, q)
		}
	}
	return uniq
}

// Route returns the peers traversed (excluding the start, including the
// destination) to reach the owner of key from p, using greedy in-order-rank
// routing over BATON's links. Adjacent links guarantee strict progress, and
// the routing tables provide the exponential jumps that make the expected
// path length O(log n).
func (p *Peer) Route(key float64) []*Peer {
	target := p.net.Owner(key).rank
	var path []*Peer
	cur := p
	for cur.rank != target {
		best := cur
		bestDist := absInt(cur.rank - target)
		for _, q := range cur.Links() {
			if d := absInt(q.rank - target); d < bestDist {
				best, bestDist = q, d
			}
		}
		if best == cur {
			panic("baton: routing stuck (adjacent links must always progress)")
		}
		cur = best
		path = append(path, cur)
	}
	return path
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
