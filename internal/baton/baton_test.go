package baton

import (
	"math"
	"math/rand"
	"testing"

	"ripple/internal/dataset"
)

func TestInOrderRanksMatchRanges(t *testing.T) {
	n := Build(13, nil)
	// In-order traversal must yield strictly increasing, contiguous ranges.
	prevHi := 0.0
	for r := 0; r < n.Size(); r++ {
		lo, hi := n.ByRank(r).Range()
		if lo != prevHi {
			t.Fatalf("rank %d: range starts at %v, want %v", r, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("rank %d: empty range [%v,%v)", r, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != 1 {
		t.Fatalf("ranges end at %v, want 1", prevHi)
	}
}

func TestInOrderIsBSTProperty(t *testing.T) {
	// Every peer's rank must exceed all ranks in its left subtree and precede
	// all in its right subtree (spot-checked via children).
	n := Build(100, nil)
	for _, p := range n.Peers() {
		if li := 2*p.idx + 1; li < n.Size() && n.Peers()[li].rank >= p.rank {
			t.Fatalf("left child rank %d >= parent rank %d", n.Peers()[li].rank, p.rank)
		}
		if ri := 2*p.idx + 2; ri < n.Size() && n.Peers()[ri].rank <= p.rank {
			t.Fatalf("right child rank %d <= parent rank %d", n.Peers()[ri].rank, p.rank)
		}
	}
}

func TestOwnerAndInsert(t *testing.T) {
	n := Build(16, nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		key := rng.Float64()
		w := n.Owner(key)
		lo, hi := w.Range()
		if key < lo || key >= hi {
			t.Fatalf("Owner(%v) has range [%v,%v)", key, lo, hi)
		}
	}
	n.Insert(0.5, dataset.Tuple{ID: 1})
	w := n.Owner(0.5)
	if len(w.Tuples()) != 1 {
		t.Fatal("insert did not land at owner")
	}
}

func TestEqualCountBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := make([]float64, 10000)
	for i := range keys {
		keys[i] = math.Pow(rng.Float64(), 3) // heavily skewed
	}
	const size = 32
	bounds := EqualCountBounds(keys, size)
	n := Build(size, bounds)
	counts := make([]int, size)
	for _, k := range keys {
		counts[n.Owner(k).rank]++
	}
	for r, c := range counts {
		if c < len(keys)/size/3 || c > len(keys)/size*3 {
			t.Fatalf("rank %d holds %d keys; want near %d", r, c, len(keys)/size)
		}
	}
}

func TestLinksSymmetryOfAdjacency(t *testing.T) {
	n := Build(50, nil)
	for _, p := range n.Peers() {
		for _, q := range p.Links() {
			if q == p {
				t.Fatal("self link")
			}
		}
	}
}

func TestRouteReachesOwnerLogarithmically(t *testing.T) {
	for _, size := range []int{1, 2, 37, 512, 4096} {
		n := Build(size, nil)
		rng := rand.New(rand.NewSource(int64(size)))
		maxHops := 0
		for i := 0; i < 100; i++ {
			from := n.Peers()[rng.Intn(size)]
			key := rng.Float64()
			path := from.Route(key)
			if len(path) > 0 && path[len(path)-1] != n.Owner(key) {
				t.Fatalf("route ended at %s, owner is %s", path[len(path)-1].ID(), n.Owner(key).ID())
			}
			if len(path) == 0 && from != n.Owner(key) {
				t.Fatal("empty path but not at owner")
			}
			if len(path) > maxHops {
				maxHops = len(path)
			}
		}
		bound := 6 * (1 + intLog2(size))
		if maxHops > bound {
			t.Fatalf("size %d: max route %d hops exceeds %d", size, maxHops, bound)
		}
	}
}

func intLog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
