package trace

import (
	"strings"
	"testing"

	"ripple/internal/geom"
	"ripple/internal/overlay"
)

func region(lo, hi float64) overlay.Region {
	return overlay.FromRect(geom.Rect{Lo: geom.Point{lo}, Hi: geom.Point{hi}})
}

func sampleSpans() []Span {
	root := Span{ID: RootID, Peer: "p0", Region: region(0, 1), Phase: PhaseSlow, R: 1, Outcome: OutcomeOK, StateTuples: 3, AnswerTuples: 1}
	c1 := Span{ID: ChildID(RootID, "p1", 1), Parent: RootID, Peer: "p1", Region: region(0.5, 1),
		Phase: PhaseFast, Depth: 1, Arrive: 1, Outcome: OutcomeOK, StateTuples: 2}
	c2 := Span{ID: ChildID(RootID, "p2", 2), Parent: RootID, Peer: "p2", Region: region(0, 0.25),
		Phase: PhaseFast, Depth: 1, Arrive: 2, Outcome: OutcomeDrop}
	g1 := Span{ID: ChildID(c1.ID, "p3", 1), Parent: c1.ID, Peer: "p3", Region: region(0.75, 1),
		Phase: PhaseFast, Depth: 2, Arrive: 2, Outcome: OutcomeOK, AnswerTuples: 4}
	return []Span{root, c1, c2, g1}
}

func TestChildIDDeterministicAndDistinct(t *testing.T) {
	a := ChildID(RootID, "peer-7", 3)
	if a != ChildID(RootID, "peer-7", 3) {
		t.Fatal("ChildID is not deterministic")
	}
	seen := map[uint64]bool{0: true, RootID: true}
	for seq := 1; seq <= 64; seq++ {
		for _, p := range []string{"a", "b", "peer-007"} {
			id := ChildID(RootID, p, seq)
			if seen[id] {
				t.Fatalf("collision or reserved ID for (%s,%d): %d", p, seq, id)
			}
			seen[id] = true
		}
	}
}

func TestBuildReconstructsTree(t *testing.T) {
	spans := sampleSpans()
	// Shuffle record order: reconstruction must not depend on it.
	tree := Build([]Span{spans[3], spans[1], spans[0], spans[2]})
	if tree == nil || tree.Root == nil {
		t.Fatal("no root reconstructed")
	}
	if tree.Root.Peer != "p0" || len(tree.Root.Children) != 2 {
		t.Fatalf("root %q with %d children", tree.Root.Peer, len(tree.Root.Children))
	}
	if got := tree.Spans(); got != 4 {
		t.Fatalf("Spans() = %d, want 4", got)
	}
	if got := tree.Depth(); got != 2 {
		t.Fatalf("Depth() = %d, want 2", got)
	}
	// Children sort by arrival clock: p1 (t=1) before p2 (t=2).
	if tree.Root.Children[0].Peer != "p1" || tree.Root.Children[1].Peer != "p2" {
		t.Fatalf("children order: %s, %s", tree.Root.Children[0].Peer, tree.Root.Children[1].Peer)
	}
	r := tree.Root.Rollup()
	if r.StateTuples != 5 || r.AnswerTuples != 5 || r.Lost != 1 {
		t.Fatalf("rollup %+v", r)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("unexpected orphans: %d", len(tree.Orphans))
	}
}

func TestCanonicalIgnoresArrivalOrderAndClocks(t *testing.T) {
	spans := sampleSpans()
	a := Build(spans)
	// Same structure, different clocks and record order.
	perm := []Span{spans[2], spans[0], spans[3], spans[1]}
	for i := range perm {
		perm[i].Arrive += 7
		perm[i].Attempt = 2
	}
	b := Build(perm)
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical forms differ:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	// A structural change must change the canonical form.
	mut := sampleSpans()
	mut[3].Parent = RootID
	if Build(mut).Canonical() == a.Canonical() {
		t.Fatal("canonical form ignored a reparented span")
	}
}

func TestOrphansKept(t *testing.T) {
	spans := sampleSpans()
	spans[3].Parent = 424242 // parent never recorded
	tree := Build(spans)
	if len(tree.Orphans) != 1 || tree.Orphans[0].Peer != "p3" {
		t.Fatalf("orphans: %+v", tree.Orphans)
	}
	if tree.Spans() != 4 {
		t.Fatalf("orphan dropped from span count: %d", tree.Spans())
	}
}

func TestRenderShowsLossesAndRollups(t *testing.T) {
	out := Build(sampleSpans()).String()
	for _, want := range []string{"p0", "p1", "p2", "p3", "✗", "drop", "subtree:", "LOST"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderCollects(t *testing.T) {
	rec := NewRecorder()
	if !rec.Enabled() {
		t.Fatal("NewRecorder not enabled")
	}
	for _, s := range sampleSpans() {
		rec.Record(s)
	}
	rec.Record(sampleSpans()[0]) // duplicate ID: first kept
	rec.SetCounts(RootID, 9, 0)
	rec.AddAnswer(RootID, 2)
	rec.SetStateTuples(ChildID(RootID, "p1", 1), 8)
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans recorded, want 4", len(spans))
	}
	if spans[0].StateTuples != 9 || spans[0].AnswerTuples != 2 {
		t.Fatalf("root counts not updated: %+v", spans[0])
	}
	if spans[1].StateTuples != 8 {
		t.Fatalf("child state tuples not updated: %+v", spans[1])
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	rec.Record(Span{ID: 5})
	rec.SetCounts(5, 1, 1)
	rec.AddAnswer(5, 1)
	rec.SetStateTuples(5, 1)
	if rec.Spans() != nil {
		t.Fatal("nil recorder returned spans")
	}
}

// TestDisabledRecorderZeroAlloc is the acceptance guard for "tracing disabled
// costs zero allocations on the query hot path": every hook the engines call
// per traversal must be allocation-free on a nil recorder.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var rec *Recorder
	reg := region(0, 1)
	allocs := testing.AllocsPerRun(200, func() {
		if rec.Enabled() {
			t.Fatal("enabled")
		}
		rec.Record(Span{ID: 2, Parent: RootID, Peer: "p", Region: reg, Phase: PhaseFast, Outcome: OutcomeOK})
		rec.SetCounts(2, 1, 1)
		rec.AddAnswer(2, 1)
		rec.SetStateTuples(2, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing hooks allocate %.1f times per traversal", allocs)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	reg := region(0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := NewRecorder()
		rec.Record(Span{ID: RootID, Peer: "p", Region: reg, Phase: PhaseFast})
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var rec *Recorder
	reg := region(0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(Span{ID: RootID, Peer: "p", Region: reg, Phase: PhaseFast})
	}
}
