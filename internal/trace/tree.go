package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ripple/internal/overlay"
)

// Node is a span with its resolved children, ordered deterministically by
// (arrival clock, peer, ID) so the same query renders identically whichever
// runtime produced it.
type Node struct {
	Span
	Children []*Node
}

// Rollup is the aggregate of a subtree, for per-subtree annotations.
type Rollup struct {
	Spans        int // traversals in the subtree, this node included
	MaxDepth     int // deepest hop depth under this node
	StateTuples  int
	AnswerTuples int
	Lost         int // traversals whose subtree never reported back
}

// Tree is a reconstructed query propagation tree.
type Tree struct {
	Root *Node

	// Orphans are spans whose parent never arrived (possible over TCP when a
	// subtree's reply was truncated); they are kept for inspection instead of
	// being silently dropped.
	Orphans []*Node
}

// Build reconstructs the hop tree from a flat span set. The root is the span
// with Parent 0 (the initiator); spans referencing an unknown parent land in
// Orphans. Build returns nil for an empty span set.
func Build(spans []Span) *Tree {
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[uint64]*Node, len(spans))
	order := make([]*Node, 0, len(spans))
	for _, s := range spans {
		if _, dup := nodes[s.ID]; dup {
			continue
		}
		n := &Node{Span: s}
		nodes[s.ID] = n
		order = append(order, n)
	}
	t := &Tree{}
	for _, n := range order {
		switch {
		case n.Parent == 0:
			if t.Root == nil {
				t.Root = n
			} else {
				t.Orphans = append(t.Orphans, n)
			}
		default:
			if p := nodes[n.Parent]; p != nil {
				p.Children = append(p.Children, n)
			} else {
				t.Orphans = append(t.Orphans, n)
			}
		}
	}
	for _, n := range order {
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i], n.Children[j]
			if a.Arrive != b.Arrive {
				return a.Arrive < b.Arrive
			}
			if a.Peer != b.Peer {
				return a.Peer < b.Peer
			}
			return a.ID < b.ID
		})
	}
	return t
}

// Rollup aggregates the subtree under n.
func (n *Node) Rollup() Rollup {
	r := Rollup{Spans: 1, MaxDepth: n.Depth,
		StateTuples: n.StateTuples, AnswerTuples: n.AnswerTuples}
	if Lost(n.Outcome) {
		r.Lost++
	}
	for _, c := range n.Children {
		cr := c.Rollup()
		r.Spans += cr.Spans
		r.StateTuples += cr.StateTuples
		r.AnswerTuples += cr.AnswerTuples
		r.Lost += cr.Lost
		if cr.MaxDepth > r.MaxDepth {
			r.MaxDepth = cr.MaxDepth
		}
	}
	return r
}

// Depth returns the deepest hop depth of the tree.
func (t *Tree) Depth() int {
	if t == nil || t.Root == nil {
		return 0
	}
	return t.Root.Rollup().MaxDepth
}

// Spans counts the traversals of the tree (orphans included).
func (t *Tree) Spans() int {
	if t == nil {
		return 0
	}
	n := 0
	if t.Root != nil {
		n = t.Root.Rollup().Spans
	}
	for _, o := range t.Orphans {
		n += o.Rollup().Spans
	}
	return n
}

// Walk visits every span of the tree (root first, children in display
// order), calling fn with each node.
func (t *Tree) Walk(fn func(*Node)) {
	if t == nil {
		return
	}
	var rec func(*Node)
	rec = func(n *Node) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
	for _, o := range t.Orphans {
		rec(o)
	}
}

// Canonical returns a runtime-independent structural signature of the tree:
// the nested (peer, region, phase, lost?) relation with children ordered by
// content rather than by arrival. Two runtimes executing the same query must
// produce equal canonical forms — the cross-runtime equivalence contract.
// Clocks, attempts and tuple counts are deliberately excluded.
func (t *Tree) Canonical() string {
	if t == nil || t.Root == nil {
		return ""
	}
	var b strings.Builder
	canonical(&b, t.Root)
	return b.String()
}

func canonical(b *strings.Builder, n *Node) {
	b.WriteByte('(')
	b.WriteString(n.Peer)
	b.WriteByte('|')
	b.WriteString(n.Region.String())
	b.WriteByte('|')
	b.WriteString(n.Phase)
	if Lost(n.Outcome) {
		b.WriteString("|lost")
	}
	if n.Outcome == OutcomeRecovered {
		b.WriteString("|recovered:")
		b.WriteString(n.Via)
	}
	keys := make([]string, len(n.Children))
	kids := make(map[string]*Node, len(n.Children))
	for i, c := range n.Children {
		var cb strings.Builder
		canonical(&cb, c)
		keys[i] = cb.String()
		kids[keys[i]] = c
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
	}
	b.WriteByte(')')
}

// String renders the hop tree as an annotated ASCII tree.
func (t *Tree) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Render writes the annotated ASCII hop tree: one line per traversal with
// phase, remaining r, arrival clock, tuple counts and fault outcome, and a
// per-subtree rollup (spans, max depth, tuples, losses) on branching nodes.
func (t *Tree) Render(w io.Writer) {
	if t == nil || t.Root == nil {
		fmt.Fprintln(w, "(no trace)")
		return
	}
	renderNode(w, t.Root, "", true, true)
	for _, o := range t.Orphans {
		fmt.Fprintf(w, "orphaned subtree (parent span %d missing):\n", o.Parent)
		renderNode(w, o, "  ", true, true)
	}
}

func renderNode(w io.Writer, n *Node, prefix string, last, root bool) {
	connector := "├─ "
	childPrefix := prefix + "│  "
	if last {
		connector = "└─ "
		childPrefix = prefix + "   "
	}
	if root {
		connector = ""
		childPrefix = prefix
	}
	fmt.Fprintf(w, "%s%s%s\n", prefix, connector, n.line())
	for i, c := range n.Children {
		renderNode(w, c, childPrefix, i == len(n.Children)-1, false)
	}
}

// line formats one span's annotation.
func (n *Node) line() string {
	var b strings.Builder
	if Lost(n.Outcome) {
		fmt.Fprintf(&b, "✗ %s [%s] region=%s", n.Peer, n.Outcome, compactRegion(n.Region))
		if n.Via != "" {
			fmt.Fprintf(&b, " via=%s", n.Via)
		}
		if n.Attempt > 0 {
			fmt.Fprintf(&b, " retries=%d", n.Attempt)
		}
		fmt.Fprintf(&b, "  (subtree lost at depth %d)", n.Depth)
		return b.String()
	}
	fmt.Fprintf(&b, "%s [%s r=%s] t=%d region=%s", n.Peer, n.Phase, rString(n.R), n.Arrive, compactRegion(n.Region))
	if n.Outcome == OutcomeRecovered {
		fmt.Fprintf(&b, " (recovered via %s)", n.Via)
	}
	if n.StateTuples > 0 || n.AnswerTuples > 0 {
		fmt.Fprintf(&b, " tuples(state=%d answer=%d)", n.StateTuples, n.AnswerTuples)
	}
	if n.Outcome == OutcomeDelay {
		b.WriteString(" (delayed)")
	}
	if n.Attempt > 0 {
		fmt.Fprintf(&b, " retries=%d", n.Attempt)
	}
	if len(n.Children) > 0 {
		r := n.Rollup()
		fmt.Fprintf(&b, "  ── subtree: %d spans, depth %d, %d state / %d answer tuples",
			r.Spans, r.MaxDepth, r.StateTuples, r.AnswerTuples)
		if r.Lost > 0 {
			fmt.Fprintf(&b, ", %d LOST", r.Lost)
		}
	}
	return b.String()
}

// rString renders the remaining ripple parameter, abbreviating the huge
// sentinels used for "slow forever".
func rString(r int) string {
	if r >= 1<<19 {
		return "∞"
	}
	return fmt.Sprintf("%d", r)
}

// compactRegion abbreviates long multi-box regions so tree lines stay
// readable; single-box regions (the MIDAS common case) render in full.
func compactRegion(r overlay.Region) string {
	s := r.String()
	if len(s) <= 56 {
		return s
	}
	return s[:53] + "..."
}
