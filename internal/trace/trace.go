// Package trace records per-query hop-tree spans: one span per link
// traversal of a RIPPLE query, carrying the parent span, the peer reached,
// the restriction region delegated over the link, the mode phase (slow while
// r > 0, fast once r reaches 0), the logical arrival clock, retry attempts,
// the fault outcome, and the state/answer tuple counts the peer contributed.
// The spans convergecast back to the initiator, where Build reconstructs the
// full recursion tree of Algorithm 3 — the paper's Figure-3 structure —
// including the subtrees lost to failures.
//
// Span identities are hierarchical hashes: a child's ID is a pure function of
// (parent ID, target peer, traversal sequence number). Because every runtime
// — the structural engine (internal/core), the actor cluster (internal/async)
// and the TCP peers (internal/netpeer) — attempts traversals in the same
// deterministic order, the same query yields byte-identical span identities
// in all three, which is what lets cross-runtime equivalence tests compare
// hop trees structurally.
//
// Tracing is opt-in per query and free when off: a nil *Recorder is a valid
// no-op recorder, every method is nil-safe, and the disabled path performs no
// allocations (guarded by TestDisabledRecorderZeroAlloc).
package trace

import (
	"hash/fnv"
	"sync"

	"ripple/internal/overlay"
)

// Phase names the template phase a span executed under.
const (
	PhaseSlow = "slow" // r > 0: sequential iteration, states folded per link
	PhaseFast = "fast" // r = 0: parallel fan-out, states convergecast
)

// Outcome of the link traversal that opened a span.
const (
	OutcomeOK      = "ok"      // delivered, subtree executed
	OutcomeDrop    = "drop"    // message lost before reaching the peer
	OutcomeCrash   = "crash"   // peer reached but died before replying
	OutcomeDelay   = "delay"   // delivered over a slow link
	OutcomeTimeout = "timeout" // TCP only: retries exhausted on deadlines
	OutcomeLost    = "lost"    // TCP only: retries exhausted, transport error

	// OutcomeRecovered marks a traversal whose primary target was lost but
	// whose subtree a zone replica executed on the primary's behalf (Span.Via
	// names the replica). The subtree reported back: it is not Lost.
	OutcomeRecovered = "recovered"
)

// Lost reports whether an outcome means the span's subtree never reported
// back (its answers are missing from the result).
func Lost(outcome string) bool {
	switch outcome {
	case OutcomeDrop, OutcomeCrash, OutcomeTimeout, OutcomeLost:
		return true
	}
	return false
}

// RootID is the span ID of every query's initiator span.
const RootID uint64 = 1

// Span is one link traversal of a query's propagation tree. The initiator
// owns the root span (Parent 0, ID RootID).
type Span struct {
	ID     uint64
	Parent uint64 // 0 for the root span
	// Peer is the peer the traversal targeted (and that processed the
	// delivery, unless the outcome lost it).
	Peer string
	// Via is the replica that physically executed (or was asked to execute)
	// this span when it was a recovery dispatch on behalf of Peer; empty for
	// ordinary traversals.
	Via string
	// Region is the restriction area delegated over the link — the part of
	// the domain this subtree is responsible for.
	Region overlay.Region
	// Phase is the template phase at this peer (PhaseSlow / PhaseFast).
	Phase string
	// R is the remaining ripple parameter at this peer.
	R int
	// Depth is the number of links between the initiator and this peer.
	Depth int
	// Arrive is the logical hop clock when the delivery arrived (the engine
	// and actor runtimes agree on it exactly; TCP clocks omit injected-delay
	// hop charges, which exist only in the logical runtimes).
	Arrive int
	// Attempt counts extra delivery attempts (retries) spent on the link
	// before this outcome; 0 means the first try decided it.
	Attempt int
	// Outcome is the traversal's fate (Outcome* constants).
	Outcome string
	// StateTuples counts the tuples in the peer's own final local state as
	// shipped upstream; AnswerTuples the tuples of its local answer.
	StateTuples  int
	AnswerTuples int
	// Plan annotates the root span with the planner's decision ("fast",
	// "ripple(2)", "slow", "+explore" suffixed for exploration picks) when
	// the run's ripple parameter was chosen adaptively; empty for static
	// runs. Canonical() excludes it, so a planned run's tree stays
	// byte-identical to the equivalent static run's.
	Plan string
}

// ChildID derives the span ID of the seq-th traversal attempted by the span
// parent towards the given peer. It is the only span-identity source, keeping
// IDs reproducible across runtimes: FNV-1a over (parent, peer, seq) with a
// splitmix64 finalizer, pinned away from the reserved IDs 0 and RootID.
func ChildID(parent uint64, peer string, seq int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	putUint64(&b, parent)
	h.Write(b[:])
	h.Write([]byte(peer))
	putUint64(&b, uint64(seq))
	h.Write(b[:])
	id := mix64(h.Sum64())
	if id <= RootID {
		id = ^id // deterministic nudge out of the reserved {0, RootID} range
	}
	return id
}

func putUint64(b *[8]byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// mix64 is the splitmix64 finalizer (bijective avalanche).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Recorder collects the spans of one query. It is safe for concurrent use
// (the actor runtime records from many goroutines) and nil-safe: a nil
// *Recorder drops everything without allocating, so runtimes thread it
// through unconditionally and tracing costs nothing when disabled.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
	idx   map[uint64]int
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{idx: make(map[uint64]int)} }

// Enabled reports whether spans are being kept.
func (r *Recorder) Enabled() bool { return r != nil }

// Record stores a span. Recording the same span ID twice keeps the first
// occurrence (a peer receiving several restriction fragments opens one span
// per fragment, but fragments get distinct IDs by construction).
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, dup := r.idx[s.ID]; !dup {
		r.idx[s.ID] = len(r.spans)
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// SetCounts sets the state/answer tuple counts of the span with the given ID
// once the peer's final local state is known.
func (r *Recorder) SetCounts(id uint64, stateTuples, answerTuples int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if i, ok := r.idx[id]; ok {
		r.spans[i].StateTuples = stateTuples
		r.spans[i].AnswerTuples = answerTuples
	}
	r.mu.Unlock()
}

// AddAnswer adds answer tuples to a span (answers are emitted once per peer,
// on the first restriction fragment processed).
func (r *Recorder) AddAnswer(id uint64, tuples int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if i, ok := r.idx[id]; ok {
		r.spans[i].AnswerTuples += tuples
	}
	r.mu.Unlock()
}

// SetStateTuples sets only the state-tuple count of a span.
func (r *Recorder) SetStateTuples(id uint64, tuples int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if i, ok := r.idx[id]; ok {
		r.spans[i].StateTuples = tuples
	}
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}
