package lint

import (
	"go/ast"
	"go/types"
)

// StateAliasAnalyzer enforces the Processor aliasing contract (DESIGN.md
// §10.2). The engine owns the arguments it passes to the six template
// callbacks of core.Processor: the `[]core.State` batch handed to MergeStates
// and the overlay.Node view of the executing peer are reused by the engine
// after the callback returns (and, on the actor runtime, may be observed from
// another goroutine). A Processor implementation must therefore treat them as
// borrowed for the duration of the call:
//
//   - storing the slice (or a reslice of it — same backing array) or the
//     Node into a field or package variable is a retention bug;
//   - writing into the slice's elements mutates engine state in place;
//     mutation must go through MergeStates' return value.
//
// Retaining individual State *elements* is fine: that is exactly how merged
// states are built.
var StateAliasAnalyzer = &Analyzer{
	Name: "statealias",
	Doc:  "Processor callbacks must not retain or mutate engine-owned []State slices and overlay.Node values",
	Run:  runStateAlias,
}

const (
	corePkgPath    = "ripple/internal/core"
	overlayPkgPath = "ripple/internal/overlay"
)

// processorCallbacks are the methods of core.Processor.
var processorCallbacks = map[string]bool{
	"LocalState": true, "GlobalState": true, "MergeStates": true,
	"LinkRelevant": true, "LinkPriority": true, "LocalAnswer": true,
	"InitialState": true, "StateTuples": true,
}

func runStateAlias(pass *Pass) error {
	corePkg := findImport(pass.Pkg, corePkgPath)
	procType := lookupType(corePkg, "Processor")
	if procType == nil {
		return nil // package cannot implement Processor without importing core
	}
	procIface, ok := procType.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	stateType := lookupType(corePkg, "State")
	nodeType := lookupType(findImport(pass.Pkg, overlayPkgPath), "Node")

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !processorCallbacks[fd.Name.Name] {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			recv := sig.Recv().Type()
			if !types.Implements(recv, procIface) && !types.Implements(types.NewPointer(recv), procIface) {
				continue
			}
			guarded := guardedParams(sig, stateType, nodeType)
			if len(guarded) == 0 {
				continue
			}
			checkCallbackBody(pass, fd, guarded)
		}
	}
	return nil
}

// guardedParams selects the engine-owned parameters: []core.State slices and
// overlay.Node values.
func guardedParams(sig *types.Signature, stateType, nodeType types.Type) map[*types.Var]string {
	out := make(map[*types.Var]string)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if sl, ok := p.Type().(*types.Slice); ok && stateType != nil && types.Identical(sl.Elem(), stateType) {
			out[p] = "[]core.State slice"
		}
		if nodeType != nil && types.Identical(p.Type(), nodeType) {
			out[p] = "overlay.Node"
		}
	}
	return out
}

// checkCallbackBody flags retention (store to field or package variable) and
// in-place mutation of guarded parameters.
func checkCallbackBody(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			// In-place mutation: states[i] = x.
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if p := aliasedParam(pass.TypesInfo, idx.X, guarded); p != nil {
					pass.Reportf(lhs.Pos(),
						"%s mutates the engine-owned %s %q in place; the engine reuses it after the callback — return the new state from MergeStates instead",
						fd.Name.Name, guarded[p], p.Name())
				}
			}
			if i >= len(as.Rhs) {
				continue
			}
			// Retention: field or package variable keeps an alias.
			p := aliasedParam(pass.TypesInfo, as.Rhs[i], guarded)
			if p == nil {
				continue
			}
			if escapes(pass, lhs) {
				pass.Reportf(as.Pos(),
					"%s stores the engine-owned %s %q beyond the callback; the engine reuses it after returning — copy the data you need instead",
					fd.Name.Name, guarded[p], p.Name())
			}
		}
		return true
	})
}

// aliasedParam reports which guarded parameter the expression aliases: the
// bare parameter, a reslice of it (shares the backing array), or a
// parenthesization of either. Element reads (states[i]) do not alias the
// slice and return nil.
func aliasedParam(info *types.Info, e ast.Expr, guarded map[*types.Var]string) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			if _, isGuarded := guarded[v]; isGuarded {
				return v
			}
		}
	case *ast.SliceExpr:
		return aliasedParam(info, e.X, guarded)
	}
	return nil
}

// escapes reports whether assigning to the expression publishes the value
// beyond the callback: a field of any struct (in these small callbacks,
// receivers and captured state) or a package-level variable. Indexed stores
// escape when their base does.
func escapes(pass *Pass, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return escapes(pass, lhs.X)
	case *ast.StarExpr:
		return true // store through a pointer: the destination outlives the call
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[lhs].(*types.Var)
		if !ok {
			return false
		}
		return v.Parent() == pass.Pkg.Scope() // package-level variable
	}
	return false
}
