package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer enforces the replay-determinism contract of the
// simulation kernel (DESIGN.md §10.1): the engine, actor, and TCP runtimes
// are validated against each other by replaying the same overlay, query, and
// fault seed, so the packages they share must be pure functions of their
// inputs. Three sources of hidden nondeterminism are banned:
//
//   - wall-clock reads (time.Now, Since, Sleep, ...): logical hop clocks are
//     the only time in the deterministic packages;
//   - the global math/rand stream (rand.Intn, rand.Shuffle, ...): all
//     randomness must flow from an explicit seed via rand.New(rand.NewSource)
//     or the faults.Uniform01 hash;
//   - order-dependent output built by iterating a map: appends, channel
//     sends, and stream writes under `for ... range m` produce
//     schedule-dependent order unless the result is sorted afterwards.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, the global rand stream, and map-iteration-ordered output in replay-deterministic packages",
	Run:  runDeterminism,
}

// forbiddenTimeFuncs read the wall clock or schedule against it.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// allowedRandFuncs are the math/rand package-level constructors that do not
// touch the global stream.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkForbiddenFuncUse(pass, n)
			case *ast.BlockStmt:
				checkMapRangeList(pass, n.List)
			case *ast.CaseClause:
				checkMapRangeList(pass, n.Body)
			case *ast.CommClause:
				checkMapRangeList(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkForbiddenFuncUse flags any reference (call or function value) to a
// wall-clock or global-rand function.
func checkForbiddenFuncUse(pass *Pass, id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are seeded and fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			pass.Reportf(id.Pos(),
				"call to time.%s in a replay-deterministic package; runtimes must agree on replay, so derive logical clocks from hop counts or the seed",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			pass.Reportf(id.Pos(),
				"use of the global math/rand stream (rand.%s) in a replay-deterministic package; draw from rand.New(rand.NewSource(seed)) or faults.Uniform01 instead",
				fn.Name())
		}
	}
}

// checkMapRangeList examines each map-range statement of a statement list
// with access to the statements that follow it (for the sorted-afterwards
// exception).
func checkMapRangeList(pass *Pass, list []ast.Stmt) {
	for i, stmt := range list {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		checkMapRangeBody(pass, rng, list[i+1:])
	}
}

// checkMapRangeBody looks for order-sensitive sinks inside the body of a
// range over a map. Order-insensitive folds (map writes, counters, max/min)
// pass; appends survive only when the appended slice is sorted by a statement
// following the loop in the same block.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map: receivers observe map iteration order, which differs between runs; iterate sorted keys instead")
		case *ast.CallExpr:
			checkMapRangeCall(pass, rng, rest, n)
		}
		return true
	})
}

func checkMapRangeCall(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt, call *ast.CallExpr) {
	// Builtin append: find the assignment target and require a later sort.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			target := appendTarget(pass, rng, call)
			if target == nil {
				return // appends to a loop-local slice don't leak iteration order
			}
			if sortedAfter(pass, target, rest) {
				return
			}
			pass.Reportf(call.Pos(),
				"append to %q inside range over map leaks map iteration order; sort %q after the loop or iterate sorted keys",
				target.Name(), target.Name())
			return
		}
	}
	// Stream writes: fmt printing and Write* methods emit in iteration order.
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if funcPkgPath(fn) == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		pass.Reportf(call.Pos(),
			"fmt.%s inside range over map emits in map iteration order, which differs between runs; iterate sorted keys instead", fn.Name())
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			pass.Reportf(call.Pos(),
				"%s call inside range over map emits in map iteration order, which differs between runs; iterate sorted keys instead", fn.Name())
		}
	}
}

// appendTarget resolves the variable an append call's result is assigned to,
// by finding the enclosing `x = append(x, ...)` form inside the loop body.
// It returns nil for slices declared inside the loop body itself (their
// contents never survive an iteration, so iteration order cannot leak).
func appendTarget(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) types.Object {
	var target types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) != call || i >= len(as.Lhs) {
				continue
			}
			target = exprObj(pass.TypesInfo, as.Lhs[i])
		}
		return true
	})
	if target == nil {
		return nil
	}
	if target.Pos() >= rng.Body.Pos() && target.Pos() < rng.Body.End() {
		return nil // declared inside the loop body
	}
	return target
}

// sortedAfter reports whether a statement after the loop sorts the object.
func sortedAfter(pass *Pass, target types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || len(call.Args) == 0 {
				return true
			}
			isSort := funcPkgPath(fn) == "sort" || funcPkgPath(fn) == "slices"
			if !isSort || (!strings.HasPrefix(fn.Name(), "Sort") && !isSortShorthand(fn.Name())) {
				return true
			}
			if exprObj(pass.TypesInfo, call.Args[0]) == target {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortShorthand covers sort.Slice/SliceStable/Stable/Strings/Ints/Float64s.
func isSortShorthand(name string) bool {
	switch name {
	case "Slice", "SliceStable", "Stable", "Strings", "Ints", "Float64s":
		return true
	}
	return false
}

// exprObj resolves the object behind an identifier or field selector,
// covering both uses and `:=` definitions.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}
