// Package lint is ripple-vet: a suite of static analyzers that enforce the
// invariants this repository's correctness arguments lean on but no compiler
// checks — replay determinism of the three runtimes, the Processor aliasing
// contract, lock/atomic discipline, transport deadline coverage, and
// exactly-once failure accounting.
//
// The framework mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Diagnostic, analysistest-style fixtures with `// want` comments) but
// is self-contained: it loads packages through `go list -export` and the
// standard library's go/importer, so the module keeps zero external
// dependencies and the tool works in hermetic build environments. Porting an
// analyzer to the upstream framework is a mechanical change of import paths.
//
// See DESIGN.md §10 for the invariant each analyzer encodes and the
// suppression convention (`//lint:ignore <analyzer> <reason>`).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run reports violations on one type-checked package via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one package, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the cross-package knowledge base for the whole load (the
	// driver computes it once over every target package; Run falls back to
	// single-package facts for fixtures).
	Facts *Facts

	diags []Diagnostic
	cfgs  map[*ast.BlockStmt]*funcCFG
}

// cfgOf builds (and memoises) the control-flow graph of one function body.
func (p *Pass) cfgOf(body *ast.BlockStmt) *funcCFG {
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.BlockStmt]*funcCFG)
	}
	if g, ok := p.cfgs[body]; ok {
		return g
	}
	g := buildCFG(body, infoAdapter{p.TypesInfo})
	p.cfgs[body] = g
	return g
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes one analyzer over a loaded package and returns its
// diagnostics with ignore directives applied: suppressed findings are
// removed, and malformed or reason-less directives are themselves reported
// (a suppression must explain itself; see DESIGN.md §10).
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunWithFacts(a, pkg, pkg.facts())
}

// RunWithFacts is Run with an explicit cross-package fact base: the driver
// computes one Facts over every loaded package so whole-program analyzers
// (lockorder) and helper-aware ones (poolcheck, storeinval) see past package
// boundaries.
func RunWithFacts(a *Analyzer, pkg *Package, facts *Facts) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     facts,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	diags := applyIgnores(a.Name, pkg, pass.diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ---- small type/AST helpers shared by the analyzers ----

// calleeFunc resolves the *types.Func a call expression invokes (package
// function, method, or imported function). It returns nil for calls through
// function-typed variables, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (no receiver).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// funcPkgPath returns the import path of the package declaring fn ("" when
// unknown, e.g. builtins).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// findImport locates a (transitively) imported package by exact import path,
// so analyzers can resolve foreign named types (core.Processor, net.Conn)
// without importing them at analyzer build time.
func findImport(pkg *types.Package, path string) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == path {
				return imp
			}
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}

// lookupType resolves a named type (or the named type under a pointer) from
// a package scope; nil if absent.
func lookupType(pkg *types.Package, name string) types.Type {
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	return tn.Type()
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// resultTypes flattens the result types of a call expression: nil for a
// no-result call, one element for single results, N for tuples.
func resultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		if tv.IsVoid() {
			return nil
		}
		return []types.Type{t}
	}
}

// namedPathName reports the declaring package path and name of a named type,
// unwrapping aliases and pointers ("", "" when t is not named).
func namedPathName(t types.Type) (string, string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}
