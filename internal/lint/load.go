package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	factsOnce   sync.Once
	singleFacts *Facts
	ignoreOnce  sync.Once
	ignores     []*ignoreDirective
}

// facts returns a fact base computed from this package alone — the fixture
// path. The driver passes a whole-load Facts to RunWithFacts instead.
func (p *Package) facts() *Facts {
	p.factsOnce.Do(func() { p.singleFacts = ComputeFacts([]*Package{p}) })
	return p.singleFacts
}

// directives returns the package's parsed //lint:ignore comments, with
// usage tracked across every analyzer run on this package (for the stale-
// suppression audit).
func (p *Package) directives() []*ignoreDirective {
	p.ignoreOnce.Do(func() { p.ignores = parseIgnores(p) })
	return p.ignores
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matching the given `go
// list` patterns, resolving imports through the build cache's export data.
// Only non-test Go files are analyzed: tests legitimately use wall clocks and
// seeded randomness, and the invariants ripple-vet enforces are about
// shipped runtime behaviour.
//
// Loading is offline and dependency-free by construction: `go list -export`
// compiles export data into the local build cache and the standard gc
// importer reads it back, so no network, GOPATH layout, or external module
// is involved.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var pkgs []*Package
	for _, lp := range listed {
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goListCache memoises `go list -deps -export` by (dir, patterns) for the
// lifetime of the process. One ripple-vet invocation (and one `go test` run
// of this package) lists the same package graph many times — every analyzer
// selection in the driver, every fixture's import set in LoadDir — and the
// sources cannot change underneath a single run, so the first listing
// answers all of them. Cached values are shared, not copied: callers treat
// the listing and export index as read-only.
var goListCache = struct {
	sync.Mutex
	m map[string]goListEntry
}{m: make(map[string]goListEntry)}

type goListEntry struct {
	targets []listedPkg
	exports map[string]string
}

// goList runs `go list -deps -export` (memoised per process) and splits the
// output into target packages (matching the patterns) and an export-data
// index covering every dependency.
func goList(dir string, patterns []string) ([]listedPkg, map[string]string, error) {
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	goListCache.Lock()
	if e, ok := goListCache.m[key]; ok {
		goListCache.Unlock()
		return e.targets, e.exports, nil
	}
	goListCache.Unlock()
	targets, exports, err := goListUncached(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	goListCache.Lock()
	goListCache.m[key] = goListEntry{targets: targets, exports: exports}
	goListCache.Unlock()
	return targets, exports, nil
}

func goListUncached(dir string, patterns []string) ([]listedPkg, map[string]string, error) {
	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp listedPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// LoadDir loads a single package from an explicit directory of Go files
// outside the module's package patterns (the analysistest fixtures under
// testdata/). Imports are resolved exactly like Load; the fixture's own
// import path is synthesized from its directory name.
func LoadDir(moduleDir, fixtureDir string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(fixtureDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", fixtureDir)
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		_, exports, err = goList(moduleDir, paths)
		if err != nil {
			return nil, err
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	path := "fixture/" + filepath.Base(filepath.Dir(fixtureDir)) + "/" + filepath.Base(fixtureDir)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", fixtureDir, err)
	}
	return &Package{Path: path, Dir: fixtureDir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
