// poolcheck: flow-sensitive pool hygiene (DESIGN.md §10.6). The pooled gob
// codecs (PR 4) and the netpeer connection pool (PR 4/5) hand out reusable
// objects whose loss is invisible at runtime — a dropped warm encoder just
// means a fresh allocation next time — so the only guard against silently
// regressing the zero-alloc hot path is static: every value obtained from a
// pool must, on every path to the function exit, either be returned to the
// pool (Put, directly or through a releaser helper), closed, handed off
// (returned or stored in longer-lived state), or be provably nil. Deliberate
// drops (a codec that errored has unknown stream state and must NOT be
// pooled) are documented with a reasoned //lint:ignore.
//
// The second half of the contract is temporal: a value returned to the pool
// belongs to the next Get, so any use after the Put is a data race with a
// future borrower.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

var PoolCheckAnalyzer = &Analyzer{
	Name: "poolcheck",
	Doc:  "pooled values must be Put (or handed off) on every path, and never used after the Put",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolsInBody(pass, fd.Body)
			// Closures get their own graphs: a Get inside a function literal
			// must be balanced inside that literal.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkPoolsInBody(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// poolGetSite is one `v := pool.Get()` (or helper equivalent) to track.
type poolGetSite struct {
	v    types.Object
	stmt ast.Stmt
	call *ast.CallExpr
}

func checkPoolsInBody(pass *Pass, body *ast.BlockStmt) {
	sites := collectGetSites(pass, body)
	if len(sites) == 0 {
		return
	}
	g := pass.cfgOf(body)
	for _, site := range sites {
		checkGetSite(pass, g, body, site)
	}
}

// collectGetSites finds pool acquisitions assigned to a variable, skipping
// nested function literals (they are analysed as their own bodies).
func collectGetSites(pass *Pass, body *ast.BlockStmt) []poolGetSite {
	var sites []poolGetSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call := unwrapToCall(rhs)
			if call == nil || !isTrackedGet(pass, call) {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			obj := exprObj(pass.TypesInfo, as.Lhs[i])
			if obj == nil || obj.Name() == "_" {
				continue
			}
			// Only track local variables: a Get stored straight into a field
			// is already a hand-off to longer-lived state.
			if _, isVar := obj.(*types.Var); !isVar {
				continue
			}
			if _, isField := as.Lhs[i].(*ast.SelectorExpr); isField {
				continue
			}
			sites = append(sites, poolGetSite{v: obj, stmt: as, call: call})
		}
		return true
	})
	return sites
}

// isTrackedGet: a pool-like Get method, or a helper that (per facts) returns
// a pooled value.
func isTrackedGet(pass *Pass, call *ast.CallExpr) bool {
	if isPoolGet(pass.TypesInfo, call) {
		return true
	}
	fn := calleeFunc(pass.TypesInfo, call)
	return fn != nil && pass.Facts.returnsPooled[fn]
}

func unwrapToCall(e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, _ := e.(*ast.CallExpr)
	return call
}

func checkGetSite(pass *Pass, g *funcCFG, body *ast.BlockStmt, site poolGetSite) {
	info := pass.TypesInfo
	// Ranges of `if v == nil { ... }` bodies: inside them the pooled value is
	// known absent, so a return there releases nothing.
	nilRanges := nilGuardRanges(info, body, site.v)
	inNilGuard := func(n ast.Node) bool {
		for _, r := range nilRanges {
			if r[0] <= n.Pos() && n.End() <= r[1] {
				return true
			}
		}
		return false
	}

	// `if v := pool.Get(); v != nil { ... }`: v is scoped to the if statement
	// and nil outside the body, so the obligation only covers body paths.
	var guardIf *ast.IfStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && ifs.Init == site.stmt && isNeqNil(info, ifs.Cond, site.v) {
			guardIf = ifs
			return false
		}
		return guardIf == nil
	})
	outsideGuardBody := func(n ast.Node) bool {
		return guardIf != nil && !(guardIf.Body.Pos() <= n.Pos() && n.End() <= guardIf.Body.End())
	}

	released := func(n ast.Node) bool {
		return nodeReleases(pass, n, site.v) ||
			(isReturn(n) && (inNilGuard(n) || outsideGuardBody(n)))
	}
	ok, witness := g.mustReach(site.stmt, released)
	if !ok {
		where := ""
		if witness != nil {
			where = " (escapes via line " + itoa(pass.Fset.Position(witness.Pos()).Line) + ")"
		}
		pass.Reportf(site.call.Pos(),
			"pooled value %q is not returned to the pool on every path%s; Put/Close it on each exit or document the deliberate drop with //lint:ignore poolcheck",
			site.v.Name(), where)
	}

	// Use-after-Put: from each non-deferred Put of v, no later node may read
	// v until it is reassigned.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
			return false
		}
		if !stmtPuts(pass, stmt, site.v) {
			return true
		}
		reportUseAfterPut(pass, g, stmt, site.v)
		return true
	})
}

// stmtPuts reports whether stmt (non-defer) passes v to a pool Put.
func stmtPuts(pass *Pass, stmt ast.Stmt, v types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || !isPoolPut(pass.TypesInfo, call) {
		return false
	}
	for _, arg := range call.Args {
		if exprObj(pass.TypesInfo, ast.Unparen(arg)) == v {
			return true
		}
	}
	return false
}

func reportUseAfterPut(pass *Pass, g *funcCFG, put ast.Stmt, v types.Object) {
	reported := false
	g.reachableUses(put, func(n ast.Node) bool {
		if reported {
			return false
		}
		// Reassignment ends the tracked lifetime on this path.
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if exprObj(pass.TypesInfo, lhs) == v {
					return false
				}
			}
		}
		if mentionsObj(pass.TypesInfo, n, v) {
			pass.Reportf(n.Pos(),
				"pooled value %q used after being returned to the pool; it may already belong to another goroutine", v.Name())
			reported = true
			return false
		}
		return true
	})
}

// nodeReleases reports whether executing n releases, hands off, or ends the
// tracked lifetime of v:
//   - v passed to a pool Put/put, or to a helper that releases that
//     parameter (facts), or v.Close() — including deferred forms;
//   - v returned to the caller (ownership transfer);
//   - v stored into a field, global, map, or slice element (hand-off to
//     longer-lived state);
//   - v reassigned from a non-pool source (the pooled object is gone; the
//     new value is whatever the new source owns).
func nodeReleases(pass *Pass, n ast.Node, v types.Object) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			if callReleases(pass, m, v) {
				found = true
			}
		case *ast.ReturnStmt:
			for _, res := range m.Results {
				if mentionsObj(info, res, v) {
					found = true
				}
			}
		case *ast.AssignStmt:
			// Hand-off: v on the right of an assignment into non-local state.
			rhsMentions := false
			for _, rhs := range m.Rhs {
				if mentionsObj(info, rhs, v) {
					rhsMentions = true
				}
			}
			if rhsMentions {
				for _, lhs := range m.Lhs {
					switch ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						found = true
					}
				}
			}
			// Reassignment of v itself from something that is not v.
			for _, lhs := range m.Lhs {
				if exprObj(info, lhs) == v && !rhsMentions {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callReleases: the call returns v to a pool, closes it, or forwards it to a
// releaser helper.
func callReleases(pass *Pass, call *ast.CallExpr, v types.Object) bool {
	info := pass.TypesInfo
	if isPoolPut(info, call) {
		for _, arg := range call.Args {
			if exprObj(info, ast.Unparen(arg)) == v {
				return true
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		if exprObj(info, sel.X) == v {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	rel := pass.Facts.releasesParam[fn]
	if rel == nil {
		return false
	}
	for i, arg := range call.Args {
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = ast.Unparen(u.X)
		}
		if exprObj(info, e) == v && rel[i] {
			return true
		}
	}
	return false
}

// nilGuardRanges collects the source ranges of `if v == nil` bodies.
func nilGuardRanges(info *types.Info, body *ast.BlockStmt, v types.Object) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		bin, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.EQL {
			return true
		}
		x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
		isNil := func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			return ok && id.Name == "nil"
		}
		if (exprObj(info, x) == v && isNil(y)) || (exprObj(info, y) == v && isNil(x)) {
			out = append(out, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}

func isReturn(n ast.Node) bool {
	_, ok := n.(*ast.ReturnStmt)
	return ok
}

// isNeqNil: the condition is `v != nil` (either operand order).
func isNeqNil(info *types.Info, cond ast.Expr, v types.Object) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (exprObj(info, x) == v && isNil(y)) || (exprObj(info, y) == v && isNil(x))
}

// mentionsObj reports whether the subtree references obj, ignoring nested
// function literals' bodies (their captures have their own lifetimes).
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func itoa(i int) string { return strconv.Itoa(i) }
