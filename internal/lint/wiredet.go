// wiredet: taint analysis for wire determinism (DESIGN.md §10.7). The replay
// and cross-runtime equivalence suites compare encoded bytes, so any slice
// whose element order comes from Go map iteration — which differs between
// runs by design — must be sorted before it reaches a gob encoder, a frame
// writer, or a canonical-form builder. PR 3's determinism analyzer catches
// the append-under-range shape syntactically inside one statement list;
// wiredet follows the value: through local assignments, through struct
// fields, and through helper functions (via the cross-package mapOrdered
// fact), to the encode call that actually puts the bytes on the wire.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var WireDetAnalyzer = &Analyzer{
	Name: "wiredet",
	Doc:  "map-iteration order must never flow into a gob encode, frame write, or canonical-form builder",
	Run:  runWireDet,
}

func runWireDet(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWireDetBody(pass, fd.Body)
		}
	}
	return nil
}

func checkWireDetBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Seed taint: order-carrying slices built in this function, plus values
	// returned by helpers known (facts) to build them.
	tainted := make(map[types.Object]token.Pos)
	for obj := range mapOrderedVars(info, body) {
		tainted[obj] = obj.Pos()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			fn := calleeFunc(info, call)
			if fn != nil && pass.Facts.mapOrdered[fn] {
				if obj := exprObj(info, as.Lhs[i]); obj != nil {
					tainted[obj] = call.Pos()
				}
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}

	// Propagate through assignments (v2 := v1, s.Field = v1, w := append(x,
	// v1...), composite literals) a bounded number of rounds; a function body
	// rarely needs more than two.
	for round := 0; round < 3; round++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				src, isTainted := taintSource(info, tainted, rhs)
				if !isTainted {
					continue
				}
				if obj := exprObj(info, as.Lhs[i]); obj != nil {
					if _, already := tainted[obj]; !already {
						tainted[obj] = src
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	// Sanitisers: a sort on the object clears it for sinks after the sort.
	sortPos := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		isSortPkg := funcPkgPath(fn) == "sort" || funcPkgPath(fn) == "slices"
		if !isSortPkg || (!strings.HasPrefix(fn.Name(), "Sort") && !isSortShorthand(fn.Name())) {
			return true
		}
		if obj := exprObj(info, call.Args[0]); obj != nil {
			sortPos[obj] = append(sortPos[obj], call.Pos())
		}
		return true
	})
	sanitizedAt := func(obj types.Object, at token.Pos) bool {
		for _, p := range sortPos[obj] {
			if p < at {
				return true
			}
		}
		return false
	}

	// Sinks.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink, ok := encodeSink(info, call)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			obj := taintedArg(info, tainted, arg)
			if obj == nil || sanitizedAt(obj, call.Pos()) {
				continue
			}
			pass.Reportf(call.Pos(),
				"%q carries map-iteration order into %s; encoded bytes would differ between replays — sort it before encoding",
				obj.Name(), sink)
		}
		return true
	})
}

// taintSource reports whether an assignment RHS propagates taint: the
// expression is (or syntactically contains, outside of non-append calls) a
// tainted object. Calls other than the append builtin launder taint —
// len(v), hashing, etc. produce order-insensitive values.
func taintSource(info *types.Info, tainted map[types.Object]token.Pos, e ast.Expr) (token.Pos, bool) {
	var src token.Pos
	found := false
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if found || e == nil {
			return
		}
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				if p, ok := tainted[obj]; ok {
					src, found = p, true
				}
			}
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.SliceExpr:
			walk(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
				} else {
					walk(el)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					for _, a := range e.Args {
						walk(a)
					}
				}
			}
		}
	}
	walk(e)
	return src, found
}

// taintedArg resolves a sink argument to a tainted object (direct, address
// of, or a composite literal carrying one).
func taintedArg(info *types.Info, tainted map[types.Object]token.Pos, arg ast.Expr) types.Object {
	var hit types.Object
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if hit != nil || e == nil {
			return
		}
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				if _, ok := tainted[obj]; ok {
					hit = obj
				}
			}
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
				} else {
					walk(el)
				}
			}
		case *ast.SelectorExpr:
			// s.Field where s itself became tainted via a field store.
			if obj := exprObj(info, e); obj != nil {
				if _, ok := tainted[obj]; ok {
					hit = obj
				}
			}
			walk(e.X)
		}
	}
	walk(arg)
	return hit
}

// encodeSink classifies calls whose arguments end up as wire or canonical
// bytes.
func encodeSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	path := funcPkgPath(fn)
	name := fn.Name()
	if sig != nil && sig.Recv() != nil {
		recvPath, recvName := namedPathName(sig.Recv().Type())
		switch {
		case recvPath == "encoding/gob" && recvName == "Encoder" && name == "Encode":
			return "gob.Encoder.Encode", true
		case strings.HasSuffix(recvPath, "internal/wire") && recvName == "PayloadPool" &&
			(name == "Encode" || name == "AppendEncode"):
			return "wire.PayloadPool." + name, true
		}
		return "", false
	}
	if strings.HasSuffix(path, "internal/wire") && strings.HasPrefix(name, "Write") {
		return "wire." + name, true
	}
	if strings.HasPrefix(name, "Canonical") {
		return name, true
	}
	return "", false
}
