// Per-function control-flow graphs over go/ast, built for the flow-sensitive
// analyzers (poolcheck, storeinval). The graph is deliberately coarse: a block
// is a maximal straight-line run of statements, expressions never branch
// (short-circuit operators stay inside their statement node), and function
// literals are opaque nodes of the enclosing statement. That is exactly the
// granularity the analyzers reason at — "does every path from this statement
// to the function exit pass a release/invalidate call" — and it keeps the
// builder small enough to audit by eye.
//
// Terminators are classified three ways:
//   - return statements and falling off the end edge into the synthetic exit
//     block: these are the paths a resource can leak on;
//   - panic(...): also an edge into exit — a panic unwinds out of the
//     function past any non-deferred cleanup, so a Put that only happens on
//     the normal path is a leak on the panic path;
//   - os.Exit / log.Fatal* / runtime.Goexit: an edge into a dead-end halt
//     block with no successors. The process (or goroutine) is gone; nothing
//     "leaks" in a way any invariant cares about.
package lint

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one straight-line run of statements.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // synthetic: every return and the fall-off-the-end path
	halt   *cfgBlock // synthetic dead end: os.Exit/log.Fatal-style terminators
	blocks []*cfgBlock
}

type loopFrame struct {
	label     string
	brk, cont *cfgBlock // cont nil for switch/select frames
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *cfgBlock
	frames []loopFrame
	labels map[string]*cfgBlock // goto targets
	// fallthroughTo is the next case body while building a switch case.
	fallthroughTo *cfgBlock
	// pendingLabel names the loop statement a LabeledStmt wraps, so labeled
	// break/continue resolve to the right frame.
	pendingLabel string
	// info lets the builder classify terminator calls; may be nil in tests.
	info typesInfoLite
}

// typesInfoLite is the single lookup the builder needs from go/types, kept as
// an interface so cfg unit tests can run on parsed-but-unchecked sources.
type typesInfoLite interface {
	calleePathName(call *ast.CallExpr) (pkgPath, name string, ok bool)
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// buildCFG constructs the graph for one function body. info may be nil, in
// which case only the predeclared panic is recognised as a terminator.
func buildCFG(body *ast.BlockStmt, info typesInfoLite) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, labels: make(map[string]*cfgBlock), info: info}
	g.exit = &cfgBlock{}
	g.halt = &cfgBlock{}
	g.entry = b.newBlock()
	b.cur = g.entry
	b.stmts(body.List)
	edge(b.cur, g.exit)
	g.blocks = append(g.blocks, g.exit, g.halt)
	return g
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// dead parks the builder on an unreachable block after a jump.
func (b *cfgBuilder) dead() { b.cur = b.newBlock() }

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		after := b.newBlock()
		then := b.newBlock()
		edge(head, then)
		var alt *cfgBlock
		if s.Else != nil {
			alt = b.newBlock()
			edge(head, alt)
		} else {
			edge(head, after)
		}
		b.cur = then
		b.stmts(s.Body.List)
		edge(b.cur, after)
		if alt != nil {
			b.cur = alt
			b.stmt(s.Else)
			edge(b.cur, after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			edge(head, after) // an uncond. loop only exits via break/return
		}
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		body := b.newBlock()
		edge(head, body)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmts(s.Body.List)
		if post != nil {
			edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
		}
		edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		edge(b.cur, head)
		head.nodes = append(head.nodes, s.X, s)
		after := b.newBlock()
		body := b.newBlock()
		edge(head, body)
		edge(head, after)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmts(s.Body.List)
		edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, brk: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			edge(b.cur, after)
		}
		if len(s.Body.List) == 0 {
			edge(head, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.ReturnStmt:
		b.add(s)
		edge(b.cur, b.g.exit)
		b.dead()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			switch b.terminatorClass(call) {
			case termPanic:
				edge(b.cur, b.g.exit)
				b.dead()
			case termHalt:
				edge(b.cur, b.g.halt)
				b.dead()
			}
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assign, Decl, Defer, Go, Send, IncDec, ...: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var init ast.Stmt
	var clauses []ast.Stmt
	var tag ast.Node
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, tag, clauses = s.Init, s.Tag, s.Body.List
	case *ast.TypeSwitchStmt:
		init, tag, clauses = s.Init, s.Assign, s.Body.List
	}
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	after := b.newBlock()
	hasDefault := false
	caseBlocks := make([]*cfgBlock, len(clauses))
	for i, c := range clauses {
		caseBlocks[i] = b.newBlock()
		edge(head, caseBlocks[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(head, after)
	}
	b.frames = append(b.frames, loopFrame{label: label, brk: after})
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = caseBlocks[i]
		if i+1 < len(caseBlocks) {
			b.fallthroughTo = caseBlocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmts(cc.Body)
		edge(b.cur, after)
	}
	b.fallthroughTo = nil
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if name == "" || f.label == name {
				edge(b.cur, f.brk)
				b.dead()
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont != nil && (name == "" || f.label == name) {
				edge(b.cur, f.cont)
				b.dead()
				return
			}
		}
	case token.GOTO:
		if name != "" {
			edge(b.cur, b.labelBlock(name))
			b.dead()
			return
		}
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			edge(b.cur, b.fallthroughTo)
			b.dead()
			return
		}
	}
	// Unresolvable branch (malformed input): fall through conservatively.
	b.add(s)
}

func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

type termClass int

const (
	termNone termClass = iota
	termPanic
	termHalt
)

// terminatorClass classifies a call statement that never returns.
func (b *cfgBuilder) terminatorClass(call *ast.CallExpr) termClass {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return termPanic
	}
	if b.info == nil {
		return termNone
	}
	path, name, ok := b.info.calleePathName(call)
	if !ok {
		return termNone
	}
	switch {
	case path == "os" && name == "Exit",
		path == "runtime" && name == "Goexit",
		path == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln"):
		return termHalt
	}
	return termNone
}

// ---- queries ----

// findNode locates the block and node index containing n (by position).
func (g *funcCFG) findNode(n ast.Node) (*cfgBlock, int) {
	for _, blk := range g.blocks {
		for i, node := range blk.nodes {
			if node == n {
				return blk, i
			}
		}
	}
	// Fall back to containment: n may be a subexpression of a statement node.
	for _, blk := range g.blocks {
		for i, node := range blk.nodes {
			if node.Pos() <= n.Pos() && n.End() <= node.End() {
				return blk, i
			}
		}
	}
	return nil, -1
}

// mustReach reports whether every path from the statement after start to the
// function exit passes a node satisfying sat. When it does not, the returned
// witness is the last node of one escaping path (typically the return
// statement the resource leaks through); witness may be nil when the escape
// is the implicit fall-off-the-end return.
func (g *funcCFG) mustReach(start ast.Node, sat func(ast.Node) bool) (bool, ast.Node) {
	startBlk, idx := g.findNode(start)
	if startBlk == nil {
		return true, nil // not in the graph: nothing to prove
	}
	// The remainder of the start block satisfies the requirement directly.
	for _, n := range startBlk.nodes[idx+1:] {
		if sat(n) {
			return true, nil
		}
	}
	// clean[b]: from the start of b there is a path to exit that never passes
	// a satisfying node. Computed by reverse propagation from exit.
	blockSat := make(map[*cfgBlock]bool, len(g.blocks))
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if sat(n) {
				blockSat[blk] = true
				break
			}
		}
	}
	clean := map[*cfgBlock]bool{g.exit: true}
	preds := make(map[*cfgBlock][]*cfgBlock)
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	work := []*cfgBlock{g.exit}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range preds[blk] {
			if clean[p] || blockSat[p] {
				continue
			}
			clean[p] = true
			work = append(work, p)
		}
	}
	for _, s := range startBlk.succs {
		if clean[s] {
			return false, g.witness(s, clean)
		}
	}
	return true, nil
}

// witness walks one clean path to exit and returns its last real node.
func (g *funcCFG) witness(from *cfgBlock, clean map[*cfgBlock]bool) ast.Node {
	var last ast.Node
	seen := make(map[*cfgBlock]bool)
	for blk := from; blk != nil && blk != g.exit && !seen[blk]; {
		seen[blk] = true
		if len(blk.nodes) > 0 {
			last = blk.nodes[len(blk.nodes)-1]
		}
		var next *cfgBlock
		for _, s := range blk.succs {
			if clean[s] {
				next = s
				break
			}
		}
		blk = next
	}
	return last
}

// reachableUses calls visit for every node on some path strictly after start,
// stopping a path when visit returns false (e.g. the tracked variable was
// reassigned). Used for use-after-Put detection.
func (g *funcCFG) reachableUses(start ast.Node, visit func(ast.Node) bool) {
	startBlk, idx := g.findNode(start)
	if startBlk == nil {
		return
	}
	for _, n := range startBlk.nodes[idx+1:] {
		if !visit(n) {
			return
		}
	}
	seen := map[*cfgBlock]bool{}
	var walk func(blk *cfgBlock)
	walk = func(blk *cfgBlock) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		for _, n := range blk.nodes {
			if !visit(n) {
				return
			}
		}
		for _, s := range blk.succs {
			walk(s)
		}
	}
	for _, s := range startBlk.succs {
		walk(s)
	}
}
