package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is one parsed `//lint:ignore <analyzers> <reason>` comment.
// It suppresses diagnostics of the named analyzers (comma-separated) on the
// directive's own line and on the line immediately below it, so it works both
// as a trailing comment and as a line of its own above the flagged statement.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool
	reason    string
	pos       token.Pos
	// used is set when the directive suppresses at least one diagnostic in
	// the current run; the driver reports reasoned-but-unused directives as
	// stale once every analyzer they name has run on the package.
	used bool
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts every ignore directive from a package's files.
// Directives with no reason are returned with reason == "" and reported by
// applyIgnores: a suppression that does not explain itself is itself a
// finding (the acceptance bar is "zero suppressions left unexplained").
func parseIgnores(pkg *Package) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				d := &ignoreDirective{
					analyzers: make(map[string]bool),
					pos:       c.Pos(),
				}
				pos := pkg.Fset.Position(c.Pos())
				d.file, d.line = pos.Filename, pos.Line
				if len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						d.analyzers[name] = true
					}
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyIgnores filters one analyzer's diagnostics through the package's
// ignore directives. Malformed directives (no analyzer name or no reason)
// naming this analyzer are converted into diagnostics so they cannot silently
// disable a check.
func applyIgnores(analyzer string, pkg *Package, diags []Diagnostic) []Diagnostic {
	directives := pkg.directives()
	var out []Diagnostic
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, dir := range directives {
			if !dir.analyzers[analyzer] || dir.reason == "" {
				continue
			}
			if dir.file == pos.Filename && (dir.line == pos.Line || dir.line == pos.Line-1) {
				suppressed = true
				dir.used = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range directives {
		if dir.analyzers[analyzer] && dir.reason == "" {
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: analyzer,
				Message:  "malformed //lint:ignore directive: missing reason (write `//lint:ignore " + analyzer + " <why this is safe>`)",
			})
		}
	}
	return out
}

// suppressionAnalyzer names the driver-level suppression-hygiene checks in
// diagnostics and SARIF rules; it has no Run of its own.
const suppressionAnalyzer = "suppression"

// staleIgnores reports every reasoned directive that suppressed nothing even
// though all the analyzers it names ran on the package: the code it excused
// has been fixed (or rewritten), so the suppression is dead weight that
// would silently swallow a future regression. Directives naming an analyzer
// that did not run (deselected or out of scope this invocation) are left
// alone — absence of findings proves nothing then.
func staleIgnores(pkg *Package, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range pkg.directives() {
		if dir.reason == "" || dir.used || len(dir.analyzers) == 0 {
			continue
		}
		names := make([]string, 0, len(dir.analyzers))
		allRan := true
		for name := range dir.analyzers {
			names = append(names, name)
			if !ran[name] {
				allRan = false
			}
		}
		if !allRan {
			continue
		}
		sort.Strings(names)
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: suppressionAnalyzer,
			Message: "stale //lint:ignore directive: " + strings.Join(names, ",") +
				" no longer reports anything on this line; remove the suppression",
		})
	}
	return out
}

// docHasDirective reports whether a function's doc comment carries the given
// marker directive (e.g. //ripplevet:transport) on a line of its own.
func docHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
