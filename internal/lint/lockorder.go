// lockorder: whole-program lock-acquisition ordering (DESIGN.md §10.8). The
// concurrent transport stacks several mutexes — connection pool, mux table,
// per-connection write locks, server registry — on call paths that cross
// package boundaries (netpeer pool/mux/server, storage.RTree), where an
// inconsistent acquisition order is a deadlock that only a rare interleaving
// exposes. lockcheck (PR 3) guards individual counters; lockorder builds the
// directed graph "class A held while acquiring class B" over every function
// in the load — following calls made under a lock into their transitive
// acquisitions via facts — and flags each edge of any cycle.
//
// The per-function trace is linear in source order (branches are read
// top-to-bottom), which is exact for the straight lock/unlock sequences real
// code writes and keeps the analysis cheap; a deferred Unlock holds its lock
// to the end of the function, matching Go semantics.
package lint

import (
	"go/token"
	"sort"
	"strings"
)

var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition order must be acyclic across the whole program (deadlock candidates)",
	Run:  runLockOrder,
}

type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       string
}

func runLockOrder(pass *Pass) error {
	facts := pass.Facts
	edges := make(map[[2]string]lockEdge)
	addEdge := func(from, to string, pos token.Pos, fn string) {
		key := [2]string{from, to}
		if _, ok := edges[key]; !ok {
			edges[key] = lockEdge{from: from, to: to, pos: pos, fn: fn}
		}
	}
	for _, fn := range facts.funcs {
		var held []string
		for _, ev := range facts.lockEvents[fn] {
			switch ev.kind {
			case evAcquire:
				for _, h := range held {
					addEdge(h, ev.class, ev.pos, fn.FullName())
				}
				held = append(held, ev.class)
			case evRelease:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evCall:
				if len(held) == 0 {
					continue
				}
				// A callee's transitive acquisitions happen under every lock
				// currently held; h == class is an immediate self-deadlock
				// (re-acquiring a held, non-reentrant lock through a callee).
				for class := range facts.transitiveAcquires(ev.callee) {
					for _, h := range held {
						addEdge(h, class, ev.pos, fn.FullName())
					}
				}
			}
		}
	}

	// Strongly connected components of the class graph; any SCC with a cycle
	// is a deadlock candidate.
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodes[key[0]], nodes[key[1]] = true, true
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	sccOf := tarjanSCC(nodes, adj)

	cyclic := make(map[int][]string) // scc id -> member classes
	counts := make(map[int]int)
	for n := range nodes {
		counts[sccOf[n]]++
	}
	for n := range nodes {
		id := sccOf[n]
		if counts[id] > 1 {
			cyclic[id] = append(cyclic[id], n)
		}
	}
	// Self-loops are single-node cycles.
	for key := range edges {
		if key[0] == key[1] {
			id := sccOf[key[0]]
			if counts[id] == 1 {
				cyclic[id] = []string{key[0]}
			}
		}
	}

	// Report every in-cycle edge whose acquisition site is in this package's
	// files, so each edge is diagnosed exactly once per whole-program run.
	passFiles := make(map[string]bool)
	for _, f := range pass.Files {
		passFiles[pass.Fset.Position(f.Pos()).Filename] = true
	}
	var keys [][2]string
	for key := range edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		e := edges[key]
		id := sccOf[e.from]
		if sccOf[e.to] != id || (counts[id] == 1 && e.from != e.to) {
			continue // edge not part of any cycle
		}
		members := cyclic[id]
		if len(members) == 0 {
			continue
		}
		if !passFiles[pass.Fset.Position(e.pos).Filename] {
			continue
		}
		sort.Strings(members)
		cycle := strings.Join(members, " → ") + " → " + members[0]
		pass.Reportf(e.pos,
			"acquiring %s while holding %s completes a lock-order cycle (%s); impose one global acquisition order",
			shortClass(e.to), shortClass(e.from), shortCycle(cycle))
	}
	return nil
}

// shortClass trims the module prefix off a lock class for readable messages.
func shortClass(c string) string {
	if i := strings.LastIndex(c, "/"); i >= 0 {
		return c[i+1:]
	}
	return c
}

func shortCycle(cycle string) string {
	parts := strings.Split(cycle, " → ")
	for i, p := range parts {
		parts[i] = shortClass(p)
	}
	return strings.Join(parts, " → ")
}

// tarjanSCC assigns each node a component id (iterative Tarjan).
func tarjanSCC(nodes map[string]bool, adj map[string][]string) map[string]int {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	counter, compID := 0, 0

	type frame struct {
		node string
		next int
	}
	for _, start := range sorted {
		if _, seen := index[start]; seen {
			continue
		}
		callStack := []frame{{node: start}}
		index[start], low[start] = counter, counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.next < len(adj[f.node]) {
				w := adj[f.node][f.next]
				f.next++
				if _, seen := index[w]; !seen {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{node: w})
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// Pop.
			if low[f.node] == index[f.node] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compID
					if w == f.node {
						break
					}
				}
				compID++
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[f.node] < low[parent.node] {
					low[parent.node] = low[f.node]
				}
			}
		}
	}
	return comp
}
