// Cross-package facts: properties of functions that the flow-sensitive
// analyzers consult so they can see through helper calls — "putFrameBuf
// releases its first argument back to a pool", "dropStore invalidates the
// receiver's lazy store", "connPool.get acquires connPool.mu". Facts are
// computed once over every loaded package (the driver loads the whole target
// graph in one `go list -export` pass), so an analyzer looking at package A
// knows what a helper defined in package B does without re-analysing it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockEvent is one entry in a function's linearised lock trace: an
// acquisition, a release, or a call to another function (whose transitive
// acquisitions count as happening under the locks currently held).
type lockEvent struct {
	kind   int // one of evAcquire, evRelease, evCall
	class  string
	callee *types.Func
	pos    token.Pos
}

const (
	evAcquire = iota
	evRelease
	evCall
)

// Facts is the cross-package knowledge base shared by all analyzers of one
// run. All maps are keyed by the defining *types.Func, which is identical
// across packages because the driver loads everything through one FileSet
// and importer.
type Facts struct {
	funcs []*types.Func // deterministic iteration order (load × file × decl)

	// releasesParam[f][i]: f returns its i-th parameter to a pool (sync.Pool
	// Put, a pool-like put method, or Close) on at least one path.
	releasesParam map[*types.Func]map[int]bool
	// returnsPooled: f's return value is obtained from a pool-like Get.
	returnsPooled map[*types.Func]bool
	// wgDone: f calls (*sync.WaitGroup).Done somewhere in its body.
	wgDone map[*types.Func]bool
	// readsShutdown: f receives from (or ranges over) a chan struct{}.
	readsShutdown map[*types.Func]bool
	// mapOrdered: f returns a slice built by appending under a map range
	// without sorting it afterwards — its element order is schedule-dependent.
	mapOrdered map[*types.Func]bool
	// invalidates: f assigns a storage.Store-typed field (the
	// mutation-invalidation contract's dropStore shape).
	invalidates map[*types.Func]bool
	// lockEvents: f's linearised mutex trace.
	lockEvents map[*types.Func][]lockEvent

	transMemo map[*types.Func]map[string]token.Pos
}

// paramFlow records "fn passes its paramIdx-th parameter as the argIdx-th
// argument of callee", for the releaser fixpoint.
type paramFlow struct {
	fn       *types.Func
	paramIdx int
	callee   *types.Func
	argIdx   int
}

// ComputeFacts builds the knowledge base for a set of loaded packages.
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		releasesParam: make(map[*types.Func]map[int]bool),
		returnsPooled: make(map[*types.Func]bool),
		wgDone:        make(map[*types.Func]bool),
		readsShutdown: make(map[*types.Func]bool),
		mapOrdered:    make(map[*types.Func]bool),
		invalidates:   make(map[*types.Func]bool),
		lockEvents:    make(map[*types.Func][]lockEvent),
		transMemo:     make(map[*types.Func]map[string]token.Pos),
	}
	var flows []paramFlow
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				f.funcs = append(f.funcs, fn)
				flows = append(flows, f.scanFunc(pkg.Info, fn, fd)...)
			}
		}
	}
	// Fixpoint: releasing a value by handing it to a releaser is releasing it.
	for changed := true; changed; {
		changed = false
		for _, fl := range flows {
			if f.releasesParam[fl.callee][fl.argIdx] && !f.releasesParam[fl.fn][fl.paramIdx] {
				f.setReleases(fl.fn, fl.paramIdx)
				changed = true
			}
		}
	}
	return f
}

func (f *Facts) setReleases(fn *types.Func, idx int) {
	m := f.releasesParam[fn]
	if m == nil {
		m = make(map[int]bool)
		f.releasesParam[fn] = m
	}
	m[idx] = true
}

// scanFunc extracts every fact from one function body.
func (f *Facts) scanFunc(info *types.Info, fn *types.Func, fd *ast.FuncDecl) []paramFlow {
	// Parameter name -> index, for the releaser facts.
	paramIdx := make(map[types.Object]int)
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				paramIdx[obj] = idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	deferRanges := collectDeferRanges(fd.Body)
	inDefer := func(pos token.Pos) bool {
		for _, r := range deferRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	var flows []paramFlow
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(info, n)
			// Releaser facts: pool puts, Close, and hand-offs to callees.
			if isPoolPut(info, n) {
				for _, arg := range n.Args {
					if i, ok := argParam(info, paramIdx, arg); ok {
						f.setReleases(fn, i)
					}
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if i, ok := argParam(info, paramIdx, sel.X); ok {
					f.setReleases(fn, i)
				}
			}
			if callee != nil {
				for ai, arg := range n.Args {
					if pi, ok := argParam(info, paramIdx, arg); ok {
						flows = append(flows, paramFlow{fn: fn, paramIdx: pi, callee: callee, argIdx: ai})
					}
				}
				// WaitGroup.Done anywhere (including deferred: that is the
				// usual shape) marks the function as a tracked goroutine body.
				if callee.Name() == "Done" && recvIsSyncType(callee, "WaitGroup") {
					f.wgDone[fn] = true
				}
				// Lock trace. Deferred unlocks hold to function end, so they
				// produce no release event; deferred calls are skipped.
				if !inDefer(n.Pos()) {
					f.lockEvent(info, fn, n, callee)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isShutdownChan(info, n.X) {
				f.readsShutdown[fn] = true
			}
		case *ast.RangeStmt:
			if isShutdownChan(info, n.X) {
				f.readsShutdown[fn] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if invalidatesStoreLHS(info, lhs) {
					f.invalidates[fn] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isPoolGetExpr(info, res) {
					f.returnsPooled[fn] = true
				}
			}
		}
		return true
	})
	f.scanMapOrdered(info, fn, fd)
	return flows
}

// lockEvent appends acquire/release/call entries for one call expression.
func (f *Facts) lockEvent(info *types.Info, fn *types.Func, call *ast.CallExpr, callee *types.Func) {
	if recvIsSyncType(callee, "Mutex") || recvIsSyncType(callee, "RWMutex") {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		class, ok := lockClassOf(info, sel.X)
		if !ok {
			return
		}
		switch callee.Name() {
		case "Lock", "RLock":
			f.lockEvents[fn] = append(f.lockEvents[fn], lockEvent{kind: evAcquire, class: class, pos: call.Pos()})
		case "Unlock", "RUnlock":
			f.lockEvents[fn] = append(f.lockEvents[fn], lockEvent{kind: evRelease, class: class, pos: call.Pos()})
		}
		return
	}
	if callee.Pkg() != nil {
		f.lockEvents[fn] = append(f.lockEvents[fn], lockEvent{kind: evCall, callee: callee, pos: call.Pos()})
	}
}

// transitiveAcquires returns every lock class fn (or anything it calls,
// transitively) acquires, with one representative position each.
func (f *Facts) transitiveAcquires(fn *types.Func) map[string]token.Pos {
	if m, ok := f.transMemo[fn]; ok {
		return m
	}
	f.transMemo[fn] = map[string]token.Pos{} // cycle guard
	out := make(map[string]token.Pos)
	for _, ev := range f.lockEvents[fn] {
		switch ev.kind {
		case evAcquire:
			if _, ok := out[ev.class]; !ok {
				out[ev.class] = ev.pos
			}
		case evCall:
			for class, pos := range f.transitiveAcquires(ev.callee) {
				if _, ok := out[class]; !ok {
					out[class] = pos
				}
			}
		}
	}
	f.transMemo[fn] = out
	return out
}

// scanMapOrdered records whether fn returns a slice appended under a map
// range and never sorted afterwards.
func (f *Facts) scanMapOrdered(info *types.Info, fn *types.Func, fd *ast.FuncDecl) {
	tainted := mapOrderedVars(info, fd.Body)
	if len(tainted) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if obj := exprObj(info, res); obj != nil && tainted[obj] {
				f.mapOrdered[fn] = true
			}
		}
		return true
	})
}

// mapOrderedVars finds variables whose element order is map iteration order:
// appended to under a `for range m` with no later sort call in the body.
func mapOrderedVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if target := appendTargetInfo(info, rng, call); target != nil {
				out[target] = true
			}
			return true
		})
		return true
	})
	// A sort anywhere after taint kills the fact (lexical approximation).
	for obj := range out {
		if sortCalledOn(info, body, obj) {
			delete(out, obj)
		}
	}
	return out
}

// sortCalledOn reports whether a sort.*/slices.Sort* call targets obj
// anywhere in the body.
func sortCalledOn(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		isSortPkg := funcPkgPath(fn) == "sort" || funcPkgPath(fn) == "slices"
		if !isSortPkg || (!strings.HasPrefix(fn.Name(), "Sort") && !isSortShorthand(fn.Name())) {
			return true
		}
		if exprObj(info, call.Args[0]) == obj {
			found = true
		}
		return !found
	})
	return found
}

// ---- shared predicates ----

// collectDeferRanges returns the source ranges of all defer statements.
func collectDeferRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			out = append(out, [2]token.Pos{d.Pos(), d.End()})
		}
		return true
	})
	return out
}

// argParam resolves an argument expression to a parameter index of the
// enclosing function ((&p) and p both count).
func argParam(info *types.Info, paramIdx map[types.Object]int, arg ast.Expr) (int, bool) {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := info.Uses[id]
	if obj == nil {
		return 0, false
	}
	i, ok := paramIdx[obj]
	return i, ok
}

// recvIsSyncType reports whether fn is a method of sync.<name>.
func recvIsSyncType(fn *types.Func, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	path, n := namedPathName(sig.Recv().Type())
	return path == "sync" && n == name
}

// poolLikeType reports whether t (or *t) declares both a Get/get and a
// Put/put method — the structural signature of an object pool. sync.Pool
// matches; so do project-local pools like netpeer's connPool. A Get whose
// last result is a comma-ok bool is a lookup (cache.Cache, map wrappers),
// not a pool acquisition: its result is owned by the caller, never returned.
func poolLikeType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	var hasGet, hasPut bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Get", "get":
			sig, ok := ms.At(i).Obj().Type().(*types.Signature)
			if ok && sig.Results().Len() >= 2 {
				if b, ok := sig.Results().At(sig.Results().Len() - 1).Type().(*types.Basic); ok && b.Kind() == types.Bool {
					continue
				}
			}
			hasGet = true
		case "Put", "put":
			hasPut = true
		}
	}
	return hasGet && hasPut
}

// isPoolGet reports whether call invokes a Get/get method on a pool-like
// type, or a function known (via facts) to return a pooled value. The facts
// variant is checked by the analyzer, not here.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Name() != "Get" && fn.Name() != "get" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return poolLikeType(sig.Recv().Type())
}

// isPoolPut reports whether call invokes a Put/put method on a pool-like type.
func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Name() != "Put" && fn.Name() != "put" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return poolLikeType(sig.Recv().Type())
}

// isPoolGetExpr unwraps parens and type assertions around a pool Get call.
func isPoolGetExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	return ok && isPoolGet(info, call)
}

// isShutdownChan reports whether e has type chan struct{} (any direction).
func isShutdownChan(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isStoreType reports whether t is (a pointer to) the storage.Store
// interface of this module's peer-local storage engine.
func isStoreType(t types.Type) bool {
	path, name := namedPathName(t)
	return name == "Store" &&
		(path == "ripple/internal/storage" || strings.HasSuffix(path, "internal/storage"))
}

// invalidatesStoreLHS reports whether an assignment target drops or rebuilds
// a lazy store: a storage.Store field (p.store = nil), the whole store table
// (s.repStores = make(...)), or one entry of it (s.repStores[id] =
// storage.New(...)).
func invalidatesStoreLHS(info *types.Info, lhs ast.Expr) bool {
	e := ast.Unparen(lhs)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	t := obj.Type()
	if m, ok := t.Underlying().(*types.Map); ok {
		t = m.Elem()
	}
	return isStoreType(t)
}

// lockClassOf names the lock an expression denotes, stably across functions:
// field locks are "pkg.Type.field", package-level locks "pkg.var", and
// promoted embedded locks "pkg.Type.<embedded>". Local mutexes get a
// position-qualified name so distinct locals never alias.
func lockClassOf(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj := info.Uses[e.Sel]
		if obj == nil {
			return "", false
		}
		// Owner type: the type of the operand the field is selected from.
		if tv, ok := info.Types[e.X]; ok {
			if path, name := namedPathName(tv.Type); name != "" {
				return path + "." + name + "." + e.Sel.Name, true
			}
		}
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + e.Sel.Name, true
		}
		return e.Sel.Name, true
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return "", false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
		// Promoted embedded mutex: e is a struct value, Lock resolved via
		// embedding — classify by the struct type.
		if path, name := namedPathName(obj.Type()); name != "" {
			return path + "." + name + ".<embedded>", true
		}
		return fmt.Sprintf("%s#%d", obj.Name(), obj.Pos()), true
	}
	return "", false
}

// infoAdapter exposes the one go/types lookup the CFG builder needs.
type infoAdapter struct{ info *types.Info }

func (a infoAdapter) calleePathName(call *ast.CallExpr) (string, string, bool) {
	fn := calleeFunc(a.info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// appendTargetInfo is appendTarget for callers that hold a *types.Info
// rather than a Pass (the facts scanner and wiredet).
func appendTargetInfo(info *types.Info, rng *ast.RangeStmt, call *ast.CallExpr) types.Object {
	var target types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) != call || i >= len(as.Lhs) {
				continue
			}
			target = exprObj(info, as.Lhs[i])
		}
		return true
	})
	if target == nil {
		return nil
	}
	if target.Pos() >= rng.Body.Pos() && target.Pos() < rng.Body.End() {
		return nil // declared inside the loop body
	}
	return target
}
