// storeinval: the storage.Provider mutation-invalidation contract (DESIGN.md
// §10.9). Since PR 7 every peer type answers local queries from a lazily
// built storage.Store derived from its tuple share; a write to the share
// that is not followed by a store invalidation (dropStore) leaves the index
// answering from deleted or missing tuples — silently, because the flat-scan
// engine and the stale index often agree on small fixtures. The contract:
// any write to a Provider's tuple-share fields must be post-dominated by an
// invalidation call, i.e. every path from the write to the function exit
// passes one.
//
// Invalidation is matched on the same variable when the receiver is
// syntactically identifiable, falling back to any invalidator call on the
// same Provider type for aliased writes (redistribution loops write through
// a alias and invalidate both sources afterwards).
//
// Since PR 9 the wire-level mutation path extends the contract to the
// transport server: netpeer.Server is not a storage.Provider, but it owns a
// lazy store (and a per-replica store table) derived from tuple shares
// nested inside its config struct. The analyzer therefore also guards types
// that declare a storage.Store field (or a map of them), unwraps nested
// selector/index chains (s.cfg.Tuples) to the owning root, guards
// replica-share slices (fields of []struct{... Tuples []dataset.Tuple ...}
// shape), and counts an assignment into a map of stores
// (s.repStores[id] = storage.New(...)) as an invalidation.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var StoreInvalAnalyzer = &Analyzer{
	Name: "storeinval",
	Doc:  "writes to a Provider's tuple share must be post-dominated by a store invalidation",
	Run:  runStoreInval,
}

func runStoreInval(pass *Pass) error {
	providers := storeOwnerTypes(pass.Pkg)
	if len(providers) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn != nil && pass.Facts.invalidates[fn] {
				continue // the invalidator itself
			}
			checkStoreWrites(pass, fd.Body, providers)
		}
	}
	return nil
}

// providerTypes finds the named types in this package with a Store() method
// returning storage.Store — the storage.Provider implementations.
func providerTypes(pkg *types.Package) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Name() != "Store" {
				continue
			}
			sig, ok := m.Type().(*types.Signature)
			if !ok || sig.Results().Len() != 1 {
				continue
			}
			if isStoreType(sig.Results().At(0).Type()) {
				out[named] = true
			}
		}
	}
	return out
}

// storeOwnerTypes extends providerTypes with named struct types that own a
// lazy store directly — a storage.Store field or a map of them — without
// implementing the Provider interface (netpeer.Server's shape).
func storeOwnerTypes(pkg *types.Package) map[*types.Named]bool {
	out := providerTypes(pkg)
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			t := st.Field(i).Type()
			if m, ok := t.Underlying().(*types.Map); ok {
				t = m.Elem()
			}
			if isStoreType(t) {
				out[named] = true
				break
			}
		}
	}
	return out
}

// guardedField reports whether sel writes a tuple-share field owned by a
// guarded type: a []dataset.Tuple field or a replica-share slice anywhere
// down a selector/index chain rooted at an owner (s.cfg.Tuples), or a field
// named links or zone directly on a Provider.
func guardedField(pass *Pass, providers map[*types.Named]bool, sel *ast.SelectorExpr) (types.Object, *types.Named, bool) {
	fieldObj := pass.TypesInfo.Uses[sel.Sel]
	if fieldObj == nil {
		return nil, nil, false
	}
	if _, ok := fieldObj.(*types.Var); !ok {
		return nil, nil, false
	}
	shareField := isTupleShareField(fieldObj.Type()) || isReplicaShareField(fieldObj.Type())
	if !shareField && sel.Sel.Name != "links" && sel.Sel.Name != "zone" {
		return nil, nil, false
	}
	// The links/zone name guard predates nested-config shapes and stays
	// shallow; share fields are matched through any chain depth.
	return chainOwner(pass, providers, sel.X, !shareField)
}

// chainOwner walks e's selector/index chain inward until it reaches a prefix
// whose type is a guarded owner, returning that prefix's object (the write
// receiver invalidations are matched against). directOnly restricts the
// match to the immediate operand.
func chainOwner(pass *Pass, owners map[*types.Named]bool, e ast.Expr, directOnly bool) (types.Object, *types.Named, bool) {
	for {
		e = ast.Unparen(e)
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ix.X
			continue
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok {
			t := tv.Type
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && owners[named] {
				return exprObj(pass.TypesInfo, e), named, true
			}
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || directOnly {
			return nil, nil, false
		}
		e = sel.X
	}
}

// isTupleShareField: a slice of dataset.Tuple.
func isTupleShareField(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	path, name := namedPathName(sl.Elem())
	return name == "Tuple" && strings.HasSuffix(path, "internal/dataset")
}

// isReplicaShareField: a slice of structs that themselves carry a tuple
// share (netpeer's Replicas []ReplicaShare) — rewriting the slice swaps the
// shares the per-replica stores were built from.
func isReplicaShareField(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	st, ok := sl.Elem().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isTupleShareField(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func checkStoreWrites(pass *Pass, body *ast.BlockStmt, providers map[*types.Named]bool) {
	var g *funcCFG
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			e := ast.Unparen(lhs)
			if ix, ok := e.(*ast.IndexExpr); ok {
				e = ast.Unparen(ix.X)
			}
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			recvObj, owner, ok := guardedField(pass, providers, sel)
			if !ok {
				continue
			}
			if g == nil {
				g = pass.cfgOf(body)
			}
			sat := func(n ast.Node) bool { return nodeInvalidates(pass, n, recvObj, owner) }
			if ok, witness := g.mustReach(as, sat); !ok {
				extra := ""
				if witness != nil {
					extra = " (path exits via line " + itoa(pass.Fset.Position(witness.Pos()).Line) + ")"
				}
				pass.Reportf(as.Pos(),
					"write to %s.%s is not followed by a store invalidation on every path%s; the lazy store would keep answering from the old share (storage.Provider contract)",
					owner.Obj().Name(), sel.Sel.Name, extra)
			}
		}
		return true
	})
}

// nodeInvalidates: the node calls an invalidator (per facts) on the same
// variable — or, when the write went through an alias, on any value of the
// same Provider type — or assigns the store field directly.
func nodeInvalidates(pass *Pass, n ast.Node, recvObj types.Object, owner *types.Named) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, m)
			if fn == nil || !pass.Facts.invalidates[fn] {
				return true
			}
			sel, ok := m.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if recvObj != nil && exprObj(info, sel.X) == recvObj {
				found = true
				return false
			}
			// Alias fallback: same Provider type.
			if tv, ok := info.Types[sel.X]; ok {
				t := tv.Type
				if ptr, ok := t.Underlying().(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj() == owner.Obj() {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if invalidatesStoreLHS(info, lhs) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
