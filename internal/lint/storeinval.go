// storeinval: the storage.Provider mutation-invalidation contract (DESIGN.md
// §10.9). Since PR 7 every peer type answers local queries from a lazily
// built storage.Store derived from its tuple share; a write to the share
// that is not followed by a store invalidation (dropStore) leaves the index
// answering from deleted or missing tuples — silently, because the flat-scan
// engine and the stale index often agree on small fixtures. The contract:
// any write to a Provider's tuple-share fields must be post-dominated by an
// invalidation call, i.e. every path from the write to the function exit
// passes one.
//
// Invalidation is matched on the same variable when the receiver is
// syntactically identifiable, falling back to any invalidator call on the
// same Provider type for aliased writes (redistribution loops write through
// a alias and invalidate both sources afterwards).
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var StoreInvalAnalyzer = &Analyzer{
	Name: "storeinval",
	Doc:  "writes to a Provider's tuple share must be post-dominated by a store invalidation",
	Run:  runStoreInval,
}

func runStoreInval(pass *Pass) error {
	providers := providerTypes(pass.Pkg)
	if len(providers) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn != nil && pass.Facts.invalidates[fn] {
				continue // the invalidator itself
			}
			checkStoreWrites(pass, fd.Body, providers)
		}
	}
	return nil
}

// providerTypes finds the named types in this package with a Store() method
// returning storage.Store — the storage.Provider implementations.
func providerTypes(pkg *types.Package) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Name() != "Store" {
				continue
			}
			sig, ok := m.Type().(*types.Signature)
			if !ok || sig.Results().Len() != 1 {
				continue
			}
			if isStoreType(sig.Results().At(0).Type()) {
				out[named] = true
			}
		}
	}
	return out
}

// guardedField reports whether sel writes a tuple-share field of a Provider
// type: a []dataset.Tuple field, or a field named links or zone.
func guardedField(pass *Pass, providers map[*types.Named]bool, sel *ast.SelectorExpr) (types.Object, *types.Named, bool) {
	fieldObj := pass.TypesInfo.Uses[sel.Sel]
	if fieldObj == nil {
		return nil, nil, false
	}
	if _, ok := fieldObj.(*types.Var); !ok {
		return nil, nil, false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return nil, nil, false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !providers[named] {
		return nil, nil, false
	}
	if !isTupleShareField(fieldObj.Type()) && sel.Sel.Name != "links" && sel.Sel.Name != "zone" {
		return nil, nil, false
	}
	return exprObj(pass.TypesInfo, sel.X), named, true
}

// isTupleShareField: a slice of dataset.Tuple.
func isTupleShareField(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	path, name := namedPathName(sl.Elem())
	return name == "Tuple" && strings.HasSuffix(path, "internal/dataset")
}

func checkStoreWrites(pass *Pass, body *ast.BlockStmt, providers map[*types.Named]bool) {
	var g *funcCFG
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			e := ast.Unparen(lhs)
			if ix, ok := e.(*ast.IndexExpr); ok {
				e = ast.Unparen(ix.X)
			}
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			recvObj, owner, ok := guardedField(pass, providers, sel)
			if !ok {
				continue
			}
			if g == nil {
				g = pass.cfgOf(body)
			}
			sat := func(n ast.Node) bool { return nodeInvalidates(pass, n, recvObj, owner) }
			if ok, witness := g.mustReach(as, sat); !ok {
				extra := ""
				if witness != nil {
					extra = " (path exits via line " + itoa(pass.Fset.Position(witness.Pos()).Line) + ")"
				}
				pass.Reportf(as.Pos(),
					"write to %s.%s is not followed by a store invalidation on every path%s; the lazy store would keep answering from the old share (storage.Provider contract)",
					owner.Obj().Name(), sel.Sel.Name, extra)
			}
		}
		return true
	})
}

// nodeInvalidates: the node calls an invalidator (per facts) on the same
// variable — or, when the write went through an alias, on any value of the
// same Provider type — or assigns the store field directly.
func nodeInvalidates(pass *Pass, n ast.Node, recvObj types.Object, owner *types.Named) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, m)
			if fn == nil || !pass.Facts.invalidates[fn] {
				return true
			}
			sel, ok := m.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if recvObj != nil && exprObj(info, sel.X) == recvObj {
				found = true
				return false
			}
			// Alias fallback: same Provider type.
			if tv, ok := info.Types[sel.X]; ok {
				t := tv.Type
				if ptr, ok := t.Underlying().(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj() == owner.Obj() {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if obj := info.Uses[sel.Sel]; obj != nil && isStoreType(obj.Type()) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
