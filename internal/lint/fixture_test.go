package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches analysistest-style expectations: // want `regex`.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type wantKey struct {
	file string
	line int
}

// runFixture loads testdata/<analyzer>/<variant>, runs the analyzer, and
// matches diagnostics against the fixture's `// want` comments exactly:
// every want must be hit by a diagnostic on its line, and no diagnostic may
// appear without a want — so clean fixtures double as false-positive tests.
func runFixture(t *testing.T, a *Analyzer, variant string) {
	t.Helper()
	dir := filepath.Join("testdata", a.Name, variant)
	pkg, err := LoadDir(".", dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[wantKey][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					k := wantKey{file: filepath.Base(pos.Filename), line: pos.Line}
					wants[k] = append(wants[k], &want{re: regexp.MustCompile(m[1])})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := wantKey{file: filepath.Base(pos.Filename), line: pos.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

func TestDeterminismFixtures(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "bad")
	runFixture(t, DeterminismAnalyzer, "clean")
}

func TestStateAliasFixtures(t *testing.T) {
	runFixture(t, StateAliasAnalyzer, "bad")
	runFixture(t, StateAliasAnalyzer, "clean")
}

func TestLockCheckFixtures(t *testing.T) {
	runFixture(t, LockCheckAnalyzer, "bad")
	runFixture(t, LockCheckAnalyzer, "clean")
}

func TestCtxDeadlineFixtures(t *testing.T) {
	runFixture(t, CtxDeadlineAnalyzer, "bad")
	runFixture(t, CtxDeadlineAnalyzer, "clean")
}

func TestErrLostFixtures(t *testing.T) {
	runFixture(t, ErrLostAnalyzer, "bad")
	runFixture(t, ErrLostAnalyzer, "clean")
}

func TestPoolCheckFixtures(t *testing.T) {
	runFixture(t, PoolCheckAnalyzer, "bad")
	runFixture(t, PoolCheckAnalyzer, "clean")
}

func TestWireDetFixtures(t *testing.T) {
	runFixture(t, WireDetAnalyzer, "bad")
	runFixture(t, WireDetAnalyzer, "clean")
}

func TestLockOrderFixtures(t *testing.T) {
	runFixture(t, LockOrderAnalyzer, "bad")
	runFixture(t, LockOrderAnalyzer, "clean")
}

func TestStoreInvalFixtures(t *testing.T) {
	runFixture(t, StoreInvalAnalyzer, "bad")
	runFixture(t, StoreInvalAnalyzer, "clean")
}

func TestGoroLeakFixtures(t *testing.T) {
	runFixture(t, GoroLeakAnalyzer, "bad")
	runFixture(t, GoroLeakAnalyzer, "clean")
}

// TestStaleIgnores: a reasoned directive that suppresses nothing is reported
// as stale — but only once every analyzer it names has actually run, since
// otherwise the absence of findings proves nothing.
func TestStaleIgnores(t *testing.T) {
	pkg, err := LoadDir(".", filepath.Join("testdata", "ignore", "stale"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(DeterminismAnalyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected analyzer diagnostics: %v", diags)
	}
	stale := staleIgnores(pkg, map[string]bool{"determinism": true})
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "stale //lint:ignore") {
		t.Errorf("staleIgnores with determinism ran = %v, want one stale-directive finding", stale)
	}
	if got := staleIgnores(pkg, map[string]bool{}); len(got) != 0 {
		t.Errorf("staleIgnores without the analyzer having run = %v, want none", got)
	}
}

// TestUsedIgnoreNotStale: the wire/pool.go-style deliberate drop — a
// directive that does suppress a finding — must not be reported stale.
func TestUsedIgnoreNotStale(t *testing.T) {
	pkg, err := LoadDir(".", filepath.Join("testdata", "ignore", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(DeterminismAnalyzer, pkg); err != nil {
		t.Fatal(err)
	}
	for _, d := range staleIgnores(pkg, map[string]bool{"determinism": true}) {
		t.Errorf("used directive reported stale: %s", d.Message)
	}
}

// TestIgnoreDirectives checks both halves of the suppression convention: a
// directive with a reason silences exactly its line, and a reason-less
// directive silences nothing and is itself a finding.
func TestIgnoreDirectives(t *testing.T) {
	pkg, err := LoadDir(".", filepath.Join("testdata", "ignore", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(DeterminismAnalyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	var gotMalformed, gotFinding int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "missing reason"):
			gotMalformed++
		case strings.Contains(d.Message, "time.Now"):
			gotFinding++
		default:
			t.Errorf("unexpected diagnostic: %s", d.Message)
		}
	}
	if gotMalformed != 1 || gotFinding != 1 {
		t.Errorf("got %d malformed-directive and %d unsuppressed findings, want 1 and 1; diags: %v",
			gotMalformed, gotFinding, diags)
	}
}
