// goroleak: shutdown coverage for long-lived components (DESIGN.md §10.10).
// A component that owns a shutdown signal — a struct with a chan struct{}
// field that the package close()s — promises its goroutines die when it is
// closed: Server.Close waits on its WaitGroup, tests leak-check with the
// race detector, and the soak harness (ROADMAP item 4) restarts components
// in place. Two statically checkable obligations follow for every function
// that is a method of (or constructs) such a component:
//
//   - a `go` statement must be tied to shutdown: a WaitGroup Add before the
//     spawn with a Done in the goroutine body (directly or in the callee,
//     via facts), a receive from the shutdown channel in the body, or a
//     send to a function-local channel the spawner drains (bounded fan-out);
//   - time.Sleep is banned: a sleeping goroutine ignores the shutdown
//     signal for the whole duration, delaying Close by up to the sleep —
//     select on the channel and a timer instead.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var GoroLeakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines of shutdown-owning components must be joined or signalled; no shutdown-blind sleeps",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	owners := shutdownOwners(pass)
	if len(owners) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !ownerScoped(pass, fd, owners) {
				continue
			}
			checkGoroutines(pass, fd)
			checkSleeps(pass, fd)
		}
	}
	return nil
}

// shutdownOwners finds named struct types with a chan struct{} field that is
// close()d somewhere in this package.
func shutdownOwners(pass *Pass) map[*types.Named]bool {
	// Fields of type chan struct{} that are closed: close(x.f).
	closedFields := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "close" {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil {
					closedFields[obj] = true
				}
			}
			return true
		})
	}
	out := make(map[*types.Named]bool)
	for _, name := range pass.Pkg.Scope().Names() {
		tn, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if !closedFields[fld] {
				continue
			}
			ch, ok := fld.Type().Underlying().(*types.Chan)
			if !ok {
				continue
			}
			if s, ok := ch.Elem().Underlying().(*types.Struct); ok && s.NumFields() == 0 {
				out[named] = true
			}
		}
	}
	return out
}

// ownerScoped: the function is a method of a shutdown owner, or constructs
// one (a result type is an owner) — the places whose goroutines live as
// long as the component.
func ownerScoped(pass *Pass, fd *ast.FuncDecl, owners map[*types.Named]bool) bool {
	isOwner := func(t types.Type) bool {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && owners[named]
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok && isOwner(tv.Type) {
			return true
		}
		// Receiver types are type expressions; Types may miss them, fall back
		// to the declared object.
		if len(fd.Recv.List[0].Names) == 1 {
			if obj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; obj != nil && isOwner(obj.Type()) {
				return true
			}
		}
	}
	if fd.Type.Results != nil {
		for _, res := range fd.Type.Results.List {
			if tv, ok := pass.TypesInfo.Types[res.Type]; ok && isOwner(tv.Type) {
				return true
			}
		}
	}
	return false
}

func checkSleeps(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn != nil && funcPkgPath(fn) == "time" && fn.Name() == "Sleep" {
			pass.Reportf(call.Pos(),
				"time.Sleep in a component with a shutdown channel ignores Close for the whole duration; select on the channel and a timer instead")
		}
		return true
	})
}

func checkGoroutines(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goroutineTied(pass, fd, g) {
			return true
		}
		pass.Reportf(g.Pos(),
			"goroutine can outlive Close: pair it with WaitGroup Add/Done, or select on the shutdown channel in its body")
		return true
	})
}

// goroutineTied checks the three accepted shutdown ties.
func goroutineTied(pass *Pass, fd *ast.FuncDecl, g *ast.GoStmt) bool {
	info := pass.TypesInfo
	// (a) WaitGroup: an Add before the spawn and a Done in the body.
	if wgAddBefore(info, fd.Body, g.Pos()) && goroutineCallsDone(pass, g) {
		return true
	}
	// (b) the body receives from a shutdown channel (directly or via callee).
	if goroutineReadsShutdown(pass, g) {
		return true
	}
	// (c) bounded fan-out: the body sends on a channel this function drains.
	if rendezvousChannel(info, fd, g) {
		return true
	}
	return false
}

func wgAddBefore(info *types.Info, body *ast.BlockStmt, before token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= before {
			return !found
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Name() == "Add" && recvIsSyncType(fn, "WaitGroup") {
			found = true
		}
		return !found
	})
	return found
}

func goroutineCallsDone(pass *Pass, g *ast.GoStmt) bool {
	info := pass.TypesInfo
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if fn.Name() == "Done" && recvIsSyncType(fn, "WaitGroup") {
				found = true
			}
			if pass.Facts.wgDone[fn] {
				found = true
			}
			return !found
		})
		return found
	}
	fn := calleeFunc(info, g.Call)
	return fn != nil && pass.Facts.wgDone[fn]
}

func goroutineReadsShutdown(pass *Pass, g *ast.GoStmt) bool {
	info := pass.TypesInfo
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && isShutdownChan(info, n.X) {
					found = true
				}
			case *ast.RangeStmt:
				if isShutdownChan(info, n.X) {
					found = true
				}
			case *ast.CallExpr:
				if fn := calleeFunc(info, n); fn != nil && pass.Facts.readsShutdown[fn] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	fn := calleeFunc(info, g.Call)
	return fn != nil && pass.Facts.readsShutdown[fn]
}

// rendezvousChannel: the goroutine sends on a channel object that the
// spawning function receives from outside the goroutine — the bounded
// fan-out/fan-in shape where the spawner cannot return before the goroutine
// finishes its send.
func rendezvousChannel(info *types.Info, fd *ast.FuncDecl, g *ast.GoStmt) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	sent := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			if obj := exprObj(info, s.Chan); obj != nil {
				sent[obj] = true
			}
		}
		return true
	})
	if len(sent) == 0 {
		return false
	}
	drained := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || drained {
			return false
		}
		// Skip the goroutine body itself.
		if n == lit {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := exprObj(info, n.X); obj != nil && sent[obj] {
					drained = true
				}
			}
		case *ast.RangeStmt:
			if obj := exprObj(info, n.X); obj != nil && sent[obj] {
				drained = true
			}
		}
		return !drained
	})
	return drained
}
