package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockCheckAnalyzer enforces lock and atomic discipline in the concurrent
// packages (DESIGN.md §10.3):
//
//   - a struct containing a sync or sync/atomic value must not be copied:
//     copies split the lock from the state it guards (value receivers,
//     plain assignment, range-value copies, and by-value argument passing
//     are all flagged);
//   - a field written with the sync/atomic functions must never also be
//     read or written directly: mixed access is a data race that the race
//     detector only catches when the schedule cooperates, while the
//     analyzer catches it on every build.
var LockCheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "forbid copying mutex-bearing structs and mixing atomic with plain access to the same field",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) error {
	for _, f := range pass.Files {
		checkCopies(pass, f)
	}
	checkMixedAtomics(pass)
	return nil
}

// ---- lock copying ----

// lockContainers are the types whose values must never be copied after use.
var lockContainers = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
		"Cond": true, "Map": true, "Pool": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// containsLock reports whether a value of type t embeds a lock (directly, in
// a nested struct field, or in an array element). Pointers, slices, and maps
// only reference the lock and are fine to copy.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if path, name := namedType(t); path != "" {
		if lockContainers[path][name] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// namedType returns the package path and name of a named type (no pointer
// unwrapping: a *Mutex does not contain a lock, it points at one).
func namedType(t types.Type) (string, string) {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Path(), n.Obj().Name()
}

// addressableSource reports whether copying from this expression duplicates
// an existing value (as opposed to initializing from a literal or a call
// result, which moves a fresh value that has never guarded anything).
func addressableSource(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.TypeAssertExpr:
		return addressableSource(e.X)
	}
	return false
}

func checkCopies(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkValueReceiver(pass, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				checkCopyExpr(pass, rhs, "assignment copies")
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.TypesInfo.TypeOf(n.Value); t != nil && containsLock(t) {
					pass.Reportf(n.Value.Pos(),
						"range value copies %s, which contains a lock; iterate by index or over pointers", typeString(t))
				}
			}
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // type conversion, not a call
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true // len/cap/... do not copy their argument
				}
			}
			for _, arg := range n.Args {
				checkCopyExpr(pass, arg, "argument passes a copy of")
			}
		}
		return true
	})
}

func checkCopyExpr(pass *Pass, e ast.Expr, how string) {
	if !addressableSource(e) {
		return
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil || !containsLock(t) {
		return
	}
	pass.Reportf(e.Pos(),
		"%s %s, which contains a lock; use a pointer so the lock and the state it guards stay together", how, typeString(t))
}

func checkValueReceiver(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if containsLock(t) {
		pass.Reportf(fd.Recv.Pos(),
			"method %s copies its lock-bearing receiver %s on every call; use a pointer receiver", fd.Name.Name, typeString(t))
	}
}

func typeString(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}

// ---- mixed atomic / plain access ----

// checkMixedAtomics flags fields and variables that are accessed through the
// sync/atomic functions somewhere in the package and with a plain read or
// write somewhere else. Composite-literal initialization is exempt (the
// value is not yet shared); everything else must be consistently atomic.
func checkMixedAtomics(pass *Pass) {
	atomicObjs := make(map[types.Object]bool) // objects whose address feeds sync/atomic
	sanctioned := make(map[*ast.Ident]bool)   // idents inside those &x.f arguments

	// Pass 1: find atomic accesses and composite-literal keys.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if funcPkgPath(fn) != "sync/atomic" || len(n.Args) == 0 {
					return true
				}
				un, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr)
				if !ok {
					return true
				}
				obj := exprObj(pass.TypesInfo, un.X)
				if obj == nil {
					return true
				}
				atomicObjs[obj] = true
				markIdents(un.X, sanctioned)
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							sanctioned[id] = true
						}
					}
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: any other reference to those objects is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !atomicObjs[obj] {
				return true
			}
			pass.Reportf(id.Pos(),
				"%q is accessed with sync/atomic elsewhere in this package but read or written directly here; every access must be atomic (or migrate the field to an atomic.Int64-style type)",
				id.Name)
			return true
		})
	}
}

// markIdents records every identifier inside the &x.f argument of an atomic
// call so the second pass does not count it as a plain access.
func markIdents(e ast.Expr, sanctioned map[*ast.Ident]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			sanctioned[id] = true
		}
		return true
	})
}
