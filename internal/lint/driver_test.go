package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestMainSeededViolation is the acceptance gate's demonstration: ripple-vet
// exits non-zero on a tree seeded with a violation and names the finding.
func TestMainSeededViolation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-unscoped", "-analyzers", "determinism", "./testdata/determinism/bad"})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "determinism: call to time.Now") {
		t.Errorf("findings missing from output:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("summary missing from stderr: %s", stderr.String())
	}
}

// TestMainCleanPackage: a violation-free package exits zero with no output.
func TestMainCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-unscoped", "-analyzers", "determinism", "./testdata/determinism/clean"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected output: %s", stdout.String())
	}
}

// TestMainScope: under default scoping the fixture package is outside every
// analyzer's blast radius, so the same seeded tree passes — scoping is what
// lets cmd/ tools print to stdout without suppressions.
func TestMainScope(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-analyzers", "determinism", "./testdata/determinism/bad"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (out of scope); stdout: %s stderr: %s",
			code, stdout.String(), stderr.String())
	}
}

func TestMainList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".", []string{"-list"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	for _, a := range Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, stdout.String())
		}
	}
}

func TestMainUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main(&stdout, &stderr, ".", []string{"-analyzers", "nope"}); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestMainJSON: -json emits a machine-readable array with the same findings
// and the same exit code as the text mode.
func TestMainJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-json", "-analyzers", "poolcheck", "./testdata/poolcheck/bad"})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output is empty, want the seeded findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer != "poolcheck" || d.Message == "" {
			t.Errorf("malformed JSON finding: %+v", d)
		}
	}
}

// TestMainJSONClean: a clean run emits an empty array (not null) and exits
// zero, so consumers can index the output unconditionally.
func TestMainJSONClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-json", "-analyzers", "poolcheck", "./testdata/poolcheck/clean"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestMainSARIF validates the -sarif output against the SARIF 2.1.0
// structure scanners consume: schema/version identifiers, a named tool
// driver with rules, and results whose ruleId/ruleIndex resolve into the
// rules array and whose locations carry a file and a 1-based region.
func TestMainSARIF(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-sarif", "-analyzers", "poolcheck", "./testdata/poolcheck/bad"})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q, want the SARIF 2.1.0 schema URI", log.Schema)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want exactly 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ripple-vet" {
		t.Errorf("tool.driver.name = %q, want ripple-vet", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) == 0 {
		t.Fatal("tool.driver.rules is empty")
	}
	if len(run.Results) == 0 {
		t.Fatal("results is empty, want the seeded findings")
	}
	for i, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result %d: ruleIndex %d out of range", i, r.RuleIndex)
			continue
		}
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("result %d: ruleIndex resolves to %q, ruleId says %q", i, got, r.RuleID)
		}
		if r.Level != "error" {
			t.Errorf("result %d: level = %q, want error", i, r.Level)
		}
		if r.Message.Text == "" {
			t.Errorf("result %d: empty message", i)
		}
		if len(r.Locations) != 1 {
			t.Errorf("result %d: locations = %d, want 1", i, len(r.Locations))
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("result %d: bad artifact URI %q", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 || loc.Region.StartColumn <= 0 {
			t.Errorf("result %d: region %+v not 1-based", i, loc.Region)
		}
	}
}

// TestMainJSONAndSARIFExclusive: asking for both formats is a usage error.
func TestMainJSONAndSARIFExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main(&stdout, &stderr, ".", []string{"-json", "-sarif"}); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestMainStaleSuppression: the driver surfaces a stale reasoned directive
// as a finding with exit code 1.
func TestMainStaleSuppression(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-unscoped", "-analyzers", "determinism", "./testdata/ignore/stale"})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stdout: %s stderr: %s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "stale //lint:ignore") {
		t.Errorf("stale-directive finding missing from output:\n%s", stdout.String())
	}
}
