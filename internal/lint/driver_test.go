package lint

import (
	"bytes"
	"strings"
	"testing"
)

// TestMainSeededViolation is the acceptance gate's demonstration: ripple-vet
// exits non-zero on a tree seeded with a violation and names the finding.
func TestMainSeededViolation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-unscoped", "-analyzers", "determinism", "./testdata/determinism/bad"})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "determinism: call to time.Now") {
		t.Errorf("findings missing from output:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("summary missing from stderr: %s", stderr.String())
	}
}

// TestMainCleanPackage: a violation-free package exits zero with no output.
func TestMainCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-unscoped", "-analyzers", "determinism", "./testdata/determinism/clean"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected output: %s", stdout.String())
	}
}

// TestMainScope: under default scoping the fixture package is outside every
// analyzer's blast radius, so the same seeded tree passes — scoping is what
// lets cmd/ tools print to stdout without suppressions.
func TestMainScope(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".",
		[]string{"-analyzers", "determinism", "./testdata/determinism/bad"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (out of scope); stdout: %s stderr: %s",
			code, stdout.String(), stderr.String())
	}
}

func TestMainList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, ".", []string{"-list"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	for _, a := range Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, stdout.String())
		}
	}
}

func TestMainUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main(&stdout, &stderr, ".", []string{"-analyzers", "nope"}); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
