package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrLostAnalyzer enforces exactly-once failure accounting (DESIGN.md §10.5).
// In the fan-out engines, an error from a child call IS a lost subtree: if it
// is dropped, the query silently returns a partial answer that claims to be
// complete — the exact bug class the fault-tolerance layer (PR 1) exists to
// prevent. Every error must therefore reach a handler: failure accounting
// (sim.Stats, wire.Reply.RecordLostLink), a returned error, or a logged
// decision. Discarding one is an error:
//
//   - a call used as a bare statement whose results include an error;
//   - an error result assigned to the blank identifier (`r, _ := f()`,
//     `_ = f()`);
//   - `go f()` / `defer f()` where f's error has nowhere to go.
//
// Exceptions are limited to errors that are impossible or meaningless by
// documentation, mirroring errcheck's defaults:
//
//   - methods named Close (best-effort teardown of connections already
//     being abandoned);
//   - fmt.Print/Printf/Println to stdout, and fmt.Fprint* into a
//     strings.Builder or bytes.Buffer;
//   - methods on strings.Builder and bytes.Buffer (documented to panic,
//     not error);
//   - Write on a hash.Hash (documented to never return an error).
var ErrLostAnalyzer = &Analyzer{
	Name: "errlost",
	Doc:  "error results must reach failure accounting or a handler, never the blank identifier",
	Run:  runErrLost,
}

func runErrLost(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "is silently discarded")
				}
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "vanishes with the goroutine")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "is silently discarded by defer")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall flags a call statement whose results include an error.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, how string) {
	if isExemptDiscard(pass, call) {
		return
	}
	for _, t := range resultTypes(pass.TypesInfo, call) {
		if isErrorType(t) {
			pass.Reportf(call.Pos(),
				"error result of %s %s; handle it or record the failure (sim.Stats / wire.Reply.FailedRegions)",
				callName(pass, call), how)
			return
		}
	}
}

// checkBlankAssign flags error results assigned to the blank identifier.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	// Multi-result call: r, _ := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || isExemptDiscard(pass, call) {
			return
		}
		rets := resultTypes(pass.TypesInfo, call)
		for i, lhs := range as.Lhs {
			if i < len(rets) && isBlank(lhs) && isErrorType(rets[i]) {
				pass.Reportf(lhs.Pos(),
					"error result of %s is assigned to _; handle it or record the failure (sim.Stats / wire.Reply.FailedRegions)",
					callName(pass, call))
			}
		}
		return
	}
	// Pairwise: _ = expr where expr has error type.
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isBlank(lhs) {
			continue
		}
		rhs := as.Rhs[i]
		t := pass.TypesInfo.TypeOf(rhs)
		if t == nil || !isErrorType(t) {
			continue
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isExemptDiscard(pass, call) {
			continue
		}
		pass.Reportf(lhs.Pos(),
			"error value is assigned to _; handle it or record the failure (sim.Stats / wire.Reply.FailedRegions)")
	}
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// isExemptDiscard reports whether discarding the call's error is sanctioned:
// Close teardown, stdout printing, or writers documented never to fail.
func isExemptDiscard(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "Close" {
		return true
	}
	if funcPkgPath(fn) == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true // stdout: nothing sensible to do with the error
		}
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			return isInfallibleWriter(pass.TypesInfo.TypeOf(call.Args[0]))
		}
		return false
	}
	// For method calls, judge the receiver by its static type at the call
	// site: an interface method's declared receiver (e.g. io.Writer for
	// hash.Hash64.Write) says nothing about what it is called on.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if isInfallibleWriter(recv) {
		return true
	}
	return fn.Name() == "Write" && isHash(pass, recv)
}

// isInfallibleWriter matches strings.Builder and bytes.Buffer (and pointers
// to them), whose write methods are documented to never return an error.
func isInfallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	path, name := namedPathName(t)
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

// isHash matches types satisfying hash.Hash, whose Write is documented to
// never return an error.
func isHash(pass *Pass, t types.Type) bool {
	if hashPkg := findImport(pass.Pkg, "hash"); hashPkg != nil {
		if named := lookupType(hashPkg, "Hash"); named != nil {
			if iface, ok := named.Underlying().(*types.Interface); ok && types.Implements(t, iface) {
				return true
			}
		}
	}
	path, _ := namedPathName(t)
	return path == "hash" || strings.HasPrefix(path, "hash/")
}

// callName renders the callee for diagnostics.
func callName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	return "the call"
}
