package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses one function body from a source fragment; the CFG builder
// runs on unchecked ASTs, so no type information is needed.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// callNamed reports whether the subtree contains a call to the bare
// identifier name.
func callNamed(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// findStmt locates the expression statement calling name (not an enclosing
// compound statement, which would also "contain" the call).
func findStmt(t *testing.T, body *ast.BlockStmt, name string) ast.Stmt {
	t.Helper()
	var hit ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if s, ok := n.(*ast.ExprStmt); ok && callNamed(s, name) {
			hit = s
			return false
		}
		return true
	})
	if hit == nil {
		t.Fatalf("no statement calling %s in fixture", name)
	}
	return hit
}

// stubInfo resolves pkg.Name selector calls syntactically, standing in for
// go/types in terminator classification.
type stubInfo struct{}

func (stubInfo) calleePathName(call *ast.CallExpr) (string, string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkg, ok := sel.X.(*ast.Ident); ok {
			return pkg.Name, sel.Sel.Name, true
		}
	}
	return "", "", false
}

// checkReach builds the CFG for body and asks whether every path from the
// get() statement to the exit passes a rel() call.
func checkReach(t *testing.T, body string) bool {
	t.Helper()
	b := parseBody(t, body)
	g := buildCFG(b, stubInfo{})
	start := findStmt(t, b, "get")
	ok, _ := g.mustReach(start, func(n ast.Node) bool { return callNamed(n, "rel") })
	return ok
}

func TestMustReachStraightLine(t *testing.T) {
	if !checkReach(t, "get()\nrel()") {
		t.Error("straight-line release not reached")
	}
}

func TestMustReachMissingOnBranch(t *testing.T) {
	if checkReach(t, "get()\nif c {\n\trel()\n}") {
		t.Error("release only on one branch should not satisfy mustReach")
	}
}

func TestMustReachBothBranches(t *testing.T) {
	if !checkReach(t, "get()\nif c {\n\trel()\n} else {\n\trel()\n}") {
		t.Error("release on both branches should satisfy mustReach")
	}
}

func TestMustReachEarlyReturnLeaks(t *testing.T) {
	if checkReach(t, "get()\nif c {\n\treturn\n}\nrel()") {
		t.Error("early return before the release should fail mustReach")
	}
}

func TestMustReachAfterLoop(t *testing.T) {
	if !checkReach(t, "get()\nfor i := 0; i < n; i++ {\n\twork()\n}\nrel()") {
		t.Error("release after a loop should satisfy mustReach")
	}
}

func TestMustReachPanicUnwinds(t *testing.T) {
	// A panic exits the function past the non-deferred release.
	if checkReach(t, "get()\nif c {\n\tpanic(\"x\")\n}\nrel()") {
		t.Error("panic path skips the release; mustReach should fail")
	}
}

func TestMustReachHaltExempt(t *testing.T) {
	// os.Exit never returns: the process is gone, nothing leaks.
	if !checkReach(t, "get()\nif c {\n\tos.Exit(1)\n}\nrel()") {
		t.Error("os.Exit path should be exempt from the release obligation")
	}
}

func TestMustReachSwitchNeedsDefault(t *testing.T) {
	if checkReach(t, "get()\nswitch x {\ncase 1:\n\trel()\n}") {
		t.Error("switch without default has a releasing-free path")
	}
	if !checkReach(t, "get()\nswitch x {\ncase 1:\n\trel()\ndefault:\n\trel()\n}") {
		t.Error("release in every case including default should satisfy mustReach")
	}
}

func TestMustReachLoopBreak(t *testing.T) {
	if checkReach(t, "get()\nfor {\n\tif c {\n\t\tbreak\n\t}\n\trel()\n\treturn\n}") {
		t.Error("break path exits the loop without releasing")
	}
}

func TestReachableUsesStrictlyAfter(t *testing.T) {
	b := parseBody(t, "get()\nuse()\nrel()")
	g := buildCFG(b, stubInfo{})
	start := findStmt(t, b, "get")
	var names []string
	g.reachableUses(start, func(n ast.Node) bool {
		for _, name := range []string{"get", "use", "rel"} {
			if callNamed(n, name) {
				names = append(names, name)
			}
		}
		return true
	})
	if len(names) != 2 || names[0] != "use" || names[1] != "rel" {
		t.Errorf("reachableUses visited %v, want [use rel] (strictly after start)", names)
	}
}

func TestReachableUsesStopsPath(t *testing.T) {
	b := parseBody(t, "get()\nstop()\nuse()")
	g := buildCFG(b, stubInfo{})
	start := findStmt(t, b, "get")
	sawUse := false
	g.reachableUses(start, func(n ast.Node) bool {
		if callNamed(n, "use") {
			sawUse = true
		}
		return !callNamed(n, "stop")
	})
	if sawUse {
		t.Error("visit returning false should stop the path before use()")
	}
}
