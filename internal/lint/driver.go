package lint

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Main is the ripple-vet multichecker entry point: it loads the packages
// matching the patterns (default ./...), runs every analyzer over its scoped
// packages, and prints findings as `file:line:col: analyzer: message`.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load failure — so `make
// verify` and CI fail on any violation.
func Main(stdout, stderr io.Writer, dir string, args []string) int {
	fs := flag.NewFlagSet("ripple-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the analyzers and exit")
		only     = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		unscoped = fs.Bool("unscoped", false, "ignore the default package scopes and run every analyzer everywhere")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ripple-vet [flags] [packages]\n\n"+
			"ripple-vet enforces RIPPLE's determinism, aliasing, locking, deadline,\n"+
			"and failure-accounting invariants (DESIGN.md §10).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "ripple-vet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "ripple-vet:", err)
		return 2
	}
	var all []Diagnostic
	var fsets []*Package
	for _, pkg := range pkgs {
		for _, a := range selected {
			if !*unscoped && !InScope(a.Name, pkg.Path) {
				continue
			}
			diags, err := Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, "ripple-vet:", err)
				return 2
			}
			for range diags {
				fsets = append(fsets, pkg)
			}
			all = append(all, diags...)
		}
	}
	type located struct {
		pos  string
		line string
	}
	out := make([]located, len(all))
	for i, d := range all {
		pos := fsets[i].Fset.Position(d.Pos)
		out[i] = located{
			pos:  pos.String(),
			line: fmt.Sprintf("%s: %s: %s", pos, d.Analyzer, d.Message),
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	for _, l := range out {
		fmt.Fprintln(stdout, l.line)
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "ripple-vet: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*Analyzer, error) {
	analyzers := Analyzers()
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
