package lint

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Main is the ripple-vet multichecker entry point: it loads the packages
// matching the patterns (default ./...), computes the cross-package fact
// base once, runs every analyzer over its scoped packages — packages in
// parallel, analyzers serially within each so suppression bookkeeping needs
// no locks — and prints findings as `file:line:col: analyzer: message`
// (or JSON / SARIF 2.1.0 with -json / -sarif).
//
// After the analyzers, reasoned //lint:ignore directives that suppressed
// nothing are reported as stale — provided every analyzer they name actually
// ran on that package, since otherwise the absence of findings proves
// nothing.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load failure — so `make
// verify` and CI fail on any violation.
func Main(stdout, stderr io.Writer, dir string, args []string) int {
	fs := flag.NewFlagSet("ripple-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the analyzers and exit")
		only     = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		unscoped = fs.Bool("unscoped", false, "ignore the default package scopes and run every analyzer everywhere")
		jsonOut  = fs.Bool("json", false, "print findings as a JSON array")
		sarifOut = fs.Bool("sarif", false, "print findings as a SARIF 2.1.0 log")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ripple-vet [flags] [packages]\n\n"+
			"ripple-vet enforces RIPPLE's determinism, aliasing, locking, deadline,\n"+
			"failure-accounting, pool-hygiene, wire-order, lock-order, store-invalidation,\n"+
			"and shutdown-coverage invariants (DESIGN.md §10).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "ripple-vet: -json and -sarif are mutually exclusive")
		return 2
	}
	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "ripple-vet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "ripple-vet:", err)
		return 2
	}

	// One fact base over the whole load, so whole-program analyzers
	// (lockorder) and helper-aware ones (poolcheck, storeinval, goroleak)
	// see across package boundaries.
	facts := ComputeFacts(pkgs)

	// Packages analysed in parallel; analyzers run serially within each
	// package so a package's directive usage and diagnostics need no locks.
	pkgDiags := make([][]Diagnostic, len(pkgs))
	pkgErrs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ran := make(map[string]bool, len(selected))
			var diags []Diagnostic
			for _, a := range selected {
				if !*unscoped && !InScope(a.Name, pkg.Path) {
					continue
				}
				ds, err := RunWithFacts(a, pkg, facts)
				if err != nil {
					pkgErrs[i] = err
					return
				}
				ran[a.Name] = true
				diags = append(diags, ds...)
			}
			diags = append(diags, staleIgnores(pkg, ran)...)
			pkgDiags[i] = diags
		}(i, pkg)
	}
	wg.Wait()
	for _, err := range pkgErrs {
		if err != nil {
			fmt.Fprintln(stderr, "ripple-vet:", err)
			return 2
		}
	}

	var all []locatedDiag
	for i, pkg := range pkgs {
		for _, d := range pkgDiags[i] {
			pos := pkg.Fset.Position(d.Pos)
			all = append(all, locatedDiag{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	switch {
	case *jsonOut:
		if err := writeJSON(stdout, all); err != nil {
			fmt.Fprintln(stderr, "ripple-vet:", err)
			return 2
		}
	case *sarifOut:
		rules := make([]sarifRuleDoc, 0, len(selected)+1)
		for _, a := range selected {
			rules = append(rules, sarifRuleDoc{ID: a.Name, Doc: a.Doc})
		}
		rules = append(rules, sarifRuleDoc{
			ID:  suppressionAnalyzer,
			Doc: "suppression hygiene: //lint:ignore directives must carry a reason and still suppress something",
		})
		if err := writeSARIF(stdout, dir, rules, all); err != nil {
			fmt.Fprintln(stderr, "ripple-vet:", err)
			return 2
		}
	default:
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "ripple-vet: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*Analyzer, error) {
	analyzers := Analyzers()
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
