// Package fixture acquires two mutexes in opposite orders from two call
// paths — the classic AB/BA deadlock only a rare interleaving exposes.
package fixture

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// AB takes A then B.
func AB() {
	muA.Lock()
	muB.Lock() // want `acquiring bad\.muB while holding bad\.muA completes a lock-order cycle`
	muB.Unlock()
	muA.Unlock()
}

// BA takes B then A — the reverse order.
func BA() {
	muB.Lock()
	muA.Lock() // want `acquiring bad\.muA while holding bad\.muB completes a lock-order cycle`
	muA.Unlock()
	muB.Unlock()
}
