// Package fixture acquires the same mutexes under one global order, and
// releases before taking the other on the second path; no diagnostics.
package fixture

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// Ordered takes A then B — the canonical order.
func Ordered() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

// AlsoOrdered takes the same order from another path.
func AlsoOrdered() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	defer muB.Unlock()
}

// Sequential never holds both at once, so no edge exists in either
// direction.
func Sequential() {
	muB.Lock()
	muB.Unlock()
	muA.Lock()
	muA.Unlock()
}
