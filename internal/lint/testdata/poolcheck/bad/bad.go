// Package fixture seeds both halves of the pool-hygiene contract: a value
// dropped on one path, and a value touched after its Put.
package fixture

import (
	"errors"
	"sync"
)

var bufPool = sync.Pool{New: func() interface{} { return new([]byte) }}

var errFail = errors.New("fail")

// Leak drops the pooled buffer on the error path.
func Leak(fail bool) error {
	b := bufPool.Get().(*[]byte) // want `pooled value "b" is not returned to the pool on every path`
	if fail {
		return errFail
	}
	bufPool.Put(b)
	return nil
}

// LeakOnPanic loses the buffer when the callback panics: only a deferred Put
// survives the unwind.
func LeakOnPanic(n int) {
	b := bufPool.Get().(*[]byte) // want `pooled value "b" is not returned to the pool on every path`
	if n < 0 {
		panic("negative")
	}
	bufPool.Put(b)
}

// UseAfterPut touches the buffer after handing it back to the pool.
func UseAfterPut() int {
	b := bufPool.Get().(*[]byte)
	bufPool.Put(b)
	return len(*b) // want `pooled value "b" used after being returned to the pool`
}
