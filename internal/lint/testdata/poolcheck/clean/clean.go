// Package fixture shows the accepted pool-hygiene shapes: no diagnostics.
package fixture

import "sync"

var bufPool = sync.Pool{New: func() interface{} { return new([]byte) }}

// Balanced puts the buffer back on both paths.
func Balanced(fail bool) int {
	b := bufPool.Get().(*[]byte)
	if fail {
		bufPool.Put(b)
		return 0
	}
	n := len(*b)
	bufPool.Put(b)
	return n
}

// Deferred releases via defer, which also covers panic unwinds.
func Deferred() int {
	b := bufPool.Get().(*[]byte)
	defer bufPool.Put(b)
	return len(*b)
}

// Scoped is the if-init guard shape: outside the body the value is nil and
// out of scope, so nothing needs releasing there.
func Scoped() int {
	if b := bufPool.Get().(*[]byte); b != nil {
		n := len(*b)
		bufPool.Put(b)
		return n
	}
	return 0
}

// HandOff transfers ownership to the caller instead of the pool.
func HandOff() *[]byte {
	b := bufPool.Get().(*[]byte)
	return b
}
