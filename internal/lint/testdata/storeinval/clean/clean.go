// Package fixture upholds the mutation-invalidation contract; no
// diagnostics.
package fixture

import (
	"ripple/internal/dataset"
	"ripple/internal/storage"
)

// Peer is a storage.Provider: a tuple share with a lazy index over it.
type Peer struct {
	tuples []dataset.Tuple
	store  storage.Store
}

// Store returns the lazily built index.
func (p *Peer) Store() storage.Store { return p.store }

// dropStore invalidates the lazy index.
func (p *Peer) dropStore() { p.store = nil }

// Insert invalidates through the helper.
func (p *Peer) Insert(t dataset.Tuple) {
	p.tuples = append(p.tuples, t)
	p.dropStore()
}

// Rebuild invalidates by assigning the store field directly.
func (p *Peer) Rebuild(ts []dataset.Tuple) {
	p.tuples = ts
	p.store = nil
}

// Redistribute writes through an alias and invalidates both ends — the
// same-type fallback the midas split path needs.
func Redistribute(from, to *Peer, t dataset.Tuple) {
	host := from
	host.tuples = append(host.tuples, t)
	from.dropStore()
	to.dropStore()
}
