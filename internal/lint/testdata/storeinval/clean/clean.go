// Package fixture upholds the mutation-invalidation contract; no
// diagnostics.
package fixture

import (
	"ripple/internal/dataset"
	"ripple/internal/storage"
)

// Peer is a storage.Provider: a tuple share with a lazy index over it.
type Peer struct {
	tuples []dataset.Tuple
	store  storage.Store
}

// Store returns the lazily built index.
func (p *Peer) Store() storage.Store { return p.store }

// dropStore invalidates the lazy index.
func (p *Peer) dropStore() { p.store = nil }

// Insert invalidates through the helper.
func (p *Peer) Insert(t dataset.Tuple) {
	p.tuples = append(p.tuples, t)
	p.dropStore()
}

// Rebuild invalidates by assigning the store field directly.
func (p *Peer) Rebuild(ts []dataset.Tuple) {
	p.tuples = ts
	p.store = nil
}

// Redistribute writes through an alias and invalidates both ends — the
// same-type fallback the midas split path needs.
func Redistribute(from, to *Peer, t dataset.Tuple) {
	host := from
	host.tuples = append(host.tuples, t)
	from.dropStore()
	to.dropStore()
}

// Share is one mirrored tuple share, the replica-slice element shape.
type Share struct {
	ID     string
	Tuples []dataset.Tuple
}

// Config nests the tuple shares a Server's stores are built from.
type Config struct {
	Tuples   []dataset.Tuple
	Replicas []Share
}

// Server owns lazy stores without implementing storage.Provider: a store
// over its own share plus a per-replica store table.
type Server struct {
	cfg       Config
	store     storage.Store
	repStores map[string]storage.Store
}

// Apply rebuilds the store after rewriting the nested share.
func (s *Server) Apply(ts []dataset.Tuple) {
	s.cfg.Tuples = ts
	s.store = nil
}

// SwapShares invalidates through a helper that rebuilds the store table.
func (s *Server) SwapShares(shares []Share) {
	s.cfg.Replicas = shares
	s.rebuildStores(shares)
}

func (s *Server) rebuildStores(shares []Share) {
	s.repStores = make(map[string]storage.Store, len(shares))
}

// ApplyShare copy-on-writes one replica share; assigning the share's slot in
// the store table counts as its invalidation.
func (s *Server) ApplyShare(i int, ts []dataset.Tuple, shares []Share) {
	shares[i].Tuples = ts
	s.cfg.Replicas = shares
	s.repStores[shares[i].ID] = nil
}
