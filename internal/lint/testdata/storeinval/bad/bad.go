// Package fixture mirrors the runtime peers: a tuple share plus a lazily
// built store, mutated without invalidation.
package fixture

import (
	"ripple/internal/dataset"
	"ripple/internal/storage"
)

// Peer is a storage.Provider: a tuple share with a lazy index over it.
type Peer struct {
	tuples []dataset.Tuple
	store  storage.Store
}

// Store returns the lazily built index.
func (p *Peer) Store() storage.Store { return p.store }

// dropStore invalidates the lazy index.
func (p *Peer) dropStore() { p.store = nil }

// Insert grows the share but leaves the stale index answering queries.
func (p *Peer) Insert(t dataset.Tuple) {
	p.tuples = append(p.tuples, t) // want `write to Peer\.tuples is not followed by a store invalidation`
}

// Trim invalidates on one path only.
func (p *Peer) Trim(n int, keep bool) {
	if keep {
		return
	}
	p.tuples = p.tuples[:n] // want `write to Peer\.tuples is not followed by a store invalidation`
	if n == 0 {
		return
	}
	p.dropStore()
}

// Share is one mirrored tuple share, the replica-slice element shape.
type Share struct {
	ID     string
	Tuples []dataset.Tuple
}

// Config nests the tuple shares a Server's stores are built from.
type Config struct {
	Tuples   []dataset.Tuple
	Replicas []Share
}

// Server owns lazy stores without implementing storage.Provider: a store
// over its own share plus a per-replica store table.
type Server struct {
	cfg       Config
	store     storage.Store
	repStores map[string]storage.Store
}

// Apply rewrites the nested share but keeps answering from the stale store.
func (s *Server) Apply(ts []dataset.Tuple) {
	s.cfg.Tuples = ts // want `write to Server\.Tuples is not followed by a store invalidation`
}

// SwapShares rewrites the replica shares without rebuilding their stores.
func (s *Server) SwapShares(shares []Share) {
	s.cfg.Replicas = shares // want `write to Server\.Replicas is not followed by a store invalidation`
}
