// Package fixture mirrors the runtime peers: a tuple share plus a lazily
// built store, mutated without invalidation.
package fixture

import (
	"ripple/internal/dataset"
	"ripple/internal/storage"
)

// Peer is a storage.Provider: a tuple share with a lazy index over it.
type Peer struct {
	tuples []dataset.Tuple
	store  storage.Store
}

// Store returns the lazily built index.
func (p *Peer) Store() storage.Store { return p.store }

// dropStore invalidates the lazy index.
func (p *Peer) dropStore() { p.store = nil }

// Insert grows the share but leaves the stale index answering queries.
func (p *Peer) Insert(t dataset.Tuple) {
	p.tuples = append(p.tuples, t) // want `write to Peer\.tuples is not followed by a store invalidation`
}

// Trim invalidates on one path only.
func (p *Peer) Trim(n int, keep bool) {
	if keep {
		return
	}
	p.tuples = p.tuples[:n] // want `write to Peer\.tuples is not followed by a store invalidation`
	if n == 0 {
		return
	}
	p.dropStore()
}
