// Package fixture carries a reasoned suppression whose finding was fixed
// long ago: the directive suppresses nothing and the driver reports it as
// stale once the analyzer it names has run.
package fixture

// Value used to read the wall clock; the suppression outlived the fix.
func Value() int64 {
	//lint:ignore determinism replay uses the sim clock here
	return 42
}
