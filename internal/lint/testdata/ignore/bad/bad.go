// Package fixture exercises the //lint:ignore machinery: a directive with a
// reason suppresses the finding on the next line, while a reason-less
// directive suppresses nothing and is itself reported.
package fixture

import "time"

// Suppressed carries a well-formed directive: the wall-clock read below is
// deliberate and explained, so it must not be reported.
func Suppressed() time.Time {
	//lint:ignore determinism fixture exercises the suppression path
	return time.Now()
}

// Malformed carries a directive with no reason: the wall-clock read is still
// reported, and so is the directive itself.
func Malformed() time.Time {
	//lint:ignore determinism
	return time.Now()
}
