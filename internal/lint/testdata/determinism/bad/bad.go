// Package fixture seeds every class of determinism violation; each flagged
// line carries the expected diagnostic as a `// want` comment.
package fixture

import (
	"fmt"
	"math/rand"
	"time"
)

// Clock leaks the wall clock into replayed state.
func Clock() int64 {
	t := time.Now() // want `call to time\.Now`
	return t.UnixNano()
}

// Backoff schedules against the wall clock.
func Backoff() {
	time.Sleep(time.Millisecond) // want `call to time\.Sleep`
}

// Shuffle draws from the global math/rand stream.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand stream \(rand\.Shuffle\)`
}

// Keys returns map keys in iteration order without sorting.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside range over map`
	}
	return out
}

// Stream sends map keys to a channel in iteration order.
func Stream(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// Dump prints map entries in iteration order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map`
	}
}
