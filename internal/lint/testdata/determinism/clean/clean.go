// Package fixture exercises the determinism analyzer's exceptions: seeded
// randomness, sorted-after-the-loop appends, order-insensitive folds, and
// loop-local scratch slices must all pass without diagnostics.
package fixture

import (
	"math/rand"
	"sort"
)

// SeededDraw derives all randomness from an explicit seed; methods on a
// seeded *rand.Rand are fine.
func SeededDraw(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// SortedKeys appends under a map range but sorts before the order can leak.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Fold is order-insensitive: counters and map writes cannot leak iteration
// order.
func Fold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// LocalScratch appends to a slice declared inside the loop body; its
// contents never survive an iteration.
func LocalScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}
