// Package fixture is a legal transport layer: the //ripplevet:transport
// directive marks dialPeer as arming its own deadlines, which licenses the
// timeout dial and raw conn I/O inside it. Plain io.Reader wrappers are not
// net.Conns and pass everywhere.
package fixture

import (
	"io"
	"net"
	"time"
)

// dialPeer performs one deadline-bounded exchange with a peer.
//
//ripplevet:transport
func dialPeer(addr string, d time.Duration) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(d)); err != nil {
		return nil, err
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// Drain reads from a plain io.Reader; only net.Conn I/O is transport-gated.
func Drain(r io.Reader) (int, error) {
	buf := make([]byte, 64)
	return r.Read(buf)
}
