// Package fixture performs outbound network I/O outside the transport layer:
// none of these functions carry the //ripplevet:transport directive, so every
// dial and raw conn access below bypasses the deadline/retry policy.
package fixture

import (
	"net"
	"time"
)

func BareDial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `bare net\.Dial carries no deadline`
}

func DialerDial(addr string) (net.Conn, error) {
	var d net.Dialer
	return d.Dial("tcp", addr) // want `net\.Dialer\.Dial may carry no deadline`
}

func TimeoutOutside(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second) // want `outbound dial outside the transport layer`
}

func RawRead(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf) // want `raw Read on a net\.Conn outside the transport layer`
}

func RawWrite(conn net.Conn, buf []byte) (int, error) {
	return conn.Write(buf) // want `raw Write on a net\.Conn outside the transport layer`
}
