// Package fixture holds a Processor that treats engine-owned arguments as
// borrowed: element retention, local aliases, and copies are all legal.
package fixture

import (
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/overlay"
)

type proc struct {
	merged core.State
}

func (p *proc) LocalState(w overlay.Node, global core.State) core.State {
	return global
}

func (p *proc) GlobalState(w overlay.Node, global, local core.State) core.State {
	return global
}

func (p *proc) MergeStates(w overlay.Node, states []core.State) core.State {
	// Retaining an element is how merges are built; only the slice itself
	// (the backing array) is engine-owned.
	out := states[0]
	for _, s := range states[1:] {
		if s != nil {
			out = s
		}
	}
	// A local alias that never escapes the callback is fine too.
	batch := states
	_ = len(batch)
	return out
}

func (p *proc) LinkRelevant(w overlay.Node, region overlay.Region, global core.State) bool {
	return true
}

func (p *proc) LinkPriority(w overlay.Node, region overlay.Region) float64 { return 0 }

func (p *proc) LocalAnswer(w overlay.Node, local core.State) []dataset.Tuple { return nil }

func (p *proc) InitialState() core.State { return nil }

func (p *proc) StateTuples(s core.State) int { return 0 }

var _ core.Processor = (*proc)(nil)
