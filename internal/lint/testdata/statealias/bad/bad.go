// Package fixture retains and mutates engine-owned callback arguments: the
// []core.State batch and the overlay.Node view are reused by the engine after
// each callback returns, so every line below is a use-after-return bug.
package fixture

import (
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/overlay"
)

type proc struct {
	keep []core.State
	view overlay.Node
}

var lastBatch []core.State

func (p *proc) LocalState(w overlay.Node, global core.State) core.State {
	p.view = w // want `LocalState stores the engine-owned overlay\.Node "w"`
	return global
}

func (p *proc) GlobalState(w overlay.Node, global, local core.State) core.State {
	return global
}

func (p *proc) MergeStates(w overlay.Node, states []core.State) core.State {
	p.keep = states        // want `MergeStates stores the engine-owned \[\]core\.State slice "states"`
	lastBatch = states[1:] // want `MergeStates stores the engine-owned \[\]core\.State slice "states"`
	states[0] = nil        // want `MergeStates mutates the engine-owned \[\]core\.State slice "states" in place`
	return states[0]
}

func (p *proc) LinkRelevant(w overlay.Node, region overlay.Region, global core.State) bool {
	return true
}

func (p *proc) LinkPriority(w overlay.Node, region overlay.Region) float64 { return 0 }

func (p *proc) LocalAnswer(w overlay.Node, local core.State) []dataset.Tuple { return nil }

func (p *proc) InitialState() core.State { return nil }

func (p *proc) StateTuples(s core.State) int { return 0 }

var _ core.Processor = (*proc)(nil)
