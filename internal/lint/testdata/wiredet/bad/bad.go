// Package fixture routes map-iteration order into an encoder: the taint
// survives a local re-assignment, which is exactly what the syntactic
// determinism matcher cannot see.
package fixture

import (
	"bytes"
	"encoding/gob"
)

// Encode serialises map keys in whatever order Go iterates them.
func Encode(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	names := keys
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(names); err != nil { // want `"names" carries map-iteration order into gob\.Encoder\.Encode`
		return nil, err
	}
	return buf.Bytes(), nil
}

// CanonicalForm is a canonical-form builder by naming convention: feeding it
// unsorted map-ordered input is a replay-divergence bug.
func CanonicalForm(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p
	}
	return out
}

// BuildKey collects map keys and hands them to the canonical builder.
func BuildKey(m map[string]bool) string {
	var parts []string
	for k := range m {
		parts = append(parts, k)
	}
	return CanonicalForm(parts) // want `"parts" carries map-iteration order into CanonicalForm`
}
