// Package fixture sorts before encoding; no diagnostics.
package fixture

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// EncodeSorted sorts the keys before they reach the encoder.
func EncodeSorted(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(keys); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Launder shows that order-insensitive derivations (len) are not taint.
func Launder(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	count := len(keys)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(count); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
