// Package fixture shows the three accepted shutdown ties; no diagnostics.
package fixture

import (
	"sync"
	"time"
)

// Worker owns a shutdown channel.
type Worker struct {
	closed chan struct{}
	wg     sync.WaitGroup
}

// Close signals shutdown and waits for the joined goroutines.
func (w *Worker) Close() {
	close(w.closed)
	w.wg.Wait()
}

// Start joins the goroutine to the WaitGroup and reads the shutdown channel.
func (w *Worker) Start() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			select {
			case <-w.closed:
				return
			default:
				work()
			}
		}
	}()
}

// Delay is the shutdown-aware sleep: a timer raced against the channel.
func (w *Worker) Delay(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.closed:
		return false
	}
}

// Collect is the bounded fan-out shape: the spawner drains the channel the
// goroutines send on, so it cannot return before they finish.
func (w *Worker) Collect(n int) int {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) { ch <- i * i }(i)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-ch
	}
	return total
}

func work() {}
