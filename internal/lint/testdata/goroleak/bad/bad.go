// Package fixture spawns goroutines a Close can never stop, and sleeps
// through the shutdown signal.
package fixture

import (
	"sync"
	"time"
)

// Worker owns a shutdown channel (closed below), so its methods carry the
// shutdown-coverage obligation.
type Worker struct {
	closed chan struct{}
	wg     sync.WaitGroup
}

// Close signals shutdown and waits for the joined goroutines.
func (w *Worker) Close() {
	close(w.closed)
	w.wg.Wait()
}

// Start spawns a loop nothing can stop: no WaitGroup tie, no shutdown read.
func (w *Worker) Start() {
	go func() { // want `goroutine can outlive Close`
		for {
			work()
		}
	}()
}

// Poll ignores Close for a full second per iteration.
func (w *Worker) Poll() {
	time.Sleep(time.Second) // want `time\.Sleep in a component with a shutdown channel`
}

func work() {}
