// Package fixture keeps locks with the state they guard: pointer receivers,
// pointer passing, index iteration, and consistently-typed atomics.
package fixture

import (
	"sync"
	"sync/atomic"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

func (g *Guarded) Inc() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func use(*Guarded) {}

func PassPointer(g *Guarded) {
	use(g)
}

func RangeIndex(gs []Guarded) int {
	n := 0
	for i := range gs {
		gs[i].mu.Lock()
		n += gs[i].n
		gs[i].mu.Unlock()
	}
	return n
}

// Counter uses an atomic type, so every access is atomic by construction.
type Counter struct {
	hits atomic.Int64
}

func (c *Counter) Inc() { c.hits.Add(1) }

func (c *Counter) Read() int64 { return c.hits.Load() }
