// Package fixture copies lock-bearing structs and mixes atomic with plain
// access — both split synchronization from the state it protects.
package fixture

import (
	"sync"
	"sync/atomic"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

// Snapshot copies the receiver, splitting mu from the state it guards.
func (g Guarded) Snapshot() int { // want `method Snapshot copies its lock-bearing receiver`
	return g.n
}

// Copy duplicates the lock by dereferencing.
func Copy(g *Guarded) {
	h := *g // want `assignment copies bad\.Guarded`
	h.n++
}

// Range copies each element, lock included.
func Range(gs []Guarded) int {
	n := 0
	for _, g := range gs { // want `range value copies bad\.Guarded`
		n += g.n
	}
	return n
}

func take(Guarded) {}

// Pass hands a copy of the lock to the callee.
func Pass(g *Guarded) {
	take(*g) // want `argument passes a copy of bad\.Guarded`
}

type Counter struct {
	hits int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// Read races with Inc: the same field is atomic there and plain here.
func (c *Counter) Read() int64 {
	return c.hits // want `"hits" is accessed with sync/atomic elsewhere`
}
