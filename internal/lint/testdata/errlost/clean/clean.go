// Package fixture handles or legitimately discards every error: returned
// errors, Close teardown, stdout printing, and writers documented never to
// fail must all pass without diagnostics.
package fixture

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
)

func fanout() error { return errors.New("subtree lost") }

type conn struct{}

func (conn) Close() error { return nil }

// Handled propagates the error to the caller.
func Handled() error {
	if err := fanout(); err != nil {
		return err
	}
	return nil
}

// Teardown discards only a Close error: best-effort teardown of a connection
// already being abandoned.
func Teardown(c conn) {
	defer c.Close()
}

// Report exercises every sanctioned infallible writer.
func Report(n int) string {
	fmt.Println("answers:", n)
	var b strings.Builder
	fmt.Fprintf(&b, "answers: %d\n", n)
	b.WriteString("done")
	var buf bytes.Buffer
	buf.WriteByte('\n')
	h := fnv.New64a()
	h.Write([]byte("key"))
	fmt.Println(h.Sum64())
	return b.String() + buf.String()
}
