// Package fixture loses child-call errors in every way the errlost analyzer
// knows about: each one is a silently-partial answer in disguise.
package fixture

import "errors"

func fanout() error { return errors.New("subtree lost") }

func pair() (int, error) { return 0, errors.New("no answer") }

func Discard() {
	fanout() // want `error result of fanout is silently discarded`
}

func Async() {
	go fanout() // want `error result of fanout vanishes with the goroutine`
}

func Deferred() {
	defer fanout() // want `error result of fanout is silently discarded by defer`
}

func Blank() int {
	n, _ := pair() // want `error result of pair is assigned to _`
	return n
}

func BlankExpr() {
	_ = fanout() // want `error value is assigned to _`
}
