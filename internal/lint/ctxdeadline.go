package lint

import (
	"go/ast"
	"go/types"
)

// CtxDeadlineAnalyzer enforces the transport discipline of the TCP runtime
// (DESIGN.md §10.4): every outbound call must run under the deadline/retry
// wrapper, because one bare dial or raw conn.Read with no deadline lets a
// hung peer pin a query forever — precisely the failure mode the
// fault-tolerance layer (PR 1) exists to bound.
//
// Functions that ARE the transport layer (they arm deadlines themselves)
// carry a `//ripplevet:transport` directive in their doc comment; inside
// them, net.DialTimeout and raw conn I/O are legal. Everywhere else:
//
//   - net.Dial / net.Dialer.Dial (no timeout) is an error outright;
//   - net.DialTimeout / net.Dialer.DialContext belong in transport
//     functions only;
//   - Read/Write on a net.Conn belongs in transport functions only.
var CtxDeadlineAnalyzer = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "outbound network calls must go through the deadline/retry transport wrapper",
	Run:  runCtxDeadline,
}

// transportDirective marks a function as part of the transport layer.
const transportDirective = "//ripplevet:transport"

func runCtxDeadline(pass *Pass) error {
	netPkg := findImport(pass.Pkg, "net")
	if netPkg == nil {
		return nil // no net usage possible
	}
	connIface, _ := lookupType(netPkg, "Conn").Underlying().(*types.Interface)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			transport := docHasDirective(fd.Doc, transportDirective)
			checkNetCalls(pass, fd, transport, connIface)
		}
	}
	return nil
}

func checkNetCalls(pass *Pass, fd *ast.FuncDecl, transport bool, connIface *types.Interface) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case isPkgFunc(fn, "net", "Dial"):
			pass.Reportf(call.Pos(),
				"bare net.Dial carries no deadline, so a hung peer blocks the query forever; use net.DialTimeout inside a %s function", transportDirective)
		case isNetDialer(fn, "Dial"):
			pass.Reportf(call.Pos(),
				"net.Dialer.Dial may carry no deadline; use DialContext or net.DialTimeout inside a %s function", transportDirective)
		case isPkgFunc(fn, "net", "DialTimeout"), isNetDialer(fn, "DialContext"):
			if !transport {
				pass.Reportf(call.Pos(),
					"outbound dial outside the transport layer: route the call through the deadline/retry wrapper (Server.callPeer), or mark this function %s if it arms deadlines itself", transportDirective)
			}
		case isConnIO(pass, fn, call, connIface):
			if !transport {
				pass.Reportf(call.Pos(),
					"raw %s on a net.Conn outside the transport layer bypasses the deadline/retry policy; use the wire helpers inside a %s function", fn.Name(), transportDirective)
			}
		}
		return true
	})
}

// isNetDialer reports whether fn is the named method on net.Dialer.
func isNetDialer(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	path, typeName := namedPathName(sig.Recv().Type())
	return path == "net" && typeName == "Dialer"
}

// isConnIO reports whether the call is Read or Write invoked on a value
// whose static type satisfies net.Conn (deadline-capable connections). Plain
// io.Reader/io.Writer wrappers do not satisfy net.Conn and pass freely.
func isConnIO(pass *Pass, fn *types.Func, call *ast.CallExpr, connIface *types.Interface) bool {
	if connIface == nil || (fn.Name() != "Read" && fn.Name() != "Write") {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	return types.Implements(recv, connIface) ||
		types.Implements(types.NewPointer(recv), connIface)
}
