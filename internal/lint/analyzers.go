package lint

import "strings"

// Analyzers returns the full ripple-vet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		StateAliasAnalyzer,
		LockCheckAnalyzer,
		CtxDeadlineAnalyzer,
		ErrLostAnalyzer,
	}
}

// DefaultScope maps each analyzer to the import-path suffixes of the
// packages whose invariants it encodes (matched against the end of the
// import path, so the rules survive a module rename). An empty list means
// "run everywhere" — used for analyzers that self-limit, like statealias,
// which only fires on core.Processor implementations.
//
// The scopes mirror the invariants' blast radius: determinism covers every
// package the three replay-validated runtimes share; lockcheck the packages
// with real concurrency; ctxdeadline the TCP transport; errlost the fan-out
// engines plus the metrics endpoint they are observed through.
var DefaultScope = map[string][]string{
	"determinism": {
		"internal/core", "internal/sim", "internal/faults", "internal/trace",
		"internal/overlay", "internal/midas", "internal/can", "internal/chord",
		"internal/baton",
	},
	"statealias": {},
	"lockcheck":  {"internal/metrics", "internal/async", "internal/netpeer"},
	"ctxdeadline": {"internal/netpeer"},
	"errlost": {
		"internal/core", "internal/async", "internal/netpeer", "internal/metrics",
	},
}

// InScope reports whether an analyzer's default scope covers a package.
func InScope(analyzer, pkgPath string) bool {
	suffixes, ok := DefaultScope[analyzer]
	if !ok || len(suffixes) == 0 {
		return true
	}
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
