package lint

import "strings"

// Analyzers returns the full ripple-vet suite: the five syntactic matchers
// from PR 3 plus the five flow-sensitive analyzers built on the CFG/facts
// layer (cfg.go, facts.go).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		StateAliasAnalyzer,
		LockCheckAnalyzer,
		CtxDeadlineAnalyzer,
		ErrLostAnalyzer,
		PoolCheckAnalyzer,
		WireDetAnalyzer,
		LockOrderAnalyzer,
		StoreInvalAnalyzer,
		GoroLeakAnalyzer,
	}
}

// DefaultScope maps each analyzer to the import-path suffixes of the
// packages whose invariants it encodes (matched against the end of the
// import path, so the rules survive a module rename). An empty list means
// "run everywhere" — used for analyzers that self-limit, like statealias,
// which only fires on core.Processor implementations.
//
// The scopes mirror the invariants' blast radius: determinism covers every
// package the three replay-validated runtimes share; lockcheck the packages
// with real concurrency; ctxdeadline the TCP transport; errlost the fan-out
// engines plus the metrics endpoint they are observed through.
var DefaultScope = map[string][]string{
	"determinism": {
		"internal/core", "internal/sim", "internal/faults", "internal/trace",
		"internal/overlay", "internal/midas", "internal/can", "internal/chord",
		"internal/baton",
	},
	"statealias":  {},
	"lockcheck":   {"internal/metrics", "internal/async", "internal/netpeer"},
	"ctxdeadline": {"internal/netpeer"},
	"errlost": {
		"internal/core", "internal/async", "internal/netpeer", "internal/metrics",
	},
	// The flow-sensitive analyzers self-limit: poolcheck only fires where a
	// pool-like type is used, storeinval where a storage.Provider is defined,
	// goroleak where a shutdown-owning component lives, lockorder on the
	// whole-program acquisition graph, and wiredet needs map-ordered taint
	// plus an encode sink in the same function. Empty scope = run everywhere.
	"poolcheck":  {},
	"wiredet":    {},
	"lockorder":  {},
	"storeinval": {},
	"goroleak":   {},
}

// InScope reports whether an analyzer's default scope covers a package.
func InScope(analyzer, pkgPath string) bool {
	suffixes, ok := DefaultScope[analyzer]
	if !ok || len(suffixes) == 0 {
		return true
	}
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
