// SARIF 2.1.0 and JSON output for ripple-vet, so CI can publish findings as
// a machine-readable artifact (code-scanning upload, diff tooling) instead
// of scraping the text stream. The structs cover the minimal valid subset of
// the schema — tool.driver with rules, results with ruleId/ruleIndex/level/
// message/locations — which is what scanners actually consume.
package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// locatedDiag is one finding with its position resolved to file/line/column
// — the driver's output unit for every format.
type locatedDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as a JSON array (empty array, not null, when
// clean — consumers index into it unconditionally).
func writeJSON(w io.Writer, diags []locatedDiag) error {
	if diags == nil {
		diags = []locatedDiag{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

const (
	sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion   = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifRuleDoc is one reportable rule: the analyzers that ran plus the
// driver-level suppression-hygiene rule.
type sarifRuleDoc struct {
	ID  string
	Doc string
}

// writeSARIF emits a single-run SARIF 2.1.0 log. File URIs are made relative
// to root (the directory the tool ran in) with forward slashes, the form
// code-scanning uploads expect.
func writeSARIF(w io.Writer, root string, rules []sarifRuleDoc, diags []locatedDiag) error {
	ruleIndex := make(map[string]int, len(rules))
	sr := make([]sarifRule, len(rules))
	for i, r := range rules {
		ruleIndex[r.ID] = i
		sr[i] = sarifRule{ID: r.ID, ShortDescription: sarifMessage{Text: r.Doc}}
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			idx = len(sr)
			ruleIndex[d.Analyzer] = idx
			sr = append(sr, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: d.Analyzer}})
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relativeURI(root, d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ripple-vet", Rules: sr}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relativeURI rewrites an absolute source path relative to root using
// forward slashes; paths outside root stay absolute.
func relativeURI(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
