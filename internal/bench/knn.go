package bench

import (
	"fmt"
	"math/rand"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/knn"
	"ripple/internal/midas"
	"ripple/internal/sim"
	"ripple/internal/storage"
)

// KNNQuery measures the kNN instantiation — the first query family added on
// top of the paper's three — with the same protocol as the top-k figures:
// latency and congestion vs overlay size, one series per ripple setting.
// Overlays run the R-tree engine, so local steps are best-first descents.
func KNNQuery(cfg Config) *Result {
	res := &Result{
		Fig: "kNN", Title: fmt.Sprintf("kNN vs overlay size (SYNTH, d=%d, k=%d, rtree)", cfg.DefaultDims, cfg.DefaultK),
		XLabel: "size", Series: rippleSeriesNames,
	}
	for _, size := range cfg.OverlaySizes {
		aggs := make([]sim.Aggregate, len(rippleSeriesNames))
		for netIdx := 0; netIdx < cfg.Networks; netIdx++ {
			seed := cfg.Seed + 13000 + int64(netIdx)
			ts := dataset.Synth(dataset.SynthConfig{
				N: cfg.SynthSize, Dims: cfg.DefaultDims, Centers: cfg.SynthSize / 20, Skew: 0.1, Seed: seed,
			})
			n := midas.BuildWithData(size, midas.Options{Dims: cfg.DefaultDims, Seed: seed, Storage: storage.KindRTree}, ts)
			rs := rippleValues(n.MaxDepth())
			rng := rand.New(rand.NewSource(seed + 7))
			for q := 0; q < cfg.TopKQueries; q++ {
				w := n.RandomPeer(rng)
				center := make(geom.Point, cfg.DefaultDims)
				for i := range center {
					center[i] = rng.Float64()
				}
				for i, r := range rs {
					_, st := knn.Run(w, center, cfg.DefaultK, nil, r)
					aggs[i].Observe(&st)
				}
			}
		}
		res.AddRow(fmt.Sprint(size), aggs)
	}
	return res
}
