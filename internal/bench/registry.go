package bench

import "math/bits"

// Runner regenerates one figure/table of the paper under a configuration.
type Runner struct {
	Name string
	Desc string
	Run  func(cfg Config) *Result
}

// Runners lists every reproducible experiment in presentation order.
func Runners() []Runner {
	return []Runner{
		{Name: "lemmas", Desc: "Lemmas 1-3: worst-case latency, analytic vs measured", Run: func(cfg Config) *Result {
			return Lemmas(log2int(cfg.DefaultSize))
		}},
		{Name: "fig4", Desc: "Figure 4: top-k vs overlay size (NBA)", Run: Fig4},
		{Name: "fig5", Desc: "Figure 5: top-k vs dimensionality (SYNTH)", Run: Fig5},
		{Name: "fig6", Desc: "Figure 6: top-k vs result size (NBA)", Run: Fig6},
		{Name: "fig7", Desc: "Figure 7: skyline vs overlay size (NBA)", Run: Fig7},
		{Name: "fig8", Desc: "Figure 8: skyline vs dimensionality (SYNTH)", Run: Fig8},
		{Name: "fig9", Desc: "Figure 9: diversification vs overlay size (MIRFLICKR)", Run: Fig9},
		{Name: "fig10", Desc: "Figure 10: diversification vs dimensionality (SYNTH)", Run: Fig10},
		{Name: "fig11", Desc: "Figure 11: diversification vs result size (MIRFLICKR)", Run: Fig11},
		{Name: "fig12", Desc: "Figure 12: diversification vs rel/div trade-off (MIRFLICKR)", Run: Fig12},
		{Name: "knn", Desc: "New instantiation: kNN vs overlay size (SYNTH), per ripple setting", Run: KNNQuery},
		{Name: "churn", Desc: "§7.1 dynamic topology: increasing + decreasing stages", Run: Churn},
		{Name: "trace-depth", Desc: "Trace-derived: hop-tree depth distribution and size vs r (NBA)", Run: TraceDepth},
		{Name: "churn-faults", Desc: "Robustness: top-k recall vs injected link-failure rate under churn", Run: ChurnFaults},
		{Name: "recovery", Desc: "Robustness: recall vs drop rate per zone replication factor (failover on)", Run: Recovery},
		{Name: "ablation-border", Desc: "Ablation: §5.2 border-link optimisation on/off", Run: AblationBorder},
		{Name: "ablation-overlay", Desc: "Ablation: RIPPLE over MIDAS vs over CAN", Run: AblationOverlay},
		{Name: "throughput", Desc: "Transport: aggregate QPS and p95 latency vs client concurrency, mux vs sequential", Run: Throughput},
		{Name: "zipf-cache", Desc: "Result cache: QPS and hit rate vs zipf skew under a write mix, cache on/off", Run: ZipfCache},
		{Name: "plan", Desc: "Adaptive planner: per-query mode/r selection vs static ripple settings on a mixed workload", Run: PlanAdaptive},
	}
}

// Find returns the runner with the given name, or nil.
func Find(name string) *Runner {
	for _, r := range Runners() {
		if r.Name == name {
			r := r
			return &r
		}
	}
	return nil
}

func log2int(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n)
}
