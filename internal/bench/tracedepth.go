package bench

import (
	"fmt"
	"math/rand"
	"strconv"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/topk"
	"ripple/internal/trace"
)

// TraceDepth is a trace-derived experiment: it reconstructs the hop tree of
// traced top-k queries and reports how the tree's depth distribution and
// size respond to the ripple parameter. It makes the latency/congestion
// trade-off of §3 visible structurally — fast mode yields shallow bushy
// trees (depth bounded by the overlay diameter), slow mode long thin chains
// — using the observability layer itself rather than the engine's counters,
// so it doubles as an end-to-end check that traces describe real executions.
func TraceDepth(cfg Config) *Result {
	res := &Result{
		Fig:     "Trace",
		Title:   fmt.Sprintf("hop-tree shape vs ripple parameter (NBA, k=%d, n=%d)", cfg.DefaultK, cfg.DefaultSize),
		XLabel:  "r",
		Series:  []string{"max/spans", "mean/leaves"},
		MetricA: "hop depth over the trace (max | mean per span)",
		MetricB: "tree size (spans | leaves)",
	}

	ts := dataset.NBA(cfg.NBASize, cfg.Seed)
	net := midas.BuildWithData(cfg.DefaultSize, midas.Options{Dims: 6, Seed: cfg.Seed}, ts)
	f := topk.UniformLinear(6)
	rng := rand.New(rand.NewSource(cfg.Seed + 777))

	for _, r := range []int{0, 1, 2, 4, 1 << 20} {
		var maxD, meanD, spans, leaves float64
		for q := 0; q < cfg.TopKQueries; q++ {
			w := net.RandomPeer(rng)
			got := core.RunOpts(w, &topk.Processor{F: f, K: cfg.DefaultK}, r, core.Options{Trace: true})
			tr := got.Trace
			maxD += float64(tr.Depth())
			var dsum, n, leaf float64
			tr.Walk(func(nd *trace.Node) {
				dsum += float64(nd.Depth)
				n++
				if len(nd.Children) == 0 {
					leaf++
				}
			})
			if n > 0 {
				meanD += dsum / n
			}
			spans += n
			leaves += leaf
		}
		qn := float64(cfg.TopKQueries)
		res.Rows = append(res.Rows, Row{
			X:          rLabel(r),
			Latency:    []float64{maxD / qn, meanD / qn},
			Congestion: []float64{spans / qn, leaves / qn},
		})
	}
	return res
}

func rLabel(r int) string {
	if r >= 1<<19 {
		return "slow"
	}
	return strconv.Itoa(r)
}
