package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestLemmasTableMatches(t *testing.T) {
	res := Lemmas(6)
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (r=0..6)", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Latency[0] != row.Latency[1] {
			t.Fatalf("r=%d: analytic %v != measured %v", i, row.Latency[0], row.Latency[1])
		}
	}
}

func TestFig4Shape(t *testing.T) {
	cfg := Quick()
	cfg.OverlaySizes = []int{256, 512}
	res := Fig4(cfg)
	for i := range res.Rows {
		fastLat := res.Value(i, "r=0", false)
		slowLat := res.Value(i, "r=D", false)
		if fastLat >= slowLat {
			t.Errorf("row %d: fast latency %v not below slow %v", i, fastLat, slowLat)
		}
		fastCong := res.Value(i, "r=0", true)
		slowCong := res.Value(i, "r=D", true)
		if slowCong >= fastCong {
			t.Errorf("row %d: slow congestion %v not below fast %v", i, slowCong, fastCong)
		}
	}
	// Latency must grow with overlay size for the slow extreme.
	if res.Value(0, "r=D", false) >= res.Value(1, "r=D", false) {
		t.Error("slow latency did not grow with overlay size")
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := Quick()
	cfg.OverlaySizes = []int{256, 512}
	cfg.SkyQueries = 4
	res := Fig7(cfg)
	for i := range res.Rows {
		if res.Value(i, "ripple-fast", false) >= res.Value(i, "ripple-slow", false) {
			t.Errorf("row %d: ripple-fast latency not below ripple-slow", i)
		}
		if res.Value(i, "ripple-slow", true) >= res.Value(i, "ripple-fast", true) {
			t.Errorf("row %d: ripple-slow congestion not below ripple-fast", i)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := Quick()
	cfg.OverlaySizes = []int{256}
	cfg.DivQueries = 2
	res := Fig9(cfg)
	// §7.2.3: the baseline floods per step, so RIPPLE's slow extreme must use
	// far fewer messages, and ripple-fast must answer in far fewer hops.
	if res.Value(0, "ripple-slow", true) >= res.Value(0, "baseline(can)", true) {
		t.Error("ripple-slow congestion not below baseline")
	}
	if res.Value(0, "ripple-fast", false) >= res.Value(0, "baseline(can)", false) {
		t.Error("ripple-fast latency not below baseline")
	}
}

func TestRunnersRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, r := range Runners() {
		if names[r.Name] {
			t.Fatalf("duplicate runner %s", r.Name)
		}
		names[r.Name] = true
		if r.Run == nil || r.Desc == "" {
			t.Fatalf("runner %s incomplete", r.Name)
		}
	}
	for _, want := range []string{"lemmas", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		if !names[want] {
			t.Fatalf("runner %s missing", want)
		}
	}
	if Find("fig4") == nil || Find("nope") != nil {
		t.Fatal("Find broken")
	}
}

func TestResultRendering(t *testing.T) {
	res := Lemmas(4)
	s := res.String()
	for _, want := range []string{"Lemmas 1-3", "analytic", "measured", "(a) latency", "(b) congestion"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestConfigs(t *testing.T) {
	for _, cfg := range []Config{Default(), Quick(), Paper()} {
		if len(cfg.OverlaySizes) == 0 || cfg.DefaultK <= 0 || cfg.Networks <= 0 {
			t.Fatalf("bad config %+v", cfg)
		}
		if cfg.String() == "" {
			t.Fatal("empty config description")
		}
	}
}

func TestLog2Int(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 512: 9, 1024: 10}
	for n, want := range cases {
		if got := log2int(n); got != want {
			t.Fatalf("log2int(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestChurnExperiment(t *testing.T) {
	cfg := Quick()
	cfg.OverlaySizes = []int{64, 128, 256}
	cfg.TopKQueries = 4
	res := Churn(cfg)
	// Rows: up/64, up/128, up/256, down/128, down/64.
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if res.Rows[0].X != "up/64" || res.Rows[4].X != "down/64" {
		t.Fatalf("stage labels wrong: %v ... %v", res.Rows[0].X, res.Rows[4].X)
	}
	for i, row := range res.Rows {
		if row.Latency[0] <= 0 && row.Congestion[0] <= 1 {
			t.Fatalf("row %d has no cost recorded", i)
		}
	}
}

func TestChurnFaultsExperiment(t *testing.T) {
	cfg := Quick()
	cfg.DefaultSize = 96
	cfg.NBASize = 3000
	cfg.TopKQueries = 6
	cfg.FaultRates = []float64{0, 0.3}
	res := ChurnFaults(cfg)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// Rate 0 is fault-free: both extremes must reach perfect recall with
	// zero lost links.
	for _, series := range []string{"fast", "slow"} {
		if got := res.Value(0, series, false); got != 1.0 {
			t.Fatalf("%s recall at rate 0 = %v, want 1.0", series, got)
		}
		if got := res.Value(0, series, true); got != 0 {
			t.Fatalf("%s lost links at rate 0 = %v, want 0", series, got)
		}
	}
	// Under a heavy drop rate recall stays a valid fraction and some links
	// are actually lost.
	lostAny := false
	for _, series := range []string{"fast", "slow"} {
		r := res.Value(1, series, false)
		if r < 0 || r > 1 {
			t.Fatalf("%s recall at rate 0.3 = %v, outside [0,1]", series, r)
		}
		lostAny = lostAny || res.Value(1, series, true) > 0
	}
	if !lostAny {
		t.Fatal("30% drop rate lost no links across 12 queries (tune the seed if this fires)")
	}
	// The custom panel captions and CSV suffixes must be in effect.
	if s := res.String(); !strings.Contains(s, "(a) top-k recall") ||
		!strings.Contains(s, "(b) failed links/query") {
		t.Fatalf("fault panels mislabelled:\n%s", s)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if head := strings.SplitN(buf.String(), "\n", 2)[0]; !strings.Contains(head, "fast_top-k_recall") ||
		!strings.Contains(head, "slow_failed_links/query") {
		t.Fatalf("fault csv header: %s", head)
	}
}

func TestResultWriteCSV(t *testing.T) {
	res := Lemmas(4)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(res.Rows) {
		t.Fatalf("csv has %d lines, want %d", len(lines), 1+len(res.Rows))
	}
	if !strings.Contains(lines[0], "analytic_latency") {
		t.Fatalf("csv header: %s", lines[0])
	}
}

// TestRecoveryExperiment pins the acceptance property of the replication
// sweep: at a heavy drop rate the unreplicated baseline loses regions, while
// R=2 with failover recovers nearly all of them — near-zero unrecoverable
// regions and strictly better recall.
func TestRecoveryExperiment(t *testing.T) {
	cfg := Quick()
	cfg.DefaultSize = 96
	cfg.NBASize = 3000
	cfg.TopKQueries = 6
	cfg.RecoveryRates = []float64{0.25}
	cfg.ReplicationFactors = []int{1, 2}
	res := Recovery(cfg)
	if len(res.Rows) != 1 || len(res.Series) != 2 {
		t.Fatalf("shape: %d rows x %d series, want 1x2", len(res.Rows), len(res.Series))
	}
	baseLost := res.Value(0, "R=1", true)
	repLost := res.Value(0, "R=2", true)
	if baseLost == 0 {
		t.Fatal("25% drop rate lost nothing without replication (tune the seed if this fires)")
	}
	if repLost > baseLost/4 {
		t.Fatalf("R=2 left %.2f unrecoverable regions/query vs %.2f at R=1; failover is not recovering", repLost, baseLost)
	}
	if res.Value(0, "R=2", false) < res.Value(0, "R=1", false) {
		t.Fatalf("R=2 recall %.3f below R=1 recall %.3f", res.Value(0, "R=2", false), res.Value(0, "R=1", false))
	}
}

// TestResultWriteJSON: the committed-baseline JSON is lossless and carries
// the resolved panel captions.
func TestResultWriteJSON(t *testing.T) {
	res := Lemmas(4)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"metric_a"`) || !strings.Contains(out, "latency (hops)") {
		t.Fatalf("json missing resolved captions:\n%s", out)
	}
	if !strings.Contains(out, `"x"`) || strings.Count(out, `"a"`) != len(res.Rows) {
		t.Fatalf("json rows malformed:\n%s", out)
	}
}
