package bench

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV exports a figure's data points for external plotting: one row per
// x value, with a latency and a congestion column per series.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s+"_latency")
	}
	for _, s := range r.Series {
		header = append(header, s+"_congestion")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("bench: csv write: %w", err)
	}
	for _, row := range r.Rows {
		rec := []string{row.X}
		for _, v := range row.Latency {
			rec = append(rec, fmt.Sprintf("%.3f", v))
		}
		for _, v := range row.Congestion {
			rec = append(rec, fmt.Sprintf("%.3f", v))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: csv write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
