package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteCSV exports a figure's data points for external plotting: one row per
// x value, with a latency and a congestion column per series.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	sufA, sufB := "latency", "congestion"
	if r.MetricA != "" {
		sufA = columnSuffix(r.MetricA)
	}
	if r.MetricB != "" {
		sufB = columnSuffix(r.MetricB)
	}
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s+"_"+sufA)
	}
	for _, s := range r.Series {
		header = append(header, s+"_"+sufB)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("bench: csv write: %w", err)
	}
	for _, row := range r.Rows {
		rec := []string{row.X}
		for _, v := range row.Latency {
			rec = append(rec, fmt.Sprintf("%.3f", v))
		}
		for _, v := range row.Congestion {
			rec = append(rec, fmt.Sprintf("%.3f", v))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: csv write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonResult is the committed-baseline JSON shape of one figure: the full
// result, losslessly, with panel captions resolved so the file reads without
// the harness. Field order is fixed by the struct, so output is deterministic.
type jsonResult struct {
	Fig     string    `json:"fig"`
	Title   string    `json:"title"`
	XLabel  string    `json:"x_label"`
	Series  []string  `json:"series"`
	MetricA string    `json:"metric_a"`
	MetricB string    `json:"metric_b"`
	Rows    []jsonRow `json:"rows"`
}

type jsonRow struct {
	X string    `json:"x"`
	A []float64 `json:"a"`
	B []float64 `json:"b"`
}

// WriteJSON exports the figure as indented JSON, for committing experiment
// baselines (see BENCH_PR6.json) and for external tooling.
func (r *Result) WriteJSON(w io.Writer) error {
	capA, capB := r.MetricA, r.MetricB
	if capA == "" {
		capA = "latency (hops)"
	}
	if capB == "" {
		capB = "congestion (messages/query)"
	}
	out := jsonResult{Fig: r.Fig, Title: r.Title, XLabel: r.XLabel, Series: r.Series, MetricA: capA, MetricB: capB}
	for _, row := range r.Rows {
		out.Rows = append(out.Rows, jsonRow{X: row.X, A: row.Latency, B: row.Congestion})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("bench: json write: %w", err)
	}
	return nil
}

// columnSuffix reduces a panel caption like "top-k recall" to a CSV-friendly
// column suffix ("top-k_recall"): the portion before any parenthesised unit,
// with spaces collapsed to underscores.
func columnSuffix(caption string) string {
	if i := strings.IndexByte(caption, '('); i >= 0 {
		caption = caption[:i]
	}
	return strings.Join(strings.Fields(caption), "_")
}
