package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV exports a figure's data points for external plotting: one row per
// x value, with a latency and a congestion column per series.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	sufA, sufB := "latency", "congestion"
	if r.MetricA != "" {
		sufA = columnSuffix(r.MetricA)
	}
	if r.MetricB != "" {
		sufB = columnSuffix(r.MetricB)
	}
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s+"_"+sufA)
	}
	for _, s := range r.Series {
		header = append(header, s+"_"+sufB)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("bench: csv write: %w", err)
	}
	for _, row := range r.Rows {
		rec := []string{row.X}
		for _, v := range row.Latency {
			rec = append(rec, fmt.Sprintf("%.3f", v))
		}
		for _, v := range row.Congestion {
			rec = append(rec, fmt.Sprintf("%.3f", v))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: csv write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// columnSuffix reduces a panel caption like "top-k recall" to a CSV-friendly
// column suffix ("top-k_recall"): the portion before any parenthesised unit,
// with spaces collapsed to underscores.
func columnSuffix(caption string) string {
	if i := strings.IndexByte(caption, '('); i >= 0 {
		caption = caption[:i]
	}
	return strings.Join(strings.Fields(caption), "_")
}
