package bench

import (
	"fmt"
	"testing"

	"ripple/internal/netpeer"
)

// BenchmarkZipfCache is the committed-baseline form of the zipf-cache
// experiment (BENCH_PR9.json): per-operation latency of the mixed zipfian
// workload against a warmed 8-peer loopback fleet, cache on vs off. The
// acceptance property is the ns/op ratio at skew >= 1.0 — with the cache on,
// the hot queries skip the delayed inter-peer propagation entirely.
func BenchmarkZipfCache(b *testing.B) {
	for _, skew := range []float64{0.9, 1.1} {
		for _, cacheBytes := range []int64{cacheBudget, 0} {
			state := "on"
			if cacheBytes == 0 {
				state = "off"
			}
			b.Run(fmt.Sprintf("skew=%.1f/cache=%s", skew, state), func(b *testing.B) {
				servers := deployCacheFleet(cacheBytes)
				defer func() {
					for _, s := range servers {
						s.Close()
					}
				}()
				c := netpeer.NewClient(servers[0].Addr(), 0)
				defer c.Close()
				// 1% writes: enough to keep the mutation + invalidation path
				// inside the measured loop without mutation-induced misses
				// dominating the cache-on arm (the ZipfCache experiment sweeps
				// the heavier configurable mix).
				w := newZipfWorkload(skew, 0.01, 7)
				if err := w.warm(c); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := w.step(c); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestZipfDistribution pins the sampler's two contractual properties: the
// skew-0 case is uniform-ish, higher skews concentrate mass on low ranks,
// and identical seeds replay identical streams.
func TestZipfDistribution(t *testing.T) {
	const n, draws = 16, 20000
	counts := func(skew float64) []int {
		z := NewZipf(n, skew, 3)
		c := make([]int, n)
		for i := 0; i < draws; i++ {
			r := z.Next()
			if r < 0 || r >= n {
				t.Fatalf("rank %d outside [0,%d)", r, n)
			}
			c[r]++
		}
		return c
	}
	flat := counts(0)
	for r, c := range flat {
		if c < draws/n/2 || c > draws/n*2 {
			t.Fatalf("skew 0: rank %d drawn %d times, want near %d", r, c, draws/n)
		}
	}
	skewed := counts(1.1)
	if skewed[0] <= flat[0]*2 {
		t.Fatalf("skew 1.1 rank 0 drawn %d times, not concentrated vs uniform %d", skewed[0], flat[0])
	}
	if skewed[n-1] >= flat[n-1] {
		t.Fatalf("skew 1.1 tail rank drawn %d times, want below uniform %d", skewed[n-1], flat[n-1])
	}

	a, b := NewZipf(n, 0.9, 5), NewZipf(n, 0.9, 5)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("identical seeds diverged")
		}
	}
}

// TestZipfCacheExperiment is the runner's smoke test: at high skew the
// cache-on arm must beat cache-off on throughput and actually hit.
func TestZipfCacheExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("deploys loopback fleets")
	}
	cfg := Quick()
	cfg.ZipfSkews = []float64{1.1}
	res := ZipfCache(cfg)
	if len(res.Rows) != 1 || len(res.Series) != 2 {
		t.Fatalf("shape: %d rows x %d series, want 1x2", len(res.Rows), len(res.Series))
	}
	onQPS := res.Value(0, "cache-on", false)
	offQPS := res.Value(0, "cache-off", false)
	if onQPS <= offQPS {
		t.Fatalf("cache-on %.0f qps not above cache-off %.0f qps", onQPS, offQPS)
	}
	if hit := res.Value(0, "cache-on", true); hit <= 0 {
		t.Fatalf("cache-on hit rate %.1f%%, want > 0", hit)
	}
	if hit := res.Value(0, "cache-off", true); hit != 0 {
		t.Fatalf("cache-off hit rate %.1f%%, want 0", hit)
	}
}
