package bench

import (
	"fmt"
	"math/rand"

	"ripple/internal/baselines/divbase"
	"ripple/internal/can"
	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/sim"
)

var divSeriesNames = []string{"ripple-fast", "ripple-slow", "baseline(can)"}

// divSweep runs one k-diversification experiment point across the three
// methods of Figures 9-12. Every method answers the same full greedy query
// (the paper's fairness rule), so the aggregates compare pure cost.
func divSweep(cfg Config, size, dims, k int, lambda float64, gen func(seed int64) []dataset.Tuple, salt int64) []sim.Aggregate {
	aggs := make([]sim.Aggregate, len(divSeriesNames))
	for netIdx := 0; netIdx < cfg.Networks; netIdx++ {
		seed := cfg.Seed + salt*1000 + int64(netIdx)
		ts := gen(seed)

		mnet := midas.BuildWithData(size, midas.Options{Dims: dims, Seed: seed}, ts)
		slowR := mnet.MaxDepth()

		cnet := can.Build(size, can.Options{Dims: dims, Seed: seed})
		overlay.Load(cnet, ts)

		rng := rand.New(rand.NewSource(seed + 13))
		for qi := 0; qi < cfg.DivQueries; qi++ {
			q := diversify.NewQuery(ts[rng.Intn(len(ts))].Vec, lambda)
			idx := rng.Intn(size)

			fast := diversify.Greedy(q, k, diversify.NewRippleSolver(mnet.Peers()[idx], q, 0), cfg.DivMaxIters)
			aggs[0].Observe(&fast.Stats)
			slow := diversify.Greedy(q, k, diversify.NewRippleSolver(mnet.Peers()[idx], q, slowR), cfg.DivMaxIters)
			aggs[1].Observe(&slow.Stats)
			base := divbase.Greedy(cnet, cnet.Peers()[idx], q, k, cfg.DivMaxIters)
			aggs[2].Observe(&base.Stats)
		}
	}
	return aggs
}

// Fig9 regenerates Figure 9: diversification vs overlay size (MIRFLICKR).
func Fig9(cfg Config) *Result {
	res := &Result{
		Fig: "Figure 9", Title: fmt.Sprintf("k-diversification vs overlay size (MIRFLICKR, k=%d, λ=%.1f)", cfg.DefaultK, cfg.DefaultLambda),
		XLabel: "size", Series: divSeriesNames,
	}
	gen := func(seed int64) []dataset.Tuple { return dataset.MIRFlickr(cfg.FlickrSize, seed) }
	for _, size := range cfg.OverlaySizes {
		res.AddRow(fmt.Sprint(size), divSweep(cfg, size, 5, cfg.DefaultK, cfg.DefaultLambda, gen, 9))
	}
	return res
}

// Fig10 regenerates Figure 10: diversification vs dimensionality (SYNTH).
func Fig10(cfg Config) *Result {
	res := &Result{
		Fig: "Figure 10", Title: fmt.Sprintf("k-diversification vs dimensionality (SYNTH, size=%d, k=%d)", cfg.DimsSweepSize, cfg.DefaultK),
		XLabel: "dims", Series: divSeriesNames,
	}
	for _, d := range cfg.Dims {
		d := d
		gen := func(seed int64) []dataset.Tuple {
			return dataset.Synth(dataset.SynthConfig{N: cfg.SynthSize, Dims: d, Centers: cfg.SynthSize / 20, Skew: 0.1, Seed: seed})
		}
		res.AddRow(fmt.Sprint(d), divSweep(cfg, cfg.DimsSweepSize, d, cfg.DefaultK, cfg.DefaultLambda, gen, 10))
	}
	return res
}

// Fig11 regenerates Figure 11: diversification vs result size (MIRFLICKR).
func Fig11(cfg Config) *Result {
	res := &Result{
		Fig: "Figure 11", Title: fmt.Sprintf("k-diversification vs result size (MIRFLICKR, size=%d)", cfg.DefaultSize),
		XLabel: "k", Series: divSeriesNames,
	}
	gen := func(seed int64) []dataset.Tuple { return dataset.MIRFlickr(cfg.FlickrSize, seed) }
	for _, k := range cfg.ResultSizes {
		res.AddRow(fmt.Sprint(k), divSweep(cfg, cfg.DefaultSize, 5, k, cfg.DefaultLambda, gen, 11))
	}
	return res
}

// Fig12 regenerates Figure 12: diversification vs the relevance/diversity
// trade-off λ (MIRFLICKR).
func Fig12(cfg Config) *Result {
	res := &Result{
		Fig: "Figure 12", Title: fmt.Sprintf("k-diversification vs rel/div trade-off (MIRFLICKR, size=%d, k=%d)", cfg.DefaultSize, cfg.DefaultK),
		XLabel: "lambda", Series: divSeriesNames,
	}
	gen := func(seed int64) []dataset.Tuple { return dataset.MIRFlickr(cfg.FlickrSize, seed) }
	for _, l := range cfg.Lambdas {
		res.AddRow(fmt.Sprintf("%.1f", l), divSweep(cfg, cfg.DefaultSize, 5, cfg.DefaultK, l, gen, 12))
	}
	return res
}
