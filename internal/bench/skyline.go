package bench

import (
	"fmt"
	"math/rand"

	"ripple/internal/baselines/dsl"
	"ripple/internal/baselines/ssp"
	"ripple/internal/can"
	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/sim"
	"ripple/internal/skyline"
)

var skylineSeriesNames = []string{"ripple-fast", "ripple-slow", "dsl(can)", "ssp(baton)"}

// skylineSweep runs one skyline experiment point across the four methods of
// Figures 7-8. The MIDAS overlays enable the §5.2 border-link optimisation,
// as in the paper's showcased configuration.
func skylineSweep(cfg Config, size, dims int, gen func(seed int64) []dataset.Tuple, salt int64) []sim.Aggregate {
	aggs := make([]sim.Aggregate, len(skylineSeriesNames))
	for netIdx := 0; netIdx < cfg.Networks; netIdx++ {
		seed := cfg.Seed + salt*1000 + int64(netIdx)
		ts := gen(seed)

		mnet := midas.BuildWithData(size, midas.Options{Dims: dims, Seed: seed, PreferBorder: true}, ts)
		slowR := mnet.MaxDepth()

		cnet := can.Build(size, can.Options{Dims: dims, Seed: seed})
		overlay.Load(cnet, ts)

		snet := ssp.Build(size, dims, ts)

		rng := rand.New(rand.NewSource(seed + 11))
		for q := 0; q < cfg.SkyQueries; q++ {
			idx := rng.Intn(size)
			_, stFast := skyline.Run(mnet.Peers()[idx], 0)
			aggs[0].Observe(&stFast)
			_, stSlow := skyline.Run(mnet.Peers()[idx], slowR)
			aggs[1].Observe(&stSlow)
			_, stDSL := dsl.Run(cnet, cnet.Peers()[idx])
			aggs[2].Observe(&stDSL)
			_, stSSP := ssp.Run(snet, snet.Net.Peers()[idx])
			aggs[3].Observe(&stSSP)
		}
	}
	return aggs
}

// Fig7 regenerates Figure 7: skyline computation vs overlay size (NBA).
func Fig7(cfg Config) *Result {
	res := &Result{
		Fig: "Figure 7", Title: "skyline vs overlay size (NBA, d=6)",
		XLabel: "size", Series: skylineSeriesNames,
	}
	gen := func(seed int64) []dataset.Tuple { return dataset.NBA(cfg.NBASize, seed) }
	for _, size := range cfg.OverlaySizes {
		res.AddRow(fmt.Sprint(size), skylineSweep(cfg, size, 6, gen, 7))
	}
	return res
}

// Fig8 regenerates Figure 8: skyline computation vs dimensionality (SYNTH).
func Fig8(cfg Config) *Result {
	res := &Result{
		Fig: "Figure 8", Title: fmt.Sprintf("skyline vs dimensionality (SYNTH, size=%d)", cfg.DimsSweepSize),
		XLabel: "dims", Series: skylineSeriesNames,
	}
	for _, d := range cfg.Dims {
		d := d
		gen := func(seed int64) []dataset.Tuple {
			return dataset.Synth(dataset.SynthConfig{N: cfg.SynthSize, Dims: d, Centers: cfg.SynthSize / 20, Skew: 0.1, Seed: seed})
		}
		res.AddRow(fmt.Sprint(d), skylineSweep(cfg, cfg.DimsSweepSize, d, gen, 8))
	}
	return res
}

// AblationBorder contrasts skyline processing on MIDAS with and without the
// §5.2 border-pattern link optimisation — the design choice DESIGN.md calls
// out for ablation.
func AblationBorder(cfg Config) *Result {
	res := &Result{
		Fig: "Ablation A", Title: fmt.Sprintf("skyline on MIDAS, §5.2 border links on/off (SYNTH, d=%d, size=%d)", cfg.DefaultDims, cfg.DefaultSize),
		XLabel: "mode", Series: []string{"plain", "border-opt"},
	}
	for _, mode := range []string{"fast", "slow"} {
		aggs := make([]sim.Aggregate, 2)
		for netIdx := 0; netIdx < cfg.Networks; netIdx++ {
			seed := cfg.Seed + 900 + int64(netIdx)
			ts := dataset.Synth(dataset.SynthConfig{N: cfg.SynthSize, Dims: cfg.DefaultDims, Centers: cfg.SynthSize / 20, Skew: 0.1, Seed: seed})
			plain := midas.BuildWithData(cfg.DefaultSize, midas.Options{Dims: cfg.DefaultDims, Seed: seed}, ts)
			optim := midas.BuildWithData(cfg.DefaultSize, midas.Options{Dims: cfg.DefaultDims, Seed: seed, PreferBorder: true}, ts)
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < cfg.SkyQueries; q++ {
				idx := rng.Intn(cfg.DefaultSize)
				r := 0
				if mode == "slow" {
					r = plain.MaxDepth()
				}
				_, stPlain := skyline.Run(plain.Peers()[idx], r)
				aggs[0].Observe(&stPlain)
				_, stOpt := skyline.Run(optim.Peers()[idx], r)
				aggs[1].Observe(&stOpt)
			}
		}
		res.AddRow(mode, aggs)
	}
	return res
}
