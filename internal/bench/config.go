// Package bench is the experiment harness reproducing the paper's evaluation
// (§7): one runner per figure, sweeping the parameters of Table 1 and
// reporting the two metrics of §7.1 — latency (hops) and congestion (query
// messages processed per query) — for every method, averaged over query
// batches on independently grown overlays.
package bench

import "fmt"

// Config carries the experiment parameters of Table 1 plus harness scaling
// knobs. Default() is laptop-scale; Paper() restores the published ranges.
type Config struct {
	// OverlaySizes is the x-axis of Figures 4, 7 and 9.
	OverlaySizes []int
	// Dims is the x-axis of Figures 5, 8 and 10.
	Dims []int
	// ResultSizes is the x-axis of Figures 6 and 11.
	ResultSizes []int
	// Lambdas is the x-axis of Figure 12.
	Lambdas []float64

	// Defaults used when a parameter is not being varied (Table 1).
	DefaultSize int
	// DimsSweepSize is the overlay size used by the dimensionality sweeps
	// (Figures 5, 8, 10); high-dimensional SYNTH skylines are enormous, so
	// the default configuration runs them on a smaller overlay.
	DimsSweepSize int
	DefaultDims   int
	DefaultK      int
	DefaultLambda float64

	// Dataset cardinalities (paper: NBA 22,000; MIRFLICKR and SYNTH 10^6).
	NBASize    int
	FlickrSize int
	SynthSize  int

	// Networks is the number of independently grown overlays per data point
	// (paper: 16) and the per-family query counts per overlay (paper: 65,536
	// in total).
	Networks    int
	TopKQueries int
	SkyQueries  int
	DivQueries  int
	DivMaxIters int
	Seed        int64

	// FaultRates is the x-axis of the churn-with-failures experiment: the
	// per-link drop probability injected into every query propagation.
	FaultRates []float64

	// RecoveryRates is the x-axis of the replication-recovery experiment and
	// ReplicationFactors its series: each drop rate is swept once per zone
	// replication factor (1 = the unreplicated baseline).
	RecoveryRates      []float64
	ReplicationFactors []int

	// Concurrency is the x-axis of the transport throughput experiment: how
	// many workers share one client against a loopback deployment.
	Concurrency []int

	// ZipfSkews is the x-axis of the result-cache experiment: the exponent
	// of the zipfian query-popularity distribution.
	ZipfSkews []float64
	// MutateRate is the fraction of result-cache workload operations that
	// are wire-level inserts; each insert invalidates the covering cache
	// entries through the z-order index.
	MutateRate float64
}

// Default returns a configuration that reproduces every figure's shape on a
// laptop in minutes.
func Default() Config {
	return Config{
		OverlaySizes:  []int{1024, 2048, 4096, 8192},
		Dims:          []int{2, 3, 4, 5, 6, 8, 10},
		ResultSizes:   []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Lambdas:       []float64{0, 0.2, 0.3, 0.5, 0.7, 0.8, 1},
		DefaultSize:   4096,
		DimsSweepSize: 1024,
		DefaultDims:   5,
		DefaultK:      10,
		DefaultLambda: 0.5,
		NBASize:       22000,
		FlickrSize:    20000,
		SynthSize:     10000,
		Networks:      2,
		TopKQueries:   32,
		SkyQueries:    8,
		DivQueries:    4,
		DivMaxIters:   5,
		Seed:          1,
		FaultRates:    []float64{0, 0.02, 0.05, 0.1, 0.2},
		Concurrency:   []int{1, 8, 64},
		ZipfSkews:     []float64{0.5, 0.9, 1.1},
		MutateRate:    0.02,

		RecoveryRates:      []float64{0.05, 0.15, 0.25},
		ReplicationFactors: []int{1, 2, 3},
	}
}

// Quick returns a configuration small enough for go test benchmarks.
func Quick() Config {
	c := Default()
	c.OverlaySizes = []int{256, 512, 1024}
	c.Dims = []int{2, 4, 6}
	c.ResultSizes = []int{10, 40, 80}
	c.Lambdas = []float64{0, 0.5, 1}
	c.DefaultSize = 512
	c.DimsSweepSize = 256
	c.NBASize = 6000
	c.FlickrSize = 5000
	c.SynthSize = 5000
	c.Networks = 1
	c.TopKQueries = 8
	c.SkyQueries = 6
	c.DivQueries = 2
	c.DivMaxIters = 3
	c.FaultRates = []float64{0, 0.05, 0.2}
	c.Concurrency = []int{1, 8}
	c.ZipfSkews = []float64{0.9, 1.1}
	c.RecoveryRates = []float64{0.05, 0.25}
	c.ReplicationFactors = []int{1, 2}
	return c
}

// Paper returns the published experimental configuration (Table 1). Running
// it takes serious time and memory; intended for full reproduction runs.
func Paper() Config {
	return Config{
		OverlaySizes:  []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17},
		Dims:          []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
		ResultSizes:   []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Lambdas:       []float64{0, 0.2, 0.3, 0.5, 0.7, 0.8, 1},
		DefaultSize:   1 << 14,
		DimsSweepSize: 1 << 14,
		DefaultDims:   5,
		DefaultK:      10,
		DefaultLambda: 0.5,
		NBASize:       22000,
		FlickrSize:    1000000,
		SynthSize:     1000000,
		Networks:      16,
		TopKQueries:   4096,
		SkyQueries:    4096,
		DivQueries:    256,
		DivMaxIters:   10,
		Seed:          1,
		FaultRates:    []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4},
		Concurrency:   []int{1, 8, 64, 256},
		ZipfSkews:     []float64{0.5, 0.7, 0.9, 1.1, 1.3},
		MutateRate:    0.02,

		RecoveryRates:      []float64{0.05, 0.1, 0.15, 0.2, 0.25},
		ReplicationFactors: []int{1, 2, 3},
	}
}

// String summarises the configuration (the Table 1 of a run's report).
func (c Config) String() string {
	return fmt.Sprintf(
		"overlay sizes %v | dims %v | result sizes %v | lambdas %v | defaults: size=%d dims=%d k=%d λ=%.1f | networks=%d",
		c.OverlaySizes, c.Dims, c.ResultSizes, c.Lambdas,
		c.DefaultSize, c.DefaultDims, c.DefaultK, c.DefaultLambda, c.Networks)
}
