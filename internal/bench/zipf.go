package bench

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf draws ranks in [0, n) with probability proportional to 1/(rank+1)^skew.
// Unlike math/rand's Zipf generator it accepts any skew >= 0 — the stdlib
// rejection sampler requires s > 1, but measured query logs are typically fit
// with exponents around 0.7–1.0 — and it is seeded, so the cache-on and
// cache-off arms of an experiment replay the identical operation sequence.
//
// The implementation precomputes the normalised CDF once (O(n)) and inverts a
// uniform draw by binary search (O(log n) per sample), which is plenty for
// the pool sizes the harness uses.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf returns a sampler over ranks 0..n-1. Skew 0 is the uniform
// distribution; larger skews concentrate mass on the low ranks.
func NewZipf(n int, skew float64, seed int64) *Zipf {
	if n <= 0 {
		panic("bench: NewZipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), skew)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rand.New(rand.NewSource(seed)), cdf: cdf}
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	return sort.SearchFloat64s(z.cdf, z.rng.Float64())
}

// Float64 exposes the sampler's uniform stream so a workload can make
// correlated decisions — "is this operation a mutation?", "where does the
// inserted tuple land?" — without threading a second seed around.
func (z *Zipf) Float64() float64 { return z.rng.Float64() }
