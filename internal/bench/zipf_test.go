package bench

import (
	"math"
	"testing"
)

// TestZipfSeededDeterminism pins the property every cache and planner
// experiment leans on: a sampler is a pure function of (n, skew, seed), for
// both of its streams — the ranks and the correlated uniform draws — even
// when the two streams interleave (they share one generator, so an
// interleaving that diverges would silently de-pair the cache-on and
// cache-off arms of an experiment).
func TestZipfSeededDeterminism(t *testing.T) {
	a, b := NewZipf(64, 0.9, 11), NewZipf(64, 0.9, 11)
	for i := 0; i < 500; i++ {
		switch i % 3 {
		case 0, 1:
			if ra, rb := a.Next(), b.Next(); ra != rb {
				t.Fatalf("draw %d: ranks diverged (%d vs %d)", i, ra, rb)
			}
		case 2:
			if fa, fb := a.Float64(), b.Float64(); fa != fb {
				t.Fatalf("draw %d: uniform streams diverged (%v vs %v)", i, fa, fb)
			}
		}
	}

	c := NewZipf(64, 0.9, 12)
	same := 0
	for i := 0; i < 500; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 500 {
		t.Fatal("different seeds replayed the identical rank stream")
	}
}

// TestZipfSkewMass checks the distribution's defining ratio: at skew s the
// probability of rank 0 is 2^s times that of rank 1, so the empirical
// frequency ratio over a large sample must sit near 2^s for every skew the
// experiments sweep.
func TestZipfSkewMass(t *testing.T) {
	const n, draws = 8, 200000
	for _, skew := range []float64{0.5, 0.9, 1.1} {
		z := NewZipf(n, skew, 3)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		got := float64(counts[0]) / float64(counts[1])
		want := math.Pow(2, skew)
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("skew %.1f: rank0/rank1 frequency ratio %.3f, want %.3f +/- 10%%", skew, got, want)
		}
		for r := 1; r < n; r++ {
			if counts[r] > counts[r-1]+draws/100 {
				t.Errorf("skew %.1f: rank %d drawn %d times, above rank %d's %d", skew, r, counts[r], r-1, counts[r-1])
			}
		}
	}
}

// TestZipfRejectsEmptyDomain pins the constructor's contract.
func TestZipfRejectsEmptyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, ...) did not panic")
		}
	}()
	NewZipf(0, 1, 1)
}
