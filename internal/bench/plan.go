package bench

import (
	"fmt"
	"math/rand"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/knn"
	"ripple/internal/midas"
	"ripple/internal/plan"
	"ripple/internal/sim"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

// planStrategyNames are the figure's series: the adaptive planner against the
// static ripple settings a user would otherwise have to pick fleet-wide.
var planStrategyNames = []string{"planner", "r=0", "r=2", "r=slow"}

// planStaticRs are the static arms, parallel to planStrategyNames[1:].
var planStaticRs = []int{0, 2, plan.RSlow}

// planScenario is one slice of the mixed workload: a query family and shape
// for which some static ripple setting is the wrong default. The planner sees
// the scenarios interleaved the way a shared fleet would — one cost model
// across all of them — and must pick per query.
type planScenario struct {
	name    string
	size    int
	dims    int
	queries int
	// proc builds the (possibly randomised) processor for one query; the same
	// processor instance is run once per strategy so the comparison is
	// apples-to-apples.
	proc func(rng *rand.Rand, dims int) core.Processor
	// gen generates the dataset the overlay is grown over.
	gen func(seed int64, dims int) []dataset.Tuple
}

// planScenarios derives the mixed workload from the configuration: top-k at
// the default and at a large result size, a low-dimensional skyline, and kNN.
// Sizes span the configured overlay range so no single static r is right for
// every row.
func planScenarios(cfg Config) []planScenario {
	small := cfg.OverlaySizes[0]
	large := cfg.OverlaySizes[len(cfg.OverlaySizes)-1]
	bigK := cfg.ResultSizes[len(cfg.ResultSizes)-1]
	synth := func(seed int64, dims int) []dataset.Tuple {
		return dataset.Synth(dataset.SynthConfig{N: cfg.SynthSize, Dims: dims, Centers: cfg.SynthSize / 20, Skew: 0.1, Seed: seed})
	}
	uniform := func(seed int64, dims int) []dataset.Tuple {
		return dataset.Uniform(cfg.SynthSize, dims, seed)
	}
	return []planScenario{
		{
			name: fmt.Sprintf("topk k=%d n=%d", cfg.DefaultK, large), size: large, dims: 4, queries: cfg.TopKQueries,
			proc: func(_ *rand.Rand, dims int) core.Processor {
				return &topk.Processor{F: topk.UniformLinear(dims), K: cfg.DefaultK}
			},
			gen: synth,
		},
		{
			name: fmt.Sprintf("topk k=%d n=%d", bigK, small), size: small, dims: 4, queries: cfg.TopKQueries,
			proc: func(_ *rand.Rand, dims int) core.Processor {
				return &topk.Processor{F: topk.UniformLinear(dims), K: bigK}
			},
			gen: synth,
		},
		{
			name: fmt.Sprintf("skyline d=2 n=%d", small), size: small, dims: 2, queries: cfg.SkyQueries,
			proc: func(_ *rand.Rand, _ int) core.Processor { return &skyline.Processor{} },
			gen:  synth,
		},
		{
			name: fmt.Sprintf("knn k=5 n=%d", small), size: small, dims: 2, queries: cfg.TopKQueries,
			proc: func(rng *rand.Rand, dims int) core.Processor {
				c := make(geom.Point, dims)
				for i := range c {
					c[i] = rng.Float64()
				}
				return &knn.Processor{Center: c, K: 5}
			},
			gen: uniform,
		},
	}
}

// planSweep runs the mixed workload once per strategy and returns the
// per-scenario, per-strategy aggregates (parallel to planStrategyNames). One
// planner instance serves every planned query across all scenarios — exactly
// how a production initiator shares its cost model across whatever query mix
// arrives — with exploration disabled so the measured arm is the model's
// genuine pick (the greedy choice still self-corrects: a mispredicted arm's
// observed cost rises above the others' priors and the bucket switches).
func planSweep(cfg Config) ([]planScenario, [][]sim.Aggregate) {
	scens := planScenarios(cfg)
	aggs := make([][]sim.Aggregate, len(scens))
	for i := range aggs {
		aggs[i] = make([]sim.Aggregate, len(planStrategyNames))
	}
	// Exploration off: the measured arm is the model's genuine greedy pick.
	// The blending factor is raised above the default so the worst-case
	// closed-form priors (deliberately pessimistic upper bounds) wash out
	// within the warm passes; production fleets get the same effect from
	// query volume instead.
	pl := plan.New(plan.Options{ExploreEvery: -1, Gamma: 0.6})
	for netIdx := 0; netIdx < cfg.Networks; netIdx++ {
		for si, sc := range scens {
			seed := cfg.Seed + int64(si)*1000 + int64(netIdx)
			n := midas.BuildWithData(sc.size, midas.Options{Dims: sc.dims, Seed: seed}, sc.gen(seed, sc.dims))
			// The static arms run through the same planner-attached entry
			// point: a static-r run trains the shared model too (exactly the
			// mixed static/auto fleet of a staged rollout), which is how the
			// planner learns arms its greedy choice would never try.
			run := func(measure bool) {
				rng := rand.New(rand.NewSource(seed + 7))
				for q := 0; q < sc.queries; q++ {
					w := n.RandomPeer(rng)
					proc := sc.proc(rng, sc.dims)
					res := core.RunOpts(w, proc, plan.RAuto, core.Options{Planner: pl})
					if measure {
						aggs[si][0].Observe(&res.Stats)
					}
					for ri, r := range planStaticRs {
						st := core.RunOpts(w, proc, r, core.Options{Planner: pl})
						if measure {
							aggs[si][ri+1].Observe(&st.Stats)
						}
					}
				}
			}
			// Warm passes: replay the exact measured query stream so every
			// cost-table bucket the measurement hits is already trained — the
			// same steady-state discipline as the cache experiment's warm().
			for i := 0; i < 3; i++ {
				run(false)
			}
			run(true)
		}
	}
	return scens, aggs
}

// planComposite folds an aggregate into the planner's own objective — the
// α·latency + β·messages composite at the default weights — so experiment and
// cost model judge strategies by the same yardstick.
func planComposite(a sim.Aggregate) float64 {
	return a.MeanLatency + 0.05*a.MeanMessages
}

// PlanAdaptive measures what the adaptive planner buys over any static ripple
// setting on a mixed workload: per-query mode/r selection tracks the best
// static choice in every scenario, while each static setting is badly wrong
// in at least one.
func PlanAdaptive(cfg Config) *Result {
	scens, aggs := planSweep(cfg)
	return planFigure(scens, aggs)
}

// planFigure renders a sweep as the standard two-panel figure.
func planFigure(scens []planScenario, aggs [][]sim.Aggregate) *Result {
	res := &Result{
		Fig:    "PlanAdaptive",
		Title:  "adaptive planner vs static ripple settings (mixed workload)",
		XLabel: "workload",
		Series: planStrategyNames,
	}
	for si, sc := range scens {
		res.AddRow(sc.name, aggs[si])
	}
	return res
}
