package bench

import (
	"fmt"
	"math/rand"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/geom"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

// The result-cache experiment reuses the throughput harness shape: a real
// 8-peer loopback deployment with a 0.5ms injected stall per inter-peer RPC,
// so a cache miss pays the full multi-hop propagation cost a real network
// would charge while a cache hit is answered by the initiator alone.
const (
	cacheWindow = 400 * time.Millisecond
	cacheDelay  = 500 * time.Microsecond

	// cachePoolSize is how many distinct scoped queries the workload draws
	// from; their popularity follows the zipfian rank distribution.
	cachePoolSize = 64

	// cacheBudget is the cache-on arm's byte budget — large enough that the
	// whole pool stays resident, so the measured effect is invalidation and
	// skew, not capacity pressure.
	cacheBudget = 16 << 20
)

// ZipfCache measures what the hot-region result cache buys under a skewed
// query workload with a write mix: aggregate queries/s and cache hit rate,
// cache on vs off, as the zipf exponent of query popularity grows. Inserts
// are routed through the wire-level mutation path, so every mutation
// exercises the z-order invalidation broadcast against the cached entries.
func ZipfCache(cfg Config) *Result {
	res := &Result{
		Fig: "ZipfCache",
		Title: fmt.Sprintf(
			"result cache under zipfian load (loopback TCP, 8 peers, 0.5ms link delay, %.0f%% inserts)",
			cfg.MutateRate*100),
		XLabel: "zipf skew",
		Series: []string{"cache-on", "cache-off"},

		MetricA: "throughput (queries/s)",
		MetricB: "cache hit rate (%)",
	}
	for _, skew := range cfg.ZipfSkews {
		on := measureZipfCache(skew, cfg.MutateRate, cacheBudget)
		off := measureZipfCache(skew, cfg.MutateRate, 0)
		res.Rows = append(res.Rows, Row{
			X:          fmt.Sprintf("%.1f", skew),
			Latency:    []float64{on.qps, off.qps},
			Congestion: []float64{on.hitPct, off.hitPct},
		})
	}
	return res
}

type cacheCell struct {
	qps    float64
	hitPct float64
}

// measureZipfCache runs one (skew, cache budget) cell: deploy a fresh fleet,
// warm the pool once so both arms start from the same steady state, then
// drive the mixed read/write workload for the measurement window.
func measureZipfCache(skew, mutateRate float64, cacheBytes int64) cacheCell {
	servers := deployCacheFleet(cacheBytes)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	c := netpeer.NewClient(servers[0].Addr(), 0)
	defer c.Close()

	w := newZipfWorkload(skew, mutateRate, 7)
	if err := w.warm(c); err != nil {
		panic(err) // loopback warm-up failing is a harness bug, not a result
	}

	queries, hits := 0, 0
	start := time.Now()
	deadline := start.Add(cacheWindow)
	for time.Now().Before(deadline) {
		hit, mutated, err := w.step(c)
		if err != nil {
			panic(err)
		}
		if mutated {
			continue
		}
		queries++
		if hit {
			hits++
		}
	}
	elapsed := time.Since(start)

	cell := cacheCell{qps: float64(queries) / elapsed.Seconds()}
	if queries > 0 {
		cell.hitPct = 100 * float64(hits) / float64(queries)
	}
	return cell
}

// deployCacheFleet starts the 8-peer loopback fleet the cache experiment and
// benchmark share. cacheBytes == 0 disables the result cache entirely.
func deployCacheFleet(cacheBytes int64) []*netpeer.Server {
	net := midas.Build(8, midas.Options{Dims: 2, Seed: 23})
	overlay.Load(net, dataset.Uniform(500, 2, 29))
	opts := netpeer.Options{
		Logf:      func(string, ...interface{}) {},
		CacheSize: cacheBytes,
		Faults: faults.New(faults.Config{
			Seed:      1,
			DelayRate: 1,
			Delay:     cacheDelay,
		}),
	}
	servers, _, err := netpeer.DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		panic(err) // loopback deploy failing is a harness bug, not a result
	}
	return servers
}

// zipfWorkload is a deterministic mixed read/write stream: scoped top-k
// queries drawn zipfian from a fixed pool, interleaved with fresh-tuple
// inserts at the configured rate. Two workloads built with the same
// parameters and seed replay the identical operation sequence, which is what
// makes the cache-on/cache-off comparison apples-to-apples.
type zipfWorkload struct {
	z      *Zipf
	scopes []overlay.Region
	params []byte
	mutate float64
	nextID uint64
}

func newZipfWorkload(skew, mutateRate float64, seed int64) *zipfWorkload {
	params, err := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(2), 16)
	if err != nil {
		panic(err)
	}
	w := &zipfWorkload{
		z:      NewZipf(cachePoolSize, skew, seed),
		params: params,
		mutate: mutateRate,
		nextID: 1 << 30, // clear of the loaded dataset's tuple ids
	}
	// The query pool: small scope boxes scattered over the domain. Scopes are
	// drawn from an independent fixed-seed stream so the pool is identical
	// across cells no matter how each cell's operation stream unfolds.
	boxes := rand.New(rand.NewSource(41))
	for i := 0; i < cachePoolSize; i++ {
		cx := 0.12 + 0.76*boxes.Float64()
		cy := 0.12 + 0.76*boxes.Float64()
		w.scopes = append(w.scopes, overlay.FromRect(geom.Rect{
			Lo: geom.Point{cx - 0.1, cy - 0.1},
			Hi: geom.Point{cx + 0.1, cy + 0.1},
		}))
	}
	return w
}

// warm issues every pool query once, filling the cache (when one is
// configured) so the measurement starts from steady state; the one-off cold
// fill amortises to nothing over a real workload's lifetime.
func (w *zipfWorkload) warm(c *netpeer.Client) error {
	for _, scope := range w.scopes {
		if _, err := c.QueryScoped("topk", w.params, 2, 0, scope); err != nil {
			return err
		}
	}
	return nil
}

// step performs one workload operation: an insert with probability
// w.mutate, otherwise a zipf-ranked scoped query. It reports whether the
// query was served from the initiator's result cache.
func (w *zipfWorkload) step(c *netpeer.Client) (hit, mutated bool, err error) {
	if w.mutate > 0 && w.z.Float64() < w.mutate {
		w.nextID++
		t := dataset.Tuple{ID: w.nextID, Vec: geom.Point{w.z.Float64(), w.z.Float64()}}
		_, err := c.Insert(t)
		return false, true, err
	}
	res, err := c.QueryScoped("topk", w.params, 2, 0, w.scopes[w.z.Next()])
	if err != nil {
		return false, false, err
	}
	return res.CacheHit, false, nil
}
