package bench

import (
	"fmt"

	"ripple/internal/baselines/naive"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/sim"
)

// Lemmas validates §3.2 empirically: on a perfect MIDAS tree of depth ∆ with
// a never-pruning query, measured latency must equal the analytic worst case
// for every ripple parameter. The result table has one row per r, with the
// analytic value as the "latency" column and the measured value as the
// "congestion" column slot repurposed via a second series.
func Lemmas(depth int) *Result {
	res := &Result{
		Fig:    "Lemmas 1-3",
		Title:  fmt.Sprintf("worst-case latency on a perfect MIDAS tree, ∆=%d (%d peers)", depth, 1<<uint(depth)),
		XLabel: "r",
		Series: []string{"analytic", "measured"},
	}
	n := midas.BuildPerfect(depth, midas.Options{Dims: 2, Seed: 1})
	p := &naive.Processor{LocalSelect: func(w overlay.Node) []dataset.Tuple { return nil }}
	for r := 0; r <= depth; r++ {
		analytic := core.RippleWorstLatency(depth, 0, r)
		run := core.Run(n.Peers()[0], p, r)
		var a, m sim.Aggregate
		a.Observe(&sim.Stats{Latency: analytic})
		m.Observe(&run.Stats)
		res.AddRow(fmt.Sprint(r), []sim.Aggregate{a, m})
	}
	return res
}

// AblationOverlay contrasts RIPPLE top-k over MIDAS with RIPPLE top-k over
// CAN: the same framework on two substrates, isolating what the
// polylogarithmic MIDAS topology buys.
func AblationOverlay(cfg Config) *Result {
	res := &Result{
		Fig:    "Ablation B",
		Title:  fmt.Sprintf("RIPPLE top-k substrate comparison (NBA, k=%d)", cfg.DefaultK),
		XLabel: "size",
		Series: []string{"midas-fast", "midas-slow", "can-fast", "can-slow"},
	}
	for _, size := range cfg.OverlaySizes {
		aggs := make([]sim.Aggregate, 4)
		for netIdx := 0; netIdx < cfg.Networks; netIdx++ {
			seed := cfg.Seed + 800 + int64(netIdx)
			ts := dataset.NBA(cfg.NBASize, seed)
			runPoint(cfg, size, ts, seed, aggs)
		}
		res.AddRow(fmt.Sprint(size), aggs)
	}
	return res
}
