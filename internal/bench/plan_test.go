package bench

import (
	"math"
	"testing"
)

// TestPlanAdaptiveExperiment is the planner's acceptance property, judged by
// the planner's own composite objective (α·latency + β·messages at the
// default weights) summed over the mixed workload: the adaptive planner must
// land within 10% of the best static ripple setting — no scenario knowledge,
// no per-workload tuning — while the worst static setting costs at least 2×
// the planner. That is the whole case for per-query planning: every static r
// is the wrong default for some slice of a mixed workload.
func TestPlanAdaptiveExperiment(t *testing.T) {
	cfg := Quick()
	scens, aggs := planSweep(cfg)

	res := planFigure(scens, aggs)
	if len(res.Rows) != len(scens) || len(res.Series) != len(planStrategyNames) {
		t.Fatalf("figure shape: %d rows x %d series, want %dx%d",
			len(res.Rows), len(res.Series), len(scens), len(planStrategyNames))
	}

	totals := make([]float64, len(planStrategyNames))
	for si := range scens {
		for i := range planStrategyNames {
			totals[i] += planComposite(aggs[si][i])
		}
	}
	planner := totals[0]
	best, worst := math.Inf(1), 0.0
	for _, c := range totals[1:] {
		best = math.Min(best, c)
		worst = math.Max(worst, c)
	}
	t.Logf("composite cost over workload: planner=%.1f best-static=%.1f worst-static=%.1f", planner, best, worst)
	if planner > 1.1*best {
		t.Fatalf("planner composite %.1f not within 10%% of best static %.1f", planner, best)
	}
	if worst < 2*planner {
		t.Fatalf("worst static composite %.1f not at least 2x planner %.1f", worst, planner)
	}

	// The planner must track the best arm per scenario too, not win on one
	// row and coast: in no scenario may it cost more than the worst static
	// setting, and in at least one it must strictly beat every static one
	// (the static arms exclude r=1 and r=4, which the planner may discover).
	beatsAll := false
	for si, sc := range scens {
		p := planComposite(aggs[si][0])
		rowBest, rowWorst := math.Inf(1), 0.0
		for _, a := range aggs[si][1:] {
			rowBest = math.Min(rowBest, planComposite(a))
			rowWorst = math.Max(rowWorst, planComposite(a))
		}
		if p >= rowWorst {
			t.Fatalf("%s: planner composite %.1f no better than the worst static %.1f", sc.name, p, rowWorst)
		}
		if p < rowBest {
			beatsAll = true
		}
	}
	if !beatsAll {
		t.Log("planner never strictly beat every static arm in a scenario (allowed, but unexpected at these scales)")
	}
}
