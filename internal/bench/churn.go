package bench

import (
	"fmt"
	"math/rand"

	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/sim"
	"ripple/internal/topk"
)

// Churn reproduces the paper's dynamic-topology protocol (§7.1): an
// *increasing stage* in which peers continuously join (measurements taken at
// each doubling) followed by a *decreasing stage* in which peers continuously
// leave — the paper reports the increasing stage and notes the decreasing
// one is analogous; this experiment produces both. Top-k queries run at both
// RIPPLE extremes against the same live network, with all tuples staying
// reachable throughout.
func Churn(cfg Config) *Result {
	res := &Result{
		Fig:    "Churn",
		Title:  fmt.Sprintf("top-k under churn: increasing then decreasing stage (NBA, k=%d)", cfg.DefaultK),
		XLabel: "stage",
		Series: []string{"fast", "slow"},
	}
	sizes := cfg.OverlaySizes
	lo, hi := sizes[0], sizes[len(sizes)-1]

	ts := dataset.NBA(cfg.NBASize, cfg.Seed)
	net := midas.BuildWithData(lo, midas.Options{Dims: 6, Seed: cfg.Seed}, ts)
	f := topk.UniformLinear(6)
	rng := rand.New(rand.NewSource(cfg.Seed + 99))

	measure := func(stage string) {
		aggs := make([]sim.Aggregate, 2)
		for q := 0; q < cfg.TopKQueries; q++ {
			w := net.RandomPeer(rng)
			_, st := topk.Run(w, f, cfg.DefaultK, 0)
			aggs[0].Observe(&st)
			_, st = topk.Run(w, f, cfg.DefaultK, 1<<20)
			aggs[1].Observe(&st)
		}
		res.AddRow(stage, aggs)
	}

	// Increasing stage: joins only.
	measure(fmt.Sprintf("up/%d", net.Size()))
	for net.Size() < hi {
		target := net.Size() * 2
		for net.Size() < target {
			net.Join()
		}
		measure(fmt.Sprintf("up/%d", net.Size()))
	}
	// Decreasing stage: departures only, halving back down.
	for net.Size() > lo {
		target := net.Size() / 2
		for net.Size() > target {
			net.Leave(net.RandomPeer(rng))
		}
		measure(fmt.Sprintf("down/%d", net.Size()))
	}
	return res
}
