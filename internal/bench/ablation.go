package bench

import (
	"math/rand"

	"ripple/internal/can"
	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/sim"
	"ripple/internal/topk"
)

// runPoint issues top-k queries over a MIDAS and a CAN overlay built on the
// same dataset, folding results into aggs (midas-fast, midas-slow, can-fast,
// can-slow).
func runPoint(cfg Config, size int, ts []dataset.Tuple, seed int64, aggs []sim.Aggregate) {
	dims := dataset.Dims(ts)
	mnet := midas.BuildWithData(size, midas.Options{Dims: dims, Seed: seed}, ts)
	cnet := can.Build(size, can.Options{Dims: dims, Seed: seed})
	overlay.Load(cnet, ts)
	f := topk.UniformLinear(dims)
	slowR := 1 << 20
	rng := rand.New(rand.NewSource(seed + 3))
	for q := 0; q < cfg.TopKQueries; q++ {
		idx := rng.Intn(size)
		_, st := topk.Run(mnet.Peers()[idx], f, cfg.DefaultK, 0)
		aggs[0].Observe(&st)
		_, st = topk.Run(mnet.Peers()[idx], f, cfg.DefaultK, slowR)
		aggs[1].Observe(&st)
		_, st = topk.Run(cnet.Peers()[idx], f, cfg.DefaultK, 0)
		aggs[2].Observe(&st)
		_, st = topk.Run(cnet.Peers()[idx], f, cfg.DefaultK, slowR)
		aggs[3].Observe(&st)
	}
}
