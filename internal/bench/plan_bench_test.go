package bench

import (
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/geom"
	"ripple/internal/knn"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/overlay"
	"ripple/internal/plan"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

// planOp is one operation of the benchmark's repeating mixed query stream.
type planOp struct {
	queryType string
	params    []byte
}

// planMixedOps builds the mixed stream: the three wire families a shared
// fleet actually serves side by side, round-robined so every strategy pays
// for the full mix rather than the family it happens to suit.
func planMixedOps() []planOp {
	topkP, err := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(2), 8)
	if err != nil {
		panic(err)
	}
	knnP, err := (knn.WireCodec{}).EncodeParams(geom.Point{0.4, 0.6}, 5, nil)
	if err != nil {
		panic(err)
	}
	return []planOp{{"topk", topkP}, {"skyline", nil}, {"knn", knnP}}
}

// deployPlanFleet starts the benchmark's 32-peer delayed loopback fleet —
// the cache benchmark's topology grown deep enough that the execution modes
// separate (an 8-peer overlay is too shallow for slow mode's sequential
// rounds to cost anything), with the planner attached for the auto strategy.
// In a delay-dominated deployment wall-clock time follows the hop count, so
// the auto arm's planner weights latency accordingly (β is kept tiny rather
// than zero, which would select the default).
func deployPlanFleet(auto bool) []*netpeer.Server {
	net := midas.Build(32, midas.Options{Dims: 2, Seed: 23})
	overlay.Load(net, dataset.Uniform(2000, 2, 29))
	opts := netpeer.Options{
		Logf: func(string, ...interface{}) {},
		Faults: faults.New(faults.Config{
			Seed:      1,
			DelayRate: 1,
			Delay:     cacheDelay,
		}),
	}
	if auto {
		// Exploration off so the measured arm is the model's genuine greedy
		// pick; the blending factor is raised so the warm-up's few
		// observations per arm wash out the worst-case closed-form priors
		// (production fleets get the same effect from query volume).
		opts.Planner = plan.New(plan.Options{ExploreEvery: -1, Gamma: 0.8})
	}
	servers, _, err := netpeer.DeployOpts(net, opts,
		topk.WireCodec{}, skyline.WireCodec{}, knn.WireCodec{})
	if err != nil {
		panic(err) // loopback deploy failing is a harness bug, not a result
	}
	return servers
}

// BenchmarkPlanMixed is the committed-baseline form of the planner experiment
// (BENCH_PR10.json): per-query wall time of the mixed stream against a real
// TCP fleet with injected per-RPC delay, planned (strategy=auto, r sent as
// RAuto and resolved by the initiating peer) vs each static setting. The
// acceptance property is the ns/op ordering — auto tracks the best static
// strategy while the worst static strategy pays the sequential multiple.
func BenchmarkPlanMixed(b *testing.B) {
	strategies := []struct {
		name string
		r    int
		auto bool
	}{
		{"auto", plan.RAuto, true},
		{"r0", 0, false},
		{"r2", 2, false},
		{"slow", plan.RSlow, false},
	}
	ops := planMixedOps()
	for _, s := range strategies {
		b.Run("strategy="+s.name, func(b *testing.B) {
			servers := deployPlanFleet(s.auto)
			defer func() {
				for _, srv := range servers {
					srv.Close()
				}
			}()
			c := netpeer.NewClient(servers[0].Addr(), 0)
			defer c.Close()
			// Warm-up, phase 1: replay every static setting through the fleet.
			// A static root query trains the initiating peer's attached
			// planner too, so this is how the auto arm's cost model reaches
			// steady state — the benchmark equivalent of the mixed static/auto
			// traffic of a staged rollout. On the static fleets (no planner)
			// the phase only warms transport and stores.
			for _, r := range []int{0, 2, 4, plan.RSlow} {
				for _, op := range ops {
					for i := 0; i < 3; i++ {
						if _, err := c.QueryDetailed(op.queryType, op.params, 2, r); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			// Warm-up, phase 2: the measured strategy itself, so the auto
			// arm's first measured decision is already greedy-converged.
			for i := 0; i < 2*len(ops); i++ {
				op := ops[i%len(ops)]
				if _, err := c.QueryDetailed(op.queryType, op.params, 2, s.r); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := ops[i%len(ops)]
				if _, err := c.QueryDetailed(op.queryType, op.params, 2, s.r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
