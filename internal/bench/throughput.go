package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

// throughputWindow is how long each (transport, concurrency) cell measures.
// Long enough that hundreds of queries complete even on the serialised
// baseline; short enough that the whole sweep stays interactive.
const throughputWindow = 400 * time.Millisecond

// throughputDelay is the injected wall-clock stall per inter-peer RPC. On
// loopback an RPC costs microseconds, so an undelayed sweep would measure
// CPU dispatch, not transport behaviour; the delay restores the property
// that matters on a real network — a query spends most of its life waiting
// on links — and the transports differ exactly in how much of that waiting
// they overlap across concurrent queries.
const throughputDelay = 500 * time.Microsecond

// Throughput measures aggregate query throughput and tail latency of a real
// loopback deployment as client concurrency grows, comparing the
// multiplexed transport against the sequential one-call-per-connection
// protocol it replaced. One warm client is shared by all workers of a cell,
// so the sweep isolates what the transport does with concurrent calls:
// multiplexing interleaves them as streams on one connection, the
// sequential protocol serialises them.
func Throughput(cfg Config) *Result {
	res := &Result{
		Fig:    "Throughput",
		Title:  "aggregate throughput vs client concurrency (loopback TCP, 8 peers, 0.5ms link delay)",
		XLabel: "concurrency",
		Series: []string{"ripple-mux", "sequential"},

		MetricA: "throughput (queries/s)",
		MetricB: "p95 latency (ms)",
	}
	mux := throughputSeries(cfg.Concurrency, false)
	seq := throughputSeries(cfg.Concurrency, true)
	for i, conc := range cfg.Concurrency {
		res.Rows = append(res.Rows, Row{
			X:          fmt.Sprintf("%d", conc),
			Latency:    []float64{mux[i].qps, seq[i].qps},
			Congestion: []float64{mux[i].p95ms, seq[i].p95ms},
		})
	}
	return res
}

type throughputCell struct {
	qps   float64
	p95ms float64
}

// throughputSeries deploys one loopback fleet for the given transport and
// measures every concurrency level against it.
func throughputSeries(concurrency []int, sequential bool) []throughputCell {
	net := midas.Build(8, midas.Options{Dims: 2, Seed: 23})
	overlay.Load(net, dataset.Uniform(500, 2, 29))
	opts := netpeer.Options{
		Logf:       func(string, ...interface{}) {},
		DisableMux: sequential,
		Faults: faults.New(faults.Config{
			Seed:      1,
			DelayRate: 1,
			Delay:     throughputDelay,
		}),
	}
	servers, _, err := netpeer.DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		panic(err) // loopback deploy failing is a harness bug, not a result
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	params, err := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(2), 32)
	if err != nil {
		panic(err)
	}

	cells := make([]throughputCell, 0, len(concurrency))
	for _, conc := range concurrency {
		var c *netpeer.Client
		if sequential {
			c = netpeer.NewSequentialClient(servers[0].Addr(), 0)
		} else {
			c = netpeer.NewClient(servers[0].Addr(), 0)
		}
		if _, _, err := c.Query("topk", params, 2, 0); err != nil {
			panic(err)
		}
		durations := make([][]time.Duration, conc)
		var wg sync.WaitGroup
		start := time.Now()
		deadline := start.Add(throughputWindow)
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					t0 := time.Now()
					if _, _, err := c.Query("topk", params, 2, 0); err != nil {
						return // surfaces as a missing worker's worth of QPS
					}
					durations[w] = append(durations[w], time.Since(t0))
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		c.Close()

		var all []time.Duration
		for _, d := range durations {
			all = append(all, d...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		cell := throughputCell{}
		if len(all) > 0 {
			cell.qps = float64(len(all)) / elapsed.Seconds()
			cell.p95ms = float64(all[len(all)*95/100].Nanoseconds()) / 1e6
		}
		cells = append(cells, cell)
	}
	return cells
}
