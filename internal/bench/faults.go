package bench

import (
	"fmt"
	"math/rand"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/midas"
	"ripple/internal/topk"
)

// ChurnFaults measures graceful degradation: top-k queries run at both RIPPLE
// extremes while every overlay link drops messages with the swept probability
// (deterministic injection, so dead links stay dead within a rate — modelling
// failed peers rather than independent packet loss). Between rates a slice of
// the overlay churns (joins and departures) so the topology never ossifies.
// Panel (a) reports mean top-k recall against a centralised oracle; panel (b)
// reports the mean number of lost links (failed restriction regions) per
// query. At rate 0 both extremes must score recall 1.0.
func ChurnFaults(cfg Config) *Result {
	res := &Result{
		Fig:     "Faults",
		Title:   fmt.Sprintf("top-k under churn with link failures (NBA, k=%d, n=%d)", cfg.DefaultK, cfg.DefaultSize),
		XLabel:  "drop rate",
		Series:  []string{"fast", "slow"},
		MetricA: "top-k recall",
		MetricB: "failed links/query",
	}

	ts := dataset.NBA(cfg.NBASize, cfg.Seed)
	net := midas.BuildWithData(cfg.DefaultSize, midas.Options{Dims: 6, Seed: cfg.Seed}, ts)
	f := topk.UniformLinear(6)
	rng := rand.New(rand.NewSource(cfg.Seed + 4242))

	oracle := make(map[uint64]bool, cfg.DefaultK)
	for _, t := range topk.Brute(ts, f, cfg.DefaultK) {
		oracle[t.ID] = true
	}

	extremes := []int{0, 1 << 20} // fast, slow
	for i, rate := range cfg.FaultRates {
		inj := faults.New(faults.Config{Seed: cfg.Seed*1009 + int64(i), DropRate: rate})
		recall := make([]float64, len(extremes))
		lost := make([]float64, len(extremes))
		for q := 0; q < cfg.TopKQueries; q++ {
			w := net.RandomPeer(rng)
			for s, r := range extremes {
				got := core.RunInjected(w, &topk.Processor{F: f, K: cfg.DefaultK}, r, inj)
				hits := 0
				for _, t := range topk.Select(got.Answers, f, cfg.DefaultK) {
					if oracle[t.ID] {
						hits++
					}
				}
				recall[s] += float64(hits) / float64(cfg.DefaultK)
				lost[s] += float64(got.Stats.RPCFailures)
			}
		}
		row := Row{X: fmt.Sprintf("%.2f", rate)}
		for s := range extremes {
			row.Latency = append(row.Latency, recall[s]/float64(cfg.TopKQueries))
			row.Congestion = append(row.Congestion, lost[s]/float64(cfg.TopKQueries))
		}
		res.Rows = append(res.Rows, row)

		// Churn ~5% of the overlay before the next rate: half joins, half
		// departures, net size preserved.
		churn := cfg.DefaultSize / 40
		for j := 0; j < churn; j++ {
			net.Leave(net.RandomPeer(rng))
			net.Join()
		}
	}
	return res
}
