package bench

import (
	"fmt"
	"math/rand"

	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/sim"
	"ripple/internal/topk"
)

// rippleSeries is the paper's four ripple parameter settings for top-k
// figures: the extremes and two intermediate values.
var rippleSeriesNames = []string{"r=0", "r=D/3", "r=2D/3", "r=D"}

func rippleValues(delta int) []int {
	return []int{0, delta / 3, 2 * delta / 3, delta}
}

// topkSweep runs one top-k experiment point: build Networks overlays with the
// given size/dims/data generator, issue TopKQueries top-k queries per overlay
// from random initiators, one run per ripple setting.
func topkSweep(cfg Config, size, dims, k int, gen func(seed int64) []dataset.Tuple, salt int64) []sim.Aggregate {
	aggs := make([]sim.Aggregate, len(rippleSeriesNames))
	for netIdx := 0; netIdx < cfg.Networks; netIdx++ {
		seed := cfg.Seed + salt*1000 + int64(netIdx)
		n := midas.BuildWithData(size, midas.Options{Dims: dims, Seed: seed}, gen(seed))
		f := topk.UniformLinear(dims)
		rs := rippleValues(n.MaxDepth())
		rng := rand.New(rand.NewSource(seed + 7))
		for q := 0; q < cfg.TopKQueries; q++ {
			w := n.RandomPeer(rng)
			for i, r := range rs {
				_, st := topk.Run(w, f, k, r)
				aggs[i].Observe(&st)
			}
		}
	}
	return aggs
}

// Fig4 regenerates Figure 4: top-k performance vs overlay size (NBA).
func Fig4(cfg Config) *Result {
	res := &Result{
		Fig: "Figure 4", Title: fmt.Sprintf("top-k vs overlay size (NBA, d=6, k=%d)", cfg.DefaultK),
		XLabel: "size", Series: rippleSeriesNames,
	}
	gen := func(seed int64) []dataset.Tuple { return dataset.NBA(cfg.NBASize, seed) }
	for _, size := range cfg.OverlaySizes {
		res.AddRow(fmt.Sprint(size), topkSweep(cfg, size, 6, cfg.DefaultK, gen, 4))
	}
	return res
}

// Fig5 regenerates Figure 5: top-k performance vs dimensionality (SYNTH).
func Fig5(cfg Config) *Result {
	res := &Result{
		Fig: "Figure 5", Title: fmt.Sprintf("top-k vs dimensionality (SYNTH, size=%d, k=%d)", cfg.DimsSweepSize, cfg.DefaultK),
		XLabel: "dims", Series: rippleSeriesNames,
	}
	for _, d := range cfg.Dims {
		d := d
		gen := func(seed int64) []dataset.Tuple {
			return dataset.Synth(dataset.SynthConfig{N: cfg.SynthSize, Dims: d, Centers: cfg.SynthSize / 20, Skew: 0.1, Seed: seed})
		}
		res.AddRow(fmt.Sprint(d), topkSweep(cfg, cfg.DimsSweepSize, d, cfg.DefaultK, gen, 5))
	}
	return res
}

// Fig6 regenerates Figure 6: top-k performance vs result size k (NBA).
func Fig6(cfg Config) *Result {
	res := &Result{
		Fig: "Figure 6", Title: fmt.Sprintf("top-k vs result size (NBA, size=%d)", cfg.DefaultSize),
		XLabel: "k", Series: rippleSeriesNames,
	}
	gen := func(seed int64) []dataset.Tuple { return dataset.NBA(cfg.NBASize, seed) }
	for _, k := range cfg.ResultSizes {
		res.AddRow(fmt.Sprint(k), topkSweep(cfg, cfg.DefaultSize, 6, k, gen, 6))
	}
	return res
}
