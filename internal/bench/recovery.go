package bench

import (
	"fmt"
	"math/rand"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

// Recovery measures what zone replication buys back from link failures: the
// churn-faults sweep re-run at increasing drop rates with the replication
// factor as the series. Queries run in fast mode (full fan-out — the most
// link traversals, so the most exposure) with the recovery protocol's replica
// redial budget mirroring the transport's default retry policy. Panel (a)
// reports mean top-k recall against a centralised oracle; panel (b) the mean
// number of unrecoverable regions per query — the losses that survive
// failover and land in FailedRegions. R=1 is the no-replication baseline;
// with R=2 a traversal is only lost when the primary AND its replica (under
// every redial) all fail, so recall should stay near 1.0 and panel (b) near
// zero even at a 25% drop rate. The overlay churns between rates and the
// replica placement is rebuilt after churn, as a live deployment would.
func Recovery(cfg Config) *Result {
	res := &Result{
		Fig: "Recovery",
		Title: fmt.Sprintf("top-k under link failures, replication sweep (NBA, k=%d, n=%d)",
			cfg.DefaultK, cfg.DefaultSize),
		XLabel:  "drop rate",
		MetricA: "top-k recall",
		MetricB: "unrecoverable regions/query",
	}
	for _, factor := range cfg.ReplicationFactors {
		res.Series = append(res.Series, fmt.Sprintf("R=%d", factor))
	}

	ts := dataset.NBA(cfg.NBASize, cfg.Seed)
	net := midas.BuildWithData(cfg.DefaultSize, midas.Options{Dims: 6, Seed: cfg.Seed}, ts)
	f := topk.UniformLinear(6)
	rng := rand.New(rand.NewSource(cfg.Seed + 7331))

	oracle := make(map[uint64]bool, cfg.DefaultK)
	for _, t := range topk.Brute(ts, f, cfg.DefaultK) {
		oracle[t.ID] = true
	}

	for i, rate := range cfg.RecoveryRates {
		inj := faults.New(faults.Config{Seed: cfg.Seed*2003 + int64(i), DropRate: rate})
		// The placement is a pure function of the current overlay snapshot:
		// rebuilt after each churn slice, never patched incrementally.
		maps := make([]*overlay.ReplicaMap, len(cfg.ReplicationFactors))
		for s, factor := range cfg.ReplicationFactors {
			if factor > 1 {
				maps[s] = overlay.BuildReplicas(net, factor)
			}
		}
		recall := make([]float64, len(cfg.ReplicationFactors))
		lost := make([]float64, len(cfg.ReplicationFactors))
		for q := 0; q < cfg.TopKQueries; q++ {
			w := net.RandomPeer(rng)
			for s := range cfg.ReplicationFactors {
				got := core.RunOpts(w, &topk.Processor{F: f, K: cfg.DefaultK}, 0, core.Options{
					Faults:          inj,
					Replicas:        maps[s],
					RecoveryRetries: 2, // mirrors netpeer.DefaultRetryPolicy().MaxRetries
				})
				hits := 0
				for _, t := range topk.Select(got.Answers, f, cfg.DefaultK) {
					if oracle[t.ID] {
						hits++
					}
				}
				recall[s] += float64(hits) / float64(cfg.DefaultK)
				lost[s] += float64(got.Stats.RPCFailures)
			}
		}
		row := Row{X: fmt.Sprintf("%.2f", rate)}
		for s := range cfg.ReplicationFactors {
			row.Latency = append(row.Latency, recall[s]/float64(cfg.TopKQueries))
			row.Congestion = append(row.Congestion, lost[s]/float64(cfg.TopKQueries))
		}
		res.Rows = append(res.Rows, row)

		// Churn ~5% of the overlay before the next rate, as in ChurnFaults.
		churn := cfg.DefaultSize / 40
		for j := 0; j < churn; j++ {
			net.Leave(net.RandomPeer(rng))
			net.Join()
		}
	}
	return res
}
