package bench

import (
	"fmt"
	"strings"

	"ripple/internal/sim"
)

// Result is one regenerated figure: a latency table and a congestion table
// over the same x-axis and method series.
type Result struct {
	Fig    string // "Figure 4", "Lemmas", ...
	Title  string
	XLabel string
	Series []string
	Rows   []Row

	// MetricA and MetricB override the panel captions when an experiment
	// reuses the two Row slots for metrics other than latency/congestion
	// (e.g. the fault sweep reports recall and failed links). Empty means
	// the standard "(a) latency (hops)" / "(b) congestion (messages/query)".
	MetricA, MetricB string
}

// Row is one x-axis point with per-series metric values (parallel to
// Result.Series).
type Row struct {
	X          string
	Latency    []float64
	Congestion []float64
}

// AddRow appends a row built from per-series aggregates.
func (r *Result) AddRow(x string, aggs []sim.Aggregate) {
	row := Row{X: x}
	for _, a := range aggs {
		row.Latency = append(row.Latency, a.MeanLatency)
		row.Congestion = append(row.Congestion, a.MeanCongestion)
	}
	r.Rows = append(r.Rows, row)
}

// String renders the figure as two aligned text tables, mirroring the (a)
// latency and (b) congestion panels of the paper's figures.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", r.Fig, r.Title)
	capA, capB := r.MetricA, r.MetricB
	if capA == "" {
		capA = "latency (hops)"
	}
	if capB == "" {
		capB = "congestion (messages/query)"
	}
	b.WriteString(r.panel("(a) "+capA, func(row Row) []float64 { return row.Latency }))
	b.WriteString(r.panel("(b) "+capB, func(row Row) []float64 { return row.Congestion }))
	return b.String()
}

func (r *Result) panel(caption string, pick func(Row) []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %s\n", caption)
	w := 14
	fmt.Fprintf(&b, "  %-10s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%*s", w, s)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s", row.X)
		for _, v := range pick(row) {
			fmt.Fprintf(&b, "%*.1f", w, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Value returns the metric for a given row/series, for assertions in tests.
func (r *Result) Value(rowIdx int, series string, congestion bool) float64 {
	for i, s := range r.Series {
		if s == series {
			if congestion {
				return r.Rows[rowIdx].Congestion[i]
			}
			return r.Rows[rowIdx].Latency[i]
		}
	}
	panic("bench: unknown series " + series)
}
