package faults

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func TestNilInjectorIsFaultFree(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector must be disabled")
	}
	if got := in.Decide("a", "b", 0); got != OK {
		t.Fatalf("nil injector decided %v", got)
	}
	if cfg := in.Config(); cfg.DropRate != 0 || cfg.Seed != 0 || cfg.SlowPeers != nil {
		t.Fatalf("nil injector config %+v", cfg)
	}
}

func TestZeroRatesAlwaysOK(t *testing.T) {
	in := New(Config{Seed: 42})
	if in.Enabled() {
		t.Fatal("zero-rate injector must be disabled")
	}
	for i := 0; i < 1000; i++ {
		if got := in.Decide("a", fmt.Sprint("b", i), 0); got != OK {
			t.Fatalf("zero rates produced %v", got)
		}
	}
}

func TestDecideIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, DropRate: 0.2, CrashRate: 0.1, DelayRate: 0.1}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		from, to := fmt.Sprint("p", i%17), fmt.Sprint("p", i%29)
		for attempt := 0; attempt < 3; attempt++ {
			if a.Decide(from, to, attempt) != b.Decide(from, to, attempt) {
				t.Fatalf("injectors with the same seed disagree at %s->%s #%d", from, to, attempt)
			}
		}
	}
	// A different seed must (overwhelmingly) produce a different pattern.
	c := New(Config{Seed: 8, DropRate: 0.2, CrashRate: 0.1, DelayRate: 0.1})
	same := 0
	for i := 0; i < 500; i++ {
		if a.Decide("x", fmt.Sprint(i), 0) == c.Decide("x", fmt.Sprint(i), 0) {
			same++
		}
	}
	if same == 500 {
		t.Fatal("seed has no effect on decisions")
	}
}

func TestRatesApproximatelyRespected(t *testing.T) {
	in := New(Config{Seed: 3, DropRate: 0.25, CrashRate: 0.1, DelayRate: 0.05})
	const n = 20000
	counts := map[Outcome]int{}
	for i := 0; i < n; i++ {
		counts[in.Decide("src", fmt.Sprint("dst", i), 0)]++
	}
	check := func(o Outcome, want float64) {
		got := float64(counts[o]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("%v rate = %.3f, want %.2f±0.02", o, got, want)
		}
	}
	check(Drop, 0.25)
	check(Crash, 0.10)
	check(Delay, 0.05)
	check(OK, 0.60)
}

func TestRetriesReroll(t *testing.T) {
	// With a 50% drop rate, the same link must not be doomed forever: across
	// many links, nearly all succeed within 16 attempts.
	in := New(Config{Seed: 11, DropRate: 0.5})
	stuck := 0
	for i := 0; i < 200; i++ {
		ok := false
		for attempt := 0; attempt < 16; attempt++ {
			if in.Decide("a", fmt.Sprint("b", i), attempt) == OK {
				ok = true
				break
			}
		}
		if !ok {
			stuck++
		}
	}
	if stuck > 2 {
		t.Fatalf("%d/200 links never recovered across 16 attempts", stuck)
	}
}

func TestSlowPeers(t *testing.T) {
	in := New(Config{Seed: 1, SlowPeers: []string{"laggard"}, Delay: time.Millisecond, DelayHops: 3})
	if !in.Enabled() {
		t.Fatal("slow-peer injector must be enabled")
	}
	for attempt := 0; attempt < 5; attempt++ {
		if got := in.Decide("a", "laggard", attempt); got != Delay {
			t.Fatalf("inbound link to slow peer decided %v", got)
		}
	}
	if got := in.Decide("a", "healthy", 0); got != OK {
		t.Fatalf("healthy peer decided %v", got)
	}
}

func TestUniform01Range(t *testing.T) {
	for i := 0; i < 10000; i++ {
		u := Uniform01(int64(i), "part")
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform01 out of range: %v", u)
		}
	}
	// Part boundaries matter: ("ab","c") and ("a","bc") must differ.
	if Uniform01(1, "ab", "c") == Uniform01(1, "a", "bc") {
		t.Fatal("part separator is ineffective")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{OK: "ok", Drop: "drop", Crash: "crash", Delay: "delay", Outcome(9): "outcome(9)"} {
		if o.String() != want {
			t.Fatalf("%d.String() = %q", int(o), o.String())
		}
	}
}
