// Package faults is a deterministic, seedable fault-injection layer for the
// RIPPLE runtimes. An Injector decides, per link traversal, whether the
// message goes through, is dropped, reaches a peer that crashes before
// replying, or crosses a slow link. Decisions are pure functions of
// (seed, from, to, attempt) — a hash, not a shared RNG stream — so the same
// configuration produces the same fault pattern regardless of goroutine
// scheduling or the order in which links are tried. That property is what
// lets the structural engine (internal/core), the actor runtime
// (internal/async) and the TCP peers (internal/netpeer) be tested against
// each other under identical injected failures.
package faults

import (
	"encoding/binary"
	"hash/fnv"
	"strconv"
	"time"
)

// Outcome is the injector's verdict for one link traversal attempt.
type Outcome int

const (
	// OK delivers the message normally.
	OK Outcome = iota
	// Drop loses the message: the attempt fails without reaching the peer.
	Drop
	// Crash reaches the peer, which dies before replying: the work may have
	// happened but its results are lost to the caller.
	Crash
	// Delay delivers the message over a slow link (extra hops in the logical
	// runtimes, wall-clock sleep over TCP).
	Delay
)

// String names an outcome for logs.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Drop:
		return "drop"
	case Crash:
		return "crash"
	case Delay:
		return "delay"
	}
	return "outcome(" + strconv.Itoa(int(o)) + ")"
}

// Config sets the per-link fault probabilities and the shape of delays.
// Rates are probabilities in [0,1] evaluated independently per link attempt;
// they are tried in the order drop, crash, delay on a single uniform draw, so
// their sum must not exceed 1.
type Config struct {
	Seed      int64
	DropRate  float64
	CrashRate float64
	DelayRate float64
	// DelayHops is the extra logical latency charged on a delayed link by the
	// hop-clock runtimes (engine and actor cluster).
	DelayHops int
	// Delay is the wall-clock stall applied to a delayed link by the TCP
	// transport.
	Delay time.Duration
	// SlowPeers lists peer IDs whose every inbound link behaves as Delay
	// (unless the draw already dropped or crashed it).
	SlowPeers []string
}

// Injector makes deterministic fault decisions. The zero value and the nil
// injector both mean "no faults": every method is nil-safe so callers thread
// an *Injector through unconditionally.
type Injector struct {
	cfg  Config
	slow map[string]bool
}

// New builds an injector; a nil result is returned for an all-zero config so
// the fault-free path stays byte-identical to not wiring faults at all.
func New(cfg Config) *Injector {
	in := &Injector{cfg: cfg}
	if len(cfg.SlowPeers) > 0 {
		in.slow = make(map[string]bool, len(cfg.SlowPeers))
		for _, p := range cfg.SlowPeers {
			in.slow[p] = true
		}
	}
	return in
}

// Config returns the injector's configuration (zero Config when nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Enabled reports whether the injector can produce any non-OK outcome.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	return in.cfg.DropRate > 0 || in.cfg.CrashRate > 0 || in.cfg.DelayRate > 0 ||
		len(in.slow) > 0
}

// Decide returns the fate of the attempt-th try of a message from peer
// `from` to peer `to` (attempt 0 is the first try). Retries of the same link
// re-roll, so a transient drop can succeed on a later attempt — exactly the
// failure model retry-with-backoff is built for.
func (in *Injector) Decide(from, to string, attempt int) Outcome {
	if in == nil {
		return OK
	}
	u := Uniform01(in.cfg.Seed, from, to, strconv.Itoa(attempt))
	switch {
	case u < in.cfg.DropRate:
		return Drop
	case u < in.cfg.DropRate+in.cfg.CrashRate:
		return Crash
	case u < in.cfg.DropRate+in.cfg.CrashRate+in.cfg.DelayRate:
		return Delay
	}
	if in.slow[to] {
		return Delay
	}
	return OK
}

// Uniform01 hashes the seed and parts into a uniform value in [0,1). It is
// the package's only randomness source: FNV-1a over the seed and the
// NUL-separated parts, passed through a 64-bit finalizer (FNV alone barely
// moves the high bits when only trailing bytes differ, e.g. consecutive
// attempt numbers), with the top 53 bits mapped to the unit interval.
func Uniform01(seed int64, parts ...string) float64 {
	h := fnv.New64a()
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], uint64(seed))
	h.Write(s[:])
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return float64(mix64(h.Sum64())>>11) / float64(uint64(1)<<53)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so every input
// bit flips about half of the output bits.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
