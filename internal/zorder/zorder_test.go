package zorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ripple/internal/geom"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 10} {
		c := New(d)
		rng := rand.New(rand.NewSource(int64(d)))
		for i := 0; i < 200; i++ {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			key := c.Encode(p)
			q := c.Decode(key)
			// Decoded point is the cell's lower corner; re-encoding must give
			// the same key, and every coordinate must be within one cell.
			if got := c.Encode(q); got != key {
				t.Fatalf("d=%d: re-encode %v -> %d, want %d", d, q, got, key)
			}
			cell := 1 / float64(uint64(1)<<uint(c.Bits))
			for j := range p {
				if p[j] < q[j] || p[j] >= q[j]+cell {
					t.Fatalf("d=%d: coord %d of %v not in cell [%v,%v)", d, j, p, q[j], q[j]+cell)
				}
			}
		}
	}
}

func TestEncodeMonotoneAlongDiagonal(t *testing.T) {
	// Along the main diagonal the Z-curve is strictly increasing.
	c := New(2)
	prev := uint64(0)
	for i := 1; i < 100; i++ {
		v := float64(i) / 100
		key := c.Encode(geom.Point{v, v})
		if key < prev {
			t.Fatalf("diagonal key decreased at %v", v)
		}
		prev = key
	}
}

func TestKnown2DOrder(t *testing.T) {
	// With 1 bit per dim the 2-d Z curve visits quadrants in the order
	// (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3 when dim0 contributes the MSB.
	c := Curve{Dims: 2, Bits: 1}
	got := []uint64{
		c.Encode(geom.Point{0.1, 0.1}),
		c.Encode(geom.Point{0.1, 0.9}),
		c.Encode(geom.Point{0.9, 0.1}),
		c.Encode(geom.Point{0.9, 0.9}),
	}
	want := []uint64{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quadrant %d: key %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDecomposeCoversExactly(t *testing.T) {
	c := Curve{Dims: 2, Bits: 4} // 256 keys, exhaustive checking feasible
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a := rng.Uint64() % 256
		b := rng.Uint64() % 256
		if a > b {
			a, b = b, a
		}
		blocks := c.Decompose(a, b)
		covered := make(map[uint64]int)
		for _, blk := range blocks {
			if blk.Start%blk.Size() != 0 {
				t.Fatalf("block %+v not aligned", blk)
			}
			for k := blk.Start; k < blk.Start+blk.Size(); k++ {
				covered[k]++
			}
		}
		for k := uint64(0); k < 256; k++ {
			want := 0
			if k >= a && k <= b {
				want = 1
			}
			if covered[k] != want {
				t.Fatalf("interval [%d,%d]: key %d covered %d times, want %d", a, b, k, covered[k], want)
			}
		}
	}
}

func TestDecomposeBlockCount(t *testing.T) {
	c := New(3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		a := rng.Uint64() % c.MaxKey()
		b := a + rng.Uint64()%(c.MaxKey()-a)
		blocks := c.Decompose(a, b)
		if len(blocks) > 2*c.TotalBits() {
			t.Fatalf("decomposition of [%d,%d] uses %d blocks, want <= %d", a, b, len(blocks), 2*c.TotalBits())
		}
	}
}

// Property: a block's box contains exactly the decoded cells of the keys in
// the block, i.e. Z-intervals map to geometry consistently.
func TestBlockRectProperty(t *testing.T) {
	c := Curve{Dims: 3, Bits: 3}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		free := rng.Intn(c.TotalBits() + 1)
		size := uint64(1) << uint(free)
		start := (rng.Uint64() % (c.MaxKey() + 1)) / size * size
		blk := Block{Start: start, FreeBits: free}
		box := c.Rect(blk)
		// All keys in the block decode to points inside the box.
		for k := blk.Start; k < blk.Start+blk.Size(); k++ {
			if !box.Contains(c.Decode(k)) {
				return false
			}
		}
		// Volume of box equals (#cells in block) x cell volume.
		cellVol := 1.0
		for i := 0; i < c.Dims; i++ {
			cellVol /= float64(uint64(1) << uint(c.Bits))
		}
		want := float64(blk.Size()) * cellVol
		diff := box.Volume() - want
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxesDisjoint(t *testing.T) {
	c := Curve{Dims: 2, Bits: 5}
	boxes := c.Boxes(100, 700)
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Overlaps(boxes[j]) {
				t.Fatalf("boxes %d and %d overlap: %v %v", i, j, boxes[i], boxes[j])
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
