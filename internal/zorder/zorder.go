// Package zorder implements the Z-order (Morton) space-filling curve used by
// the SSP baseline to map multidimensional keys onto BATON's one-dimensional
// keyspace, exactly as Wang et al. do in the paper's competitor (§2.2).
//
// Besides encode/decode it provides the canonical decomposition of a Z-key
// interval into aligned blocks. Because bits are interleaved round-robin,
// every aligned binary block of the curve corresponds to an axis-parallel box
// of the domain, so an interval of Z-keys (a BATON peer's zone) can be turned
// into O(bits) boxes on which dominance pruning is exact.
package zorder

import (
	"fmt"

	"ripple/internal/geom"
)

// Curve is a Z-order curve over [0,1)^Dims with Bits bits of resolution per
// dimension. Total key width is Dims*Bits bits and must fit in 62 bits.
type Curve struct {
	Dims int
	Bits int
}

// New returns a curve for d dimensions with the maximum per-dimension
// resolution that keeps the total key width at 62 bits or below (capped at 20
// bits per dimension, which is far below float64 noise for unit-cube data).
func New(d int) Curve {
	if d <= 0 {
		panic("zorder: non-positive dimensionality")
	}
	bits := 62 / d
	if bits > 20 {
		bits = 20
	}
	if bits == 0 {
		panic(fmt.Sprintf("zorder: dimensionality %d too large", d))
	}
	return Curve{Dims: d, Bits: bits}
}

// TotalBits returns the key width in bits.
func (c Curve) TotalBits() int { return c.Dims * c.Bits }

// MaxKey returns the largest representable key.
func (c Curve) MaxKey() uint64 { return (uint64(1) << uint(c.TotalBits())) - 1 }

// cellCoord quantises a coordinate in [0,1) to a Bits-bit cell index.
func (c Curve) cellCoord(v float64) uint64 {
	n := uint64(1) << uint(c.Bits)
	if v <= 0 {
		return 0
	}
	x := uint64(v * float64(n))
	if x >= n {
		x = n - 1
	}
	return x
}

// Encode maps a point of [0,1)^Dims to its Z-order key. Bit t of the key,
// counted from the most significant end of the TotalBits-wide key, carries
// bit (Bits-1 - t/Dims) of dimension t%Dims.
func (c Curve) Encode(p geom.Point) uint64 {
	if len(p) != c.Dims {
		panic(fmt.Sprintf("zorder: point dim %d, curve dim %d", len(p), c.Dims))
	}
	coords := make([]uint64, c.Dims)
	for i, v := range p {
		coords[i] = c.cellCoord(v)
	}
	var key uint64
	for level := c.Bits - 1; level >= 0; level-- {
		for d := 0; d < c.Dims; d++ {
			key = key<<1 | (coords[d]>>uint(level))&1
		}
	}
	return key
}

// Decode returns the lower corner of the cell addressed by key.
func (c Curve) Decode(key uint64) geom.Point {
	coords := make([]uint64, c.Dims)
	t := 0
	for level := c.Bits - 1; level >= 0; level-- {
		for d := 0; d < c.Dims; d++ {
			bit := (key >> uint(c.TotalBits()-1-t)) & 1
			coords[d] |= bit << uint(level)
			t++
		}
	}
	p := make(geom.Point, c.Dims)
	scale := 1 / float64(uint64(1)<<uint(c.Bits))
	for i, x := range coords {
		p[i] = float64(x) * scale
	}
	return p
}

// Block is an aligned binary block of the curve: the FreeBits lowest key bits
// range freely while the rest are fixed to those of Start (whose low FreeBits
// bits are zero). Every Block corresponds to an axis-parallel box.
type Block struct {
	Start    uint64
	FreeBits int
}

// Size returns the number of keys covered by b.
func (b Block) Size() uint64 { return uint64(1) << uint(b.FreeBits) }

// Rect returns the axis-parallel box of the domain covered by b on curve c.
func (c Curve) Rect(b Block) geom.Rect {
	// Dimension d owns key bit positions (from the MSB) t with t%Dims == d;
	// the lowest FreeBits positions (from the LSB) are free. Count, per
	// dimension, how many of its bits are free: bit position from LSB is
	// bLSB = TotalBits-1-t, so dimension d's free bit count is the number of
	// bLSB in [0, FreeBits) with (TotalBits-1-bLSB)%Dims == d.
	free := make([]int, c.Dims)
	for bLSB := 0; bLSB < b.FreeBits; bLSB++ {
		d := (c.TotalBits() - 1 - bLSB) % c.Dims
		free[d]++
	}
	lo := c.Decode(b.Start)
	hi := make(geom.Point, c.Dims)
	cell := 1 / float64(uint64(1)<<uint(c.Bits))
	for d := 0; d < c.Dims; d++ {
		hi[d] = lo[d] + float64(uint64(1)<<uint(free[d]))*cell
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// Decompose covers the inclusive key interval [lo, hi] with the minimal set
// of aligned blocks (at most 2*TotalBits of them), in increasing key order.
func (c Curve) Decompose(lo, hi uint64) []Block {
	if hi > c.MaxKey() {
		hi = c.MaxKey()
	}
	if lo > hi {
		return nil
	}
	var out []Block
	c.cover(lo, hi, 0, c.TotalBits(), &out)
	return out
}

func (c Curve) cover(lo, hi, start uint64, freeBits int, out *[]Block) {
	end := start + (uint64(1) << uint(freeBits)) - 1 // inclusive
	if end < lo || start > hi {
		return
	}
	if lo <= start && end <= hi {
		*out = append(*out, Block{Start: start, FreeBits: freeBits})
		return
	}
	half := uint64(1) << uint(freeBits-1)
	c.cover(lo, hi, start, freeBits-1, out)
	c.cover(lo, hi, start+half, freeBits-1, out)
}

// Boxes converts a Z-key interval to the boxes of its canonical blocks.
func (c Curve) Boxes(lo, hi uint64) []geom.Rect {
	blocks := c.Decompose(lo, hi)
	boxes := make([]geom.Rect, len(blocks))
	for i, b := range blocks {
		boxes[i] = c.Rect(b)
	}
	return boxes
}
