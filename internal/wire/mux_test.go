package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"ripple/internal/overlay"
)

// The magic must decode as an over-limit legacy length prefix, or the sniff
// in netpeer could mistake a legacy frame for a hello.
func TestMuxMagicCannotBeALegacyPrefix(t *testing.T) {
	if muxMagic <= MaxFrame {
		t.Fatalf("muxMagic %#x must exceed MaxFrame %#x", muxMagic, MaxFrame)
	}
	var buf bytes.Buffer
	if err := WriteMuxHello(&buf, MuxVersion); err != nil {
		t.Fatal(err)
	}
	var prefix [4]byte
	copy(prefix[:], buf.Bytes())
	if !IsMuxPrefix(prefix) {
		t.Fatal("hello's first four bytes not recognised as the mux prefix")
	}
	// A legacy server reading the hello as a frame must reject it as
	// oversized — that rejection is what drives legacy fallback.
	var got Call
	err := ReadMessage(bytes.NewReader(buf.Bytes()), &got)
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("legacy read of a hello: err = %v, want FrameSizeError", err)
	}
}

func TestMuxHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMuxHello(&buf, 7); err != nil {
		t.Fatal(err)
	}
	ver, err := ReadMuxHello(bytes.NewReader(buf.Bytes()))
	if err != nil || ver != 7 {
		t.Fatalf("hello round trip: ver=%d err=%v", ver, err)
	}
	// The server-side path: sniff the magic, then read the version word.
	r := bytes.NewReader(buf.Bytes()[4:])
	ver, err = ReadMuxVersion(r)
	if err != nil || ver != 7 {
		t.Fatalf("version after sniff: ver=%d err=%v", ver, err)
	}
}

func TestMuxFrameRoundTripOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	calls := map[uint32]*Call{
		42: {QueryType: "topk", R: 3, Restrict: overlay.Whole(2)},
		7:  {QueryType: "skyline", R: 0, Restrict: overlay.Whole(2)},
		1:  {QueryType: "diversify", Hops: 9, Restrict: overlay.Whole(2)},
	}
	for _, id := range []uint32{42, 7, 1} {
		if err := WriteMuxFrame(&buf, id, calls[id]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		var got Call
		id, err := ReadMuxFrame(&buf, &got)
		if err != nil {
			t.Fatal(err)
		}
		want := calls[id]
		if want == nil {
			t.Fatalf("frame %d carried unknown stream %d", i, id)
		}
		if got.QueryType != want.QueryType || got.R != want.R || got.Hops != want.Hops {
			t.Fatalf("stream %d: got %+v, want %+v", id, got, want)
		}
	}
}

// Payload bytes must be identical under either framing, so the negotiated
// protocol changes headers only — a legacy peer sees the exact bytes it
// always did, and codec state is shared across both paths.
func TestMuxFramePayloadMatchesLegacy(t *testing.T) {
	call := &Call{QueryType: "topk", Params: []byte{1, 2, 3}, Restrict: overlay.Whole(3), R: 5}
	var legacy, mux bytes.Buffer
	if err := WriteMessage(&legacy, call); err != nil {
		t.Fatal(err)
	}
	if err := WriteMuxFrame(&mux, 99, call); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes()[4:], mux.Bytes()[8:]) {
		t.Fatal("mux frame payload differs from legacy frame payload")
	}
	if n := binary.BigEndian.Uint32(mux.Bytes()[4:8]); int(n) != mux.Len()-8 {
		t.Fatalf("mux length word %d, want %d", n, mux.Len()-8)
	}
}

func TestReadMuxFrameOversizeKeepsStream(t *testing.T) {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], 1234)
	binary.BigEndian.PutUint32(hdr[4:], MaxFrame+1)
	var got Reply
	stream, err := ReadMuxFrame(bytes.NewReader(hdr[:]), &got)
	var fse *FrameSizeError
	if !errors.As(err, &fse) || fse.Size != MaxFrame+1 {
		t.Fatalf("err = %v, want FrameSizeError{%d}", err, MaxFrame+1)
	}
	if stream != 1234 {
		t.Fatalf("stream = %d, want 1234 (needed to report the rejection)", stream)
	}
	if !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("error text %q should explain the limit", err)
	}
}

// A corrupt length prefix claiming a huge body must not cost a huge
// allocation when the stream dies early: growth tracks the bytes that
// actually arrive, one chunk at a time.
func TestReadMessageCorruptPrefixBoundedAllocation(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 32<<20) // claims 32 MiB, sends 10 bytes
	buf.Write(hdr[:])
	buf.WriteString("0123456789")
	var got Call
	err := ReadMessage(&buf, &got)
	if err == nil {
		t.Fatal("truncated 32 MiB claim must error")
	}
	allocated := testing.AllocsPerRun(20, func() {
		var inner bytes.Buffer
		inner.Write(hdr[:])
		inner.WriteString("0123456789")
		var c Call
		_ = ReadMessage(&inner, &c)
	})
	// The exact count is irrelevant; what matters is that the 32 MiB claim
	// didn't turn into 32 MiB of allocation. AllocsPerRun counts allocations,
	// so cap generously: a handful of chunk-sized buffers at most.
	if allocated > 16 {
		t.Fatalf("corrupt prefix cost %v allocations per read", allocated)
	}
}

func TestReadFrameBodyChunkedMatchesDirect(t *testing.T) {
	// Cross the chunk boundary so the incremental path runs.
	payload := make([]byte, frameChunk*2+frameChunk/2)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	got, err := readFrameBody(bytes.NewReader(payload), len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("chunked body read corrupted the payload")
	}
}

func TestOverloadedClassification(t *testing.T) {
	msg := Overloaded("peer p3: 32 calls executing and 128 queued")
	if !IsOverloaded(msg) {
		t.Fatal("Overloaded output not recognised")
	}
	if IsOverloaded("peer p3: panic: boom") {
		t.Fatal("processing error misclassified as overload")
	}
}
