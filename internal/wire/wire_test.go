package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

// Compile-time checks: the query packages implement the wire codec contract.
var (
	_ Codec = topk.WireCodec{}
	_ Codec = skyline.WireCodec{}
	_ Codec = diversify.WireCodec{}
)

func TestMessageRoundTrip(t *testing.T) {
	call := &Call{
		QueryType: "topk",
		Params:    []byte{1, 2, 3},
		Global:    []byte{4, 5},
		Restrict:  overlay.Whole(3),
		R:         7,
		Hops:      2,
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, call); err != nil {
		t.Fatal(err)
	}
	var got Call
	if err := ReadMessage(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.QueryType != "topk" || got.R != 7 || got.Hops != 2 || len(got.Params) != 3 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if !got.Restrict.Contains(geom.Point{0.5, 0.5, 0.5}) {
		t.Fatal("region lost in transit")
	}
}

func TestReplyRoundTrip(t *testing.T) {
	reply := &Reply{
		States:     [][]byte{{1}, {2, 3}},
		Answers:    []dataset.Tuple{{ID: 9, Vec: geom.Point{0.1, 0.2}}},
		Completion: 5,
		QueryMsgs:  11,
		Peers:      []string{"a", "b"},
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, reply); err != nil {
		t.Fatal(err)
	}
	var got Reply
	if err := ReadMessage(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Completion != 5 || got.QueryMsgs != 11 || len(got.States) != 2 || got.Answers[0].ID != 9 {
		t.Fatalf("reply round trip lost fields: %+v", got)
	}
}

func TestReadMessageEOF(t *testing.T) {
	var got Call
	if err := ReadMessage(strings.NewReader(""), &got); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestReadMessageOversizeFrame(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var got Call
	err := ReadMessage(bytes.NewReader(hdr[:]), &got)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame: err = %v", err)
	}
}

func TestReadMessageTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	var got Call
	if err := ReadMessage(&buf, &got); err == nil {
		t.Fatal("truncated body must error")
	}
}

func TestTopKCodecRoundTrip(t *testing.T) {
	c := topk.WireCodec{}
	for _, f := range []topk.Scorer{
		topk.UniformLinear(3),
		topk.Peak{Center: geom.Point{0.2, 0.3, 0.4}, Sharpness: 5},
		topk.Nearest{Center: geom.Point{0.5, 0.5, 0.5}, Metric: geom.L1},
	} {
		params, err := c.EncodeParams(f, 4)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := c.NewProcessor(params)
		if err != nil {
			t.Fatal(err)
		}
		tp := proc.(*topk.Processor)
		if tp.K != 4 {
			t.Fatalf("K lost: %d", tp.K)
		}
		p := geom.Point{0.25, 0.5, 0.75}
		if math.Abs(tp.F.Score(p)-f.Score(p)) > 1e-12 {
			t.Fatalf("scorer %T changed on the wire", f)
		}
	}
	// Neutral state on empty bytes.
	st, err := c.DecodeState(nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.DecodeState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if enc2, _ := c.EncodeState(st2); !bytes.Equal(enc, enc2) {
		t.Fatal("state round trip unstable")
	}
}

func TestDiversifyCodecRoundTrip(t *testing.T) {
	c := diversify.WireCodec{}
	q := diversify.NewQuery(geom.Point{0.2, 0.8}, 0.4)
	base := []dataset.Tuple{{ID: 5, Vec: geom.Point{0.1, 0.1}}}
	params, err := c.EncodeParams(q, base, map[uint64]bool{5: true, 9: true}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := c.NewProcessor(params)
	if err != nil {
		t.Fatal(err)
	}
	dp := proc.(*diversify.Processor)
	if dp.Query.Lambda != 0.4 || len(dp.Base) != 1 || !dp.Exclude[9] || dp.Tau0 != 0.25 {
		t.Fatalf("params lost on the wire: %+v", dp)
	}
	st, err := c.DecodeState(nil)
	if err != nil || !math.IsInf(float64(0)+mustFloat(c, st), 1) {
		t.Fatalf("neutral diversify state: %v %v", st, err)
	}
}

func mustFloat(c diversify.WireCodec, s interface{}) float64 {
	b, err := c.EncodeState(s)
	if err != nil {
		panic(err)
	}
	st, err := c.DecodeState(b)
	if err != nil {
		panic(err)
	}
	b2, _ := c.EncodeState(st)
	if string(b) != string(b2) {
		panic("unstable state round trip")
	}
	var v float64
	// decode the gob float directly for the assertion
	if err := gobDecodeForTest(b, &v); err != nil {
		panic(err)
	}
	return v
}

func TestSkylineCodecRoundTrip(t *testing.T) {
	c := skyline.WireCodec{}
	proc, err := c.NewProcessor(nil)
	if err != nil || proc == nil {
		t.Fatalf("NewProcessor: %v", err)
	}
	st, err := c.DecodeState(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := proc.StateTuples(st); n != 0 {
		t.Fatalf("neutral skyline state has %d tuples", n)
	}
}

func gobDecodeForTest(b []byte, v interface{}) error { return gobDecode(b, v) }
