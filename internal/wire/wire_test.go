package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
)

func TestMessageRoundTrip(t *testing.T) {
	call := &Call{
		QueryType: "topk",
		Params:    []byte{1, 2, 3},
		Global:    []byte{4, 5},
		Restrict:  overlay.Whole(3),
		R:         7,
		Hops:      2,
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, call); err != nil {
		t.Fatal(err)
	}
	var got Call
	if err := ReadMessage(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.QueryType != "topk" || got.R != 7 || got.Hops != 2 || len(got.Params) != 3 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if !got.Restrict.Contains(geom.Point{0.5, 0.5, 0.5}) {
		t.Fatal("region lost in transit")
	}
}

func TestReplyRoundTrip(t *testing.T) {
	reply := &Reply{
		States:     [][]byte{{1}, {2, 3}},
		Answers:    []dataset.Tuple{{ID: 9, Vec: geom.Point{0.1, 0.2}}},
		Completion: 5,
		QueryMsgs:  11,
		Peers:      []string{"a", "b"},
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, reply); err != nil {
		t.Fatal(err)
	}
	var got Reply
	if err := ReadMessage(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Completion != 5 || got.QueryMsgs != 11 || len(got.States) != 2 || got.Answers[0].ID != 9 {
		t.Fatalf("reply round trip lost fields: %+v", got)
	}
}

func TestReadMessageEOF(t *testing.T) {
	var got Call
	if err := ReadMessage(strings.NewReader(""), &got); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestReadMessageOversizeFrame(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var got Call
	err := ReadMessage(bytes.NewReader(hdr[:]), &got)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame: err = %v", err)
	}
}

func TestReadMessageTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	var got Call
	if err := ReadMessage(&buf, &got); err == nil {
		t.Fatal("truncated body must error")
	}
}

// The codec round-trip tests live in codecs_test.go (package wire_test): the
// query packages now import wire for payload pooling, so an in-package test
// cannot import them back.
