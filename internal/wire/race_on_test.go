//go:build race

package wire

// Under the race detector sync.Pool drops Puts at random to widen schedule
// coverage, so "zero steady-state allocations" is unprovable there. The
// guarded tests still run their correctness assertions; only the alloc count
// is skipped.
const raceEnabled = true
