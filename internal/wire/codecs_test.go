// External test package: the query codec packages import wire for payload
// pooling, so these cross-package round-trip tests must sit outside package
// wire to avoid an import cycle in the test binary.
package wire_test

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/geom"
	"ripple/internal/skyline"
	"ripple/internal/topk"
	"ripple/internal/wire"
)

// Compile-time checks: the query packages implement the wire codec contract.
var (
	_ wire.Codec = topk.WireCodec{}
	_ wire.Codec = skyline.WireCodec{}
	_ wire.Codec = diversify.WireCodec{}
)

func TestTopKCodecRoundTrip(t *testing.T) {
	c := topk.WireCodec{}
	for _, f := range []topk.Scorer{
		topk.UniformLinear(3),
		topk.Peak{Center: geom.Point{0.2, 0.3, 0.4}, Sharpness: 5},
		topk.Nearest{Center: geom.Point{0.5, 0.5, 0.5}, Metric: geom.L1},
	} {
		params, err := c.EncodeParams(f, 4)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := c.NewProcessor(params)
		if err != nil {
			t.Fatal(err)
		}
		tp := proc.(*topk.Processor)
		if tp.K != 4 {
			t.Fatalf("K lost: %d", tp.K)
		}
		p := geom.Point{0.25, 0.5, 0.75}
		if math.Abs(tp.F.Score(p)-f.Score(p)) > 1e-12 {
			t.Fatalf("scorer %T changed on the wire", f)
		}
	}
	// Neutral state on empty bytes.
	st, err := c.DecodeState(nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.DecodeState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if enc2, _ := c.EncodeState(st2); !bytes.Equal(enc, enc2) {
		t.Fatal("state round trip unstable")
	}
}

func TestDiversifyCodecRoundTrip(t *testing.T) {
	c := diversify.WireCodec{}
	q := diversify.NewQuery(geom.Point{0.2, 0.8}, 0.4)
	base := []dataset.Tuple{{ID: 5, Vec: geom.Point{0.1, 0.1}}}
	params, err := c.EncodeParams(q, base, map[uint64]bool{5: true, 9: true}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := c.NewProcessor(params)
	if err != nil {
		t.Fatal(err)
	}
	dp := proc.(*diversify.Processor)
	if dp.Query.Lambda != 0.4 || len(dp.Base) != 1 || !dp.Exclude[9] || dp.Tau0 != 0.25 {
		t.Fatalf("params lost on the wire: %+v", dp)
	}
	st, err := c.DecodeState(nil)
	if err != nil || !math.IsInf(float64(0)+mustFloat(c, st), 1) {
		t.Fatalf("neutral diversify state: %v %v", st, err)
	}
}

func mustFloat(c diversify.WireCodec, s interface{}) float64 {
	b, err := c.EncodeState(s)
	if err != nil {
		panic(err)
	}
	st, err := c.DecodeState(b)
	if err != nil {
		panic(err)
	}
	b2, _ := c.EncodeState(st)
	if string(b) != string(b2) {
		panic("unstable state round trip")
	}
	var v float64
	// decode the gob float directly for the assertion
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		panic(err)
	}
	return v
}

func TestSkylineCodecRoundTrip(t *testing.T) {
	c := skyline.WireCodec{}
	proc, err := c.NewProcessor(nil)
	if err != nil || proc == nil {
		t.Fatalf("NewProcessor: %v", err)
	}
	st, err := c.DecodeState(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := proc.StateTuples(st); n != 0 {
		t.Fatalf("neutral skyline state has %d tuples", n)
	}
}
