package wire

import (
	"bytes"
	"io"
	"math"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/trace"
)

// sampleCalls covers the downstream message shapes: bare, with state, traced.
func sampleCalls() []*Call {
	return []*Call{
		{QueryType: "topk", Restrict: overlay.Whole(2), R: 3},
		{
			QueryType: "skyline",
			Params:    []byte{1, 2, 3},
			Global:    []byte{9, 8},
			Restrict:  overlay.FromRect(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{0.5, 1}}),
			R:         0,
			Hops:      4,
		},
		{
			QueryType: "diversify", Restrict: overlay.Whole(3),
			Traced: true, SpanID: 42, SpanParent: 7, SpanDepth: 2,
		},
	}
}

// sampleReplies covers the upstream shapes: empty, loaded, partial, traced.
func sampleReplies() []*Reply {
	return []*Reply{
		{},
		{
			States:     [][]byte{{1}, {2, 3}},
			Answers:    []dataset.Tuple{{ID: 1, Vec: geom.Point{0.1, 0.2}}, {ID: 2, Vec: geom.Point{0.3, 0.4}}},
			Completion: 5, QueryMsgs: 3, StateMsgs: 2, TuplesSent: 4,
			Peers: []string{"a", "b"},
		},
		{
			Error: "peer x: panic", Partial: true,
			FailedRegions: []overlay.Region{overlay.Whole(2)},
			Failures:      1, Retries: 2, TimedOut: 1,
		},
		{
			Spans: []trace.Span{{
				ID: 9, Parent: 1, Peer: "p3", Region: overlay.Whole(2),
				Phase: trace.PhaseFast, Depth: 1, Arrive: 2, Outcome: trace.OutcomeOK,
			}},
		},
	}
}

// TestPooledMessageByteIdentity pins the load-bearing property of the codec
// pool: the pooled writer emits, message for message, exactly the bytes a
// fresh gob encoder would — so replay traces and the determinism invariants
// of DESIGN.md §10.1 cannot tell the optimisation happened.
func TestPooledMessageByteIdentity(t *testing.T) {
	var msgs []interface{}
	for _, c := range sampleCalls() {
		msgs = append(msgs, c)
	}
	for _, r := range sampleReplies() {
		msgs = append(msgs, r)
	}
	// Two passes: the first primes the pools, the second uses warm state.
	for pass := 0; pass < 2; pass++ {
		for i, m := range msgs {
			var pooled, fresh bytes.Buffer
			if err := WriteMessage(&pooled, m); err != nil {
				t.Fatalf("pass %d msg %d: pooled write: %v", pass, i, err)
			}
			if err := writeMessageFresh(&fresh, m); err != nil {
				t.Fatalf("pass %d msg %d: fresh write: %v", pass, i, err)
			}
			if !bytes.Equal(pooled.Bytes(), fresh.Bytes()) {
				t.Fatalf("pass %d msg %d: pooled and fresh frames differ:\npooled %x\nfresh  %x",
					pass, i, pooled.Bytes(), fresh.Bytes())
			}
		}
	}
}

// TestPooledMessageRoundTrip checks the pooled reader against both pooled
// and fresh writers, in both directions.
func TestPooledMessageRoundTrip(t *testing.T) {
	for i, r := range sampleReplies() {
		if r.Error != "" {
			continue // Error replies compare fine but carry no payload worth diffing
		}
		var frame bytes.Buffer
		if err := WriteMessage(&frame, r); err != nil {
			t.Fatal(err)
		}
		raw := append([]byte(nil), frame.Bytes()...)

		var viaPooled, viaFresh Reply
		if err := ReadMessage(bytes.NewReader(raw), &viaPooled); err != nil {
			t.Fatalf("reply %d: pooled read: %v", i, err)
		}
		if err := readMessageFresh(bytes.NewReader(raw), &viaFresh); err != nil {
			t.Fatalf("reply %d: fresh read: %v", i, err)
		}
		if len(viaPooled.Answers) != len(viaFresh.Answers) ||
			viaPooled.Completion != viaFresh.Completion ||
			viaPooled.StateMsgs != viaFresh.StateMsgs ||
			len(viaPooled.Spans) != len(viaFresh.Spans) {
			t.Fatalf("reply %d: pooled and fresh decodes disagree: %+v vs %+v", i, viaPooled, viaFresh)
		}
	}
}

// ifaceload has an interface field, so its gob descriptor set depends on the
// value being encoded — the one shape the prefix identity cannot cover.
type ifaceload struct {
	N int
	V interface{}
}

// TestInterfacePayloadFallsBackFresh feeds the pool a type that breaks the
// prefix identity and checks it degrades to the reference path instead of
// corrupting bytes.
func TestInterfacePayloadFallsBackFresh(t *testing.T) {
	pp := NewPayloadPool(&ifaceload{})
	vals := []ifaceload{
		{N: 1, V: "hello"},
		{N: 2, V: float64(2.5)},
		{N: 3}, // nil interface: gob refuses; both paths must agree on the error
	}
	for i, v := range vals {
		pooled, errP := pp.Encode(&v)
		fresh, errF := freshEncode(nil, &v)
		if (errP == nil) != (errF == nil) {
			t.Fatalf("val %d: pooled err %v, fresh err %v", i, errP, errF)
		}
		if errP != nil {
			continue
		}
		if !bytes.Equal(pooled, fresh) {
			t.Fatalf("val %d: pooled %x != fresh %x", i, pooled, fresh)
		}
		var got ifaceload
		if err := pp.Decode(pooled, &got); err != nil {
			t.Fatalf("val %d: decode: %v", i, err)
		}
		if got.N != v.N {
			t.Fatalf("val %d: roundtrip lost N", i)
		}
	}
}

// topkStateWire mirrors the topk codec's state payload: the representative
// small message of the satellite's allocation budget.
type topkStateWire struct {
	M   int
	Tau float64
}

// TestPayloadPoolZeroSteadyStateAllocs pins the allocation contract: once
// primed, pooled encode+decode of a topk state payload allocates nothing —
// buffers, encoders and decoders are all recycled.
func TestPayloadPoolZeroSteadyStateAllocs(t *testing.T) {
	pp := NewPayloadPool(&topkStateWire{})
	dst := make([]byte, 0, 256)
	in := topkStateWire{M: 7, Tau: 0.25}
	var out topkStateWire
	// Warm up: prime the prefix and populate the sync.Pools.
	for i := 0; i < 4; i++ {
		var err error
		dst, err = pp.AppendEncode(dst[:0], &in)
		if err != nil {
			t.Fatal(err)
		}
		if err := pp.Decode(dst, &out); err != nil {
			t.Fatal(err)
		}
	}
	if out.M != in.M || out.Tau != in.Tau {
		t.Fatalf("roundtrip mismatch: %+v != %+v", out, in)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = pp.AppendEncode(dst[:0], &in)
		if err != nil {
			t.Fatal(err)
		}
		if err := pp.Decode(dst, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 && !raceEnabled {
		t.Fatalf("steady-state pooled encode+decode allocates %.1f times per op, want 0", allocs)
	}
}

// TestPayloadPoolVariedValues sweeps value shapes (zeros, infinities, grown
// slices) through one pool and requires byte identity with fresh encoders on
// every single message.
func TestPayloadPoolVariedValues(t *testing.T) {
	type payload struct {
		K       int
		Weights []float64
		Name    string
	}
	pp := NewPayloadPool(&payload{})
	vals := []payload{
		{},
		{K: 1, Weights: []float64{1, 2, 3}, Name: "linear"},
		{K: -5, Weights: []float64{}, Name: ""},
		{K: 1 << 40, Weights: []float64{math.Inf(1), math.Inf(-1), 0}, Name: "edge"},
	}
	for pass := 0; pass < 2; pass++ {
		for i, v := range vals {
			pooled, err := pp.Encode(&v)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := freshEncode(nil, &v)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pooled, fresh) {
				t.Fatalf("pass %d val %d: pooled and fresh bytes differ", pass, i)
			}
			var got payload
			if err := pp.Decode(pooled, &got); err != nil {
				t.Fatal(err)
			}
			if got.K != v.K || got.Name != v.Name || len(got.Weights) != len(v.Weights) {
				t.Fatalf("pass %d val %d: roundtrip mismatch %+v != %+v", pass, i, got, v)
			}
		}
	}
}

func benchCall() *Call {
	return &Call{
		QueryType: "topk",
		Params:    bytes.Repeat([]byte{7}, 64),
		Global:    bytes.Repeat([]byte{3}, 24),
		Restrict:  overlay.Whole(5),
		R:         2,
		Hops:      3,
	}
}

func benchReply() *Reply {
	ts := make([]dataset.Tuple, 8)
	for i := range ts {
		ts[i] = dataset.Tuple{ID: uint64(i), Vec: geom.Point{0.1, 0.2, 0.3, 0.4, 0.5}}
	}
	return &Reply{
		States: [][]byte{bytes.Repeat([]byte{1}, 24)}, Answers: ts,
		Completion: 4, QueryMsgs: 9, StateMsgs: 3, TuplesSent: 11,
		Peers: []string{"p1", "p2", "p3"},
	}
}

func BenchmarkWriteCallPooled(b *testing.B) {
	msg := benchCall()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteMessage(io.Discard, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCallFresh(b *testing.B) {
	msg := benchCall()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := writeMessageFresh(io.Discard, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteReplyPooled(b *testing.B) {
	msg := benchReply()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteMessage(io.Discard, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteReplyFresh(b *testing.B) {
	msg := benchReply()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := writeMessageFresh(io.Discard, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFrame(b *testing.B, msg interface{}) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msg); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkReadReplyPooled(b *testing.B) {
	frame := benchFrame(b, benchReply())
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		var reply Reply
		if err := ReadMessage(r, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadReplyFresh(b *testing.B) {
	frame := benchFrame(b, benchReply())
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		var reply Reply
		if err := readMessageFresh(r, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStateEncodePooled(b *testing.B) {
	pp := NewPayloadPool(&topkStateWire{})
	in := topkStateWire{M: 10, Tau: 0.75}
	dst := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = pp.AppendEncode(dst[:0], &in)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStateEncodeFresh(b *testing.B) {
	in := topkStateWire{M: 10, Tau: 0.75}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := freshEncode(nil, &in); err != nil {
			b.Fatal(err)
		}
	}
}
