// Multiplexed framing: protocol version 1 of the peer transport.
//
// A legacy connection carries strictly alternating call/reply frames, each a
// 4-byte length prefix plus a gob body, so one slow call head-of-line-blocks
// everything behind it. A mux connection interleaves many logical calls: the
// client opens it with an 8-byte hello (magic + highest supported version),
// the server answers with the same shape carrying the negotiated version,
// and from then on every frame is {stream ID, length, gob body}. Replies
// come back tagged with the stream they answer, in whatever order subtrees
// complete.
//
// The magic is chosen above MaxFrame, so the first four bytes of a
// connection are unambiguous: a value that parses as a plausible legacy
// length prefix is a legacy frame, the magic is a hello. A pre-mux server
// reading the hello as a length prefix rejects it as oversized and drops the
// connection, which the client takes as "legacy peer" and retries with the
// old framing — mixed fleets keep working. A mux-aware server with
// multiplexing disabled acks version 0, meaning "continue sequentially on
// this same connection".
//
// Frame bodies use the same pooled gob encoding as the legacy path, so the
// payload bytes of a message are identical under either framing; only the
// header differs.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// muxMagic opens a mux hello. It decodes as an absurd legacy frame length
// (0x52504C58, "RPLX", ≈1.3 GiB > MaxFrame), so it can never be confused
// with a real legacy length prefix.
const muxMagic = 0x52504C58

// MuxVersion is the highest mux protocol version this build speaks. The
// server acks the minimum of its own and the client's version; an ack of 0
// means "sequential protocol on this connection".
const MuxVersion = 1

// IsMuxPrefix reports whether four bytes read as a legacy length prefix are
// actually the opening of a mux hello.
func IsMuxPrefix(prefix [4]byte) bool {
	return binary.BigEndian.Uint32(prefix[:]) == muxMagic
}

// WriteMuxHello writes a hello or ack: magic followed by a version word.
func WriteMuxHello(w io.Writer, version uint32) error {
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], muxMagic)
	binary.BigEndian.PutUint32(b[4:], version)
	if _, err := w.Write(b[:]); err != nil {
		return fmt.Errorf("wire: write mux hello: %w", err)
	}
	return nil
}

// ReadMuxHello reads a full hello/ack and returns its version.
func ReadMuxHello(r io.Reader) (uint32, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	if binary.BigEndian.Uint32(b[:4]) != muxMagic {
		return 0, fmt.Errorf("wire: not a mux hello")
	}
	return binary.BigEndian.Uint32(b[4:]), nil
}

// ReadMuxVersion reads the version word of a hello whose magic the caller
// already consumed (the server sniffs the first four bytes to tell mux from
// legacy traffic).
func ReadMuxVersion(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

// WriteMuxFrame frames and writes one message on the given stream. Like
// WriteMessage it reuses pooled codec state and issues a single Write, so
// concurrent writers need only serialise the call itself.
func WriteMuxFrame(w io.Writer, stream uint32, msg interface{}) error {
	bp := framePool.Get().(*[]byte)
	defer putFrameBuf(bp)
	buf := append((*bp)[:0], 0, 0, 0, 0, 0, 0, 0, 0) // stream + length, patched below
	buf, err := poolFor(msg).appendEncode(buf, msg)
	if err != nil {
		*bp = buf[:0]
		return fmt.Errorf("wire: encode: %w", err)
	}
	binary.BigEndian.PutUint32(buf[:4], stream)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(buf)-8))
	_, err = w.Write(buf)
	*bp = buf[:0]
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadMuxFrame reads one mux frame into msg and returns its stream ID. On a
// *FrameSizeError the stream ID is still valid — the body is unread, so the
// connection cannot be resynchronised, but the server can report the
// rejection on the offending stream before dropping the connection.
func ReadMuxFrame(r io.Reader, msg interface{}) (uint32, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err // io.EOF signals a cleanly closed connection
	}
	stream := binary.BigEndian.Uint32(hdr[:4])
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxFrame {
		return stream, &FrameSizeError{Size: n}
	}
	bp := framePool.Get().(*[]byte)
	defer putFrameBuf(bp)
	body, err := readFrameBody(r, int(n), (*bp)[:0])
	*bp = body[:0]
	if err != nil {
		return stream, fmt.Errorf("wire: read body: %w", err)
	}
	if err := poolFor(msg).decode(body, msg); err != nil {
		return stream, fmt.Errorf("wire: decode: %w", err)
	}
	return stream, nil
}

// OverloadedPrefix marks a Reply.Error produced by the server's admission
// control rather than by query processing: the worker pool and its queue
// were full, and the call was rejected instead of stalling the socket.
// Unlike a processing error, an overload is transient by construction, so
// the caller retries it under the normal backoff policy.
const OverloadedPrefix = "overloaded: "

// Overloaded builds an admission-control Reply.Error.
func Overloaded(detail string) string { return OverloadedPrefix + detail }

// IsOverloaded reports whether a Reply.Error came from admission control.
func IsOverloaded(errMsg string) bool { return strings.HasPrefix(errMsg, OverloadedPrefix) }
