package wire

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// flatAll exercises every field kind the fast path supports.
type flatAll struct {
	B  bool
	I  int
	I6 int64
	U  uint
	U6 uint64
	F  float64
	G  float64
}

// TestFlatDecoderDifferential is the fast path's ground truth: for a sweep
// of edge and random values, decoding through the pooled path (which takes
// the flat fast path) must agree exactly with a fresh gob decoder reading
// the same bytes.
func TestFlatDecoderDifferential(t *testing.T) {
	pp := NewPayloadPool(&flatAll{})
	rng := rand.New(rand.NewSource(1))
	vals := []flatAll{
		{},
		{B: true, I: 1, I6: -1, U: 2, U6: 3, F: 0.25, G: -0.25},
		{I: math.MaxInt64, I6: math.MinInt64, U6: math.MaxUint64},
		{F: math.Inf(1), G: math.Inf(-1)},
		{F: math.Copysign(0, -1), G: math.NaN()},
		{I: -1 << 62, U: 1 << 63},
	}
	for i := 0; i < 200; i++ {
		vals = append(vals, flatAll{
			B:  rng.Intn(2) == 0,
			I:  int(rng.Uint64()),
			I6: int64(rng.Uint64()),
			U:  uint(rng.Uint64()),
			U6: rng.Uint64(),
			F:  math.Float64frombits(rng.Uint64()),
			G:  rng.NormFloat64(),
		})
	}
	for i, v := range vals {
		b, err := pp.Encode(&v)
		if err != nil {
			t.Fatalf("val %d: encode: %v", i, err)
		}
		var fast, slow flatAll
		if err := pp.Decode(b, &fast); err != nil {
			t.Fatalf("val %d: pooled decode: %v", i, err)
		}
		if err := freshDecode(b, &slow); err != nil {
			t.Fatalf("val %d: fresh decode: %v", i, err)
		}
		// NaN != NaN, so compare bit patterns via formatting-free reflection
		// on the float fields and direct equality on the rest.
		if fast.B != slow.B || fast.I != slow.I || fast.I6 != slow.I6 ||
			fast.U != slow.U || fast.U6 != slow.U6 ||
			math.Float64bits(fast.F) != math.Float64bits(slow.F) ||
			math.Float64bits(fast.G) != math.Float64bits(slow.G) {
			t.Fatalf("val %d: fast %+v != gob %+v (input %+v)", i, fast, slow, v)
		}
	}
}

// TestFlatDecoderRejectsUnsupportedTypes pins the fast path's scope: any
// field outside the flat set must disable it (nil decoder), never
// mis-decode.
func TestFlatDecoderRejectsUnsupportedTypes(t *testing.T) {
	cases := []interface{}{
		struct{ S string }{},
		struct{ P []byte }{},
		struct{ V interface{} }{},
		struct{ F float32 }{},
		struct{ I int32 }{},
		struct {
			A int
			b int // unexported: gob skips it, deltas would shift
		}{},
		7, // not a struct
	}
	for i, c := range cases {
		if fd := newFlatDecoder(reflect.TypeOf(c)); fd != nil {
			t.Fatalf("case %d (%T): expected nil flat decoder", i, c)
		}
	}
	if fd := newFlatDecoder(reflect.TypeOf(flatAll{})); fd == nil {
		t.Fatal("flatAll should be fast-path decodable")
	}
}

// TestFlatDecoderGarbageFallsBack feeds corrupt value messages and checks
// the parser refuses them (so gob gets to produce the authoritative error)
// rather than mis-parsing.
func TestFlatDecoderGarbageFallsBack(t *testing.T) {
	fd := newFlatDecoder(reflect.TypeOf(flatAll{}))
	var v flatAll
	bad := [][]byte{
		{},
		{0xFF},             // truncated length
		{0x05, 0x81},       // descriptor type id (negative)
		{0x02, 0x42, 0x09}, // field delta pointing past the last field...
		{0x7F, 0x42},       // length longer than the body
	}
	for i, b := range bad {
		if fd.decode(b, &v) {
			t.Fatalf("case %d: corrupt message %x decoded successfully", i, b)
		}
	}
}
