// Pooled gob encoding. A fresh gob.Encoder re-transmits the type descriptors
// of everything it encodes, and allocates its whole machinery per message —
// both pure constant-factor waste on the RPC hot path, where the same handful
// of message types is encoded millions of times.
//
// The pool exploits a structural property of the gob stream: for a type whose
// field graph contains no interfaces, the descriptor set a fresh encoder
// emits is a pure function of the static type, so
//
//	freshEncoderBytes(v) == descriptorPrefix(T) || warmEncoderBytes(v)
//
// where a "warm" encoder has already transmitted T's descriptors. We capture
// descriptorPrefix(T) once per type — validating the identity above against a
// real fresh encoding before trusting it — and afterwards build every message
// as prefix + warm-encoder output from a sync.Pool of primed encoders. The
// bytes on the wire are byte-for-byte those of a fresh encoder, so replay
// and the cross-runtime determinism invariants (DESIGN.md §10.1) are
// unaffected; only the allocations disappear.
//
// Retention rules (what a pooled codec may keep across messages):
//   - the descriptor prefix and the primed encoder/decoder machinery: yes —
//     they are pure functions of the static type;
//   - any reference into a caller's value or a decoded message: no — buffers
//     are Reset between uses and outputs are appended to caller-owned slices;
//   - an encoder or decoder that has returned an error: no — its stream state
//     is unknown, it is dropped for the garbage collector.
//
// Types that break the prefix identity (interface fields would make the
// descriptor set value-dependent) are detected at prime time or by the
// per-message value-guard and permanently fall back to fresh encoders: the
// pool is an optimisation, never a semantic change.
package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"sync"
	"sync/atomic"
)

// warmEnc is a gob encoder that has already transmitted the descriptors of
// its pool's type, bound to its reusable output buffer.
type warmEnc struct {
	buf bytes.Buffer
	enc *gob.Encoder
}

// warmDec is a gob decoder that has already received the descriptors of its
// pool's type, bound to a resettable reader.
type warmDec struct {
	r   bytes.Reader
	dec *gob.Decoder
}

// gobPool holds the pooled encode/decode state for one concrete payload
// type. The zero state primes itself on first use. Concurrent encoders of
// the same type are synchronised by primeOnce (which orders the writes to
// prefix/zero/flat before any reader sees them) and by the atomic broken
// flag; everything else is either immutable after priming or owned by one
// goroutine via the sync.Pools.
type gobPool struct {
	sample interface{} // pointer to a zero value of the payload type

	primeOnce sync.Once
	broken    atomic.Bool  // prefix identity failed: always use fresh codecs
	prefix    []byte       // descriptor bytes a fresh encoder emits before the value
	zero      []byte       // full fresh encoding of the zero value (primes decoders)
	flat      *flatDecoder // allocation-free decode for flat structs; nil otherwise

	encs sync.Pool // *warmEnc
	decs sync.Pool // *warmDec
}

func newGobPool(sample interface{}) *gobPool {
	t := reflect.TypeOf(sample)
	if t == nil || t.Kind() != reflect.Ptr {
		panic("wire: payload pool sample must be a non-nil pointer")
	}
	return &gobPool{sample: sample}
}

// freshEncode is the reference path: a brand-new encoder per message.
func freshEncode(dst []byte, v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return dst, err
	}
	return append(dst, buf.Bytes()...), nil
}

func freshDecode(b []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// newWarmEnc builds an encoder and primes it with the pool's zero value so
// its descriptor state matches the cached prefix. Returns nil if the type
// cannot be encoded at all (the caller's real Encode will surface the error).
func (p *gobPool) newWarmEnc() *warmEnc {
	w := &warmEnc{}
	w.enc = gob.NewEncoder(&w.buf)
	if err := w.enc.Encode(p.sample); err != nil {
		return nil
	}
	w.buf.Reset()
	return w
}

// newWarmDec builds a decoder primed with the zero stream.
func (p *gobPool) newWarmDec() *warmDec {
	w := &warmDec{}
	w.r.Reset(p.zero)
	w.dec = gob.NewDecoder(&w.r)
	sink := reflect.New(reflect.TypeOf(p.sample).Elem()).Interface()
	if err := w.dec.Decode(sink); err != nil {
		return nil
	}
	return w
}

// prime captures the descriptor prefix for the pool's type and validates the
// prefix identity against a real fresh encoding of the zero value. On any
// mismatch the pool marks itself broken and serves fresh codecs forever.
// Runs exactly once, under primeOnce.
func (p *gobPool) prime() {
	fresh, err := freshEncode(nil, p.sample)
	if err != nil {
		p.broken.Store(true)
		return
	}
	w := p.newWarmEnc()
	if w == nil {
		p.broken.Store(true)
		return
	}
	if err := w.enc.Encode(p.sample); err != nil {
		p.broken.Store(true)
		return
	}
	warm := w.buf.Bytes()
	if !bytes.HasSuffix(fresh, warm) || !gobBodyIsValue(warm) {
		p.broken.Store(true)
		return
	}
	p.prefix = append([]byte(nil), fresh[:len(fresh)-len(warm)]...)
	p.zero = fresh
	p.flat = newFlatDecoder(reflect.TypeOf(p.sample).Elem())
	w.buf.Reset()
	p.encs.Put(w)
}

// appendEncode appends the gob encoding of v — byte-identical to a fresh
// encoder's output — to dst and returns the extended slice.
func (p *gobPool) appendEncode(dst []byte, v interface{}) ([]byte, error) {
	p.primeOnce.Do(p.prime)
	if p.broken.Load() {
		return freshEncode(dst, v)
	}
	//lint:ignore poolcheck an encoder that errored (or saw a value-dependent descriptor) has unknown stream state and must not be re-pooled
	w, _ := p.encs.Get().(*warmEnc)
	if w == nil {
		if w = p.newWarmEnc(); w == nil {
			return freshEncode(dst, v)
		}
	}
	w.buf.Reset()
	if err := w.enc.Encode(v); err != nil {
		// Encoder state is unknown after an error: drop it.
		return dst, err
	}
	body := w.buf.Bytes()
	if !gobBodyIsValue(body) {
		// The value introduced a new descriptor (interface field): this
		// type's descriptor set is value-dependent, the prefix identity does
		// not hold. Disable the pool for the type and re-encode fresh.
		p.broken.Store(true)
		return freshEncode(dst, v)
	}
	dst = append(dst, p.prefix...)
	dst = append(dst, body...)
	w.buf.Reset()
	p.encs.Put(w)
	return dst, nil
}

// decode decodes a fresh-encoder gob stream into v, reusing warm decoder
// state when the stream carries the expected descriptor prefix.
func (p *gobPool) decode(b []byte, v interface{}) error {
	p.primeOnce.Do(p.prime)
	if p.broken.Load() || !bytes.HasPrefix(b, p.prefix) {
		return freshDecode(b, v)
	}
	if p.flat != nil && reflect.TypeOf(v) == reflect.TypeOf(p.sample) {
		if p.flat.decode(b[len(p.prefix):], v) {
			return nil
		}
		// Unparseable by the narrow fast path; let gob judge the message.
	}
	//lint:ignore poolcheck a decoder that errored has unknown stream state and must not be re-pooled; the message gets one fresh-path attempt instead
	w, _ := p.decs.Get().(*warmDec)
	if w == nil {
		if w = p.newWarmDec(); w == nil {
			return freshDecode(b, v)
		}
	}
	w.r.Reset(b[len(p.prefix):])
	if err := w.dec.Decode(v); err != nil {
		// Decoder state is unknown after an error; give the message one
		// authoritative attempt on the reference path.
		return freshDecode(b, v)
	}
	p.decs.Put(w)
	return nil
}

// gobBodyIsValue reports whether the first gob message in b is a value
// message (positive type id) rather than a type descriptor (negative id).
// Message framing per the gob spec: an unsigned byte count, then the
// message, which opens with a signed type id; signed ints carry their sign
// in the low bit of the unsigned representation.
func gobBodyIsValue(b []byte) bool {
	_, rest, ok := gobReadUint(b)
	if !ok {
		return false
	}
	id, _, ok := gobReadUint(rest)
	return ok && id&1 == 0
}

// gobReadUint decodes one gob unsigned integer: a value < 128 is its own
// byte; otherwise the first byte is the negated count of big-endian bytes
// that follow.
func gobReadUint(b []byte) (v uint64, rest []byte, ok bool) {
	if len(b) == 0 {
		return 0, nil, false
	}
	if b[0] < 0x80 {
		return uint64(b[0]), b[1:], true
	}
	n := -int(int8(b[0]))
	if n < 1 || n > 8 || len(b) < 1+n {
		return 0, nil, false
	}
	for _, c := range b[1 : 1+n] {
		v = v<<8 | uint64(c)
	}
	return v, b[1+n:], true
}

// messagePools maps a message's concrete type (indirected through pointers)
// to its gobPool, lazily; WriteMessage/ReadMessage serve arbitrary types.
var messagePools sync.Map // reflect.Type -> *gobPool

func poolFor(msg interface{}) *gobPool {
	t := reflect.TypeOf(msg)
	for t != nil && t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	if t == nil {
		return nil
	}
	if p, ok := messagePools.Load(t); ok {
		return p.(*gobPool)
	}
	p, _ := messagePools.LoadOrStore(t, newGobPool(reflect.New(t).Interface()))
	return p.(*gobPool)
}

// PayloadPool pools gob encode/decode machinery for one concrete payload
// type, producing bytes byte-identical to a fresh per-message encoder. Query
// codecs declare one per payload (params, state) at package level.
type PayloadPool struct{ p *gobPool }

// NewPayloadPool returns a pool for the payload type sample points to
// (sample must be a pointer to a zero value, e.g. &wireParams{}).
func NewPayloadPool(sample interface{}) *PayloadPool {
	return &PayloadPool{p: newGobPool(sample)}
}

// Encode returns the gob encoding of v as a caller-owned slice.
func (pp *PayloadPool) Encode(v interface{}) ([]byte, error) {
	return pp.p.appendEncode(nil, v)
}

// AppendEncode appends the gob encoding of v to dst: the zero-allocation
// path when dst capacity is reused across messages.
func (pp *PayloadPool) AppendEncode(dst []byte, v interface{}) ([]byte, error) {
	return pp.p.appendEncode(dst, v)
}

// Decode decodes a payload produced by Encode (or any fresh gob encoder)
// into v, which must be a pointer to the pool's payload type.
func (pp *PayloadPool) Decode(b []byte, v interface{}) error {
	return pp.p.decode(b, v)
}
