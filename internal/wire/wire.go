// Package wire defines the message format RIPPLE peers exchange when they
// run over a real transport (see internal/netpeer): a length-prefixed gob
// envelope carrying the query descriptor, the propagated global state, the
// restriction area and the ripple parameter downstream, and local states,
// answer tuples and cost counters upstream.
//
// Query-type specifics (parameters and state payloads) are opaque byte
// blobs produced by a per-type Codec, so new query types plug into the wire
// protocol the same way they plug into the engine.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/trace"
)

// Codec serialises one query type's parameters and states.
type Codec interface {
	// Name identifies the query type on the wire ("topk", "skyline", ...).
	Name() string
	// NewProcessor decodes query parameters into an engine plug-in.
	NewProcessor(params []byte) (core.Processor, error)
	// EncodeState / DecodeState serialise the query type's state payloads.
	EncodeState(s core.State) ([]byte, error)
	DecodeState(b []byte) (core.State, error)
}

// Mutation operations carried by Call.Op. An empty Op marks a query call;
// the constants below select the wire-level data-mutation path (v1, added
// with the result cache of DESIGN.md §15 — gob omits zero-valued fields, so
// query calls encode exactly as they did before the fields existed).
const (
	OpInsert = "insert"
	OpDelete = "delete"
	// OpInvalidate is the cache-invalidation broadcast the owner floods after
	// applying a mutation: every peer drops cached results whose footprint
	// covers Tuple.Vec, propagating along links under the same restriction
	// partition a fast-mode query uses, so each peer receives it exactly once.
	OpInvalidate = "invalidate"
)

// Call is the downstream message: "process this query within this area".
type Call struct {
	QueryType string
	Params    []byte
	Global    []byte
	Restrict  overlay.Region
	R         int
	Hops      int // logical arrival time of this message

	// Scope, when non-empty, restricts the query to a sub-region of the
	// domain: traversal is pruned to it and every peer filters its local
	// answer to tuples inside it. Unlike Restrict — which narrows per hop as
	// the traversal partitions the domain — Scope is constant across the
	// whole query and is part of the result's cache identity.
	Scope overlay.Region

	// Op selects the data-mutation path: OpInsert or OpDelete apply Tuple at
	// the peer owning Tuple.Vec (routing greedily via link regions), update
	// the owner's R-1 zone mirrors, and invalidate result caches along the
	// way. Empty means a query call.
	Op    string
	Tuple dataset.Tuple

	// ActAs, when non-empty, asks the receiving peer to process this call on
	// behalf of the named dead peer (a recovery dispatch): it executes the
	// primary's replicated share — zone, tuples and links — so the recovered
	// subtree is exactly the subtree the primary would have executed. The
	// receiver must hold a replica of that peer's share or fail the call.
	ActAs string

	// Trace context. When Traced is set, the receiving peer records a span
	// for itself — identified by SpanID, which the caller derived (the caller
	// owns the traversal, exactly like the in-process engines) — and returns
	// its subtree's spans on the Reply, convergecasting the hop tree back to
	// the initiator. SpanParent and SpanDepth place the span in the tree.
	Traced     bool
	SpanID     uint64
	SpanParent uint64
	SpanDepth  int
}

// Reply is the upstream message: the local states of the processed subtree,
// the answer tuples collected for the initiator, and cost counters.
type Reply struct {
	States     [][]byte
	Answers    []dataset.Tuple
	Completion int // logical completion time of the subtree
	QueryMsgs  int
	StateMsgs  int
	TuplesSent int
	Peers      []string // peers reached in the subtree (congestion audit)

	// Error reports a fatal processing failure at the replying peer (panic
	// or malformed call). It distinguishes "this peer crashed" from "this
	// peer holds no qualifying tuples", which an empty reply cannot.
	Error string
	// Partial marks that at least one subtree was lost (dead or timed-out
	// link after retry exhaustion): the answer set may be incomplete.
	Partial bool
	// FailedRegions collects the restriction regions of the lost subtrees;
	// their total volume bounds what the answer can be missing.
	FailedRegions []overlay.Region
	// Failures counts link traversals abandoned after retry exhaustion,
	// Retries the extra attempts spent recovering links, and TimedOut the
	// subset of Failures that hit the per-call deadline rather than an
	// immediate transport error.
	Failures int
	Retries  int
	TimedOut int
	// Recovered counts lost traversals a zone replica served on the dead
	// primary's behalf (they do not mark the reply partial); Failovers the
	// replica dispatches attempted doing so, successful or not.
	Recovered int
	Failovers int

	// Spans carries the subtree's hop-tree spans upstream when the call was
	// traced: the replying peer's own span, spans it recorded for lost
	// children, and everything its reachable children reported.
	Spans []trace.Span

	// CacheHit marks a reply served from the peer's result cache (answers
	// decoded from canonical form; cost counters are then zero by
	// construction — no propagation happened).
	CacheHit bool
	// Plan and PlanR report the serving peer's adaptive-planner decision when
	// the call arrived with r = RAuto and the peer ran a planner: PlanR is the
	// ripple parameter the query actually executed with and Plan its rendered
	// decision ("fast", "ripple(2)", ...). Both are zero-valued for static
	// calls, so — gob omitting zero fields — the reply encodes exactly as it
	// did before the fields existed.
	Plan  string
	PlanR int
	// Acks counts the peers that applied a mutation call: the owner plus
	// each mirror that acknowledged the update.
	Acks int
	// Forwarded marks a mutation reply from a replica that routed the call
	// onward (acting as the dead peer) instead of applying it to a mirrored
	// share: the caller must not dispatch the same mutation to the remaining
	// replicas, or the owner would apply it once per replica.
	Forwarded bool
}

// MergeFaults folds a child subtree's fault accounting into r.
func (r *Reply) MergeFaults(child *Reply) {
	r.Partial = r.Partial || child.Partial
	r.FailedRegions = append(r.FailedRegions, child.FailedRegions...)
	r.Failures += child.Failures
	r.Retries += child.Retries
	r.TimedOut += child.TimedOut
	r.Recovered += child.Recovered
	r.Failovers += child.Failovers
}

// RecordLostLink marks one unrecoverable link covering the given region.
func (r *Reply) RecordLostLink(region overlay.Region, timedOut bool) {
	r.Partial = true
	r.Failures++
	if timedOut {
		r.TimedOut++
	}
	r.FailedRegions = append(r.FailedRegions, region)
}

func init() {
	gob.Register(geom.Point{})
	gob.Register(geom.Rect{})
	gob.Register(overlay.Region{})
	gob.Register(dataset.Tuple{})
}

// framePool recycles the frame-assembly and frame-read buffers; frames
// beyond maxPooledFrame are left to the garbage collector so one huge answer
// set cannot pin memory in the pool forever.
var framePool = sync.Pool{New: func() interface{} { b := make([]byte, 0, 4096); return &b }}

const maxPooledFrame = 1 << 20

func putFrameBuf(b *[]byte) {
	if cap(*b) <= maxPooledFrame {
		framePool.Put(b)
	}
}

// WriteMessage frames and writes a gob-encoded message. The encoding reuses
// pooled codec state (see pool.go) and the frame goes out in a single Write;
// the bytes are identical to a fresh gob encoder's, message for message.
func WriteMessage(w io.Writer, msg interface{}) error {
	bp := framePool.Get().(*[]byte)
	defer putFrameBuf(bp)
	buf := append((*bp)[:0], 0, 0, 0, 0) // length header, patched below
	buf, err := poolFor(msg).appendEncode(buf, msg)
	if err != nil {
		*bp = buf[:0]
		return fmt.Errorf("wire: encode: %w", err)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err = w.Write(buf)
	*bp = buf[:0]
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// writeMessageFresh is the pre-pool reference implementation: a fresh
// encoder and buffer per message. Kept for byte-identity tests and the
// before/after benchmarks.
func writeMessageFresh(w io.Writer, msg interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	var size [4]byte
	binary.BigEndian.PutUint32(size[:], uint32(buf.Len()))
	if _, err := w.Write(size[:]); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// MaxFrame bounds a single message; queries and states are small, answers
// are bounded by the data a peer holds.
const MaxFrame = 64 << 20

// FrameSizeError reports a length prefix beyond MaxFrame: either a peer
// trying to ship an oversized message or a corrupt/hostile prefix. The
// server replies with it as wire.Reply.Error before dropping the connection
// (the frame body cannot be resynchronised), so the sender learns why.
type FrameSizeError struct {
	Size uint32
}

// Error implements error.
func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds limit (%d)", e.Size, MaxFrame)
}

// frameChunk caps how far a frame-body read allocates ahead of the bytes
// actually received. A prefix that lies about its length — corruption, or a
// hostile client — costs at most one chunk beyond what arrived, instead of
// the full claimed size up front.
const frameChunk = 1 << 20

// readFrameBody reads an n-byte frame body into buf (reused from the frame
// pool), growing it incrementally so allocation tracks arrival.
func readFrameBody(r io.Reader, n int, buf []byte) ([]byte, error) {
	if n <= frameChunk || cap(buf) >= n {
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf = buf[:0]
	for len(buf) < n {
		step := n - len(buf)
		if step > frameChunk {
			step = frameChunk
		}
		next := len(buf) + step
		if cap(buf) < next {
			// Doubling keeps total copying linear in n.
			newCap := 2 * cap(buf)
			if newCap < next {
				newCap = next
			}
			if newCap > n {
				newCap = n
			}
			grown := make([]byte, next, newCap)
			copy(grown, buf)
			buf = grown
		} else {
			buf = buf[:next]
		}
		if _, err := io.ReadFull(r, buf[next-step:]); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// ReadMessage reads one framed message into msg, reusing pooled frame
// buffers and decoder state. msg must be a pointer to a zero value: gob
// leaves fields absent from the stream untouched. A length prefix beyond
// MaxFrame returns a *FrameSizeError without attempting the allocation.
func ReadMessage(r io.Reader, msg interface{}) error {
	var size [4]byte
	if _, err := io.ReadFull(r, size[:]); err != nil {
		return err // io.EOF signals a cleanly closed connection
	}
	return ReadMessageBody(r, size, msg)
}

// ReadMessageBody completes ReadMessage after the caller has consumed the
// 4-byte length prefix itself — the netpeer server sniffs the first four
// bytes of a connection to dispatch between the sequential and multiplexed
// protocols (see mux.go) and hands the prefix back here.
func ReadMessageBody(r io.Reader, prefix [4]byte, msg interface{}) error {
	n := binary.BigEndian.Uint32(prefix[:])
	if n > MaxFrame {
		return &FrameSizeError{Size: n}
	}
	bp := framePool.Get().(*[]byte)
	defer putFrameBuf(bp)
	body, err := readFrameBody(r, int(n), (*bp)[:0])
	*bp = body[:0]
	if err != nil {
		return fmt.Errorf("wire: read body: %w", err)
	}
	if err := poolFor(msg).decode(body, msg); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// readMessageFresh is the pre-pool reference implementation, kept for
// byte-identity tests and the before/after benchmarks.
func readMessageFresh(r io.Reader, msg interface{}) error {
	var size [4]byte
	if _, err := io.ReadFull(r, size[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(size[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("wire: read body: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(msg); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}
