// Zero-allocation decode fast path for flat payload structs.
//
// encoding/gob's Decoder copies every message into a freshly allocated
// buffer (saferio.ReadData), so even a fully warm decoder costs one heap
// allocation per message. For the highest-frequency payloads — the per-hop
// query states, which are tiny flat structs like topk's (m, τ) — that
// allocation is the whole remaining cost. This file decodes the gob value
// message for such structs directly from the caller's byte slice, touching
// no heap at all.
//
// The fast path is deliberately narrow: a struct whose exported fields are
// all bool, int/int64, uint/uint64 or float64, decoded from a stream whose
// descriptor prefix already matched (so the field order is the static struct
// order). Anything else — extra descriptors, unknown field deltas, trailing
// bytes — makes the parser report failure and the caller falls back to the
// real gob decoder, which remains the source of truth for the format.
package wire

import (
	"math"
	"math/bits"
	"reflect"
)

// flatKind is the gob wire interpretation of one struct field.
type flatKind uint8

const (
	flatBool flatKind = iota
	flatInt
	flatUint
	flatFloat
)

// flatDecoder decodes the gob value message of one flat struct type.
type flatDecoder struct {
	kinds []flatKind
}

// newFlatDecoder returns a decoder for t, or nil when t (a struct type) has
// any field the fast path does not cover.
func newFlatDecoder(t reflect.Type) *flatDecoder {
	if t.Kind() != reflect.Struct {
		return nil
	}
	kinds := make([]flatKind, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			return nil // gob skips unexported fields; deltas would shift
		}
		switch f.Type.Kind() {
		case reflect.Bool:
			kinds[i] = flatBool
		case reflect.Int, reflect.Int64:
			kinds[i] = flatInt
		case reflect.Uint, reflect.Uint64:
			kinds[i] = flatUint
		case reflect.Float64:
			kinds[i] = flatFloat
		default:
			return nil
		}
	}
	return &flatDecoder{kinds: kinds}
}

// decode parses one gob value message (as produced by a warm encoder, i.e.
// without descriptor messages) into the struct v points to. It reports
// whether the parse succeeded; on false the caller must re-decode through
// gob — v may have been partially written, which matches gob's own
// leave-fields-on-error behaviour.
func (fd *flatDecoder) decode(body []byte, v interface{}) bool {
	msgLen, b, ok := gobReadUint(body)
	if !ok || uint64(len(b)) != msgLen {
		return false
	}
	// Type id (signed, positive for a value message); its value was pinned
	// by the descriptor-prefix match.
	id, b, ok := gobReadUint(b)
	if !ok || id&1 != 0 {
		return false
	}
	sv := reflect.ValueOf(v).Elem()
	field := -1 // gob field deltas are relative, starting before field 0
	for {
		delta, rest, ok := gobReadUint(b)
		if !ok {
			return false
		}
		b = rest
		if delta == 0 {
			return len(b) == 0 // terminator must end the message
		}
		field += int(delta)
		if field < 0 || field >= len(fd.kinds) {
			return false
		}
		u, rest, ok := gobReadUint(b)
		if !ok {
			return false
		}
		b = rest
		f := sv.Field(field)
		switch fd.kinds[field] {
		case flatBool:
			f.SetBool(u != 0)
		case flatInt:
			f.SetInt(gobDecodeInt(u))
		case flatUint:
			f.SetUint(u)
		case flatFloat:
			f.SetFloat(gobDecodeFloat(u))
		}
	}
}

// gobDecodeInt undoes gob's signed-integer folding: the sign lives in the
// low bit, the magnitude (complemented when negative) above it.
func gobDecodeInt(u uint64) int64 {
	if u&1 != 0 {
		return ^int64(u >> 1)
	}
	return int64(u >> 1)
}

// gobDecodeFloat undoes gob's float encoding: the IEEE 754 bits are
// byte-reversed (so small exponents transmit short) and sent as a uint.
func gobDecodeFloat(u uint64) float64 {
	return math.Float64frombits(bits.ReverseBytes64(u))
}
