package overlay

import (
	"strings"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// stubNode / stubNet let the checker's failure branches be triggered
// deliberately.
type stubNode struct {
	id     string
	zone   Region
	links  []Link
	tuples []dataset.Tuple
}

func (s *stubNode) ID() string              { return s.id }
func (s *stubNode) Zone() Region            { return s.zone }
func (s *stubNode) Links() []Link           { return s.links }
func (s *stubNode) Tuples() []dataset.Tuple { return s.tuples }

type stubNet struct {
	nodes []*stubNode
	dims  int
}

func (n *stubNet) Dims() int { return n.dims }
func (n *stubNet) Size() int { return len(n.nodes) }
func (n *stubNet) Nodes() []Node {
	out := make([]Node, len(n.nodes))
	for i, s := range n.nodes {
		out[i] = s
	}
	return out
}
func (n *stubNet) Locate(p geom.Point) Node {
	for _, s := range n.nodes {
		if s.zone.Contains(p) {
			return s
		}
	}
	return n.nodes[0]
}
func (n *stubNet) Insert(t dataset.Tuple) {}

func twoPeerNet() *stubNet {
	left := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{0.5, 1}}
	right := geom.Rect{Lo: geom.Point{0.5, 0}, Hi: geom.Point{1, 1}}
	a := &stubNode{id: "a", zone: FromRect(left)}
	b := &stubNode{id: "b", zone: FromRect(right)}
	a.links = []Link{{To: b, Region: FromRect(right)}}
	b.links = []Link{{To: a, Region: FromRect(left)}}
	return &stubNet{nodes: []*stubNode{a, b}, dims: 2}
}

func TestCheckInvariantsPasses(t *testing.T) {
	if err := CheckInvariants(twoPeerNet(), 200, 1); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
}

func expectError(t *testing.T, net Network, substr string) {
	t.Helper()
	err := CheckInvariants(net, 200, 1)
	if err == nil {
		t.Fatalf("expected error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func TestCheckDetectsZoneGap(t *testing.T) {
	net := twoPeerNet()
	net.nodes[1].zone = FromRect(geom.Rect{Lo: geom.Point{0.6, 0}, Hi: geom.Point{1, 1}})
	expectError(t, net, "no peer's zone")
}

func TestCheckDetectsZoneOverlap(t *testing.T) {
	net := twoPeerNet()
	net.nodes[1].zone = FromRect(geom.Rect{Lo: geom.Point{0.4, 0}, Hi: geom.Point{1, 1}})
	expectError(t, net, "zones of both")
}

func TestCheckDetectsMisplacedTuple(t *testing.T) {
	net := twoPeerNet()
	net.nodes[0].tuples = []dataset.Tuple{{ID: 1, Vec: geom.Point{0.9, 0.5}}}
	expectError(t, net, "stored at")
}

func TestCheckDetectsBadLinkPartition(t *testing.T) {
	net := twoPeerNet()
	// a's link region now overlaps a's own zone: double coverage.
	net.nodes[0].links[0].Region = FromRect(geom.Rect{Lo: geom.Point{0.25, 0}, Hi: geom.Point{1, 1}})
	expectError(t, net, "covered")
}

func TestCheckDetectsDisjointLinkRegion(t *testing.T) {
	net := twoPeerNet()
	// Swap regions so each link's region is disjoint from its target's zone,
	// while per-peer coverage still holds.
	a, b := net.nodes[0], net.nodes[1]
	a.links[0].To = a
	_ = b
	expectError(t, net, "disjoint from neighbour")
}

func TestCheckDetectsSizeMismatch(t *testing.T) {
	net := twoPeerNet()
	net.dims = 2
	bad := &badSizeNet{net}
	expectError(t, bad, "Size()")
}

type badSizeNet struct{ *stubNet }

func (b *badSizeNet) Size() int { return 99 }

func TestLoadInserts(t *testing.T) {
	net := twoPeerNet()
	count := 0
	counting := &countingNet{stubNet: net, count: &count}
	Load(counting, dataset.Uniform(10, 2, 1))
	if count != 10 {
		t.Fatalf("Load inserted %d, want 10", count)
	}
}

type countingNet struct {
	*stubNet
	count *int
}

func (c *countingNet) Insert(t dataset.Tuple) { *c.count++ }
