package overlay

import (
	"fmt"
	"math"
	"math/rand"

	"ripple/internal/geom"
)

// CheckInvariants verifies the structural properties RIPPLE's correctness and
// exactly-once guarantee rest on, by Monte-Carlo sampling of the domain. It
// is used by overlay tests (including churn property tests) and returns a
// descriptive error on the first violation found.
//
// Checked properties:
//  1. peer zones partition the domain: every sampled point belongs to the
//     zone of exactly one peer, and Locate agrees;
//  2. every stored tuple lies in its host peer's zone;
//  3. for every peer, the link regions plus the peer's own zone partition the
//     domain: every sampled point is covered exactly once.
func CheckInvariants(n Network, samples int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	d := n.Dims()
	nodes := n.Nodes()
	if len(nodes) != n.Size() {
		return fmt.Errorf("Nodes() returned %d peers, Size() = %d", len(nodes), n.Size())
	}

	randPoint := func() geom.Point {
		p := make(geom.Point, d)
		for i := range p {
			p[i] = rng.Float64()
		}
		return p
	}

	// 1. Zones partition the domain.
	for s := 0; s < samples; s++ {
		p := randPoint()
		owner, found := "", false
		for _, w := range nodes {
			if w.Zone().Contains(p) {
				if found {
					return fmt.Errorf("point %v in zones of both %q and %q", p, owner, w.ID())
				}
				owner, found = w.ID(), true
			}
		}
		if !found {
			return fmt.Errorf("point %v in no peer's zone", p)
		}
		if got := n.Locate(p); got.ID() != owner {
			return fmt.Errorf("Locate(%v) = %s, zone owner is %s", p, got.ID(), owner)
		}
	}

	// 2. Tuples live inside their host's zone; zone volumes sum to 1.
	totalVol := 0.0
	for _, w := range nodes {
		totalVol += w.Zone().Volume()
		for _, t := range w.Tuples() {
			if !w.Zone().Contains(t.Vec) {
				return fmt.Errorf("tuple %v stored at %s whose zone is %v", t, w.ID(), w.Zone())
			}
		}
	}
	if math.Abs(totalVol-1) > 1e-6 {
		return fmt.Errorf("zone volumes sum to %v, want 1", totalVol)
	}

	// 3. Per-peer link regions + own zone partition the domain. Checking all
	// peers is quadratic in network size; sample peers for large networks.
	peerSample := nodes
	if len(peerSample) > 64 {
		idx := rng.Perm(len(nodes))[:64]
		peerSample = make([]Node, len(idx))
		for i, j := range idx {
			peerSample[i] = nodes[j]
		}
	}
	for _, w := range peerSample {
		links := w.Links()
		for s := 0; s < samples; s++ {
			p := randPoint()
			count := 0
			if w.Zone().Contains(p) {
				count++
			}
			for _, l := range links {
				if l.Region.Contains(p) {
					count++
				}
			}
			if count != 1 {
				return fmt.Errorf("peer %s: point %v covered %d times by zone+link regions, want exactly 1", w.ID(), p, count)
			}
		}
		// Each link's region must overlap the neighbour's zone: the neighbour
		// is responsible for at least part of what is delegated to it. (The
		// paper's stronger requirement — region covers the zone — holds for
		// MIDAS and Chord; CAN's exact box partition delegates a neighbour
		// only the portion of its zone reachable through the shared face,
		// with greedy monotone forwarding covering the rest; see DESIGN.md.)
		for i, l := range links {
			if l.Region.Intersect(l.To.Zone()).IsEmpty() {
				return fmt.Errorf("peer %s link %d: region %v disjoint from neighbour %s zone %v",
					w.ID(), i, l.Region, l.To.ID(), l.To.Zone())
			}
		}
	}
	return nil
}

// CheckReplication verifies the invariants the recovery protocol rests on for
// a replica placement over n:
//  1. the factor is at least 1 and every peer of n has a placement entry;
//  2. each primary has min(factor−1, size−1) replicas, all distinct peers of
//     the network and none of them the primary itself;
//  3. the placement is deterministic: rebuilding it from the same network
//     yields the identical assignment;
//  4. ReplicaSet is consistent with the per-primary placement: for every
//     peer's zone, ReplicaSet(zone) contains exactly that peer's replicas
//     plus those of any other peer whose zone intersects it.
func CheckReplication(n Network, m *ReplicaMap) error {
	if m.Factor() < 1 {
		return fmt.Errorf("replication factor %d < 1", m.Factor())
	}
	nodes := n.Nodes()
	byID := make(map[string]bool, len(nodes))
	for _, w := range nodes {
		byID[w.ID()] = true
	}
	want := m.Factor() - 1
	if want > len(nodes)-1 {
		want = len(nodes) - 1
	}
	for _, w := range nodes {
		reps := m.Replicas(w.ID())
		if len(reps) != want {
			return fmt.Errorf("primary %s has %d replicas, want %d", w.ID(), len(reps), want)
		}
		seen := map[string]bool{w.ID(): true}
		for _, rep := range reps {
			if !byID[rep.ID()] {
				return fmt.Errorf("primary %s replicated on %s, not a peer of the network", w.ID(), rep.ID())
			}
			if seen[rep.ID()] {
				return fmt.Errorf("primary %s replica set repeats or includes itself: %s", w.ID(), rep.ID())
			}
			seen[rep.ID()] = true
		}
	}
	// 3. Determinism: an independent rebuild must agree peer for peer.
	fresh := BuildReplicas(n, m.Factor())
	for _, w := range nodes {
		a, b := m.Replicas(w.ID()), fresh.Replicas(w.ID())
		if len(a) != len(b) {
			return fmt.Errorf("primary %s: rebuild yields %d replicas, placement has %d", w.ID(), len(b), len(a))
		}
		for i := range a {
			if a[i].ID() != b[i].ID() {
				return fmt.Errorf("primary %s replica %d: placement %s, rebuild %s", w.ID(), i, a[i].ID(), b[i].ID())
			}
		}
	}
	// 4. ReplicaSet over each peer's own zone must include exactly the
	// replicas of every primary whose zone intersects it.
	for _, w := range nodes {
		got := make(map[string]bool)
		for _, rep := range m.ReplicaSet(w.Zone()) {
			if got[rep.ID()] {
				return fmt.Errorf("ReplicaSet(%s zone) repeats %s", w.ID(), rep.ID())
			}
			got[rep.ID()] = true
		}
		expect := make(map[string]bool)
		for _, u := range nodes {
			if u.Zone().Intersect(w.Zone()).IsEmpty() {
				continue
			}
			for _, rep := range m.Replicas(u.ID()) {
				expect[rep.ID()] = true
			}
		}
		if len(got) != len(expect) {
			return fmt.Errorf("ReplicaSet(%s zone) has %d peers, want %d", w.ID(), len(got), len(expect))
		}
		for id := range expect {
			if !got[id] {
				return fmt.Errorf("ReplicaSet(%s zone) missing replica %s", w.ID(), id)
			}
		}
	}
	return nil
}
