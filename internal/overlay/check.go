package overlay

import (
	"fmt"
	"math"
	"math/rand"

	"ripple/internal/geom"
)

// CheckInvariants verifies the structural properties RIPPLE's correctness and
// exactly-once guarantee rest on, by Monte-Carlo sampling of the domain. It
// is used by overlay tests (including churn property tests) and returns a
// descriptive error on the first violation found.
//
// Checked properties:
//  1. peer zones partition the domain: every sampled point belongs to the
//     zone of exactly one peer, and Locate agrees;
//  2. every stored tuple lies in its host peer's zone;
//  3. for every peer, the link regions plus the peer's own zone partition the
//     domain: every sampled point is covered exactly once.
func CheckInvariants(n Network, samples int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	d := n.Dims()
	nodes := n.Nodes()
	if len(nodes) != n.Size() {
		return fmt.Errorf("Nodes() returned %d peers, Size() = %d", len(nodes), n.Size())
	}

	randPoint := func() geom.Point {
		p := make(geom.Point, d)
		for i := range p {
			p[i] = rng.Float64()
		}
		return p
	}

	// 1. Zones partition the domain.
	for s := 0; s < samples; s++ {
		p := randPoint()
		owner, found := "", false
		for _, w := range nodes {
			if w.Zone().Contains(p) {
				if found {
					return fmt.Errorf("point %v in zones of both %q and %q", p, owner, w.ID())
				}
				owner, found = w.ID(), true
			}
		}
		if !found {
			return fmt.Errorf("point %v in no peer's zone", p)
		}
		if got := n.Locate(p); got.ID() != owner {
			return fmt.Errorf("Locate(%v) = %s, zone owner is %s", p, got.ID(), owner)
		}
	}

	// 2. Tuples live inside their host's zone; zone volumes sum to 1.
	totalVol := 0.0
	for _, w := range nodes {
		totalVol += w.Zone().Volume()
		for _, t := range w.Tuples() {
			if !w.Zone().Contains(t.Vec) {
				return fmt.Errorf("tuple %v stored at %s whose zone is %v", t, w.ID(), w.Zone())
			}
		}
	}
	if math.Abs(totalVol-1) > 1e-6 {
		return fmt.Errorf("zone volumes sum to %v, want 1", totalVol)
	}

	// 3. Per-peer link regions + own zone partition the domain. Checking all
	// peers is quadratic in network size; sample peers for large networks.
	peerSample := nodes
	if len(peerSample) > 64 {
		idx := rng.Perm(len(nodes))[:64]
		peerSample = make([]Node, len(idx))
		for i, j := range idx {
			peerSample[i] = nodes[j]
		}
	}
	for _, w := range peerSample {
		links := w.Links()
		for s := 0; s < samples; s++ {
			p := randPoint()
			count := 0
			if w.Zone().Contains(p) {
				count++
			}
			for _, l := range links {
				if l.Region.Contains(p) {
					count++
				}
			}
			if count != 1 {
				return fmt.Errorf("peer %s: point %v covered %d times by zone+link regions, want exactly 1", w.ID(), p, count)
			}
		}
		// Each link's region must overlap the neighbour's zone: the neighbour
		// is responsible for at least part of what is delegated to it. (The
		// paper's stronger requirement — region covers the zone — holds for
		// MIDAS and Chord; CAN's exact box partition delegates a neighbour
		// only the portion of its zone reachable through the shared face,
		// with greedy monotone forwarding covering the rest; see DESIGN.md.)
		for i, l := range links {
			if l.Region.Intersect(l.To.Zone()).IsEmpty() {
				return fmt.Errorf("peer %s link %d: region %v disjoint from neighbour %s zone %v",
					w.ID(), i, l.Region, l.To.ID(), l.To.Zone())
			}
		}
	}
	return nil
}
