package overlay

import (
	"sync"

	"ripple/internal/dataset"
)

// Restricted wraps a node so that local processing sees only the tuples
// inside scope: the processor-facing lens behind scoped ("hot region")
// queries. Like ScanOnly it delegates the Node interface but hides the
// storage.Provider and ScoreIndexer implementations, so storage.Of falls
// back to a flat scan over the filtered share — every runtime computes a
// scoped local answer from exactly the same tuple set regardless of the
// peer's storage engine. An empty scope returns w unchanged, keeping the
// unscoped path byte-for-byte identical to before.
//
// Only processor-facing call sites may wrap (the same rule as ScanOnly):
// routing, fault injection and trace identity key on the original node.
func Restricted(w Node, scope Region) Node {
	if scope.IsEmpty() {
		return w
	}
	return &restrictedNode{inner: w, scope: scope}
}

type restrictedNode struct {
	inner Node
	scope Region

	once   sync.Once
	inside []dataset.Tuple
}

func (n *restrictedNode) ID() string    { return n.inner.ID() }
func (n *restrictedNode) Zone() Region  { return n.inner.Zone() }
func (n *restrictedNode) Links() []Link { return n.inner.Links() }

func (n *restrictedNode) Tuples() []dataset.Tuple {
	n.once.Do(func() {
		all := n.inner.Tuples()
		for _, t := range all {
			if n.scope.Contains(t.Vec) {
				n.inside = append(n.inside, t)
			}
		}
	})
	return n.inside
}
