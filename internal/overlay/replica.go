// Zone replication. RIPPLE's overlays are replication-free by construction:
// each zone's tuples live on exactly one peer, so a dead peer is a hole in
// the answer (Result.FailedRegions). The ReplicaMap adds the redundancy layer
// the recovery protocol (DESIGN.md §13) fails over to: each zone's tuple set
// is mirrored onto R−1 deterministic replica peers, chosen successor-style on
// the canonical ID ring, so every runtime — and every peer of a distributed
// deployment — derives the identical placement with no coordination.
//
// Replication is a lookup structure over an existing overlay, not a new
// overlay: zones, links and routing are untouched. A replica serves a lost
// peer's zone by *acting as* that peer (ActingNode), executing the primary's
// exact links, zone and tuples, which preserves the restriction-partition
// exactly-once property — the recovered subtree is the very subtree the
// primary would have executed.
package overlay

import (
	"sort"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/storage"
)

// ReplicaMap is the deterministic placement of zone replicas over a network
// snapshot. It is immutable after construction; rebuild it after churn.
type ReplicaMap struct {
	factor   int
	ring     []Node            // all peers sorted by ID (the placement ring)
	pos      map[string]int    // peer ID -> ring position
	replicas map[string][]Node // primary ID -> its R−1 replicas, ring order
}

// BuildReplicas computes the replica placement for every peer of n with the
// given replication factor (factor ≤ 1 means no replication). The replicas of
// a primary are its factor−1 distinct successors on the ring of peers sorted
// by ID — deterministic, overlay-generic, and balanced: every peer is a
// replica for exactly factor−1 primaries (capped by network size).
func BuildReplicas(n Network, factor int) *ReplicaMap {
	if factor < 1 {
		factor = 1
	}
	ring := append([]Node(nil), n.Nodes()...)
	sort.Slice(ring, func(i, j int) bool { return ring[i].ID() < ring[j].ID() })
	m := &ReplicaMap{
		factor:   factor,
		ring:     ring,
		pos:      make(map[string]int, len(ring)),
		replicas: make(map[string][]Node, len(ring)),
	}
	for i, w := range ring {
		m.pos[w.ID()] = i
	}
	per := factor - 1
	if per > len(ring)-1 {
		per = len(ring) - 1
	}
	for i, w := range ring {
		if per <= 0 {
			m.replicas[w.ID()] = nil
			continue
		}
		reps := make([]Node, 0, per)
		for j := 1; j <= per; j++ {
			reps = append(reps, ring[(i+j)%len(ring)])
		}
		m.replicas[w.ID()] = reps
	}
	return m
}

// Factor returns the replication factor; a nil map reports 1 (no replicas).
func (m *ReplicaMap) Factor() int {
	if m == nil {
		return 1
	}
	return m.factor
}

// Replicas returns the replica peers of the given primary in failover order
// (ring successors first). Nil for a nil map or an unknown primary.
func (m *ReplicaMap) Replicas(primaryID string) []Node {
	if m == nil {
		return nil
	}
	return m.replicas[primaryID]
}

// ReplicaSet returns every peer holding a replica of some zone intersecting
// the region — the set of peers that can serve any part of the region should
// its primaries die. The result is deduplicated and in canonical ring order.
func (m *ReplicaMap) ReplicaSet(region Region) []Node {
	if m == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []Node
	for _, w := range m.ring { // ring order makes the output canonical
		if !w.Zone().Intersect(region).IsEmpty() {
			for _, rep := range m.replicas[w.ID()] {
				if !seen[rep.ID()] {
					seen[rep.ID()] = true
					out = append(out, rep)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return m.pos[out[i].ID()] < m.pos[out[j].ID()] })
	return out
}

// ActingNode is a replica peer executing a query step on behalf of a dead
// primary. Identity, zone, links and tuples all delegate to the primary — the
// engine, answer dedup and trace spans behave exactly as if the primary had
// processed the call — while Via records the physical peer doing the work
// (the fault injector keys on the physical sender; see PhysicalID).
type ActingNode struct {
	Primary Node // the dead peer whose zone this step serves
	Via     Node // the live replica actually executing
}

// ID returns the primary's ID: the acting step is the primary's step.
func (a ActingNode) ID() string { return a.Primary.ID() }

// Zone returns the primary's zone.
func (a ActingNode) Zone() Region { return a.Primary.Zone() }

// Links returns the primary's links, so the recovered subtree delegates the
// same restriction partition the primary would have.
func (a ActingNode) Links() []Link { return a.Primary.Links() }

// Tuples returns the primary's tuples (the replica mirrors them).
func (a ActingNode) Tuples() []dataset.Tuple { return a.Primary.Tuples() }

// ScoreIndex builds a per-step score index over the primary's tuples.
// ActingNode values are created per recovery step, so no caching is needed;
// delegating to the primary would violate ScoreIndexer's one-query contract
// when the primary outlives queries (simulation nodes do). The index is a
// view: it aliases the primary's tuple slice without copying it.
func (a ActingNode) ScoreIndex(key func(geom.Point) float64) *Index {
	return IndexView(a.Primary.Tuples(), key)
}

// Store returns the storage engine serving the primary's zone, so a recovery
// step processes against the mirrored share with the same engine (and the
// same pruning) the primary would have used.
func (a ActingNode) Store() storage.Store { return storage.Of(a.Primary) }

// PhysicalID returns the ID of the peer physically executing w: the replica
// for an acting step, w itself otherwise. Fault decisions key on physical
// endpoints, matching a real deployment where the replica's network identity
// — not the dead primary's — is what the next link failure happens to.
func PhysicalID(w Node) string {
	if a, ok := w.(ActingNode); ok {
		return a.Via.ID()
	}
	return w.ID()
}

// CanonicalRegions deduplicates and canonically sorts a failed-region set, so
// results are comparable across runtimes and runs regardless of the order in
// which losses were recorded (concurrent runtimes record them in scheduling
// order). Sorting is by the region's rendered form — a pure function of its
// boxes — and exact duplicates (same rendering) collapse to one entry.
func CanonicalRegions(rs []Region) []Region {
	if len(rs) == 0 {
		return rs
	}
	keys := make([]string, len(rs))
	for i, r := range rs {
		keys[i] = r.String()
	}
	idx := make([]int, len(rs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]Region, 0, len(rs))
	last := ""
	for n, i := range idx {
		if n > 0 && keys[i] == last {
			continue
		}
		last = keys[i]
		out = append(out, rs[i])
	}
	return out
}
