// Package overlay defines the abstraction RIPPLE requires from a structured
// peer-to-peer network (§3.1 of the paper): peers expose their zone, their
// local tuples, and a list of links, each link annotated with the *region* of
// the domain it is responsible for from this peer's viewpoint. The regions of
// a peer's links must partition the domain minus the peer's own zone — this
// is the property that makes RIPPLE's restriction areas deliver a query to
// every peer exactly once.
//
// Regions are represented as finite unions of axis-parallel half-open boxes,
// which covers all overlays in this repository exactly: MIDAS regions are
// single k-d-tree rectangles, CAN regions are staircase boxes, and Chord
// regions are ring arcs (at most two boxes after unwrapping).
package overlay

import (
	"strings"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// Region is a finite union of pairwise-disjoint half-open boxes.
type Region struct {
	Boxes []geom.Rect
}

// FromRect wraps a single box as a region.
func FromRect(r geom.Rect) Region { return Region{Boxes: []geom.Rect{r}} }

// Whole returns the region covering the entire d-dimensional unit domain.
func Whole(d int) Region { return FromRect(geom.UnitCube(d)) }

// IsEmpty reports whether the region contains no point.
func (r Region) IsEmpty() bool {
	for _, b := range r.Boxes {
		if !b.IsEmpty() {
			return false
		}
	}
	return true
}

// Contains reports whether p lies in the region.
func (r Region) Contains(p geom.Point) bool {
	for _, b := range r.Boxes {
		if b.Contains(p) {
			return true
		}
	}
	return false
}

// Intersect returns the intersection of two regions, dropping empty boxes.
func (r Region) Intersect(s Region) Region {
	var out []geom.Rect
	for _, a := range r.Boxes {
		for _, b := range s.Boxes {
			if c := a.Intersect(b); !c.IsEmpty() {
				out = append(out, c)
			}
		}
	}
	return Region{Boxes: out}
}

// IntersectRect intersects the region with a single box.
func (r Region) IntersectRect(b geom.Rect) Region {
	return r.Intersect(FromRect(b))
}

// Volume returns the total volume of the region (boxes assumed disjoint).
func (r Region) Volume() float64 {
	v := 0.0
	for _, b := range r.Boxes {
		v += b.Volume()
	}
	return v
}

// String renders the region's boxes.
func (r Region) String() string {
	parts := make([]string, len(r.Boxes))
	for i, b := range r.Boxes {
		parts[i] = b.String()
	}
	return "{" + strings.Join(parts, " u ") + "}"
}

// Link is a neighbour pointer annotated with the region of the domain this
// peer delegates to that neighbour.
type Link struct {
	To     Node
	Region Region
}

// Node is a peer as seen by the RIPPLE engine.
type Node interface {
	// ID identifies the peer uniquely within its network.
	ID() string
	// Zone is the part of the domain whose tuples this peer stores.
	Zone() Region
	// Links returns the peer's neighbours with their regions. The regions
	// must partition the domain minus the peer's zone.
	Links() []Link
	// Tuples returns the peer's locally stored tuples.
	Tuples() []dataset.Tuple
}

// Network is a structured overlay hosting tuples.
type Network interface {
	// Dims is the dimensionality of the indexed domain.
	Dims() int
	// Size is the current number of peers.
	Size() int
	// Nodes enumerates all peers (simulation-only global view, used by the
	// harness to pick initiators and by invariant checks).
	Nodes() []Node
	// Locate returns the peer whose zone contains p.
	Locate(p geom.Point) Node
	// Insert stores a tuple at the peer responsible for its key.
	Insert(t dataset.Tuple)
}

// Load inserts every tuple of ts into the network.
func Load(n Network, ts []dataset.Tuple) {
	for _, t := range ts {
		n.Insert(t)
	}
}

// Deleter is implemented by networks that can remove a stored tuple again.
// The wire-level mutation path (DESIGN.md §15) type-asserts on it; overlays
// that do not implement it simply reject delete operations.
type Deleter interface {
	// Delete removes the tuple with t's ID from the peer owning t.Vec,
	// reporting whether a tuple was actually removed.
	Delete(t dataset.Tuple) bool
}
