package overlay

import (
	"ripple/internal/dataset"
	"ripple/internal/storage"
)

// StoreOf returns the storage engine serving w's tuples: the node's own store
// when it has one, a flat scan view otherwise. Processors go through this (or
// storage.Of directly) so a node type opts into indexed local processing just
// by implementing storage.Provider.
func StoreOf(w Node) storage.Store { return storage.Of(w) }

// ScanOnly wraps a node so that local processing sees only the flat-slice
// baseline: the wrapper hides the node's storage.Provider and ScoreIndexer
// implementations while delegating the Node interface itself. The engine uses
// it when core.Options.Storage selects the scan reference engine, giving
// every indexed result a same-process baseline to compare against.
//
// Only processor-facing call sites may wrap: routing, fault injection and
// trace identity key on the original node (PhysicalID type-switches on
// ActingNode, which the wrapper deliberately does not forward).
func ScanOnly(w Node) Node {
	if _, ok := w.(scanOnlyNode); ok {
		return w
	}
	return scanOnlyNode{w}
}

type scanOnlyNode struct{ inner Node }

func (s scanOnlyNode) ID() string              { return s.inner.ID() }
func (s scanOnlyNode) Zone() Region            { return s.inner.Zone() }
func (s scanOnlyNode) Links() []Link           { return s.inner.Links() }
func (s scanOnlyNode) Tuples() []dataset.Tuple { return s.inner.Tuples() }
