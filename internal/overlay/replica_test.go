package overlay

import (
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// stripeNet builds an n-peer network with 1-D striped zones, peer IDs taken
// from ids in the given (deliberately unsorted) order, so placement tests
// exercise the ring sort.
func stripeNet(ids []string) *stubNet {
	n := len(ids)
	nodes := make([]*stubNode, n)
	for i, id := range ids {
		lo, hi := float64(i)/float64(n), float64(i+1)/float64(n)
		nodes[i] = &stubNode{id: id, zone: FromRect(geom.Rect{Lo: geom.Point{lo, 0}, Hi: geom.Point{hi, 1}})}
	}
	return &stubNet{nodes: nodes, dims: 2}
}

func TestBuildReplicasPlacement(t *testing.T) {
	net := stripeNet([]string{"c", "a", "e", "b", "d"})
	m := BuildReplicas(net, 3)

	if m.Factor() != 3 {
		t.Fatalf("factor = %d, want 3", m.Factor())
	}
	// Ring is by sorted ID: a b c d e. Each primary's replicas are its two
	// ring successors.
	want := map[string][]string{
		"a": {"b", "c"}, "b": {"c", "d"}, "c": {"d", "e"}, "d": {"e", "a"}, "e": {"a", "b"},
	}
	for p, reps := range want {
		got := m.Replicas(p)
		if len(got) != len(reps) {
			t.Fatalf("Replicas(%s) = %d peers, want %d", p, len(got), len(reps))
		}
		for i := range reps {
			if got[i].ID() != reps[i] {
				t.Fatalf("Replicas(%s)[%d] = %s, want %s", p, i, got[i].ID(), reps[i])
			}
		}
	}
	// Balance: every peer holds exactly factor-1 shares.
	held := make(map[string]int)
	for p := range want {
		for _, rep := range m.Replicas(p) {
			held[rep.ID()]++
		}
	}
	for id, c := range held {
		if c != 2 {
			t.Fatalf("peer %s holds %d shares, want 2", id, c)
		}
	}
	if err := CheckReplication(net, m); err != nil {
		t.Fatalf("CheckReplication: %v", err)
	}
}

func TestBuildReplicasEdgeFactors(t *testing.T) {
	net := stripeNet([]string{"a", "b", "c"})
	for _, factor := range []int{0, 1} {
		m := BuildReplicas(net, factor)
		if m.Factor() != 1 && factor != 0 {
			t.Fatalf("factor %d: Factor() = %d", factor, m.Factor())
		}
		if reps := m.Replicas("a"); len(reps) != 0 {
			t.Fatalf("factor %d: Replicas(a) = %d peers, want 0", factor, len(reps))
		}
		if err := CheckReplication(net, m); err != nil {
			t.Fatalf("factor %d: CheckReplication: %v", factor, err)
		}
	}
	// Factor beyond the network size caps at size-1 replicas.
	m := BuildReplicas(net, 10)
	if reps := m.Replicas("b"); len(reps) != 2 {
		t.Fatalf("oversized factor: Replicas(b) = %d peers, want 2", len(reps))
	}
	if err := CheckReplication(net, m); err != nil {
		t.Fatalf("oversized factor: CheckReplication: %v", err)
	}
	// A nil map is the no-replication placement everywhere.
	var nilMap *ReplicaMap
	if nilMap.Factor() != 1 || nilMap.Replicas("a") != nil || nilMap.ReplicaSet(FromRect(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}})) != nil {
		t.Fatal("nil ReplicaMap must behave as factor 1")
	}
}

func TestCheckReplicationRejectsTampered(t *testing.T) {
	net := stripeNet([]string{"a", "b", "c", "d"})
	m := BuildReplicas(net, 2)
	// Swap one primary's replica for itself: distinctness must fail.
	m.replicas["a"] = []Node{net.nodes[0]}
	if err := CheckReplication(net, m); err == nil {
		t.Fatal("CheckReplication accepted a self-replica")
	}
}

func TestReplicaSetCoversIntersectingZones(t *testing.T) {
	net := stripeNet([]string{"a", "b", "c", "d"})
	m := BuildReplicas(net, 2)
	// A region covering only the first two stripes: replicas of a and b.
	region := FromRect(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{0.45, 1}})
	got := m.ReplicaSet(region)
	if len(got) != 2 || got[0].ID() != "b" || got[1].ID() != "c" {
		ids := make([]string, len(got))
		for i, w := range got {
			ids[i] = w.ID()
		}
		t.Fatalf("ReplicaSet = %v, want [b c]", ids)
	}
}

func TestActingNodeDelegatesToPrimary(t *testing.T) {
	net := stripeNet([]string{"a", "b"})
	primary, via := net.nodes[0], net.nodes[1]
	primary.tuples = []dataset.Tuple{{ID: 1, Vec: geom.Point{0.1, 0.5}}}
	primary.links = []Link{{To: via, Region: via.zone}}

	act := ActingNode{Primary: primary, Via: via}
	if act.ID() != "a" || act.Zone().String() != primary.zone.String() {
		t.Fatal("ActingNode must present the primary's identity and zone")
	}
	if len(act.Links()) != 1 || len(act.Tuples()) != 1 {
		t.Fatal("ActingNode must expose the primary's links and tuples")
	}
	if PhysicalID(act) != "b" {
		t.Fatalf("PhysicalID(acting) = %s, want b (the replica)", PhysicalID(act))
	}
	if PhysicalID(primary) != "a" {
		t.Fatalf("PhysicalID(plain) = %s, want a", PhysicalID(primary))
	}
	ix := act.ScoreIndex(func(p geom.Point) float64 { return p[0] })
	if ix == nil {
		t.Fatal("ActingNode.ScoreIndex returned nil")
	}
}

func TestCanonicalRegionsSortsAndDedups(t *testing.T) {
	r1 := FromRect(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{0.5, 1}})
	r2 := FromRect(geom.Rect{Lo: geom.Point{0.5, 0}, Hi: geom.Point{1, 1}})
	in := []Region{r2, r1, r2, r1, r2}
	got := CanonicalRegions(in)
	if len(got) != 2 {
		t.Fatalf("CanonicalRegions kept %d regions, want 2", len(got))
	}
	if got[0].String() > got[1].String() {
		t.Fatal("CanonicalRegions output not sorted")
	}
	// Idempotence and order-independence: any permutation canonicalises the
	// same way.
	again := CanonicalRegions([]Region{r1, r2, r1})
	for i := range got {
		if got[i].String() != again[i].String() {
			t.Fatal("CanonicalRegions is not order-independent")
		}
	}
	if out := CanonicalRegions(nil); len(out) != 0 {
		t.Fatal("CanonicalRegions(nil) must be empty")
	}
}
