package overlay

import (
	"sort"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// Index is a peer-local view of a tuple set ordered by descending score,
// built once per query so that threshold scans (computeLocalAnswer) become
// binary searches instead of O(n) rescans, and top-k prefixes are free. Ties
// are broken by ascending tuple ID, so the order — and everything derived
// from it — is a pure function of the tuple set and the scoring key.
type Index struct {
	tuples []dataset.Tuple // sorted by (key desc, ID asc)
	keys   []float64       // keys[i] is the score of tuples[i]
}

// BuildIndex scores every tuple exactly once with key and returns the sorted
// index. The input slice is copied; the index never aliases caller memory.
func BuildIndex(ts []dataset.Tuple, key func(geom.Point) float64) *Index {
	ix := &Index{
		tuples: append([]dataset.Tuple(nil), ts...),
		keys:   make([]float64, len(ts)),
	}
	for i, t := range ix.tuples {
		ix.keys[i] = key(t.Vec)
	}
	sort.Sort(byKeyDesc{ix})
	return ix
}

// byKeyDesc co-sorts the index's keys and tuples.
type byKeyDesc struct{ ix *Index }

func (s byKeyDesc) Len() int { return len(s.ix.tuples) }
func (s byKeyDesc) Less(i, j int) bool {
	if s.ix.keys[i] != s.ix.keys[j] {
		return s.ix.keys[i] > s.ix.keys[j]
	}
	return s.ix.tuples[i].ID < s.ix.tuples[j].ID
}
func (s byKeyDesc) Swap(i, j int) {
	s.ix.keys[i], s.ix.keys[j] = s.ix.keys[j], s.ix.keys[i]
	s.ix.tuples[i], s.ix.tuples[j] = s.ix.tuples[j], s.ix.tuples[i]
}

// Len returns the number of indexed tuples.
func (ix *Index) Len() int { return len(ix.tuples) }

// TopScores returns the k highest scores in descending order (fewer if the
// index is smaller). The slice aliases the index: callers must not modify or
// retain it past the index's lifetime.
func (ix *Index) TopScores(k int) []float64 {
	if k > len(ix.keys) {
		k = len(ix.keys)
	}
	if k <= 0 {
		return nil
	}
	return ix.keys[:k]
}

// Above returns the tuples scoring at least tau, best first. The slice
// aliases the index: callers that retain or extend the result must copy it.
func (ix *Index) Above(tau float64) []dataset.Tuple {
	n := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] < tau })
	return ix.tuples[:n]
}

// ScoreIndexer is implemented by Node types that can cache a score index for
// the duration of a query. The contract: a single ScoreIndexer instance only
// ever sees one key function (one query), so the cache needs no key identity.
type ScoreIndexer interface {
	// ScoreIndex returns the node's tuples indexed by key, building the
	// index on first call and returning the cached one afterwards.
	ScoreIndex(key func(geom.Point) float64) *Index
}

// IndexOf returns w's score index when the node supports caching one, or nil
// when the caller should fall back to scanning w.Tuples() directly.
func IndexOf(w Node, key func(geom.Point) float64) *Index {
	if s, ok := w.(ScoreIndexer); ok {
		return s.ScoreIndex(key)
	}
	return nil
}
