package overlay

import (
	"sort"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// Index is a peer-local view of a tuple set ordered by descending score,
// built once per query so that threshold scans (computeLocalAnswer) become
// binary searches instead of O(n) rescans, and top-k prefixes are free. Ties
// are broken by ascending tuple ID, so the order — and everything derived
// from it — is a pure function of the tuple set and the scoring key.
//
// The index is a permutation over a base slice, not a second sorted copy of
// the tuples: IndexView sorts only the (key, position) pairs and leaves the
// base slice untouched, which is what lets it serve directly over a storage
// engine's insertion-ordered tuples.
type Index struct {
	base  []dataset.Tuple // unsorted tuples (copied by BuildIndex, aliased by IndexView)
	order []int32         // base positions sorted by (key desc, ID asc)
	keys  []float64       // keys[i] is the score of base[order[i]]
}

// BuildIndex scores every tuple exactly once with key and returns the sorted
// index. The input slice is copied; the index never aliases caller memory.
// Prefer IndexView when the tuple slice is owned by a store and immutable for
// the query's duration.
func BuildIndex(ts []dataset.Tuple, key func(geom.Point) float64) *Index {
	return newIndex(append([]dataset.Tuple(nil), ts...), key)
}

// IndexView indexes ts without copying it: the index holds only the sorted
// permutation. ts must not be mutated or reordered while the view is in use.
func IndexView(ts []dataset.Tuple, key func(geom.Point) float64) *Index {
	return newIndex(ts, key)
}

func newIndex(base []dataset.Tuple, key func(geom.Point) float64) *Index {
	n := len(base)
	ix := &Index{base: base, order: make([]int32, n), keys: make([]float64, n)}
	raw := make([]float64, n)
	for i, t := range base {
		raw[i] = key(t.Vec)
		ix.order[i] = int32(i)
	}
	sort.Slice(ix.order, func(a, b int) bool {
		i, j := ix.order[a], ix.order[b]
		if raw[i] != raw[j] {
			return raw[i] > raw[j]
		}
		return base[i].ID < base[j].ID
	})
	for i, p := range ix.order {
		ix.keys[i] = raw[p]
	}
	return ix
}

// Len returns the number of indexed tuples.
func (ix *Index) Len() int { return len(ix.base) }

// TopScores returns the k highest scores in descending order (fewer if the
// index is smaller). The slice aliases the index: callers must not modify or
// retain it past the index's lifetime.
func (ix *Index) TopScores(k int) []float64 {
	if k > len(ix.keys) {
		k = len(ix.keys)
	}
	if k <= 0 {
		return nil
	}
	return ix.keys[:k]
}

// Above returns the tuples scoring at least tau, best first (key descending,
// ID ascending). The returned slice is freshly allocated.
func (ix *Index) Above(tau float64) []dataset.Tuple {
	n := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] < tau })
	out := make([]dataset.Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = ix.base[ix.order[i]]
	}
	return out
}

// ScoreIndexer is implemented by Node types that can cache a score index for
// the duration of a query. The contract: a single ScoreIndexer instance only
// ever sees one key function (one query), so the cache needs no key identity.
type ScoreIndexer interface {
	// ScoreIndex returns the node's tuples indexed by key, building the
	// index on first call and returning the cached one afterwards.
	ScoreIndex(key func(geom.Point) float64) *Index
}

// IndexOf returns w's score index when the node supports caching one, or nil
// when the caller should fall back to scanning w.Tuples() directly.
func IndexOf(w Node, key func(geom.Point) float64) *Index {
	if s, ok := w.(ScoreIndexer); ok {
		return s.ScoreIndex(key)
	}
	return nil
}
