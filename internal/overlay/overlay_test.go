package overlay

import (
	"testing"

	"ripple/internal/geom"
)

func TestRegionContains(t *testing.T) {
	r := Region{Boxes: []geom.Rect{
		box2(0, 0, 0.5, 0.5),
		box2(0.5, 0.5, 1, 1),
	}}
	if !r.Contains(geom.Point{0.25, 0.25}) || !r.Contains(geom.Point{0.75, 0.75}) {
		t.Fatal("points in member boxes must be contained")
	}
	if r.Contains(geom.Point{0.25, 0.75}) {
		t.Fatal("point outside all boxes reported contained")
	}
}

func box2(a, b, c, d float64) geom.Rect {
	return geom.Rect{Lo: geom.Point{a, b}, Hi: geom.Point{c, d}}
}

func TestRegionIntersect(t *testing.T) {
	a := Region{Boxes: []geom.Rect{box2(0, 0, 0.6, 1)}}
	b := Region{Boxes: []geom.Rect{box2(0.4, 0, 1, 0.5), box2(0.8, 0.5, 1, 1)}}
	got := a.Intersect(b)
	if len(got.Boxes) != 1 {
		t.Fatalf("intersection has %d boxes, want 1 (second is disjoint)", len(got.Boxes))
	}
	if !got.Boxes[0].Equal(box2(0.4, 0, 0.6, 0.5)) {
		t.Fatalf("intersection box = %v", got.Boxes[0])
	}
	if !a.Intersect(Region{}).IsEmpty() {
		t.Fatal("intersection with empty region must be empty")
	}
}

func TestRegionIntersectRectAndVolume(t *testing.T) {
	r := Whole(2)
	half := r.IntersectRect(box2(0, 0, 0.5, 1))
	if v := half.Volume(); v != 0.5 {
		t.Fatalf("half volume = %v", v)
	}
	if Whole(3).Volume() != 1 {
		t.Fatal("whole volume != 1")
	}
}

func TestRegionIsEmpty(t *testing.T) {
	if !(Region{}).IsEmpty() {
		t.Fatal("no boxes must be empty")
	}
	degenerate := Region{Boxes: []geom.Rect{box2(0.5, 0.5, 0.5, 1)}}
	if !degenerate.IsEmpty() {
		t.Fatal("degenerate box must be empty")
	}
	if FromRect(box2(0, 0, 1, 1)).IsEmpty() {
		t.Fatal("unit box must not be empty")
	}
}

func TestRegionString(t *testing.T) {
	s := Whole(1).String()
	if s == "" || s == "{}" {
		t.Fatalf("String = %q", s)
	}
}
