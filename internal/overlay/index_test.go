package overlay

import (
	"math/rand"
	"sort"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

func negFirst(p geom.Point) float64 { return -p[0] }

func TestBuildIndexOrdering(t *testing.T) {
	ts := []dataset.Tuple{
		{ID: 3, Vec: geom.Point{0.5}},
		{ID: 1, Vec: geom.Point{0.2}},
		{ID: 7, Vec: geom.Point{0.2}}, // tie with ID 1 on score
		{ID: 2, Vec: geom.Point{0.9}},
	}
	ix := BuildIndex(ts, negFirst)
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
	wantIDs := []uint64{1, 7, 3, 2} // scores -0.2, -0.2, -0.5, -0.9; tie by ID
	got := ix.Above(-1)
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Fatalf("position %d: ID %d, want %d (order %v)", i, got[i].ID, id, got)
		}
	}
	for i := 1; i < ix.Len(); i++ {
		if ix.keys[i] > ix.keys[i-1] {
			t.Fatalf("keys not descending at %d: %v", i, ix.keys)
		}
	}
}

func TestBuildIndexCopiesInput(t *testing.T) {
	ts := []dataset.Tuple{{ID: 1, Vec: geom.Point{0.1}}, {ID: 2, Vec: geom.Point{0.2}}}
	ix := BuildIndex(ts, negFirst)
	ts[0] = dataset.Tuple{ID: 99, Vec: geom.Point{0.99}}
	for _, u := range ix.Above(-1) {
		if u.ID == 99 {
			t.Fatal("index aliases the caller's slice")
		}
	}
}

func TestTopScoresAndAbove(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ts := make([]dataset.Tuple, 100)
	for i := range ts {
		ts[i] = dataset.Tuple{ID: uint64(i), Vec: geom.Point{rng.Float64()}}
	}
	ix := BuildIndex(ts, negFirst)

	all := append([]float64(nil), ix.keys...)
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	for _, k := range []int{0, 1, 5, 100, 150} {
		got := ix.TopScores(k)
		want := k
		if want > len(ts) {
			want = len(ts)
		}
		if len(got) != want {
			t.Fatalf("TopScores(%d): %d scores, want %d", k, len(got), want)
		}
		for i, s := range got {
			if s != all[i] {
				t.Fatalf("TopScores(%d)[%d] = %v, want %v", k, i, s, all[i])
			}
		}
	}

	for _, tau := range []float64{-2, -0.5, all[0], all[99], 1} {
		got := ix.Above(tau)
		want := 0
		for _, s := range all {
			if s >= tau {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Above(%v): %d tuples, want %d", tau, len(got), want)
		}
		for _, u := range got {
			if negFirst(u.Vec) < tau {
				t.Fatalf("Above(%v) returned score %v", tau, negFirst(u.Vec))
			}
		}
	}
}

// plainNode has no ScoreIndexer; cachingNode caches one index per instance.
type plainNode struct{ ts []dataset.Tuple }

func (n *plainNode) ID() string              { return "plain" }
func (n *plainNode) Zone() Region            { return Whole(1) }
func (n *plainNode) Links() []Link           { return nil }
func (n *plainNode) Tuples() []dataset.Tuple { return n.ts }

type cachingNode struct {
	plainNode
	ix     *Index
	builds int
}

func (n *cachingNode) ScoreIndex(key func(geom.Point) float64) *Index {
	if n.ix == nil {
		n.ix = BuildIndex(n.ts, key)
		n.builds++
	}
	return n.ix
}

func TestIndexOf(t *testing.T) {
	ts := []dataset.Tuple{{ID: 1, Vec: geom.Point{0.3}}}
	if ix := IndexOf(&plainNode{ts: ts}, negFirst); ix != nil {
		t.Fatal("plain node must not report an index")
	}
	n := &cachingNode{plainNode: plainNode{ts: ts}}
	a := IndexOf(n, negFirst)
	b := IndexOf(n, negFirst)
	if a == nil || a != b || n.builds != 1 {
		t.Fatalf("caching node: a=%p b=%p builds=%d", a, b, n.builds)
	}
}
