package benchfmt

import (
	"os"
	"strings"
	"testing"
)

func validFigure() string {
	return `{
		"fig": "Recovery", "title": "t", "x_label": "drop rate",
		"series": ["R=1", "R=2"],
		"metric_a": "top-k recall", "metric_b": "unrecoverable regions/query",
		"rows": [
			{"x": "0.05", "a": [0.8, 1], "b": [150, 0]},
			{"x": "0.25", "a": [0.1, 0.99], "b": [200, 0.5]}
		]
	}`
}

func TestReadFigure(t *testing.T) {
	f, err := ReadFigure(strings.NewReader(validFigure()))
	if err != nil {
		t.Fatal(err)
	}
	if f.Fig != "Recovery" || len(f.Series) != 2 || len(f.Rows) != 2 {
		t.Fatalf("parsed %q: %d series, %d rows", f.Fig, len(f.Series), len(f.Rows))
	}
	if v := CheckRecovery(f); len(v) != 0 {
		t.Fatalf("valid figure flagged: %v", v)
	}
}

func TestReadFigureRejectsMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"flat baseline":  `{"BenchmarkX": {"ns_op": 1, "b_op": 0, "allocs_op": 0, "iters": 1}}`,
		"no rows":        `{"fig": "F", "series": ["a"], "rows": []}`,
		"ragged row":     `{"fig": "F", "series": ["a", "b"], "rows": [{"x": "1", "a": [1], "b": [1, 2]}]}`,
		"unknown fields": `{"fig": "F", "series": ["a"], "rows": [{"x": "1", "a": [1], "b": [1]}], "extra": 1}`,
	} {
		if _, err := ReadFigure(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckRecoveryViolations(t *testing.T) {
	cases := map[string]struct {
		rows string
		want string
	}{
		"recall above one": {
			rows: `[{"x": "0.1", "a": [0.5, 1.2], "b": [10, 0]}]`,
			want: "outside [0,1]",
		},
		"replication hurts recall": {
			rows: `[{"x": "0.1", "a": [0.9, 0.5], "b": [10, 0]}]`,
			want: "recall degrades",
		},
		"replication adds holes": {
			rows: `[{"x": "0.1", "a": [0.5, 0.96], "b": [1, 5]}]`,
			want: "unrecoverable regions grow",
		},
		"max replication too lossy": {
			rows: `[{"x": "0.1", "a": [0.5, 0.9], "b": [10, 0]}]`,
			want: "below 0.95",
		},
		"max replication leaves holes": {
			rows: `[{"x": "0.1", "a": [0.5, 0.96], "b": [10, 2]}]`,
			want: "unrecoverable regions/query",
		},
	}
	for name, tc := range cases {
		in := `{"fig": "Recovery", "series": ["R=1", "R=2"], "rows": ` + tc.rows + `}`
		f, err := ReadFigure(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v := CheckRecovery(f)
		if len(v) == 0 {
			t.Errorf("%s: not flagged", name)
			continue
		}
		found := false
		for _, msg := range v {
			if strings.Contains(msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v missing %q", name, v, tc.want)
		}
	}
}

// TestCheckRecoveryCommittedBaseline gates the actual committed baseline the
// CI target reads, so a bad regeneration fails here before it fails in CI.
func TestCheckRecoveryCommittedBaseline(t *testing.T) {
	f, err := os.Open("../../BENCH_PR6.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	defer f.Close()
	fig, err := ReadFigure(f)
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckRecovery(fig); len(v) != 0 {
		t.Fatalf("committed recovery baseline violates its invariants: %v", v)
	}
}
