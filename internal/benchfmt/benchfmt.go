// Package benchfmt parses the text output of `go test -bench -benchmem`
// into a machine-readable form, so benchmark baselines can be committed and
// diffed (see BENCH_PR4.json and `make bench-json`).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: its per-operation time, bytes allocated, and
// allocation count. BOp/AllocsOp are -1 when the run lacked -benchmem.
type Result struct {
	Name     string  `json:"name"`
	Package  string  `json:"package,omitempty"`
	Iters    int64   `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// Parse reads `go test -bench` output and returns every benchmark result in
// order of appearance. Non-benchmark lines (headers, PASS/ok, logs) are
// skipped; a malformed Benchmark line is an error rather than silent loss.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		res.Package = pkg
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine parses one `BenchmarkName-8   1234   56.7 ns/op   8 B/op
// 1 allocs/op` line. Extra measurement columns (MB/s, custom metrics) are
// ignored.
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("benchfmt: short benchmark line %q", line)
	}
	res := Result{Name: trimProcSuffix(fields[0]), BOp: -1, AllocsOp: -1}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("benchfmt: iteration count in %q: %w", line, err)
	}
	res.Iters = iters
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("benchfmt: value %q in %q: %w", fields[i], line, err)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsOp = v
			seenNs = true
		case "B/op":
			res.BOp = v
		case "allocs/op":
			res.AllocsOp = v
		}
	}
	if !seenNs {
		return Result{}, fmt.Errorf("benchfmt: no ns/op in %q", line)
	}
	return res, nil
}

// trimProcSuffix strips the -GOMAXPROCS suffix go test appends to benchmark
// names (BenchmarkX-8 -> BenchmarkX); a trailing segment that is not a plain
// integer belongs to the name and is kept.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// WriteJSON renders results as a deterministic, human-diffable JSON object
// keyed by benchmark name (package-qualified when packages repeat a name),
// sorted by key.
func WriteJSON(w io.Writer, results []Result) error {
	type row struct {
		NsOp     float64 `json:"ns_op"`
		BOp      float64 `json:"b_op"`
		AllocsOp float64 `json:"allocs_op"`
		Iters    int64   `json:"iters"`
	}
	byName := make(map[string]row, len(results))
	names := make([]string, 0, len(results))
	counts := make(map[string]int, len(results))
	for _, r := range results {
		counts[r.Name]++
	}
	for _, r := range results {
		key := r.Name
		if counts[r.Name] > 1 && r.Package != "" {
			key = r.Package + "." + r.Name
		}
		if _, dup := byName[key]; !dup {
			names = append(names, key)
		}
		byName[key] = row{NsOp: r.NsOp, BOp: r.BOp, AllocsOp: r.AllocsOp, Iters: r.Iters}
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		enc, err := json.Marshal(byName[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", name, enc)
		if i < len(names)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
