package benchfmt

import (
	"strings"
	"testing"
)

func TestReadBaselineRejectsFigureSchema(t *testing.T) {
	// BENCH_PR6.json is figure-shaped, not a flat name->row object; the
	// checker must refuse it rather than silently gate nothing.
	if _, err := ReadBaseline(strings.NewReader(`{"fig": "Recovery", "series": []}`)); err == nil {
		t.Fatal("figure-shaped baseline decoded without error")
	}
	if _, err := ReadBaseline(strings.NewReader(`{}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
	b, err := ReadBaseline(strings.NewReader(`{"BenchmarkX": {"ns_op":100,"b_op":1,"allocs_op":1,"iters":10}}`))
	if err != nil {
		t.Fatal(err)
	}
	if b["BenchmarkX"].NsOp != 100 {
		t.Fatalf("baseline row = %+v", b["BenchmarkX"])
	}
}

func TestCheckFlagsRegressionsAndStaleRows(t *testing.T) {
	base := Baseline{
		"BenchmarkFast":                     {NsOp: 1000},
		"BenchmarkSlow":                     {NsOp: 1000000},
		"BenchmarkGone":                     {NsOp: 1000000},
		"BenchmarkCrawl":                    {NsOp: 500}, // under the noise floor
		"ripple/internal/wire.BenchmarkDup": {NsOp: 1000000},
	}
	fresh := []Result{
		{Name: "BenchmarkFast", NsOp: 900},
		{Name: "BenchmarkSlow", NsOp: 4000000}, // 4x: regression
		{Name: "BenchmarkCrawl", NsOp: 100000}, // 200x but below min-ns: skipped
		{Name: "BenchmarkDup", Package: "ripple/internal/wire", NsOp: 1100000},
		{Name: "BenchmarkDup", Package: "ripple/internal/topk", NsOp: 9000000},
	}
	got := Check(fresh, base, 3, 1000)
	if len(got) != 2 {
		t.Fatalf("Check = %d violations %v; want 2 (slow regression + gone row)", len(got), got)
	}
	for _, want := range []string{"BenchmarkGone", "BenchmarkSlow"} {
		found := false
		for _, v := range got {
			if strings.Contains(v, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("violations %v missing %s", got, want)
		}
	}
}

func TestCheckUnqualifiedDuplicateUsesFastest(t *testing.T) {
	base := Baseline{"BenchmarkDup": {NsOp: 1000000}}
	fresh := []Result{
		{Name: "BenchmarkDup", Package: "a", NsOp: 9000000},
		{Name: "BenchmarkDup", Package: "b", NsOp: 1100000},
	}
	if got := Check(fresh, base, 3, 0); len(got) != 0 {
		t.Fatalf("fastest duplicate within budget still flagged: %v", got)
	}
	fresh[1].NsOp = 5000000
	if got := Check(fresh, base, 3, 0); len(got) != 1 {
		t.Fatalf("all duplicates regressed but Check = %v", got)
	}
}
