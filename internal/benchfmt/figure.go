package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
)

// Figure is a committed figure-shaped baseline (the JSON written by
// bench.Result.WriteJSON — e.g. BENCH_PR6.json): per-row, per-series values
// for two metrics, rather than the flat name->ns/op table of a benchmark
// baseline. Wall-clock-free figures are regenerated bit-identically from
// seeds, so figure gates check invariants of the committed values instead of
// ratios against a fresh run.
type Figure struct {
	Fig     string      `json:"fig"`
	Title   string      `json:"title"`
	XLabel  string      `json:"x_label"`
	Series  []string    `json:"series"`
	MetricA string      `json:"metric_a"`
	MetricB string      `json:"metric_b"`
	Rows    []FigureRow `json:"rows"`
}

// FigureRow is one x-axis point; A and B are parallel to Figure.Series.
type FigureRow struct {
	X string    `json:"x"`
	A []float64 `json:"a"`
	B []float64 `json:"b"`
}

// ReadFigure parses a committed figure-shaped baseline and validates its
// shape: at least one series and one row, and every row's value vectors
// parallel to the series list. A flat benchmark baseline fails to decode.
func ReadFigure(r io.Reader) (*Figure, error) {
	var f Figure
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchfmt: figure: %w", err)
	}
	if len(f.Series) == 0 || len(f.Rows) == 0 {
		return nil, fmt.Errorf("benchfmt: figure %q has no series or no rows", f.Fig)
	}
	for _, row := range f.Rows {
		if len(row.A) != len(f.Series) || len(row.B) != len(f.Series) {
			return nil, fmt.Errorf("benchfmt: figure %q row %q: %d/%d values for %d series",
				f.Fig, row.X, len(row.A), len(row.B), len(f.Series))
		}
	}
	return &f, nil
}

// CheckRecovery gates the committed recovery baseline (BENCH_PR6.json):
// metric A is top-k recall per replication factor (series ordered R=1,2,...),
// metric B the unrecoverable regions per query. It returns one message per
// violated invariant, empty when the baseline is sound:
//
//   - recall is a probability: every A value within [0,1];
//   - replication helps monotonically at every drop rate: recall
//     non-decreasing and unrecoverable regions non-increasing across the
//     series of a row;
//   - the highest replication factor actually recovers: recall >= 0.95 and
//     at most one unrecoverable region per query at every drop rate.
func CheckRecovery(f *Figure) []string {
	var violations []string
	bad := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	last := len(f.Series) - 1
	for _, row := range f.Rows {
		for i, a := range row.A {
			if a < 0 || a > 1 {
				bad("drop %s %s: recall %.4f outside [0,1]", row.X, f.Series[i], a)
			}
		}
		for i := 1; i < len(f.Series); i++ {
			if row.A[i] < row.A[i-1] {
				bad("drop %s: recall degrades with replication: %s %.4f -> %s %.4f",
					row.X, f.Series[i-1], row.A[i-1], f.Series[i], row.A[i])
			}
			if row.B[i] > row.B[i-1] {
				bad("drop %s: unrecoverable regions grow with replication: %s %.2f -> %s %.2f",
					row.X, f.Series[i-1], row.B[i-1], f.Series[i], row.B[i])
			}
		}
		if row.A[last] < 0.95 {
			bad("drop %s: max replication %s recall %.4f below 0.95", row.X, f.Series[last], row.A[last])
		}
		if row.B[last] > 1 {
			bad("drop %s: max replication %s leaves %.2f unrecoverable regions/query", row.X, f.Series[last], row.B[last])
		}
	}
	return violations
}
