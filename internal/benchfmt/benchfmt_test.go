package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ripple/internal/wire
cpu: Intel(R) Xeon(R) Processor
BenchmarkWriteCallPooled-8     	  497948	      1087 ns/op	      48 B/op	       2 allocs/op
BenchmarkWriteCallFresh-8      	   76586	      7813 ns/op	    5128 B/op	      29 allocs/op
PASS
ok  	ripple/internal/wire	2.153s
pkg: ripple/internal/topk
BenchmarkSelectKeyed-8         	     286	   1072498 ns/op	  312280 B/op	      23 allocs/op
BenchmarkWriteCallPooled-8     	    1000	      2000 ns/op	     100 B/op	       5 allocs/op
ok  	ripple/internal/topk	1.000s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(rs), rs)
	}
	first := rs[0]
	if first.Name != "BenchmarkWriteCallPooled" || first.Package != "ripple/internal/wire" {
		t.Fatalf("first = %+v", first)
	}
	if first.Iters != 497948 || first.NsOp != 1087 || first.BOp != 48 || first.AllocsOp != 2 {
		t.Fatalf("first measurements = %+v", first)
	}
	if rs[2].Package != "ripple/internal/topk" {
		t.Fatalf("package not tracked across pkg: lines: %+v", rs[2])
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	rs, err := Parse(strings.NewReader("BenchmarkX-4  100  250 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].BOp != -1 || rs[0].AllocsOp != -1 {
		t.Fatalf("missing -benchmem columns must stay -1: %+v", rs[0])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-4  notanumber  250 ns/op\n",
		"BenchmarkX-4  100\n",
		"BenchmarkX-4  100  xx ns/op\n",
		"BenchmarkX-4  100  250 furlongs/op\n", // no ns/op at all
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("malformed line %q parsed without error", bad)
		}
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX/sub-case": "BenchmarkX/sub-case",
		"BenchmarkX/sub-16":   "BenchmarkX/sub",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Fatalf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteJSONDeterministicAndQualified(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := WriteJSON(&a, rs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, rs); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteJSON output not deterministic")
	}
	out := a.String()
	// The duplicated name must be package-qualified; the unique ones bare.
	for _, want := range []string{
		`"ripple/internal/wire.BenchmarkWriteCallPooled"`,
		`"ripple/internal/topk.BenchmarkWriteCallPooled"`,
		`"BenchmarkSelectKeyed"`,
		`"ns_op":1087`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %s:\n%s", want, out)
		}
	}
	if strings.Count(out, "\"Benchmark") == 0 {
		t.Fatalf("no benchmark keys in:\n%s", out)
	}
}
