package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// BaselineRow is one committed measurement in a BENCH_*.json baseline.
type BaselineRow struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	Iters    int64   `json:"iters"`
}

// Baseline is a committed benchmark baseline: canonical benchmark key (the
// name, package-qualified when WriteJSON had to disambiguate) to measurement.
type Baseline map[string]BaselineRow

// ReadBaseline parses a committed BENCH_*.json file. Baselines with a
// different schema (e.g. the figure-shaped BENCH_PR6.json) fail to decode
// into the flat name->row object and return an error.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("benchfmt: baseline: %w", err)
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("benchfmt: baseline has no benchmarks")
	}
	return b, nil
}

// Check compares a fresh run against a committed baseline and returns one
// message per violation, sorted for stable output. A baseline benchmark that
// did not run at all is a violation (the baseline is stale — regenerate it);
// one whose fresh ns/op exceeds maxRatio times the committed ns/op is a
// regression. Baseline rows faster than minNs are held to presence only:
// below that floor a single smoke iteration is dominated by timer noise, so
// a ratio gate would flake rather than gate.
func Check(results []Result, base Baseline, maxRatio, minNs float64) []string {
	fresh := make(map[string][]Result)
	for _, r := range results {
		fresh[r.Name] = append(fresh[r.Name], r)
	}
	var out []string
	for key, want := range base {
		name, pkg := key, ""
		// A qualified key is "pkg.BenchmarkName"; the name itself never
		// contains the qualifying dot before the Benchmark prefix.
		if i := strings.LastIndex(key, ".Benchmark"); i >= 0 {
			name, pkg = key[i+1:], key[:i]
		}
		cands := fresh[name]
		if pkg != "" {
			kept := cands[:0:0]
			for _, c := range cands {
				if c.Package == pkg {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
		if len(cands) == 0 {
			out = append(out, fmt.Sprintf("%s: in baseline but did not run (stale baseline? regenerate it)", key))
			continue
		}
		if want.NsOp < minNs {
			continue
		}
		// With an unqualified key and duplicate names, gate on the fastest
		// candidate: a regression fires only when every candidate regressed,
		// never spuriously against the wrong package's benchmark.
		best := cands[0].NsOp
		for _, c := range cands[1:] {
			if c.NsOp < best {
				best = c.NsOp
			}
		}
		if best > want.NsOp*maxRatio {
			out = append(out, fmt.Sprintf("%s: %.0f ns/op vs %.0f ns/op committed (%.1fx > %.1fx budget)",
				key, best, want.NsOp, best/want.NsOp, maxRatio))
		}
	}
	sort.Strings(out)
	return out
}
