package topk

import (
	"fmt"
	"math"

	"ripple/internal/core"
	"ripple/internal/geom"
	"ripple/internal/wire"
)

// WireCodec serialises top-k queries and states for networked peers; it
// implements the wire.Codec interface. Supported scorers: Linear, Peak and
// Nearest (L1 or L2).
type WireCodec struct{}

// wireParams is the on-wire query descriptor.
type wireParams struct {
	K       int
	Kind    string // "linear" | "peak" | "nearest"
	Weights []float64
	Center  geom.Point
	Sharp   float64
	Metric  string // "L1" | "L2" (nearest only)
}

// stateWire is the on-wire (m, τ) pair. Encode/decode go through pooled gob
// machinery: states are exchanged on every hop, and stateWire is flat, so
// the pooled path is allocation-free (see internal/wire/pool.go).
type stateWire struct {
	M   int
	Tau float64
}

var (
	paramsPool = wire.NewPayloadPool(&wireParams{})
	statePool  = wire.NewPayloadPool(&stateWire{})
)

// Name implements wire.Codec.
func (WireCodec) Name() string { return "topk" }

// EncodeParams builds the wire descriptor for a query.
func (WireCodec) EncodeParams(f Scorer, k int) ([]byte, error) {
	p := wireParams{K: k}
	switch s := f.(type) {
	case Linear:
		p.Kind, p.Weights = "linear", s.Weights
	case Peak:
		p.Kind, p.Center, p.Sharp = "peak", s.Center, s.Sharpness
	case Nearest:
		p.Kind, p.Center, p.Metric = "nearest", s.Center, s.Metric.Name()
	default:
		return nil, fmt.Errorf("topk: scorer %T not wire-encodable", f)
	}
	return paramsPool.Encode(&p)
}

// NewProcessor implements wire.Codec.
func (WireCodec) NewProcessor(params []byte) (core.Processor, error) {
	var p wireParams
	if err := paramsPool.Decode(params, &p); err != nil {
		return nil, fmt.Errorf("topk: decode params: %w", err)
	}
	var f Scorer
	switch p.Kind {
	case "linear":
		f = Linear{Weights: p.Weights}
	case "peak":
		f = Peak{Center: p.Center, Sharpness: p.Sharp}
	case "nearest":
		m := geom.Metric(geom.L2)
		if p.Metric == "L1" {
			m = geom.L1
		}
		f = Nearest{Center: p.Center, Metric: m}
	default:
		return nil, fmt.Errorf("topk: unknown scorer kind %q", p.Kind)
	}
	return &Processor{F: f, K: p.K}, nil
}

// EncodeState implements wire.Codec: the (m, τ) pair.
func (WireCodec) EncodeState(s core.State) ([]byte, error) {
	st := s.(state)
	return statePool.Encode(&stateWire{M: st.m, Tau: st.tau})
}

// DecodeState implements wire.Codec. Empty input yields the neutral state.
func (WireCodec) DecodeState(b []byte) (core.State, error) {
	if len(b) == 0 {
		return state{m: 0, tau: math.Inf(1)}, nil
	}
	var st stateWire
	if err := statePool.Decode(b, &st); err != nil {
		return nil, fmt.Errorf("topk: decode state: %w", err)
	}
	return state{m: st.M, tau: st.Tau}, nil
}
