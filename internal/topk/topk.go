// Package topk instantiates RIPPLE for top-k queries (§4 of the paper,
// Algorithms 4-9). The query carries a unimodal scoring function f and the
// result size k; the RIPPLE state is the pair (m, τ) asserting that m tuples
// with score at least τ have already been located. Link pruning uses f⁺, an
// upper bound of f over a region.
package topk

import (
	"container/heap"
	"math"
	"sort"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/plan"
	"ripple/internal/sim"
	"ripple/internal/storage"
)

// Scorer is the paper's unimodal scoring function f together with the upper
// bound f⁺ over an axis-parallel box that RIPPLE's pruning requires. Higher
// scores are better.
type Scorer interface {
	// Score evaluates f at a point.
	Score(p geom.Point) float64
	// UpperBound returns f⁺(r): an upper bound of Score over the box r.
	UpperBound(r geom.Rect) float64
}

// Linear scores a tuple by the weighted sum of its attribute "goodness"
// (attributes follow the repository convention that lower raw values are
// better): f(x) = Σ w_i (1 − x_i). Weights must be non-negative; f is then
// monotone, hence unimodal, and f⁺ over a box is attained at its Lo corner.
type Linear struct {
	Weights []float64
}

// UniformLinear returns a Linear scorer with d equal weights.
func UniformLinear(d int) Linear {
	w := make([]float64, d)
	for i := range w {
		w[i] = 1
	}
	return Linear{Weights: w}
}

// Score implements Scorer.
func (l Linear) Score(p geom.Point) float64 {
	s := 0.0
	for i, w := range l.Weights {
		s += w * (1 - p[i])
	}
	return s
}

// UpperBound implements Scorer.
func (l Linear) UpperBound(r geom.Rect) float64 { return l.Score(r.Lo) }

// Peak is a non-monotone unimodal scorer with its maximum at Center:
// f(x) = exp(−Sharpness · ‖x − Center‖²). It exercises RIPPLE's support for
// general unimodal functions (the paper only requires a unique local
// maximum). f⁺ over a box is f at the point of the box closest to Center.
type Peak struct {
	Center    geom.Point
	Sharpness float64
}

// Score implements Scorer.
func (g Peak) Score(p geom.Point) float64 {
	d := geom.L2.Dist(p, g.Center)
	return math.Exp(-g.Sharpness * d * d)
}

// UpperBound implements Scorer.
func (g Peak) UpperBound(r geom.Rect) float64 { return g.Score(r.Clamp(g.Center)) }

// Nearest scores tuples by proximity to a query point: f(x) = −dist(x, q),
// making k-nearest-neighbour search a top-k rank query. f⁺ over a box is the
// negated minimum distance of the box to the query point.
type Nearest struct {
	Center geom.Point
	Metric geom.Metric
}

// Score implements Scorer.
func (n Nearest) Score(p geom.Point) float64 { return -n.Metric.Dist(n.Center, p) }

// UpperBound implements Scorer.
func (n Nearest) UpperBound(r geom.Rect) float64 { return -n.Metric.MinDist(n.Center, r) }

// state is the paper's abstract top-k state (m, τ): m tuples with score at
// least τ are known. The neutral state is (0, +Inf).
type state struct {
	m   int
	tau float64
}

// Processor is the RIPPLE plug-in for top-k queries.
type Processor struct {
	F Scorer
	K int
}

var _ core.Processor = (*Processor)(nil)
var _ plan.Hinter = (*Processor)(nil)

// PlanHints implements plan.Hinter: the planner's cost model keys on the
// query family and result size.
func (p *Processor) PlanHints() plan.Hints { return plan.Hints{Family: "topk", K: p.K} }

// InitialState implements core.Processor.
func (p *Processor) InitialState() core.State { return state{m: 0, tau: math.Inf(1)} }

// StateTuples implements core.Processor: top-k states carry only (m, τ).
func (p *Processor) StateTuples(core.State) int { return 0 }

// regionBound is f⁺ over a union-of-boxes region.
func (p *Processor) regionBound(r overlay.Region) float64 {
	best := math.Inf(-1)
	for _, b := range r.Boxes {
		if u := p.F.UpperBound(b); u > best {
			best = u
		}
	}
	return best
}

// LocalState implements computeLocalState (Algorithm 4): gather up to K local
// tuples scoring above the global threshold, topping up with lower-ranked
// tuples while the global count is still short of K.
func (p *Processor) LocalState(w overlay.Node, global core.State) core.State {
	g := global.(state)
	// Only the K best local scores can ever be taken (take ≤ K ≤ len(scores)
	// below), so the store's best-first traversal replaces the full sort; on
	// an R-tree zone, only subtrees whose f⁺ can still qualify are expanded.
	st := storage.Of(w)
	scores := storage.TopScores(st, p.K, p.F.Score, p.F.UpperBound)
	n := st.Len()

	above := 0
	for _, s := range scores {
		if s > g.tau && above < p.K {
			above++
		}
	}
	take := above
	if g.m+above < p.K {
		take += min(p.K-g.m-above, n-above)
	}
	if take == 0 {
		return state{m: 0, tau: math.Inf(1)}
	}
	return state{m: take, tau: scores[take-1]}
}

// GlobalState implements computeGlobalState. Algorithm 5 as printed
// aggregates to (mG+mL, min(τG, τL)), under which the threshold can never
// rise along a fast-mode forwarding path and r=0 degenerates to a full
// broadcast — contradicting the paper's own Figure 4(b). We therefore apply
// the Algorithm 7 combine to the pair: the highest threshold guaranteed to
// be met by at least K tuples. This is sound (both inputs are sound claims)
// and strictly tighter; when fewer than K tuples are known it reduces to the
// printed aggregate. See DESIGN.md §6.
func (p *Processor) GlobalState(w overlay.Node, global, local core.State) core.State {
	return p.MergeStates(w, []core.State{global, local})
}

// MergeStates implements updateLocalState (Algorithm 7): find the highest
// threshold guaranteed to be exceeded by at least K tuples.
func (p *Processor) MergeStates(w overlay.Node, states []core.State) core.State {
	ss := make([]state, len(states))
	for i, s := range states {
		ss[i] = s.(state)
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].tau > ss[j].tau })
	merged := state{m: 0, tau: math.Inf(1)}
	for _, s := range ss {
		if s.m == 0 {
			continue
		}
		merged.m += s.m
		merged.tau = s.tau
		if merged.m >= p.K {
			break
		}
	}
	return merged
}

// LinkRelevant implements the content half of isLinkRelevant (Algorithm 8).
func (p *Processor) LinkRelevant(w overlay.Node, region overlay.Region, global core.State) bool {
	g := global.(state)
	return g.m < p.K || p.regionBound(region) >= g.tau
}

// LinkPriority implements comp (Algorithm 9): regions with higher f⁺ first.
func (p *Processor) LinkPriority(w overlay.Node, region overlay.Region) float64 {
	return -p.regionBound(region)
}

// LocalAnswer implements computeLocalAnswer (Algorithm 6): all local tuples
// scoring at least the final local threshold, in canonical (score descending,
// ID ascending) order. (The paper says "better than"; we use >= so the
// threshold tuple itself is never dropped.)
func (p *Processor) LocalAnswer(w overlay.Node, local core.State) []dataset.Tuple {
	l := local.(state)
	if l.m == 0 {
		return nil
	}
	return storage.Above(storage.Of(w), l.tau, p.F.Score, p.F.UpperBound)
}

// scoreHeap is a min-heap of float64 scores: the root is the worst of the
// retained top scores, evicted whenever a better one arrives.
type scoreHeap []float64

func (h scoreHeap) Len() int            { return len(h) }
func (h scoreHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h scoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *scoreHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// topScores returns the n highest tuple scores in descending order, scoring
// each tuple once and keeping a bounded min-heap instead of sorting the full
// score set: O(len(ts)·log n) time, O(n) space.
func topScores(ts []dataset.Tuple, f Scorer, n int) []float64 {
	if n > len(ts) {
		n = len(ts)
	}
	if n <= 0 {
		return nil
	}
	h := make(scoreHeap, n)
	for i, t := range ts[:n] {
		h[i] = f.Score(t.Vec)
	}
	heap.Init(&h)
	for _, t := range ts[n:] {
		// Replace-root instead of heap.Push/Pop: no interface boxing.
		if s := f.Score(t.Vec); s > h[0] {
			h[0] = s
			heap.Fix(&h, 0)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(h)))
	return h
}

// Run processes a top-k query from the given initiator with ripple parameter
// r, returning the exact top-k set (ties broken by tuple ID) and the cost.
func Run(initiator overlay.Node, f Scorer, k, r int) ([]dataset.Tuple, sim.Stats) {
	res := core.Run(initiator, &Processor{F: f, K: k}, r)
	return Select(res.Answers, f, k), res.Stats
}

// Select extracts the top-k tuples from a candidate set: the initiator's
// final merge step. Ties are broken by ascending tuple ID and duplicate IDs
// are dropped, so the result is deterministic.
func Select(candidates []dataset.Tuple, f Scorer, k int) []dataset.Tuple {
	// Precompute (score, tuple) keys so sorting costs O(n) Score calls
	// instead of O(n log n) re-evaluations inside the comparator.
	type keyed struct {
		score float64
		t     dataset.Tuple
	}
	seen := make(map[uint64]bool, len(candidates))
	uniq := make([]keyed, 0, len(candidates))
	for _, t := range candidates {
		if !seen[t.ID] {
			seen[t.ID] = true
			uniq = append(uniq, keyed{score: f.Score(t.Vec), t: t})
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].score != uniq[j].score {
			return uniq[i].score > uniq[j].score
		}
		return uniq[i].t.ID < uniq[j].t.ID
	})
	if len(uniq) > k {
		uniq = uniq[:k]
	}
	out := make([]dataset.Tuple, len(uniq))
	for i := range uniq {
		out[i] = uniq[i].t
	}
	return out
}

// Brute computes the exact top-k over a full tuple slice; the reference
// answer used by tests and the harness's sanity checks.
func Brute(ts []dataset.Tuple, f Scorer, k int) []dataset.Tuple {
	return Select(append([]dataset.Tuple(nil), ts...), f, k)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
