package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/storage"
)

// localScoresReference is the pre-heap implementation of the local score
// computation — the ground truth for topScores and the baseline for its
// benchmark: score everything, sort everything.
func localScoresReference(ts []dataset.Tuple, f Scorer) []float64 {
	scores := make([]float64, len(ts))
	for i, t := range ts {
		scores[i] = f.Score(t.Vec)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	return scores
}

// selectReference is the pre-keying Select: same dedup and tie-break rules,
// but Score is re-evaluated inside the sort comparator.
func selectReference(candidates []dataset.Tuple, f Scorer, k int) []dataset.Tuple {
	seen := make(map[uint64]bool, len(candidates))
	uniq := candidates[:0:0]
	for _, t := range candidates {
		if !seen[t.ID] {
			seen[t.ID] = true
			uniq = append(uniq, t)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		si, sj := f.Score(uniq[i].Vec), f.Score(uniq[j].Vec)
		if si != sj {
			return si > sj
		}
		return uniq[i].ID < uniq[j].ID
	})
	if len(uniq) > k {
		uniq = uniq[:k]
	}
	return uniq
}

func randTuples(rng *rand.Rand, n, d int) []dataset.Tuple {
	ts := make([]dataset.Tuple, n)
	for i := range ts {
		v := make(geom.Point, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		ts[i] = dataset.Tuple{ID: uint64(i), Vec: v}
	}
	return ts
}

func TestTopScoresMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := UniformLinear(3)
	for _, size := range []int{0, 1, 2, 10, 257} {
		ts := randTuples(rng, size, 3)
		full := localScoresReference(ts, f)
		for _, n := range []int{0, 1, 5, size, size + 3} {
			got := topScores(ts, f, n)
			want := n
			if want > size {
				want = size
			}
			if want < 0 {
				want = 0
			}
			if len(got) != want {
				t.Fatalf("size %d n %d: %d scores, want %d", size, n, len(got), want)
			}
			for i, s := range got {
				if s != full[i] {
					t.Fatalf("size %d n %d: score[%d] = %v, full sort %v", size, n, i, s, full[i])
				}
			}
		}
	}
}

// indexedStub wraps stubNode with an R-tree store, the way a peer whose zone
// runs the indexed engine exposes it to processors.
type indexedStub struct {
	stubNode
	st storage.Store
}

func (s *indexedStub) Store() storage.Store {
	if s.st == nil {
		s.st = storage.NewRTree(s.tuples)
	}
	return s.st
}

// TestIndexedPathsMatchScanPaths: LocalState and LocalAnswer must be
// byte-identical whether the node's zone is served by the scan baseline or
// the R-tree engine.
func TestIndexedPathsMatchScanPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{0, 1, 3, 40, 200} {
		ts := randTuples(rng, size, 2)
		for _, k := range []int{1, 3, 17} {
			p := &Processor{F: UniformLinear(2), K: k}
			globals := []state{
				{m: 0, tau: math.Inf(1)},
				{m: k / 2, tau: 0.7},
				{m: k, tau: 0.2},
				{m: 2 * k, tau: 1.4},
			}
			for _, g := range globals {
				plain := &stubNode{tuples: ts}
				indexed := &indexedStub{stubNode: stubNode{tuples: ts}}

				sp := p.LocalState(plain, g).(state)
				si := p.LocalState(indexed, g).(state)
				if sp != si {
					t.Fatalf("size %d k %d g %+v: state scan %+v != indexed %+v", size, k, g, sp, si)
				}

				ap := p.LocalAnswer(plain, sp)
				ai := p.LocalAnswer(indexed, si)
				if len(ap) != len(ai) {
					t.Fatalf("size %d k %d: answer sizes %d != %d", size, k, len(ap), len(ai))
				}
				for i := range ap {
					if ap[i].ID != ai[i].ID {
						t.Fatalf("size %d k %d: answers differ at %d: %v vs %v", size, k, i, ap[i].ID, ai[i].ID)
					}
				}
			}
		}
	}
}

func TestIndexedLocalAnswerIsCopied(t *testing.T) {
	ts := randTuples(rand.New(rand.NewSource(3)), 20, 2)
	p := &Processor{F: UniformLinear(2), K: 5}
	w := &indexedStub{stubNode: stubNode{tuples: ts}}
	st := p.LocalState(w, p.InitialState())
	a := p.LocalAnswer(w, st)
	if len(a) == 0 {
		t.Fatal("expected a non-empty answer")
	}
	// Appending to and overwriting the answer (as reply assembly does) must
	// not corrupt the store backing the node.
	before := append([]dataset.Tuple(nil), w.Store().Tuples()...)
	_ = append(a, dataset.Tuple{ID: 999})
	a[0] = dataset.Tuple{ID: 888}
	after := w.Store().Tuples()
	for i := range before {
		if before[i].ID != after[i].ID {
			t.Fatalf("store mutated through the answer slice at %d", i)
		}
	}
}

func TestSelectMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, size := range []int{0, 1, 9, 150} {
		ts := randTuples(rng, size, 2)
		// Inject duplicates and score ties.
		ts = append(ts, ts[:size/3]...)
		for _, k := range []int{1, 4, 40} {
			f := UniformLinear(2)
			got := Select(append([]dataset.Tuple(nil), ts...), f, k)
			want := selectReference(append([]dataset.Tuple(nil), ts...), f, k)
			if len(got) != len(want) {
				t.Fatalf("size %d k %d: %d tuples, want %d", size, k, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					t.Fatalf("size %d k %d: pos %d ID %d, want %d", size, k, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

const benchN = 4096

func benchTuples(b *testing.B) []dataset.Tuple {
	b.Helper()
	return randTuples(rand.New(rand.NewSource(1)), benchN, 4)
}

func BenchmarkLocalScoresHeap(b *testing.B) {
	ts := benchTuples(b)
	f := UniformLinear(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topScores(ts, f, 16)
	}
}

func BenchmarkLocalScoresFullSort(b *testing.B) {
	ts := benchTuples(b)
	f := UniformLinear(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localScoresReference(ts, f)
	}
}

func BenchmarkLocalAnswerIndexed(b *testing.B) {
	ts := benchTuples(b)
	p := &Processor{F: UniformLinear(4), K: 16}
	w := &indexedStub{stubNode: stubNode{tuples: ts}}
	st := p.LocalState(w, p.InitialState())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.LocalAnswer(w, st)
	}
}

func BenchmarkLocalAnswerScan(b *testing.B) {
	ts := benchTuples(b)
	p := &Processor{F: UniformLinear(4), K: 16}
	w := &stubNode{tuples: ts}
	st := p.LocalState(w, p.InitialState())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.LocalAnswer(w, st)
	}
}

func BenchmarkSelectKeyed(b *testing.B) {
	ts := benchTuples(b)
	f := Peak{Center: geom.Point{0.5, 0.5, 0.5, 0.5}, Sharpness: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(ts, f, 16)
	}
}

func BenchmarkSelectRescore(b *testing.B) {
	ts := benchTuples(b)
	f := Peak{Center: geom.Point{0.5, 0.5, 0.5, 0.5}, Sharpness: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selectReference(ts, f, 16)
	}
}
