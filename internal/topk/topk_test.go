package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
)

func TestLinearScorer(t *testing.T) {
	f := Linear{Weights: []float64{2, 1}}
	if got := f.Score(geom.Point{0, 0}); got != 3 {
		t.Fatalf("Score(origin) = %v, want 3", got)
	}
	if got := f.Score(geom.Point{1, 1}); got != 0 {
		t.Fatalf("Score(ones) = %v, want 0", got)
	}
	r := geom.Rect{Lo: geom.Point{0.25, 0.5}, Hi: geom.Point{1, 1}}
	if got := f.UpperBound(r); got != 2*0.75+0.5 {
		t.Fatalf("UpperBound = %v", got)
	}
}

func TestPeakScorer(t *testing.T) {
	f := Peak{Center: geom.Point{0.5, 0.5}, Sharpness: 4}
	if got := f.Score(geom.Point{0.5, 0.5}); got != 1 {
		t.Fatalf("peak score = %v, want 1", got)
	}
	if f.Score(geom.Point{0, 0}) >= f.Score(geom.Point{0.4, 0.4}) {
		t.Fatal("peak must decrease with distance")
	}
	// Upper bound over a box containing the peak is exactly 1.
	r := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}}
	if got := f.UpperBound(r); got != 1 {
		t.Fatalf("UpperBound over containing box = %v", got)
	}
}

// f⁺ must upper-bound the score at every point of the box, for both scorers.
func TestUpperBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(4)
		lo, hi := make(geom.Point, d), make(geom.Point, d)
		for i := 0; i < d; i++ {
			a, b := rng.Float64(), rng.Float64()
			lo[i], hi[i] = math.Min(a, b), math.Max(a, b)+1e-9
		}
		box := geom.Rect{Lo: lo, Hi: hi}
		w := make([]float64, d)
		c := make(geom.Point, d)
		for i := range w {
			w[i] = rng.Float64() * 3
			c[i] = rng.Float64()
		}
		scorers := []Scorer{Linear{Weights: w}, Peak{Center: c, Sharpness: 1 + rng.Float64()*10}}
		for _, s := range scorers {
			ub := s.UpperBound(box)
			for i := 0; i < 25; i++ {
				p := geom.Lerp(lo, hi, rng.Float64())
				for j := range p {
					p[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
				}
				if s.Score(p) > ub+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeStatesPicksHighestGuaranteedThreshold(t *testing.T) {
	p := &Processor{F: UniformLinear(2), K: 5}
	states := []core.State{
		state{m: 2, tau: 0.9},
		state{m: 2, tau: 0.8},
		state{m: 2, tau: 0.5},
		state{m: 10, tau: 0.1},
	}
	got := p.MergeStates(nil, states).(state)
	// 2+2 < 5, 2+2+2 >= 5 -> threshold 0.5 with m=6.
	if got.m != 6 || got.tau != 0.5 {
		t.Fatalf("merged = %+v, want m=6 tau=0.5", got)
	}
}

func TestMergeStatesUnderflow(t *testing.T) {
	p := &Processor{F: UniformLinear(2), K: 100}
	states := []core.State{state{m: 3, tau: 0.9}, state{m: 2, tau: 0.4}}
	got := p.MergeStates(nil, states).(state)
	if got.m != 5 || got.tau != 0.4 {
		t.Fatalf("underflow merge = %+v, want m=5 tau=0.4", got)
	}
	empty := p.MergeStates(nil, []core.State{p.InitialState()}).(state)
	if empty.m != 0 || !math.IsInf(empty.tau, 1) {
		t.Fatalf("neutral merge = %+v", empty)
	}
}

func TestSelectDeduplicatesAndBreaksTies(t *testing.T) {
	f := UniformLinear(1)
	ts := []dataset.Tuple{
		{ID: 3, Vec: geom.Point{0.2}},
		{ID: 3, Vec: geom.Point{0.2}}, // duplicate ID must collapse
		{ID: 1, Vec: geom.Point{0.5}},
		{ID: 2, Vec: geom.Point{0.5}}, // tie with ID 1: lower ID first
		{ID: 4, Vec: geom.Point{0.9}},
	}
	got := Select(ts, f, 3)
	wantIDs := []uint64{3, 1, 2}
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Fatalf("result %d = %d, want %d", i, got[i].ID, w)
		}
	}
}

func TestBruteMatchesManualSort(t *testing.T) {
	ts := dataset.Uniform(200, 3, 9)
	f := UniformLinear(3)
	got := Brute(ts, f, 20)
	scores := make([]float64, len(ts))
	for i, tp := range ts {
		scores[i] = f.Score(tp.Vec)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	for i, tp := range got {
		if math.Abs(f.Score(tp.Vec)-scores[i]) > 1e-12 {
			t.Fatalf("rank %d score %v, want %v", i, f.Score(tp.Vec), scores[i])
		}
	}
}

// stubNode lets processor methods be exercised directly.
type stubNode struct {
	tuples []dataset.Tuple
}

func (s *stubNode) ID() string              { return "stub" }
func (s *stubNode) Zone() overlay.Region    { return overlay.Whole(2) }
func (s *stubNode) Links() []overlay.Link   { return nil }
func (s *stubNode) Tuples() []dataset.Tuple { return s.tuples }

func tupleAt(id uint64, vs ...float64) dataset.Tuple {
	return dataset.Tuple{ID: id, Vec: geom.Point(vs)}
}

func TestLocalStateBranches(t *testing.T) {
	f := UniformLinear(2)
	p := &Processor{F: f, K: 2}
	w := &stubNode{tuples: []dataset.Tuple{
		tupleAt(1, 0.1, 0.1), // score 1.8
		tupleAt(2, 0.3, 0.3), // score 1.4
		tupleAt(3, 0.8, 0.8), // score 0.4
	}}

	// Neutral global: take the 2 best local tuples (top-up branch).
	s := p.LocalState(w, p.InitialState()).(state)
	if s.m != 2 || math.Abs(s.tau-1.4) > 1e-12 {
		t.Fatalf("neutral local state = %+v", s)
	}

	// Global already has 2 tuples above 1.0: only local tuples scoring above
	// that threshold count (one of them: score 1.8; 1.4 is above 1.0 too).
	s = p.LocalState(w, state{m: 2, tau: 1.0}).(state)
	if s.m != 2 || math.Abs(s.tau-1.4) > 1e-12 {
		t.Fatalf("above-threshold state = %+v", s)
	}

	// Very high global threshold with enough tuples: nothing qualifies.
	s = p.LocalState(w, state{m: 5, tau: 3.9}).(state)
	if s.m != 0 || !math.IsInf(s.tau, 1) {
		t.Fatalf("empty-contribution state = %+v", s)
	}

	// Empty peer contributes the neutral state.
	s = p.LocalState(&stubNode{}, p.InitialState()).(state)
	if s.m != 0 || !math.IsInf(s.tau, 1) {
		t.Fatalf("empty peer state = %+v", s)
	}
}

func TestLinkRelevantAndPriority(t *testing.T) {
	f := UniformLinear(2)
	p := &Processor{F: f, K: 3}
	good := overlay.FromRect(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{0.5, 0.5}}) // f+ = 2
	bad := overlay.FromRect(geom.Rect{Lo: geom.Point{0.8, 0.8}, Hi: geom.Point{1, 1}})  // f+ = 0.4

	// Below k tuples known: everything is relevant.
	if !p.LinkRelevant(nil, bad, state{m: 1, tau: 1.9}) {
		t.Fatal("short of k: link must be relevant")
	}
	// At k: only regions beating the threshold remain relevant.
	if p.LinkRelevant(nil, bad, state{m: 3, tau: 1.0}) {
		t.Fatal("dominated region must be pruned")
	}
	if !p.LinkRelevant(nil, good, state{m: 3, tau: 1.0}) {
		t.Fatal("promising region wrongly pruned")
	}
	if p.LinkPriority(nil, good) >= p.LinkPriority(nil, bad) {
		t.Fatal("better region must sort first (lower priority value)")
	}
}

func TestLocalAnswerThreshold(t *testing.T) {
	f := UniformLinear(2)
	p := &Processor{F: f, K: 2}
	w := &stubNode{tuples: []dataset.Tuple{
		tupleAt(1, 0.1, 0.1), // 1.8
		tupleAt(2, 0.3, 0.3), // 1.4
		tupleAt(3, 0.8, 0.8), // 0.4
	}}
	got := p.LocalAnswer(w, state{m: 2, tau: 1.4})
	if len(got) != 2 {
		t.Fatalf("answer size %d, want 2 (>= tau keeps the threshold tuple)", len(got))
	}
	if p.LocalAnswer(w, state{m: 0, tau: math.Inf(1)}) != nil {
		t.Fatal("neutral state must answer nothing")
	}
	if p.StateTuples(state{m: 5, tau: 1}) != 0 {
		t.Fatal("top-k states carry no tuples")
	}
}

func TestWireCodecInPackage(t *testing.T) {
	c := WireCodec{}
	if c.Name() != "topk" {
		t.Fatal("codec name")
	}
	params, err := c.EncodeParams(UniformLinear(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := c.NewProcessor(params)
	if err != nil || proc.(*Processor).K != 3 {
		t.Fatalf("NewProcessor: %v", err)
	}
	if _, err := c.NewProcessor([]byte("garbage")); err == nil {
		t.Fatal("garbage params must error")
	}
	if _, err := c.DecodeState([]byte("garbage")); err == nil {
		t.Fatal("garbage state must error")
	}
	enc, err := c.EncodeState(state{m: 4, tau: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.DecodeState(enc)
	if err != nil || st.(state).m != 4 || st.(state).tau != 1.5 {
		t.Fatalf("state round trip: %v %v", st, err)
	}
}
