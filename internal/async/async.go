// Package async executes RIPPLE queries on an actor runtime: every peer is a
// goroutine with an inbox, queries propagate as real messages, and latency is
// carried on the messages themselves as logical hop clocks. It exists to
// demonstrate that the paper's recursive pseudocode (Algorithms 1-3) is
// faithfully realisable as an asynchronous distributed protocol — and the
// runtime is validated against the structural engine of internal/core: same
// answers, same message counts, same hop-accurate latencies.
//
// One protocol detail the paper leaves implicit becomes explicit here:
// completion detection. In ripple mode, a slow-phase peer must know when the
// fast subtree it spawned has delivered *all* of its local states (Algorithm
// 3, line 7 reads a set). A fast-mode peer cannot know the subtree size in
// advance, so the runtime performs a convergecast: each fast peer waits for
// its own children's aggregated states, folds in its own, and reports
// upstream; the slow ancestor receives one complete batch from the subtree
// entry peer. Responses stay free in the cost model, matching the lemmas.
package async

import (
	"sort"
	"sync"
	"sync/atomic"

	"ripple/internal/cache"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/overlay"
	"ripple/internal/plan"
	"ripple/internal/storage"
	"ripple/internal/trace"
)

// Cluster hosts one actor per peer of an overlay snapshot.
type Cluster struct {
	actors  map[string]*actor
	wg      sync.WaitGroup
	insts   int64
	inj     *faults.Injector
	reps    *overlay.ReplicaMap             // nil: no recovery, losses are final
	budget  int                             // max replica dispatches per lost traversal (0: all)
	redials int                             // extra injector rolls per replica dispatch
	view    func(overlay.Node) overlay.Node // storage+scope lens (ClusterOptions)

	scope    overlay.Region // ClusterOptions.Scope: the query restriction region
	cache    *cache.Cache   // ClusterOptions.Cache: nil when caching is off
	cacheKey []byte
	planner  *plan.Planner // ClusterOptions.Planner: nil for static-only runs
	size     int           // overlay size, for the planner's query description

	mu       sync.Mutex
	res      *core.Result
	answered map[string]bool
	done     chan struct{}
	rec      *trace.Recorder // per-query; nil when the query is untraced
}

// queryMsg propagates a query one hop. inst identifies the continuation this
// delivery creates at the receiver; parentInst is the sender's continuation
// awaiting the receiver's (or its subtree's) states.
type queryMsg struct {
	inst       int64
	parentInst int64
	parent     string // where states flow: sender (slow) or convergecast sink
	global     core.State
	restrict   overlay.Region
	r          int
	time       int // logical hop clock: when this message arrives

	// Trace context: the receiver's span (recorded by the sender before the
	// send, like the structural engine) and its hop depth.
	spanID uint64
	depth  int

	// actAs, when non-empty, asks the receiving actor to execute this step on
	// behalf of the named dead peer (a recovery dispatch): it processes the
	// primary's zone, tuples and links, so the recovered subtree is exactly
	// the subtree the primary would have executed.
	actAs string
}

// stateMsg carries local states upstream, stamped with the logical time the
// sender's subtree completed.
type stateMsg struct {
	parentInst int64
	states     []core.State
	time       int
}

type actor struct {
	node    overlay.Node
	cluster *Cluster
	inbox   chan interface{}
	proc    core.Processor
	conts   map[int64]*continuation
}

// continuation is the suspended state of Algorithm 3 at a peer between a
// forward and the matching state response.
type continuation struct {
	// node is the peer this continuation executes as: the actor's own node,
	// or an ActingNode when the step is a recovery dispatch for a dead peer.
	node       overlay.Node
	inst       int64
	parentInst int64
	parent     string
	global     core.State
	local      core.State
	wGlobal    core.State
	links      []overlay.Link
	next       int
	restrict   overlay.Region
	r          int
	cursor     int // logical time of the slow iteration front
	// Fast-mode convergecast bookkeeping.
	pending   int
	collected []core.State
	maxChild  int
	// Trace context: this peer's span, its hop depth, and the traversal
	// sequence counter that derives child span identities.
	spanID uint64
	depth  int
	seq    int
}

// NewCluster spins up one actor per node of the overlay, all sharing the
// given processor. Call Close when finished.
func NewCluster(net overlay.Network, proc core.Processor) *Cluster {
	return NewClusterInjected(net, proc, nil)
}

// NewClusterInjected is NewCluster under fault injection: every actor-to-
// actor delivery consults the injector with the same deterministic decision
// function the structural engine uses, so an injected cluster reproduces
// core.RunInjected exactly — same surviving answers, same lost regions, same
// hop clocks. A dropped (or crashed) delivery prunes the subtree and records
// the lost restriction region; a delayed one adds Config.DelayHops to the
// message's arrival time. A nil injector behaves like NewCluster.
func NewClusterInjected(net overlay.Network, proc core.Processor, inj *faults.Injector) *Cluster {
	return NewClusterOpts(net, proc, ClusterOptions{Faults: inj})
}

// ClusterOptions mirrors core.Options for the actor runtime.
type ClusterOptions struct {
	// Faults injects deterministic link failures (nil: none).
	Faults *faults.Injector
	// Replicas enables failed-region recovery (see core.Options.Replicas):
	// a lost delivery fails over to the dead peer's zone replicas, which
	// execute the lost subtree on its behalf.
	Replicas *overlay.ReplicaMap
	// RecoveryBudget caps replica dispatches per lost traversal (0: all).
	RecoveryBudget int
	// RecoveryRetries is the number of extra injector rolls per replica
	// dispatch (see core.Options.RecoveryRetries).
	RecoveryRetries int
	// Storage selects the storage-engine view processors see (see
	// core.Options.Storage): KindScan hides node-provided stores behind the
	// flat-scan baseline; KindAuto and KindRTree defer to each node's engine.
	Storage storage.Kind

	// Scope restricts every query this cluster runs to a sub-region of the
	// domain (see core.Options.Scope). Scope is a cluster-level option here
	// because a cluster is already bound to one (processor, params) pair —
	// exactly the granularity of a cache identity.
	Scope overlay.Region

	// Cache + CacheKey enable the result cache for this cluster's query (see
	// core.Options.Cache): consulted before a Run, filled after a complete
	// one. Traced runs bypass it.
	Cache    *cache.Cache
	CacheKey []byte

	// Planner resolves r = plan.RAuto per query and is fed every completed
	// run's observed cost (see core.Options.Planner). Callers combining a
	// Planner with the Cache should compute CacheKey from the resolved
	// decision so planned and static runs share cache entries.
	Planner *plan.Planner
}

// NewClusterOpts is the fully general constructor: fault injection plus the
// replication/recovery configuration. An injected cluster with the same
// replica map and recovery knobs as a core.RunOpts call reproduces it
// exactly — same recovered subtrees, same unrecoverable regions.
func NewClusterOpts(net overlay.Network, proc core.Processor, opts ClusterOptions) *Cluster {
	c := &Cluster{
		actors: make(map[string]*actor), inj: opts.Faults,
		reps: opts.Replicas, budget: opts.RecoveryBudget, redials: opts.RecoveryRetries,
		view:  func(w overlay.Node) overlay.Node { return w },
		scope: opts.Scope, cache: opts.Cache, cacheKey: opts.CacheKey,
		planner: opts.Planner, size: net.Size(),
	}
	if opts.Storage == storage.KindScan {
		c.view = overlay.ScanOnly
	}
	if !opts.Scope.IsEmpty() {
		base, scope := c.view, opts.Scope
		c.view = func(w overlay.Node) overlay.Node { return overlay.Restricted(base(w), scope) }
	}
	for _, n := range net.Nodes() {
		a := &actor{
			node:    n,
			cluster: c,
			inbox:   make(chan interface{}, 1024),
			proc:    proc,
			conts:   make(map[int64]*continuation),
		}
		c.actors[n.ID()] = a
	}
	for _, a := range c.actors {
		c.wg.Add(1)
		go a.run()
	}
	return c
}

// Close terminates all actors.
func (c *Cluster) Close() {
	for _, a := range c.actors {
		close(a.inbox)
	}
	c.wg.Wait()
}

// Run processes one query from the given initiator with ripple parameter r
// and blocks until the whole propagation tree has completed. Clusters run
// one query at a time.
func (c *Cluster) Run(initiatorID string, r int) *core.Result {
	return c.run(initiatorID, r, false)
}

// RunTraced is Run with hop-tree tracing: the result carries the query's
// reconstructed propagation tree, structurally identical to the one the
// structural engine records for the same overlay and r.
func (c *Cluster) RunTraced(initiatorID string, r int) *core.Result {
	return c.run(initiatorID, r, true)
}

func (c *Cluster) run(initiatorID string, r int, traced bool) *core.Result {
	init := c.actors[initiatorID]
	if init == nil {
		panic("async: unknown initiator " + initiatorID)
	}
	d := init.node.Zone().Boxes[0].Dims()
	region := overlay.Whole(d)
	if !c.scope.IsEmpty() {
		region = c.scope
	}

	// Resolve the ripple parameter before phases, spans and the cache lookup
	// read it — the same ordering the structural engine uses. The initiator's
	// raw node (not the storage/scope view) describes the local work, matching
	// what the structural engine reports for the same overlay.
	var planned *plan.Decision
	var pq plan.Query
	if c.planner != nil {
		pq = plan.Query{
			Dims: d, OverlaySize: c.size,
			Degree: len(init.node.Links()),
			Local:  storage.Of(init.node).Stats(),
		}
		if h, ok := init.proc.(plan.Hinter); ok {
			hints := h.PlanHints()
			pq.Family, pq.K = hints.Family, hints.K
		}
		if r == plan.RAuto {
			dec := c.planner.Choose(pq)
			planned, r = &dec, dec.R
		}
	}
	if r < 0 {
		r = 0 // RAuto without a planner degrades to fast
	}

	useCache := c.cache != nil && len(c.cacheKey) > 0 && !traced
	var gen cache.Gen
	if useCache {
		if val, ok := c.cache.Get(c.cacheKey); ok {
			if ans, err := cache.DecodeAnswers(val); err == nil {
				return &core.Result{Answers: ans, CacheHit: true, Plan: planned}
			}
		}
		gen = c.cache.Begin()
	}

	c.mu.Lock()
	c.res = &core.Result{Plan: planned}
	c.answered = make(map[string]bool)
	c.done = make(chan struct{})
	c.rec = nil
	if traced {
		root := trace.Span{
			ID:      trace.RootID,
			Peer:    initiatorID,
			Region:  region,
			Phase:   phaseOf(r),
			R:       r,
			Outcome: trace.OutcomeOK,
		}
		if planned != nil {
			root.Plan = planned.String()
		}
		c.rec = trace.NewRecorder()
		c.rec.Record(root)
	}
	c.mu.Unlock()

	init.inbox <- queryMsg{
		inst:     c.nextInst(),
		parent:   "",
		global:   init.proc.InitialState(),
		restrict: region,
		r:        r,
		time:     0,
		spanID:   trace.RootID,
	}
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	c.res.FailedRegions = overlay.CanonicalRegions(c.res.FailedRegions)
	if c.rec != nil {
		c.res.Trace = trace.Build(c.rec.Spans())
	}
	if useCache && !c.res.Partial() {
		c.cache.Put(c.cacheKey, cache.EncodeAnswers(c.res.Answers), d, c.scope, gen)
	}
	if c.planner != nil {
		c.planner.Observe(pq, r, c.res.Stats.Latency, c.res.Stats.Messages())
	}
	return c.res
}

// phaseOf names the template phase for a remaining ripple parameter.
func phaseOf(r int) string {
	if r > 0 {
		return trace.PhaseSlow
	}
	return trace.PhaseFast
}

func (c *Cluster) nextInst() int64 { return atomic.AddInt64(&c.insts, 1) }

func (c *Cluster) send(to string, m interface{}) { c.actors[to].inbox <- m }

func (c *Cluster) recordQuery(peerID string, arriveTime int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.res.Stats.Touch(peerID)
	if arriveTime > c.res.Stats.Latency {
		c.res.Stats.Latency = arriveTime
	}
}

// recordAnswer registers a peer's local answer; like the structural engine,
// a peer answers at most once per query even when its zone is delivered in
// several restriction fragments.
func (c *Cluster) recordAnswer(peerID string, a []dataset.Tuple, spanID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.answered[peerID] {
		return
	}
	c.answered[peerID] = true
	if len(a) > 0 {
		c.res.Stats.AnswerMsgs++
		c.res.Stats.TuplesSent += len(a)
		c.res.Answers = append(c.res.Answers, a...)
		c.rec.AddAnswer(spanID, len(a))
	}
}

// recorder returns the current query's recorder (nil when untraced).
func (c *Cluster) recorder() *trace.Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec
}

func (c *Cluster) recordStates(proc core.Processor, states []core.State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.res.Stats.StateMsgs += len(states)
	for _, s := range states {
		c.res.Stats.TuplesSent += proc.StateTuples(s)
	}
}

func (c *Cluster) finish() { close(c.done) }

// decide consults the injector for one delivery attempt, mirroring the
// structural engine's decision function exactly.
func (c *Cluster) decide(from, to string, attempt int) (extraHops int, outcome string, delivered bool) {
	switch c.inj.Decide(from, to, attempt) {
	case faults.Drop:
		return 0, trace.OutcomeDrop, false
	case faults.Crash:
		return 0, trace.OutcomeCrash, false
	case faults.Delay:
		return c.inj.Config().DelayHops, trace.OutcomeDelay, true
	}
	return 0, trace.OutcomeOK, true
}

func (c *Cluster) recordLoss(sub overlay.Region) {
	c.mu.Lock()
	c.res.Stats.RPCFailures++
	c.res.Stats.Partial = true
	c.res.FailedRegions = append(c.res.FailedRegions, sub)
	c.mu.Unlock()
}

// traverse dispatches a delivery from the actor a towards peer `to` covering
// the restriction region sub, running the replica failover chain when the
// primary is lost — the actor-runtime mirror of the structural engine's
// dispatch. Each dispatch consumes one of k's sequence numbers and records
// one span (the sender owns child spans). It returns the actor to send the
// query to and, for a recovery dispatch, the dead peer the target must act
// as. ok=false means the region was recorded as unrecoverably lost. base is
// the logical time the delivery departs; childR the receiver's remaining
// parameter.
func (c *Cluster) traverse(a *actor, to string, sub overlay.Region, k *continuation, base, childR int) (targetID, actAs string, childSpan uint64, extraHops int, ok bool) {
	from := a.node.ID() // the physical sender, even when acting for a dead peer
	rec := c.recorder()

	k.seq++
	extra, outcome, delivered := c.decide(from, to, 0)
	if rec != nil {
		childSpan = trace.ChildID(k.spanID, to, k.seq)
		rec.Record(trace.Span{
			ID: childSpan, Parent: k.spanID, Peer: to, Region: sub,
			Phase: phaseOf(childR), R: childR, Depth: k.depth + 1,
			Arrive: base + 1 + extra, Outcome: outcome,
		})
	}
	if delivered {
		return to, "", childSpan, extra, true
	}

	// Failover chain, identical to the engine's: re-dispatch the lost region
	// to the dead peer's zone replicas in placement order, under the budget.
	// Recovery span IDs derive from the failed primary span, not k's sequence
	// counter (see the engine's dispatch for why).
	primarySpan := childSpan
	for n, rep := range c.reps.Replicas(to) {
		if c.budget > 0 && n >= c.budget {
			break
		}
		c.mu.Lock()
		c.res.Stats.Failovers++
		c.mu.Unlock()
		attempt := 0
		for {
			extra, outcome, delivered = c.decide(from, rep.ID(), attempt)
			if delivered || attempt >= c.redials {
				break
			}
			attempt++
			c.mu.Lock()
			c.res.Stats.Retries++
			c.mu.Unlock()
		}
		if rec != nil {
			childSpan = trace.ChildID(primarySpan, rep.ID(), n+1)
			if delivered {
				outcome = trace.OutcomeRecovered
			}
			rec.Record(trace.Span{
				ID: childSpan, Parent: k.spanID, Peer: to, Via: rep.ID(), Region: sub,
				Phase: phaseOf(childR), R: childR, Depth: k.depth + 1,
				Arrive: base + 1 + extra, Attempt: attempt, Outcome: outcome,
			})
		}
		if delivered {
			c.mu.Lock()
			c.res.Stats.Recovered++
			c.mu.Unlock()
			return rep.ID(), to, childSpan, extra, true
		}
	}
	c.recordLoss(sub)
	return "", "", 0, 0, false
}

func (a *actor) run() {
	defer a.cluster.wg.Done()
	for m := range a.inbox {
		switch msg := m.(type) {
		case queryMsg:
			a.onQuery(msg)
		case stateMsg:
			a.onStates(msg)
		}
	}
}

// onQuery is the entry half of Algorithm 3: compute states, then either
// start the slow iteration (suspending between links) or fan out fast.
func (a *actor) onQuery(m queryMsg) {
	node := a.node
	if m.actAs != "" && m.actAs != a.node.ID() {
		primary := a.cluster.actors[m.actAs]
		if primary == nil {
			panic("async: recovery dispatch for unknown peer " + m.actAs)
		}
		node = overlay.ActingNode{Primary: primary.node, Via: a.node}
	}
	// Apply the storage lens once the executing identity is resolved; the
	// wrapper delegates ID/Zone/Links, so routing and spans are unaffected,
	// while traverse keeps addressing the physical actor (a.node) directly.
	node = a.cluster.view(node)
	a.cluster.recordQuery(node.ID(), m.time)

	local := a.proc.LocalState(node, m.global)
	wGlobal := a.proc.GlobalState(node, m.global, local)

	k := &continuation{
		node:       node,
		inst:       m.inst,
		parentInst: m.parentInst,
		parent:     m.parent,
		global:     m.global,
		local:      local,
		wGlobal:    wGlobal,
		restrict:   m.restrict,
		r:          m.r,
		cursor:     m.time,
		maxChild:   m.time,
		spanID:     m.spanID,
		depth:      m.depth,
	}
	a.conts[k.inst] = k

	if m.r > 0 {
		k.links = a.sortedLinks(node)
		a.advanceSlow(k)
		return
	}

	// Fast mode (Algorithm 1 / second loop of Algorithm 3): forward to all
	// relevant links at once; children owe this peer a convergecast report.
	k.collected = []core.State{local}
	for _, l := range node.Links() {
		sub := l.Region.Intersect(m.restrict)
		if sub.IsEmpty() || !a.proc.LinkRelevant(node, sub, wGlobal) {
			continue
		}
		targetID, actAs, childSpan, extra, ok := a.cluster.traverse(a, l.To.ID(), sub, k, m.time, 0)
		if !ok {
			continue // unrecoverable: the subtree never joins the convergecast
		}
		k.pending++
		a.cluster.send(targetID, queryMsg{
			inst:       a.cluster.nextInst(),
			parentInst: k.inst,
			parent:     a.node.ID(),
			global:     wGlobal,
			restrict:   sub,
			r:          0,
			time:       m.time + 1 + extra,
			spanID:     childSpan,
			depth:      k.depth + 1,
			actAs:      actAs,
		})
	}
	if k.pending == 0 {
		a.completeFast(k)
	}
}

// advanceSlow resumes the slow loop at the next relevant link, or completes
// the peer's participation.
func (a *actor) advanceSlow(k *continuation) {
	for k.next < len(k.links) {
		l := k.links[k.next]
		k.next++
		sub := l.Region.Intersect(k.restrict)
		if sub.IsEmpty() || !a.proc.LinkRelevant(k.node, sub, k.wGlobal) {
			continue
		}
		targetID, actAs, childSpan, extra, ok := a.cluster.traverse(a, l.To.ID(), sub, k, k.cursor, k.r-1)
		if !ok {
			continue // unrecoverable: skip the link, keep iterating
		}
		a.cluster.send(targetID, queryMsg{
			inst:       a.cluster.nextInst(),
			parentInst: k.inst,
			parent:     a.node.ID(),
			global:     k.wGlobal,
			restrict:   sub,
			r:          k.r - 1,
			time:       k.cursor + 1 + extra,
			spanID:     childSpan,
			depth:      k.depth + 1,
			actAs:      actAs,
		})
		return // suspend until the state response arrives
	}
	a.completeSlow(k)
}

// onStates receives a batch of remote local states: the response a slow loop
// awaits, or a convergecast report in fast mode.
func (a *actor) onStates(m stateMsg) {
	k := a.conts[m.parentInst]
	if k == nil {
		return
	}

	if k.r > 0 {
		// Algorithm 3 lines 7-9: fold the received states in, then continue.
		// State messages are counted where the paper's slow loop reads them.
		a.cluster.recordStates(a.proc, m.states)
		k.local = a.proc.MergeStates(k.node, append([]core.State{k.local}, m.states...))
		k.wGlobal = a.proc.GlobalState(k.node, k.global, k.local)
		k.cursor = m.time
		a.advanceSlow(k)
		return
	}

	// Fast-mode convergecast: collect and, when every child has reported,
	// aggregate upstream.
	k.collected = append(k.collected, m.states...)
	if m.time > k.maxChild {
		k.maxChild = m.time
	}
	k.pending--
	if k.pending == 0 {
		a.completeFast(k)
	}
}

func (a *actor) completeSlow(k *continuation) {
	delete(a.conts, k.inst)
	a.cluster.recordAnswer(k.node.ID(), a.proc.LocalAnswer(k.node, k.local), k.spanID)
	a.cluster.recorder().SetStateTuples(k.spanID, a.proc.StateTuples(k.local))
	if k.parent == "" {
		a.cluster.finish()
		return
	}
	a.cluster.send(k.parent, stateMsg{
		parentInst: k.parentInst,
		states:     []core.State{k.local},
		time:       k.cursor,
	})
}

func (a *actor) completeFast(k *continuation) {
	delete(a.conts, k.inst)
	a.cluster.recordAnswer(k.node.ID(), a.proc.LocalAnswer(k.node, k.local), k.spanID)
	a.cluster.recorder().SetStateTuples(k.spanID, a.proc.StateTuples(k.local))
	if k.parent == "" {
		a.cluster.finish()
		return
	}
	a.cluster.send(k.parent, stateMsg{
		parentInst: k.parentInst,
		states:     k.collected,
		time:       k.maxChild,
	})
}

func (a *actor) sortedLinks(node overlay.Node) []overlay.Link {
	type ranked struct {
		link overlay.Link
		prio float64
	}
	rs := make([]ranked, 0, len(node.Links()))
	for _, l := range node.Links() {
		rs = append(rs, ranked{link: l, prio: a.proc.LinkPriority(node, l.Region)})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].prio < rs[j].prio })
	links := make([]overlay.Link, len(rs))
	for i, r := range rs {
		links[i] = r.link
	}
	return links
}
