package async

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

func sortedIDs(ts []dataset.Tuple) []uint64 {
	ids := make([]uint64, 0, len(ts))
	for _, t := range ts {
		ids = append(ids, t.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// The injector's decisions are a pure function of the link identity, so the
// actor runtime under faults must reproduce the structural engine under the
// same faults exactly: same surviving answers, same lost regions, same
// counters, same hop clocks — regardless of goroutine interleaving.
func TestInjectedClusterMatchesEngine(t *testing.T) {
	ts := dataset.NBA(3000, 1)
	net := midas.Build(64, midas.Options{Dims: 6, Seed: 3})
	overlay.Load(net, ts)
	proc := &topk.Processor{F: topk.UniformLinear(6), K: 10}
	inj := faults.New(faults.Config{Seed: 77, DropRate: 0.15, DelayRate: 0.1, DelayHops: 2})
	cluster := NewClusterInjected(net, proc, inj)
	defer cluster.Close()

	rng := rand.New(rand.NewSource(5))
	sawPartial := false
	for _, r := range []int{0, 2, 1 << 20} {
		for q := 0; q < 3; q++ {
			w := net.RandomPeer(rng)
			sync := core.RunInjected(w, proc, r, inj)
			asyn := cluster.Run(w.ID(), r)

			if sync.Stats.Latency != asyn.Stats.Latency {
				t.Fatalf("r=%d: latency sync %d vs async %d", r, sync.Stats.Latency, asyn.Stats.Latency)
			}
			if sync.Stats.QueryMsgs != asyn.Stats.QueryMsgs {
				t.Fatalf("r=%d: query msgs sync %d vs async %d", r, sync.Stats.QueryMsgs, asyn.Stats.QueryMsgs)
			}
			if sync.Stats.RPCFailures != asyn.Stats.RPCFailures {
				t.Fatalf("r=%d: failures sync %d vs async %d", r, sync.Stats.RPCFailures, asyn.Stats.RPCFailures)
			}
			if sync.Partial() != asyn.Partial() || sync.Stats.Partial != asyn.Stats.Partial {
				t.Fatalf("r=%d: partial flags disagree", r)
			}
			if len(sync.FailedRegions) != len(asyn.FailedRegions) {
				t.Fatalf("r=%d: failed regions sync %d vs async %d",
					r, len(sync.FailedRegions), len(asyn.FailedRegions))
			}
			if !reflect.DeepEqual(sortedIDs(sync.Answers), sortedIDs(asyn.Answers)) {
				t.Fatalf("r=%d: surviving answers differ under identical faults", r)
			}
			sawPartial = sawPartial || sync.Partial()
		}
	}
	if !sawPartial {
		t.Fatal("15% drop rate over 18 queries never lost a link (tune the seed if this fires)")
	}
}

// A nil injector must leave the cluster byte-identical to NewCluster.
func TestNilInjectorClusterUnchanged(t *testing.T) {
	ts := dataset.NBA(1500, 2)
	net := midas.Build(32, midas.Options{Dims: 6, Seed: 4})
	overlay.Load(net, ts)
	proc := &topk.Processor{F: topk.UniformLinear(6), K: 5}

	plain := NewCluster(net, proc)
	defer plain.Close()
	injected := NewClusterInjected(net, proc, nil)
	defer injected.Close()

	w := net.Peers()[1]
	for _, r := range []int{0, 1 << 20} {
		a, b := plain.Run(w.ID(), r), injected.Run(w.ID(), r)
		if a.Stats.Latency != b.Stats.Latency || a.Stats.QueryMsgs != b.Stats.QueryMsgs {
			t.Fatalf("r=%d: nil injector changed the costs", r)
		}
		if b.Partial() || b.Stats.RPCFailures != 0 || len(b.FailedRegions) != 0 {
			t.Fatalf("r=%d: nil injector produced failures", r)
		}
	}
}
