package async

import (
	"math/rand"
	"testing"

	"ripple/internal/baselines/naive"
	"ripple/internal/can"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

// The actor runtime must reproduce the structural engine exactly on
// single-delivery overlays: same answers, same message counts, same
// hop-accurate latency, for every ripple parameter.
func TestAsyncMatchesEngineTopK(t *testing.T) {
	ts := dataset.NBA(4000, 1)
	net := midas.Build(96, midas.Options{Dims: 6, Seed: 3})
	overlay.Load(net, ts)
	proc := &topk.Processor{F: topk.UniformLinear(6), K: 10}
	cluster := NewCluster(net, proc)
	defer cluster.Close()

	rng := rand.New(rand.NewSource(5))
	for _, r := range []int{0, 1, 3, 1 << 20} {
		for q := 0; q < 4; q++ {
			w := net.RandomPeer(rng)
			sync := core.Run(w, proc, r)
			asyn := cluster.Run(w.ID(), r)

			if sync.Stats.Latency != asyn.Stats.Latency {
				t.Fatalf("r=%d: latency sync %d vs async %d", r, sync.Stats.Latency, asyn.Stats.Latency)
			}
			if sync.Stats.QueryMsgs != asyn.Stats.QueryMsgs {
				t.Fatalf("r=%d: query msgs sync %d vs async %d", r, sync.Stats.QueryMsgs, asyn.Stats.QueryMsgs)
			}
			if sync.Stats.StateMsgs != asyn.Stats.StateMsgs {
				t.Fatalf("r=%d: state msgs sync %d vs async %d", r, sync.Stats.StateMsgs, asyn.Stats.StateMsgs)
			}
			got := topk.Select(asyn.Answers, proc.F, proc.K)
			want := topk.Select(sync.Answers, proc.F, proc.K)
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("r=%d: answer %d differs", r, i)
				}
			}
		}
	}
}

func TestAsyncMatchesEngineSkyline(t *testing.T) {
	ts := dataset.Synth(dataset.SynthConfig{N: 2500, Dims: 3, Centers: 20, Seed: 7})
	net := midas.Build(64, midas.Options{Dims: 3, Seed: 9, PreferBorder: true})
	overlay.Load(net, ts)
	proc := &skyline.Processor{}
	cluster := NewCluster(net, proc)
	defer cluster.Close()

	want := skyline.Compute(ts)
	for _, r := range []int{0, 2, 1 << 20} {
		res := cluster.Run(net.Peers()[5].ID(), r)
		got := skyline.Compute(res.Answers)
		if len(got) != len(want) {
			t.Fatalf("r=%d: async skyline %d vs %d", r, len(got), len(want))
		}
	}
}

func TestAsyncBroadcastExactlyOnce(t *testing.T) {
	net := midas.Build(128, midas.Options{Dims: 3, Seed: 11})
	overlay.Load(net, dataset.Uniform(400, 3, 2))
	proc := &naive.Processor{LocalSelect: func(w overlay.Node) []dataset.Tuple { return w.Tuples() }}
	cluster := NewCluster(net, proc)
	defer cluster.Close()

	res := cluster.Run(net.Peers()[0].ID(), 0)
	if res.Stats.QueryMsgs != 128 || res.Stats.MaxPerPeer() != 1 {
		t.Fatalf("async broadcast: msgs=%d maxPerPeer=%d", res.Stats.QueryMsgs, res.Stats.MaxPerPeer())
	}
	if len(res.Answers) != 400 {
		t.Fatalf("collected %d tuples, want 400", len(res.Answers))
	}
}

func TestAsyncLemmaLatencies(t *testing.T) {
	// On a perfect tree with a never-pruning processor, the actor runtime's
	// message clocks must reproduce the Lemma 1-3 worst cases exactly.
	const depth = 6
	net := midas.BuildPerfect(depth, midas.Options{Dims: 2, Seed: 1})
	proc := &naive.Processor{LocalSelect: func(w overlay.Node) []dataset.Tuple { return nil }}
	cluster := NewCluster(net, proc)
	defer cluster.Close()

	for r := 0; r <= depth; r++ {
		res := cluster.Run(net.Peers()[0].ID(), r)
		want := core.RippleWorstLatency(depth, 0, r)
		if res.Stats.Latency != want {
			t.Fatalf("r=%d: async latency %d, lemma predicts %d", r, res.Stats.Latency, want)
		}
	}
}

func TestAsyncOverCANFragments(t *testing.T) {
	// Over CAN a peer can receive several restriction fragments; the runtime
	// must keep per-delivery continuations and still answer once per peer.
	ts := dataset.NBA(2000, 4)
	net := can.Build(48, can.Options{Dims: 6, Seed: 5})
	overlay.Load(net, ts)
	proc := &topk.Processor{F: topk.UniformLinear(6), K: 8}
	cluster := NewCluster(net, proc)
	defer cluster.Close()

	want := topk.Brute(ts, proc.F, 8)
	for _, r := range []int{0, 2, 1 << 20} {
		res := cluster.Run(net.Peers()[0].ID(), r)
		got := topk.Select(res.Answers, proc.F, 8)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("r=%d: CAN async answer %d differs", r, i)
			}
		}
	}
}

func TestAsyncSequentialQueriesReuseCluster(t *testing.T) {
	ts := dataset.Uniform(500, 2, 3)
	net := midas.Build(32, midas.Options{Dims: 2, Seed: 13})
	overlay.Load(net, ts)
	proc := &topk.Processor{F: topk.UniformLinear(2), K: 5}
	cluster := NewCluster(net, proc)
	defer cluster.Close()
	want := topk.Brute(ts, proc.F, 5)
	for q := 0; q < 10; q++ {
		res := cluster.Run(net.Peers()[q%32].ID(), q%3)
		got := topk.Select(res.Answers, proc.F, 5)
		if got[0].ID != want[0].ID {
			t.Fatalf("query %d: wrong best answer", q)
		}
	}
}

func TestAsyncMatchesEngineSkylineStats(t *testing.T) {
	ts := dataset.NBA(2500, 11)
	net := midas.BuildWithData(48, midas.Options{Dims: 6, Seed: 15, PreferBorder: true}, ts)
	proc := &skyline.Processor{}
	cluster := NewCluster(net, proc)
	defer cluster.Close()
	for _, r := range []int{0, 2, 1 << 20} {
		w := net.Peers()[9]
		sync := core.Run(w, proc, r)
		asyn := cluster.Run(w.ID(), r)
		if sync.Stats.Latency != asyn.Stats.Latency || sync.Stats.QueryMsgs != asyn.Stats.QueryMsgs {
			t.Fatalf("r=%d: stats diverge: engine (lat %d, msgs %d) vs actors (lat %d, msgs %d)",
				r, sync.Stats.Latency, sync.Stats.QueryMsgs, asyn.Stats.Latency, asyn.Stats.QueryMsgs)
		}
		if len(skyline.Compute(sync.Answers)) != len(skyline.Compute(asyn.Answers)) {
			t.Fatalf("r=%d: answers diverge", r)
		}
	}
}
