package core_test

import (
	"reflect"
	"sort"
	"testing"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

func ids(ts []dataset.Tuple) []uint64 {
	out := make([]uint64, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RunInjected with a nil (or rate-0) injector must be indistinguishable
// from Run.
func TestRunInjectedZeroRateIdentical(t *testing.T) {
	ts := dataset.NBA(2000, 3)
	net := midas.Build(48, midas.Options{Dims: 6, Seed: 8})
	overlay.Load(net, ts)
	proc := &topk.Processor{F: topk.UniformLinear(6), K: 10}

	w := net.Peers()[3]
	for _, r := range []int{0, 1, 1 << 20} {
		plain := core.Run(w, proc, r)
		for _, inj := range []*faults.Injector{nil, faults.New(faults.Config{Seed: 123})} {
			got := core.RunInjected(w, proc, r, inj)
			if got.Stats.Latency != plain.Stats.Latency ||
				got.Stats.QueryMsgs != plain.Stats.QueryMsgs ||
				got.Stats.StateMsgs != plain.Stats.StateMsgs ||
				got.Stats.TuplesSent != plain.Stats.TuplesSent {
				t.Fatalf("r=%d: costs changed under a no-op injector", r)
			}
			if got.Partial() || got.Stats.Partial || got.Stats.RPCFailures != 0 || len(got.FailedRegions) != 0 {
				t.Fatalf("r=%d: no-op injector reported failures", r)
			}
			if !reflect.DeepEqual(ids(got.Answers), ids(plain.Answers)) {
				t.Fatalf("r=%d: answers changed under a no-op injector", r)
			}
		}
	}
}

// Under drops, the engine must terminate, record one failed region per lost
// link, and keep every surviving answer genuine (a subset of the data).
func TestRunInjectedDropsArePartialAndAccounted(t *testing.T) {
	ts := dataset.NBA(2000, 4)
	net := midas.Build(64, midas.Options{Dims: 6, Seed: 9})
	overlay.Load(net, ts)
	proc := &topk.Processor{F: topk.UniformLinear(6), K: 10}
	inj := faults.New(faults.Config{Seed: 21, DropRate: 0.3})

	byID := make(map[uint64]bool, len(ts))
	for _, tu := range ts {
		byID[tu.ID] = true
	}
	sawLoss := false
	for _, r := range []int{0, 1 << 20} {
		res := core.RunInjected(net.Peers()[0], proc, r, inj)
		if res.Stats.RPCFailures != len(res.FailedRegions) {
			t.Fatalf("r=%d: %d failures but %d failed regions",
				r, res.Stats.RPCFailures, len(res.FailedRegions))
		}
		if (res.Stats.RPCFailures > 0) != res.Partial() {
			t.Fatalf("r=%d: Partial=%t with %d failures", r, res.Partial(), res.Stats.RPCFailures)
		}
		for _, a := range res.Answers {
			if !byID[a.ID] {
				t.Fatalf("r=%d: fabricated answer %v", r, a)
			}
		}
		for _, reg := range res.FailedRegions {
			if reg.IsEmpty() {
				t.Fatalf("r=%d: empty failed region", r)
			}
		}
		sawLoss = sawLoss || res.Partial()
	}
	if !sawLoss {
		t.Fatal("30% drop rate never lost a link (tune the seed if this fires)")
	}
}

// A delayed link charges extra hops: with every link slow by 3 hops, the
// fast-mode latency is exactly (1+3)x the clean depth.
func TestRunInjectedDelayScalesLatency(t *testing.T) {
	ts := dataset.NBA(1000, 6)
	net := midas.Build(32, midas.Options{Dims: 6, Seed: 10})
	overlay.Load(net, ts)
	proc := &topk.Processor{F: topk.UniformLinear(6), K: 5}

	w := net.Peers()[0]
	clean := core.Run(w, proc, 0)
	slowed := core.RunInjected(w, proc, 0, faults.New(faults.Config{Seed: 1, DelayRate: 1, DelayHops: 3}))
	if slowed.Stats.Latency != 4*clean.Stats.Latency {
		t.Fatalf("latency %d with every hop slowed by 3, want %d",
			slowed.Stats.Latency, 4*clean.Stats.Latency)
	}
	if slowed.Partial() || slowed.Stats.RPCFailures != 0 {
		t.Fatal("delays must not mark the answer partial")
	}
	if !reflect.DeepEqual(ids(slowed.Answers), ids(clean.Answers)) {
		t.Fatal("delays must not change the answer set")
	}
}

// Result.Partial is derived from Stats.Partial (one source of truth), so the
// two can never diverge; this pins the invariant plus its corollaries — a
// partial result always names the lost regions and counts the failures.
func TestPartialCannotDivergeFromStats(t *testing.T) {
	ts := dataset.Uniform(800, 3, 11)
	net := midas.Build(32, midas.Options{Dims: 3, Seed: 11})
	overlay.Load(net, ts)
	proc := &topk.Processor{F: topk.UniformLinear(3), K: 8}

	sawPartial := false
	for seed := int64(1); seed <= 6; seed++ {
		inj := faults.New(faults.Config{Seed: seed, DropRate: 0.2})
		for _, r := range []int{0, 2, 1 << 20} {
			res := core.RunInjected(net.Peers()[5], proc, r, inj)
			if res.Partial() != res.Stats.Partial {
				t.Fatalf("seed=%d r=%d: Partial() %v != Stats.Partial %v",
					seed, r, res.Partial(), res.Stats.Partial)
			}
			if res.Partial() != (len(res.FailedRegions) > 0) {
				t.Fatalf("seed=%d r=%d: partial=%v but %d failed regions",
					seed, r, res.Partial(), len(res.FailedRegions))
			}
			if res.Partial() && res.Stats.RPCFailures == 0 {
				t.Fatalf("seed=%d r=%d: partial without counted failures", seed, r)
			}
			sawPartial = sawPartial || res.Partial()
		}
	}
	if !sawPartial {
		t.Fatal("no query went partial; the invariant was never exercised")
	}
}
