package core_test

import (
	"math"
	"math/rand"
	"testing"

	"ripple/internal/baselines/naive"
	"ripple/internal/chord"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

func allTuples(w overlay.Node) []dataset.Tuple { return w.Tuples() }

func TestBroadcastReachesEveryPeerExactlyOnce(t *testing.T) {
	for _, size := range []int{1, 2, 5, 33, 256} {
		n := midas.Build(size, midas.Options{Dims: 3, Seed: int64(size)})
		overlay.Load(n, dataset.Uniform(200, 3, 7))
		res := naive.Broadcast(n.Peers()[0], allTuples)
		if res.Stats.QueryMsgs != size {
			t.Fatalf("size %d: %d query messages, want %d", size, res.Stats.QueryMsgs, size)
		}
		if res.Stats.PeersReached() != size {
			t.Fatalf("size %d: reached %d peers, want %d", size, res.Stats.PeersReached(), size)
		}
		if res.Stats.MaxPerPeer() != 1 {
			t.Fatalf("size %d: duplicate delivery (max per peer %d)", size, res.Stats.MaxPerPeer())
		}
		if len(res.Answers) != 200 {
			t.Fatalf("size %d: collected %d tuples, want 200", size, len(res.Answers))
		}
	}
}

func TestSlowBroadcastVisitsSequentially(t *testing.T) {
	// With no pruning, slow mode contacts one peer after another: latency is
	// exactly n-1 forwards.
	n := midas.Build(50, midas.Options{Dims: 2, Seed: 1})
	p := &naive.Processor{LocalSelect: allTuples}
	res := core.RunMode(n.Peers()[3], p, core.Slow, 0)
	if res.Stats.Latency != 49 {
		t.Fatalf("slow broadcast latency = %d, want 49", res.Stats.Latency)
	}
	if res.Stats.QueryMsgs != 50 {
		t.Fatalf("slow broadcast msgs = %d, want 50", res.Stats.QueryMsgs)
	}
}

func TestFastLatencyBoundedByDepth(t *testing.T) {
	n := midas.Build(300, midas.Options{Dims: 3, Seed: 5})
	depth := n.MaxDepth()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		res := naive.Broadcast(n.RandomPeer(rng), allTuples)
		if res.Stats.Latency > depth {
			t.Fatalf("fast latency %d exceeds diameter %d", res.Stats.Latency, depth)
		}
	}
}

// TestLemmaLatenciesOnPerfectTree validates the engine's hop accounting
// against the exact worst-case formulas of §3.2. On a perfect MIDAS tree with
// a never-pruning processor, every link is followed, so measured latency must
// EQUAL L_f(0), L_s(0) and the L_r(0, r) recurrence.
func TestLemmaLatenciesOnPerfectTree(t *testing.T) {
	const depth = 7 // 128 peers
	n := midas.BuildPerfect(depth, midas.Options{Dims: 2, Seed: 3})
	if n.Size() != 1<<depth {
		t.Fatalf("perfect build size = %d", n.Size())
	}
	if n.MaxDepth() != depth {
		t.Fatalf("perfect build depth = %d, want %d", n.MaxDepth(), depth)
	}
	p := &naive.Processor{LocalSelect: func(w overlay.Node) []dataset.Tuple { return nil }}
	initiator := n.Peers()[0]
	for r := 0; r <= depth+1; r++ {
		res := core.Run(initiator, p, r)
		want := core.RippleWorstLatency(depth, 0, r)
		if res.Stats.Latency != want {
			t.Fatalf("r=%d: measured latency %d, lemma predicts %d", r, res.Stats.Latency, want)
		}
	}
	// The extremes must match Lemmas 1 and 2.
	if got := core.RippleWorstLatency(depth, 0, 0); got != core.FastWorstLatency(depth, 0) {
		t.Fatalf("L_r(0,0) = %d != L_f(0) = %d", got, core.FastWorstLatency(depth, 0))
	}
	if got := core.RippleWorstLatency(depth, 0, depth); got != core.SlowWorstLatency(depth, 0) {
		t.Fatalf("L_r(0,∆) = %d != L_s(0) = %d", got, core.SlowWorstLatency(depth, 0))
	}
}

func TestLemmaClosedForms(t *testing.T) {
	// The paper solves the recurrence analytically for r = 1 as
	// L_r(δ,1) = (∆−δ)²/2 + (∆−δ)/2; check the DP against it. (The paper's
	// printed polynomials for r = 2, 3 do NOT satisfy its own Lemma 3
	// recurrence — expanding L_r(δ,2) = Σ(1 + L_r(ℓ,1)) yields x³/6 + 5x/6,
	// an erratum recorded in EXPERIMENTS.md — so we verify the recurrence's
	// true expansion instead.)
	for delta := 0; delta <= 10; delta++ {
		for dMax := delta; dMax <= 12; dMax++ {
			x := float64(dMax - delta)
			want1 := x*x/2 + x/2
			if got := float64(core.RippleWorstLatency(dMax, delta, 1)); got != want1 {
				t.Fatalf("L_r(%d,1) over ∆=%d: got %v, want %v", delta, dMax, got, want1)
			}
			want2 := x*x*x/6 + 5*x/6
			if got := float64(core.RippleWorstLatency(dMax, delta, 2)); math.Abs(got-want2) > 1e-9 {
				t.Fatalf("L_r(%d,2) over ∆=%d: got %v, want %v", delta, dMax, got, want2)
			}
		}
	}
}

func TestRippleLatencyMonotoneInR(t *testing.T) {
	const depth = 6
	n := midas.BuildPerfect(depth, midas.Options{Dims: 3, Seed: 8})
	p := &naive.Processor{LocalSelect: func(w overlay.Node) []dataset.Tuple { return nil }}
	prev := -1
	for r := 0; r <= depth; r++ {
		res := core.Run(n.Peers()[0], p, r)
		if res.Stats.Latency < prev {
			t.Fatalf("latency decreased from %d to %d at r=%d", prev, res.Stats.Latency, r)
		}
		prev = res.Stats.Latency
	}
}

func TestTopKCorrectAcrossModes(t *testing.T) {
	ts := dataset.NBA(3000, 1)
	n := midas.Build(64, midas.Options{Dims: 6, Seed: 10})
	overlay.Load(n, ts)
	f := topk.UniformLinear(6)
	want := topk.Brute(ts, f, 10)
	rng := rand.New(rand.NewSource(4))
	for _, r := range []int{0, 1, 2, 4, 1 << 20} {
		for q := 0; q < 5; q++ {
			got, stats := topk.Run(n.RandomPeer(rng), f, 10, r)
			if len(got) != 10 {
				t.Fatalf("r=%d: got %d results", r, len(got))
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					t.Fatalf("r=%d query %d: result %d = %v, want %v", r, q, i, got[i], want[i])
				}
			}
			if stats.MaxPerPeer() != 1 {
				t.Fatalf("r=%d: duplicate query delivery", r)
			}
		}
	}
}

func TestTopKPeakScorer(t *testing.T) {
	ts := dataset.Uniform(2000, 3, 6)
	n := midas.Build(48, midas.Options{Dims: 3, Seed: 12})
	overlay.Load(n, ts)
	f := topk.Peak{Center: []float64{0.7, 0.2, 0.5}, Sharpness: 8}
	want := topk.Brute(ts, f, 5)
	got, _ := topk.Run(n.Peers()[0], f, 5, 2)
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("peak scorer result %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTopKSlowCheaperThanFast(t *testing.T) {
	// The paper's central trade-off: slow should touch fewer peers than fast,
	// fast should answer in fewer hops than slow (averaged over queries).
	ts := dataset.NBA(5000, 2)
	n := midas.Build(128, midas.Options{Dims: 6, Seed: 14})
	overlay.Load(n, ts)
	f := topk.UniformLinear(6)
	rng := rand.New(rand.NewSource(9))
	var fastLat, slowLat, fastCong, slowCong float64
	const q = 20
	for i := 0; i < q; i++ {
		w := n.RandomPeer(rng)
		_, sf := topk.Run(w, f, 10, 0)
		_, ss := topk.Run(w, f, 10, 1<<20)
		fastLat += float64(sf.Latency)
		slowLat += float64(ss.Latency)
		fastCong += sf.Congestion()
		slowCong += ss.Congestion()
	}
	if fastLat >= slowLat {
		t.Fatalf("mean fast latency %v not below slow %v", fastLat/q, slowLat/q)
	}
	if slowCong >= fastCong {
		t.Fatalf("mean slow congestion %v not below fast %v", slowCong/q, fastCong/q)
	}
}

func TestTopKOnSinglePeer(t *testing.T) {
	n := midas.Build(1, midas.Options{Dims: 2, Seed: 6})
	ts := dataset.Uniform(50, 2, 5)
	overlay.Load(n, ts)
	f := topk.UniformLinear(2)
	got, stats := topk.Run(n.Peers()[0], f, 3, 0)
	want := topk.Brute(ts, f, 3)
	if len(got) != 3 || got[0].ID != want[0].ID {
		t.Fatalf("single-peer topk wrong: %v vs %v", got, want)
	}
	if stats.Latency != 0 || stats.QueryMsgs != 1 {
		t.Fatalf("single-peer costs: %+v", stats)
	}
}

func TestTopKLargerThanDataset(t *testing.T) {
	n := midas.Build(16, midas.Options{Dims: 2, Seed: 7})
	ts := dataset.Uniform(10, 2, 5)
	overlay.Load(n, ts)
	f := topk.UniformLinear(2)
	got, _ := topk.Run(n.Peers()[0], f, 50, 3)
	if len(got) != 10 {
		t.Fatalf("k > |D| should return all %d tuples, got %d", 10, len(got))
	}
}

func TestRippleOverChordAllModes(t *testing.T) {
	// Overlay-genericity at the engine level: ripple(r) must stay correct and
	// exactly-once over Chord's arc regions for every r.
	ring := chord.Build(40, 3)
	ts := dataset.Uniform(600, 1, 9)
	overlay.Load(ring, ts)
	f := topk.UniformLinear(1)
	want := topk.Brute(ts, f, 7)
	for _, r := range []int{0, 1, 2, 5, 1 << 20} {
		got, stats := topk.Run(ring.Peers()[11], f, 7, r)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("r=%d: rank %d mismatch", r, i)
			}
		}
		if stats.MaxPerPeer() > 2 {
			t.Fatalf("r=%d: a peer processed %d fragments", r, stats.MaxPerPeer())
		}
	}
}

func TestRunModeSelectsR(t *testing.T) {
	n := midas.Build(8, midas.Options{Dims: 2, Seed: 2})
	overlay.Load(n, dataset.Uniform(40, 2, 1))
	p := &naive.Processor{LocalSelect: allTuples}
	fast := core.RunMode(n.Peers()[0], p, core.Fast, 99) // r ignored at the extremes
	if fast.Stats.QueryMsgs != 8 {
		t.Fatalf("fast mode msgs = %d", fast.Stats.QueryMsgs)
	}
	slow := core.RunMode(n.Peers()[0], p, core.Slow, 0)
	if slow.Stats.Latency != 7 {
		t.Fatalf("slow mode latency = %d, want 7", slow.Stats.Latency)
	}
	// Ripple with an explicit r must match Run(r) exactly.
	for _, r := range []int{1, 2, 3} {
		a := core.RunMode(n.Peers()[0], p, core.Ripple, r)
		b := core.Run(n.Peers()[0], p, r)
		if a.Stats.Latency != b.Stats.Latency || a.Stats.QueryMsgs != b.Stats.QueryMsgs ||
			a.Stats.StateMsgs != b.Stats.StateMsgs {
			t.Fatalf("RunMode(Ripple, %d) stats %+v != Run stats %+v", r, a.Stats, b.Stats)
		}
	}
}
