package core

// Analytic worst-case latency formulas for RIPPLE over MIDAS (§3.2). With ∆
// the depth of the MIDAS virtual k-d tree and δ the depth of the subtree a
// query is restricted to, the paper proves:
//
//	Lemma 1 (fast):  L_f(δ) = ∆ − δ
//	Lemma 2 (slow):  L_s(δ) = 2^(∆−δ) − 1
//	Lemma 3 (ripple): L_r(δ, r) = 1 + L_r(δ+1, r) + L_r(δ+1, r−1),
//	                 L_r(δ, 0) = ∆ − δ,  L_r(∆, r) = 0
//
// These are exposed so that the benchmark harness and tests can compare the
// engine's measured worst-case hop counts against the theory.

// FastWorstLatency returns L_f(δ) for a MIDAS tree of depth delta_ (∆).
func FastWorstLatency(deltaMax, delta int) int {
	if delta >= deltaMax {
		return 0
	}
	return deltaMax - delta
}

// SlowWorstLatency returns L_s(δ) = 2^(∆−δ) − 1.
func SlowWorstLatency(deltaMax, delta int) int {
	if delta >= deltaMax {
		return 0
	}
	return (1 << uint(deltaMax-delta)) - 1
}

// RippleWorstLatency evaluates the Lemma 3 recurrence L_r(δ, r) exactly via
// dynamic programming.
func RippleWorstLatency(deltaMax, delta, r int) int {
	if delta >= deltaMax {
		return 0
	}
	if r <= 0 {
		return FastWorstLatency(deltaMax, delta)
	}
	if r > deltaMax {
		r = deltaMax // deeper r never changes the value (degenerates to slow)
	}
	// table[d][k] = L_r(d, k)
	table := make([][]int, deltaMax+1)
	for d := deltaMax; d >= 0; d-- {
		table[d] = make([]int, r+1)
		for k := 0; k <= r; k++ {
			switch {
			case d == deltaMax:
				table[d][k] = 0
			case k == 0:
				table[d][k] = deltaMax - d
			default:
				table[d][k] = 1 + table[d+1][k] + table[d+1][k-1]
			}
		}
	}
	return table[delta][r]
}
