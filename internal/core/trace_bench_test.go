package core_test

import (
	"testing"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

// The disabled-tracing hot path is guarded at the hook level by
// TestDisabledRecorderZeroAlloc in internal/trace (every recorder call on
// the nil recorder must allocate nothing); these benchmarks expose the
// end-to-end cost of turning tracing on so regressions in either direction
// are visible: compare BenchmarkRunUntraced to BenchmarkRunTraced.

func benchOverlay(b *testing.B) (overlay.Node, core.Processor) {
	b.Helper()
	n := midas.Build(64, midas.Options{Dims: 3, Seed: 21})
	overlay.Load(n, dataset.Uniform(2000, 3, 21))
	return n.Peers()[9], &topk.Processor{F: topk.UniformLinear(3), K: 10}
}

func BenchmarkRunUntraced(b *testing.B) {
	w, p := benchOverlay(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Run(w, p, 2)
		if res.Trace != nil {
			b.Fatal("untraced run produced a trace")
		}
	}
}

func BenchmarkRunTraced(b *testing.B) {
	w, p := benchOverlay(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.RunOpts(w, p, 2, core.Options{Trace: true})
		if res.Trace == nil {
			b.Fatal("traced run produced no trace")
		}
	}
}

// TestUntracedRunCarriesNoTrace pins the disabled default: tracing is
// strictly opt-in and Run/RunInjected never pay for it.
func TestUntracedRunCarriesNoTrace(t *testing.T) {
	n := midas.Build(16, midas.Options{Dims: 2, Seed: 4})
	overlay.Load(n, dataset.Uniform(100, 2, 4))
	p := &topk.Processor{F: topk.UniformLinear(2), K: 3}
	if res := core.Run(n.Peers()[0], p, 1); res.Trace != nil {
		t.Fatal("Run attached a trace")
	}
	if res := core.RunInjected(n.Peers()[0], p, 0, nil); res.Trace != nil {
		t.Fatal("RunInjected attached a trace")
	}
}
