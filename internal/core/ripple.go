// Package core implements the RIPPLE framework itself (§3 of the paper): the
// generic fast / slow / ripple(r) template algorithms that propagate a rank
// query through a structured overlay using per-link regions, restriction
// areas and query-processing state.
//
// A query type (top-k, skyline, k-diversification, ...) plugs into the
// template by implementing Processor, the Go rendering of the paper's six
// abstract functions:
//
//	computeLocalState    -> Processor.LocalState
//	computeGlobalState   -> Processor.GlobalState
//	updateLocalState     -> Processor.MergeStates
//	isLinkRelevant       -> Processor.LinkRelevant
//	comp                 -> Processor.LinkPriority (priority score, lower first)
//	computeLocalAnswer   -> Processor.LocalAnswer
//
// Latency is accounted structurally in hops, matching the paper's Lemmas 1-3:
// one hop per forwarded query message; parallel fan-out (fast mode) takes the
// maximum over branches, sequential iteration (slow mode) sums; responses are
// not charged to latency but are counted as messages.
package core

import (
	"sort"

	"ripple/internal/cache"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/overlay"
	"ripple/internal/plan"
	"ripple/internal/sim"
	"ripple/internal/storage"
	"ripple/internal/trace"
)

// State is the query-processing state exchanged between peers. Its concrete
// type is owned by the Processor; the engine only moves it around.
type State interface{}

// Processor instantiates RIPPLE for one query type. A Processor value is
// created per query and may carry the query parameters (scoring function, k,
// query point, ...).
type Processor interface {
	// LocalState computes the peer's local state from its stored tuples and
	// the received global state (computeLocalState).
	LocalState(w overlay.Node, global State) State
	// GlobalState combines the received global state with the peer's current
	// local state (computeGlobalState).
	GlobalState(w overlay.Node, global, local State) State
	// MergeStates folds a set of received remote local states into the
	// peer's local state (updateLocalState). The first element is always the
	// peer's own current local state.
	MergeStates(w overlay.Node, states []State) State
	// LinkRelevant decides whether the part `region` of the domain (already
	// intersected with the restriction area) can contribute answer tuples
	// given the peer's global state (the content half of isLinkRelevant; the
	// engine itself performs the restriction-overlap half).
	LinkRelevant(w overlay.Node, region overlay.Region, global State) bool
	// LinkPriority orders links for slow-mode iteration (comp): links with a
	// smaller priority value are visited first.
	LinkPriority(w overlay.Node, region overlay.Region) float64
	// LocalAnswer extracts the peer's qualifying tuples from its final local
	// state (computeLocalAnswer).
	LocalAnswer(w overlay.Node, local State) []dataset.Tuple
	// InitialState is the neutral global state the initiator starts from.
	InitialState() State
	// StateTuples reports how many tuples a state message carries, for the
	// communication-overhead accounting.
	StateTuples(s State) int
}

// Result is the outcome of running a query: the union of all local answers
// (the initiator post-processes it per query type) and the cost statistics.
type Result struct {
	Answers []dataset.Tuple
	Stats   sim.Stats

	// FailedRegions are the restriction regions of the lost subtrees: the
	// only parts of the domain the answer can be missing tuples from.
	FailedRegions []overlay.Region

	// Trace is the query's reconstructed hop tree when tracing was requested
	// (Options.Trace); nil otherwise.
	Trace *trace.Tree

	// CacheHit marks a result served from Options.Cache: Answers were decoded
	// from the canonical cached form (ID order) and Stats are zero — no
	// propagation happened.
	CacheHit bool

	// Plan records the planner's decision when the run was invoked with
	// r = plan.RAuto and Options.Planner resolved it; nil for static runs.
	Plan *plan.Decision
}

// Partial reports that at least one link traversal was lost to faults, so
// Answers may be missing the lost subtrees' tuples (every answer present is
// still genuine). It is derived from Stats — the single source of truth for
// failure accounting — so result- and stats-level partiality cannot diverge.
func (r *Result) Partial() bool { return r.Stats.Partial }

// Mode names the three template algorithms.
type Mode int

const (
	// Fast is Algorithm 1: forward to all relevant links at once (r = 0).
	Fast Mode = iota
	// Slow is Algorithm 2: one link at a time, folding back states (r = ∆).
	Slow
	// Ripple is Algorithm 3 with an explicit r parameter.
	Ripple
)

// Options tunes a query execution beyond the ripple parameter.
type Options struct {
	// Faults injects deterministic link failures (nil: none).
	Faults *faults.Injector
	// Trace records the query's hop tree into Result.Trace. Disabled tracing
	// adds zero allocations to the hot path (see TestRunTraceDisabledNoAlloc).
	Trace bool

	// Replicas enables failed-region recovery: when a link traversal is lost,
	// the failed link's parent re-dispatches the lost restriction region to
	// the dead peer's zone replicas in placement order, and only when every
	// replica dispatch fails does the region land in FailedRegions. Nil
	// disables recovery (every loss is final, the pre-replication behaviour).
	Replicas *overlay.ReplicaMap
	// RecoveryBudget caps the replica dispatches spent per lost traversal;
	// 0 means every replica may be tried. The budget bounds recovery work so
	// a heavily faulted query cannot stall on an arbitrarily long failover
	// chain (the logical-runtime analogue of netpeer's recovery deadline).
	RecoveryBudget int
	// RecoveryRetries is the number of extra delivery attempts each replica
	// dispatch may spend (the injector re-rolls per attempt, modelling a
	// redial). 0 matches a transport with retries disabled; set it to the
	// transport's MaxRetries when comparing against a netpeer deployment.
	RecoveryRetries int

	// Storage selects the storage-engine view processors see. KindScan hides
	// node-provided stores, so every local computation runs over the flat-scan
	// baseline — the reference arm of the scan-vs-indexed equivalence suite.
	// KindAuto and KindRTree defer to each node's own engine (a node serves
	// the engine it was built with; the engine cannot re-index a zone per
	// query). Routing, fault identity and replica failover always see the
	// original node either way.
	Storage storage.Kind

	// Scope, when non-empty, restricts the query to a sub-region of the
	// domain: the traversal's root restriction area becomes Scope and every
	// peer's local computation sees only its tuples inside Scope (via the
	// overlay.Restricted lens, which — like the scan view — always computes
	// the scoped answer from a flat scan, so every runtime and engine
	// produces byte-identical scoped answers). Empty means the whole domain.
	Scope overlay.Region

	// Cache, when non-nil together with CacheKey, consults the result cache
	// before running and fills it afterwards. CacheKey must be the canonical
	// key of (query type, encoded params, Scope) — see cache.Key; the engine
	// cannot derive it because it never sees the query type's wire encoding.
	// Traced runs bypass the cache (a cached reply has no hop tree), and
	// partial results are never cached. Cache identity includes r, so a
	// caller combining Cache with Planner must compute CacheKey from the
	// resolved decision (Planner.Choose), not from the RAuto sentinel.
	Cache    *cache.Cache
	CacheKey []byte

	// Planner, when non-nil, resolves the ripple parameter of runs invoked
	// with r = plan.RAuto (the query's mode and r are chosen per query from
	// the self-tuning cost model) and receives every completed run's observed
	// cost as feedback — static-r runs train it too. Without a planner,
	// RAuto degrades to the fast algorithm (r = 0).
	Planner *plan.Planner
}

// Run executes query processing from the given initiator with ripple
// parameter r. r = 0 yields the fast algorithm; r >= the maximum number of
// links of any peer yields the slow algorithm (the paper's two extremes).
func Run(initiator overlay.Node, p Processor, r int) *Result {
	return RunOpts(initiator, p, r, Options{})
}

// RunInjected is Run under fault injection: each link traversal consults the
// injector. A dropped or crashed link prunes its whole subtree — the query
// still terminates, the lost restriction region is recorded in
// Result.FailedRegions, and the result is marked Partial. A delayed link
// charges Config.DelayHops extra hops to that branch. A nil injector makes
// RunInjected identical to Run. The logical engine treats Crash like Drop
// (the subtree never executes); only the TCP transport distinguishes a peer
// that did work before dying from one that was never reached.
func RunInjected(initiator overlay.Node, p Processor, r int, inj *faults.Injector) *Result {
	return RunOpts(initiator, p, r, Options{Faults: inj})
}

// RunOpts is the fully general entry point: Run with fault injection and/or
// hop-tree tracing.
func RunOpts(initiator overlay.Node, p Processor, r int, opts Options) *Result {
	d := dimsOf(initiator)
	region := overlay.Whole(d)
	if !opts.Scope.IsEmpty() {
		region = opts.Scope
	}

	// Resolve the ripple parameter before anything reads it (phases, spans,
	// the cache identity the caller computed). The planner only decides for
	// the RAuto sentinel; every run — planned or static — reports its
	// observed cost back below.
	var planned *plan.Decision
	var pq plan.Query
	if opts.Planner != nil {
		pq = planQuery(initiator, p, d)
		if r == plan.RAuto {
			dec := opts.Planner.Choose(pq)
			planned, r = &dec, dec.R
		}
	}
	if r < 0 {
		r = 0 // RAuto without a planner degrades to fast
	}

	useCache := opts.Cache != nil && len(opts.CacheKey) > 0 && !opts.Trace
	var gen cache.Gen
	if useCache {
		if val, ok := opts.Cache.Get(opts.CacheKey); ok {
			if ans, err := cache.DecodeAnswers(val); err == nil {
				return &Result{Answers: ans, CacheHit: true, Plan: planned}
			}
		}
		gen = opts.Cache.Begin()
	}

	e := &executor{
		p: p, res: &Result{Plan: planned}, answered: make(map[string]bool), inj: opts.Faults,
		reps: opts.Replicas, budget: opts.RecoveryBudget, redials: opts.RecoveryRetries,
		view: queryView(opts),
	}
	if opts.Trace {
		root := trace.Span{
			ID:      trace.RootID,
			Peer:    initiator.ID(),
			Region:  region,
			Phase:   phaseOf(r),
			R:       r,
			Outcome: trace.OutcomeOK,
		}
		if planned != nil {
			root.Plan = planned.String()
		}
		e.rec = trace.NewRecorder()
		e.rec.Record(root)
	}
	_, latency := e.exec(initiator, p.InitialState(), region, r, trace.RootID, 0, 0)
	e.res.Stats.Latency = latency
	e.res.FailedRegions = overlay.CanonicalRegions(e.res.FailedRegions)
	if e.rec != nil {
		e.res.Trace = trace.Build(e.rec.Spans())
	}
	if useCache && !e.res.Partial() {
		opts.Cache.Put(opts.CacheKey, cache.EncodeAnswers(e.res.Answers), d, opts.Scope, gen)
	}
	if opts.Planner != nil {
		opts.Planner.Observe(pq, r, e.res.Stats.Latency, e.res.Stats.Messages())
	}
	return e.res
}

// planQuery describes a run to the planner: family and result size from the
// processor's hints, overlay depth from the initiator's link count (over
// MIDAS the degree tracks the virtual-tree depth), local work from the
// initiator's store statistics.
func planQuery(initiator overlay.Node, p Processor, dims int) plan.Query {
	q := plan.Query{Dims: dims, Degree: len(initiator.Links()), Local: storage.Of(initiator).Stats()}
	if h, ok := p.(plan.Hinter); ok {
		hints := h.PlanHints()
		q.Family, q.K = hints.Family, hints.K
	}
	return q
}

// RunMode is a convenience wrapper selecting the ripple parameter from a
// Mode: Fast -> 0, Slow -> effectively infinite, Ripple -> the explicit r
// (ignored by the two extremes).
func RunMode(initiator overlay.Node, p Processor, m Mode, r int) *Result {
	switch m {
	case Fast:
		return Run(initiator, p, 0)
	case Slow:
		return Run(initiator, p, int(^uint(0)>>1)) // never decays to fast
	default:
		return Run(initiator, p, r)
	}
}

// phaseOf names the template phase a peer with remaining parameter r runs.
func phaseOf(r int) string {
	if r > 0 {
		return trace.PhaseSlow
	}
	return trace.PhaseFast
}

func dimsOf(w overlay.Node) int {
	z := w.Zone()
	if len(z.Boxes) == 0 {
		panic("core: initiator has an empty zone")
	}
	return z.Boxes[0].Dims()
}

type executor struct {
	p        Processor
	res      *Result
	answered map[string]bool
	inj      *faults.Injector
	reps     *overlay.ReplicaMap // nil: no recovery, losses are final
	budget   int                 // max replica dispatches per lost traversal (0: all)
	redials  int                 // extra injector rolls per replica dispatch
	rec      *trace.Recorder     // nil: tracing disabled

	// view is the storage-engine lens applied to a node right before any
	// Processor method sees it (Options.Storage). Dispatch, span naming and
	// answer dedup keep the original node: PhysicalID and replica failover
	// type-switch on the concrete node type.
	view func(overlay.Node) overlay.Node
}

// storageView maps an Options.Storage selection to the node lens processors
// run behind.
func storageView(k storage.Kind) func(overlay.Node) overlay.Node {
	if k == storage.KindScan {
		return overlay.ScanOnly
	}
	return func(w overlay.Node) overlay.Node { return w }
}

// queryView composes the storage lens with the scope lens: processors see the
// node under the selected engine, further restricted to the query's scope.
// The unscoped path returns the storage lens unchanged — zero extra work.
func queryView(opts Options) func(overlay.Node) overlay.Node {
	base := storageView(opts.Storage)
	if opts.Scope.IsEmpty() {
		return base
	}
	scope := opts.Scope
	return func(w overlay.Node) overlay.Node { return overlay.Restricted(base(w), scope) }
}

// decide consults the injector for one delivery attempt from the physical
// peer `from` to `to`. It returns the extra hops a delayed delivery charges
// and the outcome name for the attempt's span.
func (e *executor) decide(from, to string, attempt int) (extraHops int, outcome string, delivered bool) {
	switch e.inj.Decide(from, to, attempt) {
	case faults.Drop:
		return 0, trace.OutcomeDrop, false
	case faults.Crash:
		return 0, trace.OutcomeCrash, false
	case faults.Delay:
		return e.inj.Config().DelayHops, trace.OutcomeDelay, true
	}
	return 0, trace.OutcomeOK, true
}

func (e *executor) recordLoss(sub overlay.Region) {
	e.res.Stats.RPCFailures++
	e.res.Stats.Partial = true
	e.res.FailedRegions = append(e.res.FailedRegions, sub)
}

// dispatch performs the traversal of link l from w for restriction sub,
// running the replica failover chain when the primary target is lost. Each
// dispatch (the primary's, then one per replica tried) consumes one sequence
// number and records one span, so span identities stay aligned with the
// other runtimes, which dispatch in the same order. base is the logical clock
// before the hop; the delivered subtree starts at base+1+extra.
//
// It returns the node that will execute the subtree — l.To itself, or a
// replica acting as l.To so the recovered subtree delegates the primary's
// exact restriction partition — with its span ID and extra hop charge.
// ok=false means every allowed dispatch failed: the region has been recorded
// as unrecoverably lost.
func (e *executor) dispatch(w overlay.Node, l overlay.Link, sub overlay.Region, childR, depth, base int, spanID uint64, seq *int) (target overlay.Node, childID uint64, extra int, ok bool) {
	from := overlay.PhysicalID(w)

	*seq++
	extra, outcome, delivered := e.decide(from, l.To.ID(), 0)
	if e.rec != nil {
		childID = trace.ChildID(spanID, l.To.ID(), *seq)
		e.rec.Record(trace.Span{
			ID: childID, Parent: spanID, Peer: l.To.ID(), Region: sub,
			Phase: phaseOf(childR), R: childR, Depth: depth + 1,
			Arrive: base + 1 + extra, Outcome: outcome,
		})
	}
	if delivered {
		return l.To, childID, extra, true
	}

	// Failover chain: re-dispatch the lost restriction region to the dead
	// peer's zone replicas in placement order, under the recovery budget.
	// Recovery span IDs derive from the failed primary span (not the parent's
	// sequence counter), so they are a pure function of the traversal path —
	// independent of how many failovers other links of this parent needed,
	// which is what lets the TCP runtime recover fan-out links concurrently
	// and still name identical spans.
	primarySpan := childID
	for n, rep := range e.reps.Replicas(l.To.ID()) {
		if e.budget > 0 && n >= e.budget {
			break
		}
		e.res.Stats.Failovers++
		attempt := 0
		for {
			extra, outcome, delivered = e.decide(from, rep.ID(), attempt)
			if delivered || attempt >= e.redials {
				break
			}
			attempt++
			e.res.Stats.Retries++
		}
		if e.rec != nil {
			childID = trace.ChildID(primarySpan, rep.ID(), n+1)
			if delivered {
				outcome = trace.OutcomeRecovered
			}
			e.rec.Record(trace.Span{
				ID: childID, Parent: spanID, Peer: l.To.ID(), Via: rep.ID(), Region: sub,
				Phase: phaseOf(childR), R: childR, Depth: depth + 1,
				Arrive: base + 1 + extra, Attempt: attempt, Outcome: outcome,
			})
		}
		if delivered {
			e.res.Stats.Recovered++
			return overlay.ActingNode{Primary: l.To, Via: rep}, childID, extra, true
		}
	}
	e.recordLoss(sub)
	return nil, 0, 0, false
}

// exec is the per-peer template of Algorithm 3. It returns the local states
// that flow to this call's sender — the peer's own final local state, plus,
// when the peer ran in fast mode, the states of its whole fast subtree (which
// the paper sends directly to the nearest slow ancestor u) — together with
// the subtree latency in hops. spanID/depth/arrive are the peer's trace
// context: its own span identity (recorded by the caller), its hop depth, and
// the logical clock at delivery; they cost nothing when tracing is off.
func (e *executor) exec(w overlay.Node, global State, restrict overlay.Region, r int, spanID uint64, depth, arrive int) (states []State, latency int) {
	e.res.Stats.Touch(w.ID())

	pw := e.view(w) // the node as processors see it (Options.Storage)
	local := e.p.LocalState(pw, global)
	wGlobal := e.p.GlobalState(pw, global, local)

	if r > 0 {
		// Slow phase (first loop of Algorithm 3): visit links in priority
		// order, waiting for each link's states before deciding the next.
		links := e.sortedLinks(w, pw)
		seq := 0
		for _, l := range links {
			sub := l.Region.Intersect(restrict)
			if sub.IsEmpty() {
				continue
			}
			if !e.p.LinkRelevant(pw, sub, wGlobal) {
				continue
			}
			target, childID, extra, ok := e.dispatch(w, l, sub, r-1, depth, arrive+latency, spanID, &seq)
			if !ok {
				continue
			}
			remote, lat := e.exec(target, wGlobal, sub, r-1, childID, depth+1, arrive+latency+1+extra)
			latency += 1 + extra + lat
			e.res.Stats.StateMsgs += len(remote)
			for _, s := range remote {
				e.res.Stats.TuplesSent += e.p.StateTuples(s)
			}
			local = e.p.MergeStates(pw, append([]State{local}, remote...))
			wGlobal = e.p.GlobalState(pw, global, local)
		}
		e.emitAnswer(w, pw, local, spanID)
		if e.rec != nil {
			e.rec.SetStateTuples(spanID, e.p.StateTuples(local))
		}
		return []State{local}, latency
	}

	// Fast phase (second loop of Algorithm 3 / Algorithm 1): forward to all
	// relevant links at once; descendants keep r = 0 and report their local
	// states to this subtree's slow ancestor (returned up the call chain).
	states = append(states, nil) // placeholder for w's own state (kept first)
	maxLat := 0
	seq := 0
	for _, l := range w.Links() {
		sub := l.Region.Intersect(restrict)
		if sub.IsEmpty() {
			continue
		}
		if !e.p.LinkRelevant(pw, sub, wGlobal) {
			continue
		}
		target, childID, extra, ok := e.dispatch(w, l, sub, 0, depth, arrive, spanID, &seq)
		if !ok {
			continue
		}
		remote, lat := e.exec(target, wGlobal, sub, 0, childID, depth+1, arrive+1+extra)
		if lat+1+extra > maxLat {
			maxLat = lat + 1 + extra
		}
		states = append(states, remote...)
	}
	states[0] = local
	e.emitAnswer(w, pw, local, spanID)
	if e.rec != nil {
		e.rec.SetStateTuples(spanID, e.p.StateTuples(local))
	}
	return states, maxLat
}

// emitAnswer sends the peer's local answer to the initiator. A peer answers
// at most once per query: over overlays whose link regions cover only part of
// a neighbour's zone (CAN), a peer can legitimately receive several disjoint
// restriction fragments — every later fragment is processed and forwarded,
// but the local answer has already been sent.
func (e *executor) emitAnswer(w, pw overlay.Node, local State, spanID uint64) {
	if e.answered[w.ID()] {
		return
	}
	e.answered[w.ID()] = true
	a := e.p.LocalAnswer(pw, local)
	if len(a) > 0 {
		e.res.Stats.AnswerMsgs++
		e.res.Stats.TuplesSent += len(a)
		e.res.Answers = append(e.res.Answers, a...)
		e.rec.AddAnswer(spanID, len(a))
	}
}

func (e *executor) sortedLinks(w, pw overlay.Node) []overlay.Link {
	type ranked struct {
		link overlay.Link
		prio float64
	}
	rs := make([]ranked, 0, len(w.Links()))
	for _, l := range w.Links() {
		rs = append(rs, ranked{link: l, prio: e.p.LinkPriority(pw, l.Region)})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].prio < rs[j].prio })
	links := make([]overlay.Link, len(rs))
	for i, r := range rs {
		links[i] = r.link
	}
	return links
}
