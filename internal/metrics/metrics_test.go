package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("ripple_test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("ripple_test_total", "a counter"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("ripple_conc_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("ripple_hops", "hop depth", LinearBuckets(1, 1, 4)) // le 1,2,3,4,+Inf
	for _, v := range []float64{0.5, 1, 2.5, 10} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 14 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ripple_hops histogram",
		`ripple_hops_bucket{le="1"} 2`, // 0.5 and the exact 1 (le semantics)
		`ripple_hops_bucket{le="2"} 2`,
		`ripple_hops_bucket{le="3"} 3`,
		`ripple_hops_bucket{le="+Inf"} 4`,
		"ripple_hops_sum 14",
		"ripple_hops_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelsShareOneFamilyHeader(t *testing.T) {
	r := New()
	r.Counter(Label("ripple_rpcs_total", "peer", "p1"), "rpcs").Inc()
	r.Counter(Label("ripple_rpcs_total", "peer", "p2"), "rpcs").Add(2)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if strings.Count(out, "# TYPE ripple_rpcs_total counter") != 1 {
		t.Fatalf("family header not deduplicated:\n%s", out)
	}
	for _, want := range []string{`ripple_rpcs_total{peer="p1"} 1`, `ripple_rpcs_total{peer="p2"} 2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabelMerge(t *testing.T) {
	r := New()
	h := r.Histogram(Label("ripple_rpc_seconds", "peer", "p1"), "", []float64{0.1})
	h.Observe(0.05)
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `ripple_rpc_seconds_bucket{peer="p1",le="0.1"} 1`) {
		t.Fatalf("label+le merge wrong:\n%s", b.String())
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	h := r.Histogram("y", "", []float64{1})
	c.Inc()
	h.Observe(1)
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestMuxServesMetricsAndPprof(t *testing.T) {
	r := New()
	r.Counter("ripple_up_total", "").Inc()
	srv := httptest.NewServer(r.NewMux())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "ripple_up_total 1") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestBucketBoundariesValidated(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets must panic")
		}
	}()
	r.Histogram("bad", "", []float64{2, 1})
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("ripple_inflight", "in-flight calls")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(5)
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}
	g.Set(-2) // gauges go down, unlike counters
	if g.Value() != -2 {
		t.Fatalf("gauge = %d, want -2", g.Value())
	}
	if again := r.Gauge("ripple_inflight", ""); again != g {
		t.Fatal("re-registration returned a different gauge")
	}
}

func TestGaugeExposition(t *testing.T) {
	r := New()
	r.Gauge("ripple_inflight", "in-flight calls").Set(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# TYPE ripple_inflight gauge", "ripple_inflight 3\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("ripple_mixed", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter must panic")
		}
	}()
	r.Gauge("ripple_mixed", "")
}

func TestNilGauge(t *testing.T) {
	var r *Registry
	g := r.Gauge("anything", "")
	g.Inc()
	g.Dec()
	g.Set(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge must observe nothing")
	}
}
