// Package metrics is a dependency-free metrics registry for the RIPPLE
// runtimes: atomic counters, gauges, and fixed-bucket histograms with Prometheus
// text-format exposition and pprof mounting, so a deployed peer
// (`ripple-serve -metrics-addr`) can be scraped and profiled with stock
// tooling without pulling any external module into the build.
//
// Naming scheme: every series is `ripple_<subsystem>_<what>[_total|_seconds]`
// with optional constant labels rendered via Label. Counters end in `_total`;
// histograms carry base units (seconds, hops, tuples) in the name. See
// DESIGN.md §9.
//
// All instruments are nil-safe: a nil *Registry hands out nil instruments and
// a nil *Counter / *Gauge / *Histogram silently drops observations, so callers thread
// metrics through unconditionally and pay nothing when disabled.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic value that can go up and down: in-flight streams,
// queue depths, pool occupancy.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set replaces the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper bounds
// in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sumMu  sync.Mutex
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMu.Lock()
	h.sum += v
	h.sumMu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.sumMu.Lock()
	defer h.sumMu.Unlock()
	return h.sum
}

// LinearBuckets returns count bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets suits sub-millisecond RPCs up to multi-second stalls.
var DefLatencyBuckets = ExponentialBuckets(0.0001, 2.5, 12)

// Registry holds named instruments and renders them in Prometheus text
// format. The zero value is not usable; call New. A nil *Registry hands out
// nil instruments, making an unconfigured deployment metric-free for free.
type Registry struct {
	mu    sync.Mutex
	names []string // registration order for stable iteration
	items map[string]*entry
}

type entry struct {
	help    string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// kind names the entry's instrument type for registration-conflict panics
// and the exposition TYPE header.
func (e *entry) kind() string {
	switch {
	case e.hist != nil:
		return "histogram"
	case e.gauge != nil:
		return "gauge"
	default:
		return "counter"
	}
}

// New creates an empty registry.
func New() *Registry { return &Registry{items: make(map[string]*entry)} }

// Label renders constant labels onto a metric name:
// Label("x_total", "peer", "p1") -> `x_total{peer="p1"}`. Series sharing a
// base name group under one HELP/TYPE header in the exposition.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("metrics: Label needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter registered under name, creating it on first
// use. It panics if the name is already registered as a histogram.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.items[name]; ok {
		if e.counter == nil {
			panic("metrics: " + name + " already registered as a " + e.kind())
		}
		return e.counter
	}
	c := &Counter{}
	r.items[name] = &entry{help: help, counter: c}
	r.names = append(r.names, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// It panics if the name is already registered as another instrument kind.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.items[name]; ok {
		if e.gauge == nil {
			panic("metrics: " + name + " already registered as a " + e.kind())
		}
		return e.gauge
	}
	g := &Gauge{}
	r.items[name] = &entry{help: help, gauge: g}
	r.names = append(r.names, name)
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use. It panics on an empty or
// unsorted bucket list, or if the name is registered as a counter.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 || !sort.Float64sAreSorted(buckets) {
		panic("metrics: histogram " + name + " needs ascending buckets")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.items[name]; ok {
		if e.hist == nil {
			panic("metrics: " + name + " already registered as a " + e.kind())
		}
		return e.hist
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.items[name] = &entry{help: help, hist: h}
	r.names = append(r.names, name)
	return h
}

// baseName strips a constant-label suffix: `x_total{peer="p"}` -> x_total.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// labelSuffix returns the label part including braces, or "".
func labelSuffix(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[i:]
	}
	return ""
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers once per metric family, then one
// line per series, histograms expanded into _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	items := make(map[string]*entry, len(r.items))
	for k, v := range r.items {
		items[k] = v
	}
	r.mu.Unlock()

	seenFamily := make(map[string]bool)
	for _, name := range names {
		e := items[name]
		family := baseName(name)
		if !seenFamily[family] {
			seenFamily[family] = true
			typ := e.kind()
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, typ); err != nil {
				return err
			}
		}
		if e.counter != nil {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, e.counter.Value()); err != nil {
				return err
			}
			continue
		}
		if e.gauge != nil {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, e.gauge.Value()); err != nil {
				return err
			}
			continue
		}
		if err := writeHistogram(w, family, labelSuffix(name), e.hist); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, family, labels string, h *Histogram) error {
	// _bucket series get an `le` label merged with any constant labels.
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if err := writeBucket(w, family, labels, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := writeBucket(w, family, labels, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count())
	return err
}

func writeBucket(w io.Writer, family, labels, le string, cum int64) error {
	merged := fmt.Sprintf("{le=%q}", le)
	if labels != "" {
		merged = labels[:len(labels)-1] + fmt.Sprintf(",le=%q}", le)
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, merged, cum)
	return err
}

// formatFloat renders a float the way Prometheus expects (no exponent for
// common magnitudes, minimal digits).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
