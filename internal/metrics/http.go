package metrics

import (
	"bytes"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text format. The exposition is
// rendered into a buffer first so an encoding failure becomes a 500 instead
// of a truncated 200 the scraper would ingest as valid.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, "metrics: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := w.Write(buf.Bytes()); err != nil {
			return // client went away mid-scrape; nothing to record
		}
	})
}

// NewMux returns an HTTP mux exposing the registry on /metrics and the
// standard pprof profiles under /debug/pprof/ — the observability sidecar of
// a deployed peer. Mounted explicitly (not via DefaultServeMux) so several
// peers in one process can each serve their own registry.
func (r *Registry) NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for the registry's mux on addr in a goroutine
// and returns the server for shutdown. Listen errors surface on errc (one
// send at most), since the caller usually only logs them.
func (r *Registry) Serve(addr string) (*http.Server, <-chan error) {
	srv := &http.Server{Addr: addr, Handler: r.NewMux()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	return srv, errc
}
