package rangeq

import (
	"math/rand"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/midas"
	"ripple/internal/overlay"
)

func TestBoxRangeMatchesBrute(t *testing.T) {
	ts := dataset.Uniform(3000, 3, 1)
	net := midas.Build(64, midas.Options{Dims: 3, Seed: 2})
	overlay.Load(net, ts)
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 10; q++ {
		lo := geom.Point{rng.Float64() * 0.7, rng.Float64() * 0.7, rng.Float64() * 0.7}
		hi := geom.Point{lo[0] + 0.3, lo[1] + 0.3, lo[2] + 0.3}
		area := Box{Rect: geom.Rect{Lo: lo, Hi: hi}}
		got, stats := Run(net.RandomPeer(rng), area)
		want := Brute(ts, area)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", q, len(got), len(want))
		}
		if stats.MaxPerPeer() != 1 {
			t.Fatal("duplicate delivery")
		}
	}
}

func TestBallRangeMatchesBrute(t *testing.T) {
	ts := dataset.Synth(dataset.SynthConfig{N: 2500, Dims: 2, Centers: 12, Seed: 4})
	net := midas.Build(48, midas.Options{Dims: 2, Seed: 5})
	overlay.Load(net, ts)
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 10; q++ {
		area := Ball{
			Center: geom.Point{rng.Float64(), rng.Float64()},
			Radius: 0.05 + rng.Float64()*0.2,
			Metric: geom.L2,
		}
		got, _ := Run(net.RandomPeer(rng), area)
		want := Brute(ts, area)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", q, len(got), len(want))
		}
	}
}

func TestRangePrunesPeers(t *testing.T) {
	// A small query area must not touch the whole overlay — the explicit
	// search area is exactly what makes range queries easy (paper §1).
	ts := dataset.Uniform(3000, 2, 7)
	net := midas.Build(256, midas.Options{Dims: 2, Seed: 8})
	overlay.Load(net, ts)
	area := Ball{Center: geom.Point{0.5, 0.5}, Radius: 0.05, Metric: geom.L2}
	_, stats := Run(net.Peers()[0], area)
	if stats.QueryMsgs > 256/4 {
		t.Fatalf("small-range query touched %d peers of 256", stats.QueryMsgs)
	}
}

func TestEmptyRange(t *testing.T) {
	ts := dataset.Uniform(500, 2, 9)
	net := midas.Build(16, midas.Options{Dims: 2, Seed: 10})
	overlay.Load(net, ts)
	area := Box{Rect: geom.Rect{Lo: geom.Point{0.95, 0.95}, Hi: geom.Point{0.96, 0.96}}}
	got, _ := Run(net.Peers()[0], area)
	want := Brute(ts, area)
	if len(got) != len(want) {
		t.Fatalf("tiny range: %d vs %d", len(got), len(want))
	}
}
