// Package rangeq processes range queries through the RIPPLE engine. The
// paper's introduction contrasts rank queries with range queries — "all
// objects within a particular range, say within distance r around a given
// point" — whose search area is explicit in the query. Under RIPPLE that
// explicitness collapses the whole framework to a single rule: a link is
// relevant exactly when its (restricted) region intersects the query shape,
// and no state needs to flow at all. The package exists both as a useful
// query type and as the minimal worked example of extending the framework.
package rangeq

import (
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/sim"
)

// Shape is a query area: it must decide point membership and whether it
// intersects a box (the pruning primitive).
type Shape interface {
	Contains(p geom.Point) bool
	IntersectsRect(r geom.Rect) bool
}

// Box is an axis-parallel range query.
type Box struct {
	Rect geom.Rect
}

// Contains implements Shape.
func (b Box) Contains(p geom.Point) bool { return b.Rect.Contains(p) }

// IntersectsRect implements Shape.
func (b Box) IntersectsRect(r geom.Rect) bool { return b.Rect.Overlaps(r) }

// Ball is a distance range query: all tuples within Radius of Center.
type Ball struct {
	Center geom.Point
	Radius float64
	Metric geom.Metric
}

// Contains implements Shape.
func (b Ball) Contains(p geom.Point) bool {
	return b.Metric.Dist(b.Center, p) <= b.Radius
}

// IntersectsRect implements Shape.
func (b Ball) IntersectsRect(r geom.Rect) bool {
	return b.Metric.MinDist(b.Center, r) <= b.Radius
}

// Processor plugs a range query into the RIPPLE engine. There is no state;
// relevance is pure geometry.
type Processor struct {
	Area Shape
}

var _ core.Processor = (*Processor)(nil)

// InitialState implements core.Processor.
func (p *Processor) InitialState() core.State { return nil }

// StateTuples implements core.Processor.
func (p *Processor) StateTuples(core.State) int { return 0 }

// LocalState implements core.Processor.
func (p *Processor) LocalState(w overlay.Node, global core.State) core.State { return nil }

// GlobalState implements core.Processor.
func (p *Processor) GlobalState(w overlay.Node, global, local core.State) core.State { return nil }

// MergeStates implements core.Processor.
func (p *Processor) MergeStates(w overlay.Node, states []core.State) core.State { return nil }

// LinkRelevant implements core.Processor: forward only into regions that
// intersect the query area.
func (p *Processor) LinkRelevant(w overlay.Node, region overlay.Region, global core.State) bool {
	for _, b := range region.Boxes {
		if p.Area.IntersectsRect(b) {
			return true
		}
	}
	return false
}

// LinkPriority implements core.Processor: all relevant links are equal — a
// range query gains nothing from sequencing, so callers should use r = 0.
func (p *Processor) LinkPriority(w overlay.Node, region overlay.Region) float64 { return 0 }

// LocalAnswer implements core.Processor.
func (p *Processor) LocalAnswer(w overlay.Node, local core.State) []dataset.Tuple {
	var out []dataset.Tuple
	for _, t := range w.Tuples() {
		if p.Area.Contains(t.Vec) {
			out = append(out, t)
		}
	}
	return out
}

// Run answers a range query from the given initiator (fast mode; range
// queries have explicit search areas, so slow sequencing has no benefit).
func Run(initiator overlay.Node, area Shape) ([]dataset.Tuple, sim.Stats) {
	res := core.Run(initiator, &Processor{Area: area}, 0)
	return res.Answers, res.Stats
}

// Brute is the centralized oracle.
func Brute(ts []dataset.Tuple, area Shape) []dataset.Tuple {
	var out []dataset.Tuple
	for _, t := range ts {
		if area.Contains(t.Vec) {
			out = append(out, t)
		}
	}
	return out
}
