package cache

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"

	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/zorder"
)

// keyVersion tags the canonical key layout; bump it whenever the encoding
// changes so entries written by an older layout can never alias a new key.
const keyVersion = "rqc1"

// Key renders the canonical cache key of a query: query type, the codec's
// canonical parameter encoding (wire.Codec.EncodeParams output), the domain
// dimensionality, the ripple radius r and the restriction region with its
// boxes sorted into a canonical order. An empty scope means the whole domain.
// Two queries get the same key exactly when every runtime is bound to return
// them byte-identical answers. That identity includes r: the engine's Answers
// are the candidate set peers emit during propagation — a superset of the
// refined answer whose pruning depends on how much state the ripple
// accumulated, so different radii legitimately return different candidate
// sets. It deliberately excludes the initiator, which is safe only because
// every cache is peer-local: within one cache the initiator is fixed.
func Key(queryType string, params []byte, dims, r int, scope overlay.Region) []byte {
	buf := make([]byte, 0, 32+len(params)+len(scope.Boxes)*2*8*dims)
	buf = append(buf, keyVersion...)
	buf = append(buf, queryType...)
	buf = append(buf, 0)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(params)))
	buf = append(buf, params...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(dims))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r))

	boxes := make([][]byte, len(scope.Boxes))
	for i, b := range scope.Boxes {
		boxes[i] = encodeRect(b)
	}
	sort.Slice(boxes, func(i, j int) bool { return bytes.Compare(boxes[i], boxes[j]) < 0 })
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(boxes)))
	for _, b := range boxes {
		buf = append(buf, b...)
	}
	return buf
}

func encodeRect(r geom.Rect) []byte {
	out := make([]byte, 0, 16*len(r.Lo))
	for _, v := range r.Lo {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
	}
	for _, v := range r.Hi {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// maxFootprintDepth bounds the z-cell cover of a region: a block that still
// straddles the region boundary after this many binary splits is kept whole.
// Overapproximating the footprint is always safe — it can only cause extra
// invalidations, never a stale read. Depth 6 caps the cover at 64 cells per
// region box.
const maxFootprintDepth = 6

// footprint covers scope (empty = whole domain) with aligned z-order cells.
func footprint(dims int, scope overlay.Region) []cellKey {
	cv := zorder.New(dims)
	root := zorder.Block{Start: 0, FreeBits: cv.TotalBits()}
	if scope.IsEmpty() {
		return []cellKey{blockCell(dims, root)}
	}
	seen := make(map[cellKey]bool)
	var out []cellKey
	for _, box := range scope.Boxes {
		coverRect(cv, dims, root, box, maxFootprintDepth, seen, &out)
	}
	return out
}

func coverRect(cv zorder.Curve, dims int, b zorder.Block, r geom.Rect, depth int, seen map[cellKey]bool, out *[]cellKey) {
	br := cv.Rect(b)
	if !br.Overlaps(r) {
		return
	}
	if depth == 0 || b.FreeBits == 0 || r.ContainsRect(br) {
		ck := blockCell(dims, b)
		if !seen[ck] {
			seen[ck] = true
			*out = append(*out, ck)
		}
		return
	}
	half := b.FreeBits - 1
	coverRect(cv, dims, zorder.Block{Start: b.Start, FreeBits: half}, r, depth-1, seen, out)
	coverRect(cv, dims, zorder.Block{Start: b.Start + uint64(1)<<uint(half), FreeBits: half}, r, depth-1, seen, out)
}

// blockCell names an aligned block as an invalidation cell: a block with
// FreeBits low bits free contains a point exactly when the point's z-key with
// those bits cleared equals the block start — the same cell InvalidatePoint
// bumps at level free=FreeBits of the point's ancestor chain.
func blockCell(dims int, b zorder.Block) cellKey {
	return cellKey{dims: uint8(dims), free: uint8(b.FreeBits), prefix: b.Start}
}
