package cache

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"ripple/internal/dataset"
	"ripple/internal/geom"
)

// EncodeAnswers renders an answer set in canonical wire form: tuples sorted
// by ID (deduplicated, first occurrence wins), each as id + dimensionality +
// IEEE-754 coordinate bits. Two answer sets encode identically exactly when
// they contain the same tuples, so a cached reply and a fresh reply to the
// same query compare byte-identical through this encoding regardless of the
// traversal order that produced them.
func EncodeAnswers(ts []dataset.Tuple) []byte {
	sorted := make([]dataset.Tuple, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	dedup := sorted[:0]
	for i, t := range sorted {
		if i == 0 || t.ID != sorted[i-1].ID {
			dedup = append(dedup, t)
		}
	}
	out := make([]byte, 0, 8+len(dedup)*24)
	out = binary.BigEndian.AppendUint32(out, uint32(len(dedup)))
	for _, t := range dedup {
		out = binary.BigEndian.AppendUint64(out, t.ID)
		out = binary.BigEndian.AppendUint16(out, uint16(len(t.Vec)))
		for _, v := range t.Vec {
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	return out
}

// DecodeAnswers parses an EncodeAnswers payload back into tuples (in
// canonical ID order).
func DecodeAnswers(b []byte) ([]dataset.Tuple, error) {
	if len(b) < 4 {
		return nil, errors.New("cache: truncated answer payload")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	out := make([]dataset.Tuple, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 10 {
			return nil, errors.New("cache: truncated answer tuple")
		}
		id := binary.BigEndian.Uint64(b)
		d := int(binary.BigEndian.Uint16(b[8:]))
		b = b[10:]
		if len(b) < 8*d {
			return nil, errors.New("cache: truncated answer vector")
		}
		vec := make(geom.Point, d)
		for j := 0; j < d; j++ {
			vec[j] = math.Float64frombits(binary.BigEndian.Uint64(b[8*j:]))
		}
		b = b[8*d:]
		out = append(out, dataset.Tuple{ID: id, Vec: vec})
	}
	if len(b) != 0 {
		return nil, errors.New("cache: trailing bytes in answer payload")
	}
	return out, nil
}
