package cache

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/metrics"
	"ripple/internal/overlay"
)

func region(lo, hi []float64) overlay.Region {
	return overlay.FromRect(geom.Rect{Lo: lo, Hi: hi})
}

func testCache(t *testing.T, opts Options) (*Cache, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	opts.Now = func() time.Time { return now }
	if opts.MaxBytes == 0 {
		opts.MaxBytes = 1 << 20
	}
	c := New(opts)
	if c == nil {
		t.Fatal("New returned nil for a positive budget")
	}
	return c, &now
}

func TestGetPutRoundTrip(t *testing.T) {
	c, _ := testCache(t, Options{})
	key := Key("topk", []byte("params"), 2, 0, overlay.Region{})
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	g := c.Begin()
	c.Put(key, []byte("value"), 2, overlay.Region{}, g)
	got, ok := c.Get(key)
	if !ok || string(got) != "value" {
		t.Fatalf("Get = %q, %v; want value, true", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 entry", s)
	}
}

func TestTTLExpiry(t *testing.T) {
	c, now := testCache(t, Options{TTL: time.Second})
	key := Key("topk", nil, 2, 0, overlay.Region{})
	c.Put(key, []byte("v"), 2, overlay.Region{}, c.Begin())
	if _, ok := c.Get(key); !ok {
		t.Fatal("miss before expiry")
	}
	*now = now.Add(2 * time.Second)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit after TTL expiry")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v; want 1 eviction, 0 entries", s)
	}
}

func TestInvalidatePointHitsCoveringRegions(t *testing.T) {
	c, _ := testCache(t, Options{})
	hot := region([]float64{0, 0}, []float64{0.25, 0.25})
	cold := region([]float64{0.5, 0.5}, []float64{0.75, 0.75})
	hotKey := Key("topk", []byte("a"), 2, 0, hot)
	coldKey := Key("topk", []byte("a"), 2, 0, cold)
	wholeKey := Key("topk", []byte("a"), 2, 0, overlay.Region{})
	c.Put(hotKey, []byte("hot"), 2, hot, c.Begin())
	c.Put(coldKey, []byte("cold"), 2, cold, c.Begin())
	c.Put(wholeKey, []byte("whole"), 2, overlay.Region{}, c.Begin())

	c.InvalidatePoint(geom.Point{0.1, 0.1})

	if _, ok := c.Get(hotKey); ok {
		t.Fatal("entry covering the mutated point survived invalidation")
	}
	if _, ok := c.Get(wholeKey); ok {
		t.Fatal("whole-domain entry survived invalidation")
	}
	if _, ok := c.Get(coldKey); !ok {
		t.Fatal("entry over a disjoint region was invalidated")
	}
	if s := c.Stats(); s.Invalidations != 2 {
		t.Fatalf("invalidations = %d; want 2", s.Invalidations)
	}
}

func TestPutRejectsStaleFill(t *testing.T) {
	c, _ := testCache(t, Options{})
	scope := region([]float64{0, 0}, []float64{0.5, 0.5})
	key := Key("knn", nil, 2, 0, scope)
	g := c.Begin() // query starts...
	c.InvalidatePoint(geom.Point{0.2, 0.2})
	c.Put(key, []byte("pre-mutation result"), 2, scope, g) // ...and fills late
	if _, ok := c.Get(key); ok {
		t.Fatal("pre-mutation result entered the cache after the mutation")
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := testCache(t, Options{MaxBytes: 2 * (entryOverhead + 40), Shards: 1})
	mk := func(i int) []byte { return Key("topk", []byte{byte(i)}, 2, 0, overlay.Region{}) }
	c.Put(mk(1), []byte("v1"), 2, overlay.Region{}, c.Begin())
	c.Put(mk(2), []byte("v2"), 2, overlay.Region{}, c.Begin())
	if _, ok := c.Get(mk(1)); !ok { // touch 1: now 2 is LRU
		t.Fatal("entry 1 missing before eviction")
	}
	c.Put(mk(3), []byte("v3"), 2, overlay.Region{}, c.Begin())
	if _, ok := c.Get(mk(2)); ok {
		t.Fatal("LRU entry 2 survived over-budget Put")
	}
	if _, ok := c.Get(mk(1)); !ok {
		t.Fatal("recently used entry 1 was evicted")
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatalf("stats = %+v; want evictions > 0", s)
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("nil cache hit")
	}
	c.Put([]byte("k"), []byte("v"), 2, overlay.Region{}, c.Begin())
	c.InvalidatePoint(geom.Point{0.5, 0.5})
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil stats = %+v", s)
	}
	if New(Options{MaxBytes: 0}) != nil {
		t.Fatal("New(MaxBytes=0) should return the nil disabled cache")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	a := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{0.5, 0.5}}
	b := geom.Rect{Lo: geom.Point{0.5, 0.5}, Hi: geom.Point{1, 1}}
	k1 := Key("topk", []byte("p"), 2, 0, overlay.Region{Boxes: []geom.Rect{a, b}})
	k2 := Key("topk", []byte("p"), 2, 0, overlay.Region{Boxes: []geom.Rect{b, a}})
	if !bytes.Equal(k1, k2) {
		t.Fatal("box order changed the canonical key")
	}
	if bytes.Equal(k1, Key("skyline", []byte("p"), 2, 0, overlay.Region{Boxes: []geom.Rect{a, b}})) {
		t.Fatal("query type not part of the key")
	}
	if bytes.Equal(k1, Key("topk", []byte("q"), 2, 0, overlay.Region{Boxes: []geom.Rect{a, b}})) {
		t.Fatal("params not part of the key")
	}
	if bytes.Equal(k1, Key("topk", []byte("p"), 2, 0, overlay.Region{})) {
		t.Fatal("scope not part of the key")
	}
	if bytes.Equal(k1, Key("topk", []byte("p"), 2, 2, overlay.Region{Boxes: []geom.Rect{a, b}})) {
		t.Fatal("ripple radius not part of the key; radii return different candidate sets")
	}
}

func TestAnswerCodecCanonical(t *testing.T) {
	ts := []dataset.Tuple{
		{ID: 9, Vec: geom.Point{0.9, 0.1}},
		{ID: 3, Vec: geom.Point{0.3, 0.7}},
		{ID: 9, Vec: geom.Point{0.9, 0.1}}, // duplicate
	}
	rev := []dataset.Tuple{ts[1], ts[0]}
	if !bytes.Equal(EncodeAnswers(ts), EncodeAnswers(rev)) {
		t.Fatal("answer order or duplicates changed the canonical encoding")
	}
	got, err := DecodeAnswers(EncodeAnswers(ts))
	if err != nil {
		t.Fatal(err)
	}
	want := []dataset.Tuple{ts[1], ts[0]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip = %v; want %v", got, want)
	}
	if _, err := DecodeAnswers([]byte{0, 0}); err == nil {
		t.Fatal("truncated payload decoded without error")
	}
}

func TestFootprintWholeDomainIsRoot(t *testing.T) {
	cells := footprint(3, overlay.Region{})
	if len(cells) != 1 || cells[0].free != uint8(3*20) || cells[0].prefix != 0 {
		t.Fatalf("whole-domain footprint = %+v; want the single root cell", cells)
	}
}

func TestFootprintBounded(t *testing.T) {
	for d := 1; d <= 6; d++ {
		lo, hi := make(geom.Point, d), make(geom.Point, d)
		for i := range lo {
			lo[i], hi[i] = 0.1, 0.9
		}
		cells := footprint(d, overlay.FromRect(geom.Rect{Lo: lo, Hi: hi}))
		if len(cells) == 0 || len(cells) > 64 {
			t.Fatalf("d=%d: footprint has %d cells; want 1..64", d, len(cells))
		}
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := metrics.New()
	now := time.Unix(0, 0)
	c := New(Options{MaxBytes: 1 << 20, Metrics: reg, Now: func() time.Time { return now }})
	key := Key("topk", nil, 2, 0, overlay.Region{})
	c.Get(key)
	c.Put(key, []byte("v"), 2, overlay.Region{}, c.Begin())
	c.Get(key)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ripple_cache_hits_total 1", "ripple_cache_misses_total 1", "ripple_cache_bytes"} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Fatalf("metrics output missing %q:\n%s", name, buf.String())
		}
	}
}

func TestGenerationTableOverflowInvalidatesConservatively(t *testing.T) {
	c, _ := testCache(t, Options{})
	key := Key("topk", nil, 2, 0, overlay.Region{})
	c.Put(key, []byte("v"), 2, overlay.Region{}, c.Begin())
	c.cellMu.Lock()
	for i := 0; len(c.cells) <= maxCells; i++ { // simulate table growth
		c.cells[cellKey{dims: 5, free: 0, prefix: uint64(i)}] = 1
	}
	c.cellMu.Unlock()
	c.InvalidatePoint(geom.Point{0.9, 0.9}) // triggers the reset
	if _, ok := c.Get(key); ok {
		t.Fatal("entry predating the generation-table reset survived")
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(Options{MaxBytes: 1 << 20})
	scope := region([]float64{0, 0}, []float64{0.5, 0.5})
	key := Key("topk", []byte("p"), 2, 0, scope)
	c.Put(key, bytes.Repeat([]byte("x"), 256), 2, scope, c.Begin())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkInvalidatePoint(b *testing.B) {
	c := New(Options{MaxBytes: 1 << 20})
	p := geom.Point{0.3, 0.4, 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InvalidatePoint(p)
	}
}

func ExampleKey() {
	k := Key("topk", []byte{1, 2}, 2, 0, overlay.Region{})
	fmt.Println(len(k) > 0)
	// Output: true
}
