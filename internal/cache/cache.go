// Package cache implements the hot-region result cache of DESIGN.md §15: a
// bounded, sharded map from canonical query keys to canonically encoded
// answer sets, with TTL + LRU eviction and precise region-keyed invalidation.
//
// Invalidation is the interesting part. Every cached entry carries a
// *footprint*: the set of aligned z-order cells (internal/zorder blocks)
// covering its restriction region. A tuple mutation at point p bumps the
// generation of the O(TotalBits) aligned cells that contain p — the ancestor
// chain of p's z-key — under a single small mutex, without touching any
// shard. An entry is stale exactly when one of its footprint cells carries a
// generation newer than the entry's own stamp; staleness is detected lazily
// on the next Get (or Put) of that entry, so invalidation never takes shard
// locks and the locking discipline stays flat (no lock is ever acquired
// while another cache lock is held — see ripple-vet's lockorder analyzer).
//
// The race between an in-flight query and a concurrent mutation is closed by
// generation stamping: callers take a Begin() snapshot before running the
// query and pass it to Put, which rejects the fill when any footprint cell
// was invalidated after the snapshot. A result computed from pre-mutation
// shares therefore never enters the cache after the mutation.
//
// All methods are nil-receiver safe, so runtimes thread a *Cache through
// unconditionally and pay nothing when caching is disabled.
package cache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/geom"
	"ripple/internal/metrics"
	"ripple/internal/overlay"
	"ripple/internal/zorder"
)

// Options configures a Cache.
type Options struct {
	// MaxBytes bounds the total size of cached keys+values (approximate:
	// each entry is charged a small fixed overhead on top of its bytes).
	// Non-positive disables the cache: New returns nil.
	MaxBytes int64
	// TTL bounds entry lifetime; zero means DefaultTTL.
	TTL time.Duration
	// Shards is the number of independently locked segments (default 8).
	Shards int
	// Metrics, when non-nil, registers the cache series
	// (ripple_cache_{hits,misses,invalidations,evictions}_total and
	// ripple_cache_bytes) on the given registry.
	Metrics *metrics.Registry
	// Now is the clock (test seam); nil means time.Now.
	Now func() time.Time
}

// DefaultTTL bounds staleness for caches that are not on a mutation's
// invalidation path (e.g. an initiator cache that missed a broadcast).
const DefaultTTL = 30 * time.Second

// entryOverhead approximates the per-entry bookkeeping cost charged against
// MaxBytes on top of the key and value bytes.
const entryOverhead = 128

// maxCells bounds the cell-generation table; when exceeded the table is
// cleared and the generation floor raised, which conservatively invalidates
// every entry stamped before the reset.
const maxCells = 1 << 16

// Gen is a generation snapshot taken before running a query (Begin) and
// presented when filling the result (Put).
type Gen uint64

type cellKey struct {
	dims   uint8
	free   uint8
	prefix uint64
}

type entry struct {
	key     string
	val     []byte
	cells   []cellKey
	gen     uint64
	expires time.Time
	size    int64
	elem    *list.Element
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	bytes   int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Invalidations, Evictions int64
	Bytes                                  int64
	Entries                                int
}

// Cache is a sharded result cache with z-order-cell invalidation. The zero
// value is not usable; construct with New. A nil *Cache is a valid disabled
// cache.
type Cache struct {
	shards        []*shard
	maxShardBytes int64
	ttl           time.Duration
	now           func() time.Time

	gen    atomic.Uint64
	cellMu sync.Mutex
	cells  map[cellKey]uint64
	floor  uint64 // entries stamped before this generation are stale

	hits, misses, invals, evicts atomic.Int64
	bytes                        atomic.Int64

	mHits, mMisses, mInvals, mEvicts *metrics.Counter
	mBytes                           *metrics.Gauge
}

// New builds a cache; it returns nil (a valid, disabled cache) when
// opts.MaxBytes is non-positive.
func New(opts Options) *Cache {
	if opts.MaxBytes <= 0 {
		return nil
	}
	n := opts.Shards
	if n <= 0 {
		n = 8
	}
	ttl := opts.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	c := &Cache{
		shards:        make([]*shard, n),
		maxShardBytes: (opts.MaxBytes + int64(n) - 1) / int64(n),
		ttl:           ttl,
		now:           now,
		cells:         make(map[cellKey]uint64),
	}
	for i := range c.shards {
		c.shards[i] = &shard{entries: make(map[string]*entry), lru: list.New()}
	}
	if opts.Metrics != nil {
		c.mHits = opts.Metrics.Counter("ripple_cache_hits_total", "result cache hits")
		c.mMisses = opts.Metrics.Counter("ripple_cache_misses_total", "result cache misses")
		c.mInvals = opts.Metrics.Counter("ripple_cache_invalidations_total", "cached entries dropped or rejected because a mutation touched their region footprint")
		c.mEvicts = opts.Metrics.Counter("ripple_cache_evictions_total", "cached entries evicted by the byte budget or TTL")
		c.mBytes = opts.Metrics.Gauge("ripple_cache_bytes", "approximate bytes held by the result cache")
	}
	return c
}

func (c *Cache) shardOf(key []byte) *shard {
	h := fnv.New64a()
	h.Write(key)
	return c.shards[h.Sum64()%uint64(len(c.shards))]
}

// Begin returns a generation snapshot to stamp a query that is about to run.
func (c *Cache) Begin() Gen {
	if c == nil {
		return 0
	}
	return Gen(c.gen.Load())
}

// Get returns the cached value for key, nil when absent, expired, or
// invalidated by a mutation since it was stored. The returned slice is shared
// and must be treated as read-only.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shardOf(key)
	k := string(key)
	now := c.now()

	sh.mu.Lock()
	e := sh.entries[k]
	if e == nil {
		sh.mu.Unlock()
		c.count(&c.misses, c.mMisses)
		return nil, false
	}
	if now.After(e.expires) {
		c.removeLocked(sh, e)
		sh.mu.Unlock()
		c.count(&c.evicts, c.mEvicts)
		c.count(&c.misses, c.mMisses)
		return nil, false
	}
	sh.lru.MoveToFront(e.elem)
	val, cells, gen := e.val, e.cells, e.gen
	sh.mu.Unlock()

	if c.staleAt(cells, gen) {
		sh.mu.Lock()
		if sh.entries[k] == e {
			c.removeLocked(sh, e)
		}
		sh.mu.Unlock()
		c.count(&c.invals, c.mInvals)
		c.count(&c.misses, c.mMisses)
		return nil, false
	}
	c.count(&c.hits, c.mHits)
	return val, true
}

// Put stores val under key with the footprint of scope (empty scope = the
// whole d-dimensional domain). gen must be the Begin() snapshot taken before
// the query ran; the fill is rejected when a mutation has touched the
// footprint since, so a pre-mutation result can never be served post-mutation.
func (c *Cache) Put(key, val []byte, dims int, scope overlay.Region, gen Gen) {
	if c == nil || dims <= 0 {
		return
	}
	cells := footprint(dims, scope)
	if c.staleAt(cells, uint64(gen)) {
		c.count(&c.invals, c.mInvals)
		return
	}
	size := int64(len(key)+len(val)) + entryOverhead
	if size > c.maxShardBytes {
		return // larger than a whole shard's budget: not cacheable
	}
	e := &entry{
		key:     string(key),
		val:     val,
		cells:   cells,
		gen:     uint64(gen),
		expires: c.now().Add(c.ttl),
		size:    size,
	}
	sh := c.shardOf(key)
	sh.mu.Lock()
	if old := sh.entries[e.key]; old != nil {
		c.removeLocked(sh, old)
	}
	e.elem = sh.lru.PushFront(e)
	sh.entries[e.key] = e
	sh.bytes += size
	c.addBytes(size)
	var evicted int64
	for sh.bytes > c.maxShardBytes {
		tail := sh.lru.Back()
		if tail == nil || tail.Value.(*entry) == e {
			break
		}
		c.removeLocked(sh, tail.Value.(*entry))
		evicted++
	}
	sh.mu.Unlock()
	for ; evicted > 0; evicted-- {
		c.count(&c.evicts, c.mEvicts)
	}
}

// InvalidatePoint records a tuple mutation at p: the generations of the
// aligned z-order cells containing p (its z-key's ancestor chain) are bumped,
// so every cached entry whose region footprint covers p reads as stale from
// now on. O(bits) work; no shard locks taken.
func (c *Cache) InvalidatePoint(p geom.Point) {
	if c == nil || len(p) == 0 {
		return
	}
	cv := zorder.New(len(p))
	key := cv.Encode(p)
	g := c.gen.Add(1)
	c.cellMu.Lock()
	if len(c.cells) > maxCells {
		c.cells = make(map[cellKey]uint64)
		c.floor = g
	}
	for free := 0; free <= cv.TotalBits(); free++ {
		prefix := key &^ (uint64(1)<<uint(free) - 1)
		c.cells[cellKey{dims: uint8(len(p)), free: uint8(free), prefix: prefix}] = g
	}
	c.cellMu.Unlock()
}

// staleAt reports whether any of cells was invalidated after generation gen.
func (c *Cache) staleAt(cells []cellKey, gen uint64) bool {
	c.cellMu.Lock()
	defer c.cellMu.Unlock()
	if gen < c.floor {
		return true
	}
	for _, ck := range cells {
		if c.cells[ck] > gen {
			return true
		}
	}
	return false
}

// removeLocked unlinks e from sh; sh.mu must be held.
func (c *Cache) removeLocked(sh *shard, e *entry) {
	delete(sh.entries, e.key)
	sh.lru.Remove(e.elem)
	sh.bytes -= e.size
	c.addBytes(-e.size)
}

func (c *Cache) addBytes(n int64) {
	c.bytes.Add(n)
	if c.mBytes != nil {
		c.mBytes.Add(n)
	}
}

func (c *Cache) count(a *atomic.Int64, m *metrics.Counter) {
	a.Add(1)
	m.Inc()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invals.Load(),
		Evictions:     c.evicts.Load(),
		Bytes:         c.bytes.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
