package divbase

import (
	"math"
	"testing"

	"ripple/internal/can"
	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/midas"
	"ripple/internal/overlay"
)

func TestBaselineMatchesOracle(t *testing.T) {
	ts := dataset.MIRFlickr(1200, 2)
	net := can.Build(40, can.Options{Dims: 5, Seed: 4})
	overlay.Load(net, ts)
	q := diversify.NewQuery(ts[11].Vec, 0.5)
	oracle := diversify.Greedy(q, 6, diversify.NewBruteSolver(ts, q), diversify.MaxIters)
	base := Greedy(net, net.Peers()[0], q, 6, diversify.MaxIters)
	if math.Abs(oracle.Objective-base.Objective) > 1e-9 {
		t.Fatalf("objectives differ: oracle %v, baseline %v", oracle.Objective, base.Objective)
	}
	if len(base.Set) != 6 {
		t.Fatalf("baseline set size %d", len(base.Set))
	}
}

func TestBaselineCostsExceedRipple(t *testing.T) {
	// The headline claim of §7.2.3: the baseline floods the overlay per step,
	// so its congestion dwarfs RIPPLE's (which prunes and prioritises).
	ts := dataset.MIRFlickr(2000, 3)
	cnet := can.Build(64, can.Options{Dims: 5, Seed: 6})
	overlay.Load(cnet, ts)
	mnet := midas.Build(64, midas.Options{Dims: 5, Seed: 6})
	overlay.Load(mnet, ts)
	q := diversify.NewQuery(ts[5].Vec, 0.5)

	baseRes := Greedy(cnet, cnet.Peers()[0], q, 5, 3)
	ripRes := diversify.Greedy(q, 5, diversify.NewRippleSolver(mnet.Peers()[0], q, 1<<20), 3)
	if ripRes.Stats.Congestion() >= baseRes.Stats.Congestion() {
		t.Fatalf("ripple-slow congestion %v not below baseline %v",
			ripRes.Stats.Congestion(), baseRes.Stats.Congestion())
	}
}

func TestSolverRespectsThreshold(t *testing.T) {
	ts := dataset.Uniform(300, 2, 8)
	net := can.Build(16, can.Options{Dims: 2, Seed: 2})
	overlay.Load(net, ts)
	q := diversify.NewQuery(ts[0].Vec, 0.5)
	solver := NewSolver(net.Peers()[0], q)
	got, _ := solver(dataset.Sample(ts, 3, 1), map[uint64]bool{}, -5)
	if got != nil {
		t.Fatalf("impossible threshold returned %v", got)
	}
}
