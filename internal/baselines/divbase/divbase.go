// Package divbase implements the paper's diversification baseline (§7.1):
// the incremental algorithm of Minack et al. (SIGIR 2011) adapted to a
// distributed setting over CAN. Each single-tuple diversification step is
// resolved by flooding the whole overlay — every peer evaluates its best
// local candidate and streams it back to the initiator, which keeps the
// incremental minimum. The greedy driver is shared with the RIPPLE-based
// method, enforcing the paper's fairness rule (identical result at each
// step), so the metrics compare pure framework cost: no region pruning and no
// prioritisation means the baseline pays the full network on every step.
package divbase

import (
	"math"

	"ripple/internal/baselines/naive"
	"ripple/internal/can"
	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/overlay"
	"ripple/internal/sim"
)

// NewSolver returns a SingleSolver that floods the CAN overlay from the given
// initiator for every single-tuple query.
func NewSolver(initiator *can.Peer, q diversify.Query) diversify.SingleSolver {
	return func(base []dataset.Tuple, exclude map[uint64]bool, tau float64) (*dataset.Tuple, sim.Stats) {
		res := naive.Broadcast(initiator, func(w overlay.Node) []dataset.Tuple {
			// Each peer streams its single best eligible candidate; local
			// filtering by tau is the only pruning the baseline performs.
			var best *dataset.Tuple
			bestScore := math.Inf(1)
			for i := range w.Tuples() {
				t := &w.Tuples()[i]
				if exclude[t.ID] {
					continue
				}
				s := q.Phi(t.Vec, base)
				if s < bestScore || (s == bestScore && best != nil && t.ID < best.ID) {
					best, bestScore = t, s
				}
			}
			if best == nil || bestScore >= tau {
				return nil
			}
			return []dataset.Tuple{*best}
		})
		var winner *dataset.Tuple
		winScore := math.Inf(1)
		for i := range res.Answers {
			t := &res.Answers[i]
			s := q.Phi(t.Vec, base)
			if s < winScore || (s == winScore && winner != nil && t.ID < winner.ID) {
				winner, winScore = t, s
			}
		}
		if winner != nil && winScore >= tau {
			winner = nil
		}
		return winner, res.Stats
	}
}

// Greedy answers a full k-diversification query with the flooding baseline.
func Greedy(net *can.Network, initiator *can.Peer, q diversify.Query, k, maxIters int) diversify.GreedyResult {
	return diversify.Greedy(q, k, NewSolver(initiator, q), maxIters)
}
