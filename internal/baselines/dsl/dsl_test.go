package dsl

import (
	"math/rand"
	"testing"

	"ripple/internal/can"
	"ripple/internal/dataset"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
)

func TestDSLComputesExactSkyline(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ts := dataset.Synth(dataset.SynthConfig{N: 2000, Dims: 3, Centers: 25, Seed: seed})
		want := skyline.Compute(ts)
		net := can.Build(60, can.Options{Dims: 3, Seed: seed + 100})
		overlay.Load(net, ts)
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < 4; q++ {
			got, stats := Run(net, net.RandomPeer(rng))
			if len(got) != len(want) {
				t.Fatalf("seed %d: skyline size %d, want %d", seed, len(got), len(want))
			}
			ids := map[uint64]bool{}
			for _, x := range got {
				ids[x.ID] = true
			}
			for _, x := range want {
				if !ids[x.ID] {
					t.Fatalf("seed %d: missing skyline tuple %v", seed, x)
				}
			}
			if stats.Latency <= 0 && net.Size() > 1 {
				t.Fatalf("seed %d: zero latency on %d-peer overlay", seed, net.Size())
			}
		}
	}
}

func TestDSLPrunesDominatedRegions(t *testing.T) {
	// With clustered low-dimensional data, much of the grid is dominated and
	// must not be processed.
	ts := dataset.Synth(dataset.SynthConfig{N: 3000, Dims: 2, Centers: 10, Seed: 3})
	net := can.Build(200, can.Options{Dims: 2, Seed: 8})
	overlay.Load(net, ts)
	_, stats := Run(net, net.Peers()[0])
	if stats.QueryMsgs >= 200 {
		t.Fatalf("DSL processed %d messages on 200 peers; pruning ineffective", stats.QueryMsgs)
	}
}

func TestDSLOnSinglePeer(t *testing.T) {
	ts := dataset.Uniform(100, 2, 1)
	net := can.Build(1, can.Options{Dims: 2, Seed: 1})
	overlay.Load(net, ts)
	got, stats := Run(net, net.Peers()[0])
	want := skyline.Compute(ts)
	if len(got) != len(want) {
		t.Fatalf("singleton DSL: %d vs %d", len(got), len(want))
	}
	if stats.Latency != 0 {
		t.Fatalf("singleton latency = %d", stats.Latency)
	}
}
