// Package dsl implements DSL (Wu et al., "Parallelizing skyline queries for
// scalable distribution", EDBT 2006), the paper's CAN-based skyline
// competitor (§2.2). The query is routed to the peer owning the origin of
// the data space, which roots a multicast wavefront: each peer merges the
// partial skylines received from its lower neighbours with its local skyline
// and forwards the result across its upper faces, skipping neighbours whose
// entire zone is dominated (they cannot contribute). Peers whose zones
// cannot dominate each other proceed in parallel.
//
// Faithful simplification (see DESIGN.md): a peer processes at its earliest
// receive time with the partial skylines accumulated by then, instead of
// blocking on every predecessor; pruning stays conservative, so the answer is
// still the exact skyline while costs reflect the wavefront's hop structure.
package dsl

import (
	"container/heap"

	"ripple/internal/can"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/sim"
	"ripple/internal/skyline"
)

// Run processes a full-space skyline query initiated at from. It returns the
// exact skyline and the cost statistics (latency in hops, congestion as
// query messages processed).
func Run(net *can.Network, from *can.Peer) ([]dataset.Tuple, sim.Stats) {
	var stats sim.Stats
	dims := net.Dims()
	origin := geom.Origin(dims)

	// Phase 1: greedy-route the query from the initiator to the peer whose
	// zone contains the origin (the root of the multicast hierarchy).
	root, hops := routeToPoint(from, origin, &stats)

	// Phase 2: the wavefront. Peers are processed in receive-time order;
	// deliveries carry the sender's accumulated partial skyline.
	type inbox struct {
		time  int
		state []dataset.Tuple
		seen  bool
	}
	boxes := map[*can.Peer]*inbox{root: {time: hops}}
	pq := &peerQueue{{peer: root, time: hops}}
	heap.Init(pq)

	var answers []dataset.Tuple
	maxTime := hops
	for pq.Len() > 0 {
		item := heap.Pop(pq).(queued)
		ib := boxes[item.peer]
		if ib.seen || item.time > ib.time {
			continue // stale queue entry
		}
		ib.seen = true
		stats.Touch(item.peer.ID())
		if ib.time > maxTime {
			maxTime = ib.time
		}

		local := skyline.Compute(item.peer.Tuples())
		merged := skyline.Merge(ib.state, local)
		// The peer's contribution: its local tuples surviving the merge.
		localIDs := make(map[uint64]bool, len(local))
		for _, t := range local {
			localIDs[t.ID] = true
		}
		contributed := 0
		for _, t := range merged {
			if localIDs[t.ID] {
				answers = append(answers, t)
				contributed++
			}
		}
		if contributed > 0 {
			stats.AnswerMsgs++
			stats.TuplesSent += contributed
		}

		// Forward across every upper face to neighbours that can still hold
		// skyline tuples.
		for dim := 0; dim < dims; dim++ {
			for _, nb := range item.peer.FaceNeighbors(dim, +1) {
				if dominatedZone(merged, nb.Rect()) {
					continue
				}
				nib := boxes[nb]
				if nib == nil {
					nib = &inbox{time: ib.time + 1}
					boxes[nb] = nib
				}
				if nib.seen {
					continue
				}
				if ib.time+1 < nib.time {
					nib.time = ib.time + 1
				}
				nib.state = skyline.Merge(nib.state, merged)
				stats.StateMsgs++
				stats.TuplesSent += len(merged)
				heap.Push(pq, queued{peer: nb, time: nib.time})
			}
		}
	}
	stats.Latency = maxTime
	return skyline.Compute(answers), stats
}

// dominatedZone reports whether any skyline point dominates the whole zone.
func dominatedZone(sky []dataset.Tuple, zone geom.Rect) bool {
	for _, s := range sky {
		if geom.DominatesRect(s.Vec, zone) {
			return true
		}
	}
	return false
}

// routeToPoint greedily forwards toward the peer owning p, one abutting zone
// at a time (CAN routing), charging one hop and one processed message per
// relay. Returns the owner and the hop count.
func routeToPoint(from *can.Peer, p geom.Point, stats *sim.Stats) (*can.Peer, int) {
	cur := from
	hops := 0
	for !cur.Rect().Contains(p) {
		best := cur
		bestDist := geom.L2.MinDist(p, cur.Rect())
		for _, nb := range cur.Neighbors() {
			if d := geom.L2.MinDist(p, nb.Rect()); d < bestDist {
				best, bestDist = nb, d
			}
		}
		if best == cur {
			panic("dsl: CAN routing stuck")
		}
		stats.Touch(cur.ID())
		cur = best
		hops++
	}
	return cur, hops
}

type queued struct {
	peer *can.Peer
	time int
}

type peerQueue []queued

func (q peerQueue) Len() int            { return len(q) }
func (q peerQueue) Less(i, j int) bool  { return q[i].time < q[j].time }
func (q peerQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *peerQueue) Push(x interface{}) { *q = append(*q, x.(queued)) }
func (q *peerQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
