package ssp

import (
	"math/rand"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/skyline"
)

func TestSSPComputesExactSkyline(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ts := dataset.Synth(dataset.SynthConfig{N: 2000, Dims: 3, Centers: 25, Seed: seed})
		want := skyline.Compute(ts)
		sys := Build(48, 3, ts)
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < 4; q++ {
			from := sys.Net.Peers()[rng.Intn(sys.Net.Size())]
			got, stats := Run(sys, from)
			if len(got) != len(want) {
				t.Fatalf("seed %d: skyline size %d, want %d", seed, len(got), len(want))
			}
			ids := map[uint64]bool{}
			for _, x := range got {
				ids[x.ID] = true
			}
			for _, x := range want {
				if !ids[x.ID] {
					t.Fatalf("seed %d: missing tuple %v", seed, x)
				}
			}
			if stats.QueryMsgs == 0 {
				t.Fatal("no messages recorded")
			}
		}
	}
}

func TestSSPLoadsAllTuples(t *testing.T) {
	ts := dataset.Uniform(1000, 4, 7)
	sys := Build(32, 4, ts)
	total := 0
	for _, w := range sys.Net.Peers() {
		total += len(w.Tuples())
	}
	if total != 1000 {
		t.Fatalf("loaded %d tuples, want 1000", total)
	}
	// Equal-count bounds: no peer grossly overloaded.
	for _, w := range sys.Net.Peers() {
		if len(w.Tuples()) > 1000/32*5 {
			t.Fatalf("peer %s holds %d tuples; balancing failed", w.ID(), len(w.Tuples()))
		}
	}
}

func TestSSPPrunesPeers(t *testing.T) {
	ts := dataset.Synth(dataset.SynthConfig{N: 4000, Dims: 2, Centers: 8, Seed: 5})
	sys := Build(128, 2, ts)
	_, stats := Run(sys, sys.Net.Peers()[0])
	// Congestion counts relays too, but the number of *distinct* peers doing
	// any work must stay below the full population when pruning bites.
	if stats.PeersReached() >= 128 {
		t.Fatalf("SSP touched all %d peers; pruning ineffective", stats.PeersReached())
	}
}

func TestZRangeRoundTrip(t *testing.T) {
	ts := dataset.Uniform(500, 2, 9)
	sys := Build(16, 2, ts)
	// Every stored tuple's Z-key must fall inside its host's Z-range.
	for _, w := range sys.Net.Peers() {
		lo, hi, ok := sys.zRange(w)
		for _, tp := range w.Tuples() {
			z := sys.Curve.Encode(tp.Vec)
			if !ok || z < lo || z > hi {
				t.Fatalf("tuple z=%d outside host range [%d,%d] ok=%v", z, lo, hi, ok)
			}
		}
	}
}
