// Package ssp implements SSP — Skyline Space Partitioning (Wang et al.,
// ICDE 2007) — the paper's BATON-based skyline competitor (§2.2). The
// multidimensional data space is mapped onto BATON's one-dimensional keyspace
// with a Z-curve. Processing starts at the peer responsible for the region
// containing the origin of the data space; it computes its local skyline,
// selects the most dominating point to refine the search space, prunes the
// peers whose entire (Z-interval) region is dominated, and queries the
// remaining peers in parallel via BATON routing, merging their local skyline
// sets into the global answer.
package ssp

import (
	"math"

	"ripple/internal/baton"
	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/sim"
	"ripple/internal/skyline"
	"ripple/internal/zorder"
)

// System couples a BATON overlay with the Z-curve that linearises the data
// domain onto its keyspace.
type System struct {
	Net   *baton.Network
	Curve zorder.Curve
}

// Key maps a data point to its (normalised) BATON key.
func (s *System) Key(p geom.Point) float64 {
	return float64(s.Curve.Encode(p)) / float64(s.Curve.MaxKey()+1)
}

// Build creates a system of size peers for d-dimensional data, with range
// boundaries balanced for the given tuples (nil for a uniform partition),
// and loads the tuples.
func Build(size, d int, ts []dataset.Tuple) *System {
	s := &System{Curve: zorder.New(d)}
	var bounds []float64
	if len(ts) > 0 {
		keys := make([]float64, len(ts))
		for i, t := range ts {
			keys[i] = float64(s.Curve.Encode(t.Vec)) / float64(s.Curve.MaxKey()+1)
		}
		bounds = baton.EqualCountBounds(keys, size)
	}
	s.Net = baton.Build(size, bounds)
	for _, t := range ts {
		s.Net.Insert(s.Key(t.Vec), t)
	}
	return s
}

// zRange returns the inclusive Z-key interval a peer's key range covers, and
// whether it is non-empty.
func (s *System) zRange(p *baton.Peer) (lo, hi uint64, ok bool) {
	rlo, rhi := p.Range()
	scale := float64(s.Curve.MaxKey() + 1)
	loF := math.Ceil(rlo * scale)
	hiF := math.Ceil(rhi*scale) - 1
	if hiF < loF {
		return 0, 0, false
	}
	return uint64(loF), uint64(hiF), true
}

// regionBoxes returns the axis-parallel boxes a peer's Z-interval decomposes
// into — the geometric region the peer is responsible for.
func (s *System) regionBoxes(p *baton.Peer) []geom.Rect {
	lo, hi, ok := s.zRange(p)
	if !ok {
		return nil
	}
	return s.Curve.Boxes(lo, hi)
}

// Run processes a full-space skyline query initiated at from, returning the
// exact skyline and the costs. Latency counts the route to the origin peer
// plus the longest parallel route to a queried peer; congestion counts every
// routed message processed along the way.
func Run(s *System, from *baton.Peer) ([]dataset.Tuple, sim.Stats) {
	var stats sim.Stats

	// Route the query to the peer owning the origin of the data space.
	originPeer := s.Net.Owner(0)
	stats.Touch(from.ID())
	path := from.Route(0)
	for _, q := range path {
		stats.Touch(q.ID())
	}
	baseLatency := len(path)

	// The origin peer computes its local skyline and the most dominating
	// point, which defines the pruned search space.
	localSky := skyline.Compute(originPeer.Tuples())
	var pStar *geom.Point
	bestSum := math.Inf(1)
	for _, t := range localSky {
		sum := 0.0
		for _, v := range t.Vec {
			sum += v
		}
		if sum < bestSum {
			bestSum = sum
			v := t.Vec
			pStar = &v
		}
	}

	answers := append([]dataset.Tuple(nil), localSky...)

	// Query every unpruned peer in parallel via BATON routing.
	maxRoute := 0
	for _, w := range s.Net.Peers() {
		if w == originPeer {
			continue
		}
		if !s.peerRelevant(w, pStar) {
			continue
		}
		lo, _ := w.Range()
		route := originPeer.Route(lo)
		for _, q := range route {
			stats.Touch(q.ID())
		}
		if len(route) > maxRoute {
			maxRoute = len(route)
		}
		// The queried peer returns its local skyline, filtered by p*.
		var contrib []dataset.Tuple
		for _, t := range skyline.Compute(w.Tuples()) {
			if pStar == nil || !pStar.Dominates(t.Vec) {
				contrib = append(contrib, t)
			}
		}
		if len(contrib) > 0 {
			stats.AnswerMsgs++
			stats.TuplesSent += len(contrib)
			answers = append(answers, contrib...)
		}
	}

	stats.Latency = baseLatency + maxRoute
	return skyline.Compute(answers), stats
}

// peerRelevant reports whether the peer's region can still contain skyline
// tuples given the most dominating point. SSP reasons about a peer's region
// through the bounding box of its Z-interval — the source of the Z-curve
// false positives the paper attributes to it ("more false positive skyline
// tuples are considered and network routing becomes less effective"): a
// Z-interval's bounding box is much larger than the cells it actually
// covers, so many irrelevant peers survive the prune.
func (s *System) peerRelevant(w *baton.Peer, pStar *geom.Point) bool {
	boxes := s.regionBoxes(w)
	if len(boxes) == 0 {
		return len(w.Tuples()) > 0 // degenerate range; be safe
	}
	if pStar == nil {
		return true
	}
	bbox := boxes[0].Clone()
	for _, b := range boxes[1:] {
		for j := range bbox.Lo {
			if b.Lo[j] < bbox.Lo[j] {
				bbox.Lo[j] = b.Lo[j]
			}
			if b.Hi[j] > bbox.Hi[j] {
				bbox.Hi[j] = b.Hi[j]
			}
		}
	}
	return !pStar.Dominates(bbox.Lo)
}
