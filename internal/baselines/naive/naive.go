// Package naive implements the strawman of the paper's introduction:
// broadcast the query to the entire network, have every peer return its
// locally qualifying tuples, and derive the answer at the initiator. Latency
// equals the network diameter (optimal) but every peer is reached and no
// remote pruning is possible. It doubles as the reference "reach everybody
// exactly once" processor for engine tests and ablation benchmarks.
package naive

import (
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/overlay"
)

// Processor broadcasts a query with no state and no pruning. LocalSelect
// extracts each peer's locally qualifying tuples (for a top-k query, its
// local top-k; for a skyline query, its local skyline).
type Processor struct {
	LocalSelect func(w overlay.Node) []dataset.Tuple
}

var _ core.Processor = (*Processor)(nil)

// InitialState implements core.Processor.
func (p *Processor) InitialState() core.State { return nil }

// StateTuples implements core.Processor.
func (p *Processor) StateTuples(core.State) int { return 0 }

// LocalState implements core.Processor.
func (p *Processor) LocalState(w overlay.Node, global core.State) core.State { return nil }

// GlobalState implements core.Processor.
func (p *Processor) GlobalState(w overlay.Node, global, local core.State) core.State { return nil }

// MergeStates implements core.Processor.
func (p *Processor) MergeStates(w overlay.Node, states []core.State) core.State { return nil }

// LinkRelevant implements core.Processor: naive processing never prunes.
func (p *Processor) LinkRelevant(w overlay.Node, region overlay.Region, global core.State) bool {
	return true
}

// LinkPriority implements core.Processor: order is immaterial.
func (p *Processor) LinkPriority(w overlay.Node, region overlay.Region) float64 { return 0 }

// LocalAnswer implements core.Processor.
func (p *Processor) LocalAnswer(w overlay.Node, local core.State) []dataset.Tuple {
	return p.LocalSelect(w)
}

// Broadcast floods the query from the initiator (always in fast mode — the
// strawman has no use for slow iteration) and returns the collected tuples
// plus costs.
func Broadcast(initiator overlay.Node, localSelect func(w overlay.Node) []dataset.Tuple) *core.Result {
	return core.Run(initiator, &Processor{LocalSelect: localSelect}, 0)
}
