package naive

import (
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

func TestBroadcastTopK(t *testing.T) {
	// The strawman from §1: every peer ships its local top-k; the initiator
	// merges. Latency optimal, congestion = n.
	ts := dataset.NBA(3000, 1)
	n := midas.Build(64, midas.Options{Dims: 6, Seed: 2})
	overlay.Load(n, ts)
	f := topk.UniformLinear(6)
	res := Broadcast(n.Peers()[0], func(w overlay.Node) []dataset.Tuple {
		return topk.Brute(w.Tuples(), f, 10)
	})
	got := topk.Select(res.Answers, f, 10)
	want := topk.Brute(ts, f, 10)
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("naive top-k wrong at rank %d", i)
		}
	}
	if res.Stats.QueryMsgs != 64 {
		t.Fatalf("congestion %d, want n=64", res.Stats.QueryMsgs)
	}
	if res.Stats.Latency > n.MaxDepth() {
		t.Fatalf("latency %d above diameter %d", res.Stats.Latency, n.MaxDepth())
	}
}

func TestBroadcastSkyline(t *testing.T) {
	ts := dataset.Uniform(2000, 3, 4)
	n := midas.Build(32, midas.Options{Dims: 3, Seed: 5})
	overlay.Load(n, ts)
	res := Broadcast(n.Peers()[0], func(w overlay.Node) []dataset.Tuple {
		return skyline.Compute(w.Tuples())
	})
	got := skyline.Compute(res.Answers)
	want := skyline.Compute(ts)
	if len(got) != len(want) {
		t.Fatalf("naive skyline %d vs %d", len(got), len(want))
	}
}

func TestProcessorStatelessContract(t *testing.T) {
	p := &Processor{LocalSelect: func(w overlay.Node) []dataset.Tuple { return nil }}
	if p.InitialState() != nil || p.StateTuples(nil) != 0 {
		t.Fatal("naive state must be empty")
	}
	if p.LocalState(nil, nil) != nil || p.GlobalState(nil, nil, nil) != nil || p.MergeStates(nil, nil) != nil {
		t.Fatal("naive states must stay nil")
	}
	if !p.LinkRelevant(nil, overlay.Region{}, nil) {
		t.Fatal("naive never prunes")
	}
	if p.LinkPriority(nil, overlay.Region{}) != 0 {
		t.Fatal("naive priority must be constant")
	}
}
