package midas

import (
	"math"
	"math/rand"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
)

func TestBuildInvariants(t *testing.T) {
	for _, size := range []int{1, 2, 3, 17, 128} {
		n := Build(size, Options{Dims: 3, Seed: int64(size)})
		if n.Size() != size {
			t.Fatalf("size = %d, want %d", n.Size(), size)
		}
		if err := overlay.CheckInvariants(n, 200, 1); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestTuplePlacement(t *testing.T) {
	n := Build(64, Options{Dims: 4, Seed: 9})
	ts := dataset.Uniform(500, 4, 3)
	overlay.Load(n, ts)
	total := 0
	for _, w := range n.Peers() {
		total += len(w.Tuples())
		for _, tp := range w.Tuples() {
			if !w.Zone().Contains(tp.Vec) {
				t.Fatalf("tuple %v misplaced at %s", tp, w.ID())
			}
		}
	}
	if total != 500 {
		t.Fatalf("stored %d tuples, want 500", total)
	}
}

func TestIDsMatchPaths(t *testing.T) {
	n := Build(32, Options{Dims: 2, Seed: 4})
	seen := map[string]bool{}
	for _, w := range n.Peers() {
		id := w.ID()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		if len(id) != w.Depth() {
			t.Fatalf("id %q length != depth %d", id, w.Depth())
		}
		// The id must locate the peer when followed from the root.
		nd := n.root
		for _, b := range id {
			if b == '0' {
				nd = nd.left
			} else {
				nd = nd.right
			}
		}
		if nd.peer != w {
			t.Fatalf("id %q does not lead back to peer", id)
		}
	}
}

func TestLinksStructure(t *testing.T) {
	n := Build(100, Options{Dims: 3, Seed: 11})
	for _, w := range n.Peers() {
		links := w.Links()
		if len(links) != w.Depth() {
			t.Fatalf("peer %s: %d links, want depth %d", w.ID(), len(links), w.Depth())
		}
		for i, l := range links {
			// Link i's region is the sibling subtree at depth i+1: its id
			// prefix differs from w's in exactly the (i+1)-th bit.
			to := l.To.(*Peer)
			wantPrefix := w.ID()[:i] + flip(w.ID()[i])
			if got := to.ID()[:i+1]; got != wantPrefix {
				t.Fatalf("peer %s link %d: target prefix %q, want %q", w.ID(), i, got, wantPrefix)
			}
			if !l.Region.Contains(to.Rect().Center()) {
				t.Fatalf("peer %s link %d: target zone outside region", w.ID(), i)
			}
		}
	}
}

func flip(b byte) string {
	if b == '0' {
		return "1"
	}
	return "0"
}

func TestLinksStableAcrossCalls(t *testing.T) {
	n := Build(64, Options{Dims: 2, Seed: 2})
	w := n.Peers()[7]
	a, b := w.Links(), w.Links()
	for i := range a {
		if a[i].To.ID() != b[i].To.ID() {
			t.Fatalf("link %d target changed between calls: %s vs %s", i, a[i].To.ID(), b[i].To.ID())
		}
	}
}

func TestChurnInvariants(t *testing.T) {
	n := Build(40, Options{Dims: 3, Seed: 21})
	overlay.Load(n, dataset.Uniform(300, 3, 8))
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 60; round++ {
		if rng.Intn(2) == 0 && n.Size() > 2 {
			peers := n.Peers()
			n.Leave(peers[rng.Intn(len(peers))])
		} else {
			n.Join()
		}
	}
	if err := overlay.CheckInvariants(n, 150, 3); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	// No tuple may be lost under churn.
	total := 0
	for _, w := range n.Peers() {
		total += len(w.Tuples())
	}
	if total != 300 {
		t.Fatalf("churn lost tuples: have %d, want 300", total)
	}
}

func TestDecreasingStageToMinimum(t *testing.T) {
	n := Build(64, Options{Dims: 2, Seed: 13})
	overlay.Load(n, dataset.Uniform(100, 2, 1))
	rng := rand.New(rand.NewSource(2))
	for n.Size() > 1 {
		peers := n.Peers()
		n.Leave(peers[rng.Intn(len(peers))])
	}
	w := n.Peers()[0]
	if !w.Rect().Equal(geom.UnitCube(2)) {
		t.Fatalf("last peer zone %v, want unit cube", w.Rect())
	}
	if len(w.Tuples()) != 100 {
		t.Fatalf("last peer holds %d tuples, want all 100", len(w.Tuples()))
	}
}

func TestLeaveLastPeerPanics(t *testing.T) {
	n := New(Options{Dims: 2, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic removing last peer")
		}
	}()
	n.Leave(n.Peers()[0])
}

func TestBorderLeafDetection(t *testing.T) {
	cube := geom.UnitCube(2)
	lo, hi := cube.Split(0, 0.5)
	if !isBorderLeaf(lo) || !isBorderLeaf(hi) {
		t.Fatal("after one split both halves touch the border in >= d-1 dims")
	}
	_, upper := hi.Split(1, 0.5)
	if isBorderLeaf(upper) {
		t.Fatalf("zone %v is off both lower borders, must not match", upper)
	}
}

func TestBorderPatternEquivalence(t *testing.T) {
	// Under alternating splits, the geometric border test must coincide with
	// the paper's id patterns p_j (bit i is 0 whenever i mod D != j).
	n := Build(200, Options{Dims: 2, Seed: 33, Split: SplitAlternate})
	for _, w := range n.Peers() {
		id := w.ID()
		want := false
		for j := 0; j < 2 && !want; j++ {
			ok := true
			for i := 0; i < len(id); i++ {
				if i%2 != j && id[i] == '1' {
					ok = false
					break
				}
			}
			want = want || ok
		}
		if got := isBorderLeaf(w.Rect()); got != want {
			t.Fatalf("peer %s: geometric border=%v, pattern border=%v", id, got, want)
		}
	}
}

func TestPreferBorderTargetsBorderPeers(t *testing.T) {
	n := Build(300, Options{Dims: 2, Seed: 17, PreferBorder: true})
	// Every link whose sibling subtree contains a border peer must target one.
	for _, w := range n.Peers() {
		for i, l := range w.Links() {
			to := l.To.(*Peer)
			if isBorderLeaf(to.Rect()) {
				continue
			}
			// Target is not a border peer: the region must contain none.
			for _, other := range n.Peers() {
				if isBorderLeaf(other.Rect()) && l.Region.Contains(other.Rect().Center()) {
					t.Fatalf("peer %s link %d targets non-border %s although border peer %s is in region",
						w.ID(), i, to.ID(), other.ID())
				}
			}
		}
	}
}

func TestMaxDepthBound(t *testing.T) {
	n := Build(1024, Options{Dims: 5, Seed: 3})
	depth := n.MaxDepth()
	// Random binary insertion gives expected depth O(log n); allow slack.
	if depth < 10 || depth > 40 {
		t.Fatalf("unexpected depth %d for 1024 peers", depth)
	}
}

func TestRandomPeerUniformish(t *testing.T) {
	n := Build(8, Options{Dims: 2, Seed: 19})
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	for i := 0; i < 8000; i++ {
		counts[n.RandomPeer(rng).ID()]++
	}
	for id, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("peer %s sampled %d/8000 times; expected near 1000", id, c)
		}
	}
	if len(counts) != 8 {
		t.Fatalf("only %d distinct peers sampled", len(counts))
	}
}

func TestBuildWithDataBalancesLoad(t *testing.T) {
	// Data-adaptive construction: splits follow tuples, so per-peer load is
	// near-balanced even for clustered data, and invariants still hold.
	ts := dataset.Synth(dataset.SynthConfig{N: 8000, Dims: 3, Centers: 5, Spread: 0.02, Seed: 9})
	n := BuildWithData(128, Options{Dims: 3, Seed: 4}, ts)
	if err := overlay.CheckInvariants(n, 150, 6); err != nil {
		t.Fatal(err)
	}
	total, maxLoad := 0, 0
	for _, w := range n.Peers() {
		total += len(w.Tuples())
		if len(w.Tuples()) > maxLoad {
			maxLoad = len(w.Tuples())
		}
	}
	if total != 8000 {
		t.Fatalf("lost tuples: %d/8000", total)
	}
	mean := 8000 / 128
	if maxLoad > 12*mean {
		t.Fatalf("max load %d vs mean %d: data-adaptive splits ineffective", maxLoad, mean)
	}
	// Contrast: volume-uniform construction on the same clustered data is
	// badly skewed.
	u := Build(128, Options{Dims: 3, Seed: 4})
	overlay.Load(u, ts)
	uMax := 0
	for _, w := range u.Peers() {
		if len(w.Tuples()) > uMax {
			uMax = len(w.Tuples())
		}
	}
	if maxLoad >= uMax {
		t.Fatalf("adaptive max load %d not below uniform %d", maxLoad, uMax)
	}
}

func TestInsertMaintainsSubtreeLoads(t *testing.T) {
	ts := dataset.Uniform(500, 2, 3)
	n := BuildWithData(16, Options{Dims: 2, Seed: 2}, ts)
	n.Insert(dataset.Tuple{ID: 9999, Vec: []float64{0.25, 0.75}})
	// Root load must equal the total stored tuples.
	sum := 0
	for _, w := range n.Peers() {
		sum += len(w.Tuples())
	}
	if sum != 501 || n.root.load != 501 {
		t.Fatalf("loads inconsistent: peers %d, root %d", sum, n.root.load)
	}
}

func TestChurnMaintainsLoads(t *testing.T) {
	ts := dataset.Uniform(400, 2, 7)
	n := BuildWithData(32, Options{Dims: 2, Seed: 8}, ts)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		if rng.Intn(2) == 0 && n.Size() > 2 {
			peers := n.Peers()
			n.Leave(peers[rng.Intn(len(peers))])
		} else {
			n.Join()
		}
	}
	if n.root.load != 400 {
		t.Fatalf("root load %d after churn, want 400", n.root.load)
	}
	var walk func(nd *node) int
	walk = func(nd *node) int {
		if nd.isLeaf() {
			if nd.load != len(nd.peer.tuples) {
				t.Fatalf("leaf load %d != %d tuples", nd.load, len(nd.peer.tuples))
			}
			return nd.load
		}
		want := walk(nd.left) + walk(nd.right)
		if nd.load != want {
			t.Fatalf("internal load %d != children sum %d", nd.load, want)
		}
		return nd.load
	}
	walk(n.root)
}

func TestJoinSurvivesBoundaryClampedData(t *testing.T) {
	// Regression: data mass clamped onto the domain boundary creates
	// float-degenerate slivers whose midpoint rounds onto the zone edge;
	// joins must route around them instead of panicking.
	edge := math.Nextafter(1, 0)
	var ts []dataset.Tuple
	for i := 0; i < 2000; i++ {
		ts = append(ts, dataset.Tuple{ID: uint64(i), Vec: geom.Point{edge, edge}})
	}
	// A handful of interior tuples so some zones stay splittable.
	for i := 2000; i < 2050; i++ {
		ts = append(ts, dataset.Tuple{ID: uint64(i), Vec: geom.Point{0.3, 0.6}})
	}
	n := BuildWithData(64, Options{Dims: 2, Seed: 5}, ts)
	if n.Size() != 64 {
		t.Fatalf("size = %d", n.Size())
	}
	if err := overlay.CheckInvariants(n, 100, 2); err != nil {
		t.Fatal(err)
	}
}
