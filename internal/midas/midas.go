// Package midas implements the MIDAS overlay (Tsatsanifos et al.,
// GeoInformatica 2013), the distributed multidimensional index RIPPLE is
// showcased on (§2.3 of the paper). Peers are the leaves of a virtual k-d
// tree over the unit domain; a peer's zone is its leaf rectangle, its binary
// identifier is its root-to-leaf path, and its i-th link points to some peer
// inside the sibling subtree rooted at depth i. The expected tree depth — and
// hence the overlay diameter — is O(log n).
//
// The package also implements the paper's §5.2 structural optimisation for
// skyline processing: when Options.PreferBorder is set, links target peers
// whose identifiers match the border patterns p_j (zones touching the lower
// domain boundary on every dimension except at most one), realising the
// back-link re-assignment rule of the join protocol.
package midas

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/storage"
)

// SplitPolicy selects the dimension a zone is split along when a peer joins.
type SplitPolicy int

const (
	// SplitAlternate cycles through dimensions by tree depth (depth mod d),
	// the layout assumed by the §5.2 border patterns (Figure 2).
	SplitAlternate SplitPolicy = iota
	// SplitWidest splits the longest side, keeping zones close to cubical.
	SplitWidest
)

// Options configures a MIDAS network.
type Options struct {
	// Dims is the dimensionality of the indexed domain.
	Dims int
	// Seed drives all randomised choices (join targets, zone sides).
	Seed int64
	// PreferBorder enables the §5.2 link optimisation.
	PreferBorder bool
	// Split selects the split-dimension policy (default SplitAlternate).
	Split SplitPolicy
	// Storage selects the engine peers serve their zone share with
	// (default/KindAuto: the flat-scan baseline).
	Storage storage.Kind
}

// Network is a simulated MIDAS overlay.
type Network struct {
	opts  Options
	root  *node
	rng   *rand.Rand
	count int
}

// node is a virtual k-d tree node; leaves carry peers.
type node struct {
	parent      *node
	left, right *node
	rect        geom.Rect
	splitDim    int
	splitVal    float64
	peer        *Peer // non-nil iff leaf
	size        int   // number of leaves in this subtree
	load        int   // number of tuples stored in this subtree
	border      *node // the most-border leaf in this subtree (see borderBetter)
}

func (n *node) isLeaf() bool { return n.left == nil }

// Peer is a MIDAS overlay participant (a leaf of the virtual tree).
type Peer struct {
	net    *Network
	leaf   *node
	tuples []dataset.Tuple

	storeMu sync.Mutex
	store   storage.Store // lazy; dropped whenever the share changes
}

// New creates a network of a single peer owning the whole domain.
func New(opts Options) *Network {
	if opts.Dims <= 0 {
		panic("midas: non-positive dimensionality")
	}
	n := &Network{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	root := &node{rect: geom.UnitCube(opts.Dims), size: 1}
	p := &Peer{net: n, leaf: root}
	root.peer = p
	n.root = root
	n.count = 1
	n.refreshBorderUp(root)
	return n
}

// Build grows a network to size peers via successive random joins.
func Build(size int, opts Options) *Network {
	n := New(opts)
	for n.count < size {
		n.Join()
	}
	return n
}

// BuildWithData loads the tuples into a single-peer network first and then
// grows it, so every join splits a data-bearing zone at the median of its
// tuples — MIDAS's load-adaptive behaviour, under which zone density follows
// data density and empty border areas stay coarse. This is the constructor
// the benchmark harness uses.
func BuildWithData(size int, opts Options, ts []dataset.Tuple) *Network {
	n := New(opts)
	for _, t := range ts {
		n.Insert(t)
	}
	for n.count < size {
		n.Join()
	}
	return n
}

// BuildPerfect grows a perfectly balanced network of 2^depth peers by
// splitting every leaf once per round. In the resulting virtual tree every
// peer sits at depth ∆ = depth and has exactly ∆ links, the setting the
// worst-case latency lemmas (§3.2) are stated in.
func BuildPerfect(depth int, opts Options) *Network {
	n := New(opts)
	for d := 0; d < depth; d++ {
		for _, p := range n.Peers() {
			n.JoinAt(p)
		}
	}
	return n
}

// Dims implements overlay.Network.
func (n *Network) Dims() int { return n.opts.Dims }

// Size implements overlay.Network.
func (n *Network) Size() int { return n.count }

// MaxDepth returns the depth ∆ of the virtual tree (the overlay diameter and
// the maximum number of links of any peer).
func (n *Network) MaxDepth() int {
	var walk func(nd *node, d int) int
	walk = func(nd *node, d int) int {
		if nd.isLeaf() {
			return d
		}
		l, r := walk(nd.left, d+1), walk(nd.right, d+1)
		if l > r {
			return l
		}
		return r
	}
	return walk(n.root, 0)
}

// Nodes implements overlay.Network.
func (n *Network) Nodes() []overlay.Node {
	out := make([]overlay.Node, 0, n.count)
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.isLeaf() {
			out = append(out, nd.peer)
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(n.root)
	return out
}

// Peers returns all peers in left-to-right leaf order.
func (n *Network) Peers() []*Peer {
	nodes := n.Nodes()
	out := make([]*Peer, len(nodes))
	for i, w := range nodes {
		out[i] = w.(*Peer)
	}
	return out
}

// Locate implements overlay.Network.
func (n *Network) Locate(p geom.Point) overlay.Node { return n.locatePeer(p) }

func (n *Network) locatePeer(p geom.Point) *Peer {
	nd := n.root
	for !nd.isLeaf() {
		if p[nd.splitDim] < nd.splitVal {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.peer
}

// Insert implements overlay.Network.
func (n *Network) Insert(t dataset.Tuple) {
	w := n.locatePeer(t.Vec)
	w.tuples = append(w.tuples, t)
	w.dropStore()
	for nd := w.leaf; nd != nil; nd = nd.parent {
		nd.load++
	}
}

// Delete implements overlay.Deleter: it removes the tuple with t.ID from the
// peer owning t.Vec. The surviving share is rebuilt into a fresh backing
// array so snapshots taken by in-flight queries stay intact.
func (n *Network) Delete(t dataset.Tuple) bool {
	w := n.locatePeer(t.Vec)
	for i, u := range w.tuples {
		if u.ID == t.ID {
			w.tuples = append(w.tuples[:i:i], w.tuples[i+1:]...)
			w.dropStore()
			for nd := w.leaf; nd != nil; nd = nd.parent {
				nd.load--
			}
			return true
		}
	}
	return false
}

// RandomPeer returns a uniformly random peer, used to pick query initiators.
func (n *Network) RandomPeer(rng *rand.Rand) *Peer {
	nd := n.root
	for !nd.isLeaf() {
		if rng.Intn(nd.size) < nd.left.size {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.peer
}

// Join adds a new peer. On a data-bearing network the split target is chosen
// with probability proportional to stored tuples (MIDAS splits where load
// is), so zone granularity follows data density; on an empty network the
// target is a uniformly random peer. Unsplittable sliver zones are retried
// elsewhere. Returns the new peer.
func (n *Network) Join() *Peer {
	for attempt := 0; attempt < 64; attempt++ {
		if w := n.tryJoinAt(n.loadWeightedPeer()); w != nil {
			return w
		}
	}
	for _, p := range n.Peers() { // last resort: any splittable zone
		if w := n.tryJoinAt(p); w != nil {
			return w
		}
	}
	panic("midas: no splittable zone in the network")
}

// loadWeightedPeer samples a peer with probability proportional to its
// stored tuples, falling back to uniform when the network holds no data.
func (n *Network) loadWeightedPeer() *Peer {
	if n.root.load == 0 {
		return n.RandomPeer(n.rng)
	}
	nd := n.root
	for !nd.isLeaf() {
		if nd.load == 0 {
			// Empty subtree reached via rounding; fall back to size.
			if n.rng.Intn(nd.size) < nd.left.size {
				nd = nd.left
			} else {
				nd = nd.right
			}
			continue
		}
		if n.rng.Intn(nd.load) < nd.left.load {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.peer
}

// JoinAt adds a new peer by splitting the zone of a specific existing peer.
// Exposed for building networks of controlled shape (e.g. the perfect trees
// used to validate the worst-case latency lemmas). Panics when the zone is
// too small to split (a float-degenerate sliver); Join retries elsewhere.
func (n *Network) JoinAt(at *Peer) *Peer {
	w := n.tryJoinAt(at)
	if w == nil {
		panic("midas: zone not splittable")
	}
	return w
}

// tryJoinAt splits at's zone, returning nil when no dimension admits a split
// value strictly inside the zone (possible for slivers created by data
// clamped onto the domain boundary).
func (n *Network) tryJoinAt(at *Peer) *Peer {
	target := at.leaf

	dim, mid, ok := n.chooseSplit(target)
	if !ok {
		return nil
	}
	loRect, hiRect := target.rect.Split(dim, mid)

	oldPeer := target.peer
	newPeer := &Peer{net: n}
	left := &node{parent: target, rect: loRect, size: 1}
	right := &node{parent: target, rect: hiRect, size: 1}
	if n.rng.Intn(2) == 0 {
		left.peer, right.peer = oldPeer, newPeer
	} else {
		left.peer, right.peer = newPeer, oldPeer
	}
	left.peer.leaf = left
	right.peer.leaf = right

	target.peer = nil
	target.left, target.right = left, right
	target.splitDim, target.splitVal = dim, mid

	// Redistribute the split zone's tuples by containment.
	old := oldPeer.tuples
	oldPeer.tuples, newPeer.tuples = nil, nil
	for _, t := range old {
		host := left.peer
		if right.rect.Contains(t.Vec) {
			host = right.peer
		}
		host.tuples = append(host.tuples, t)
	}

	left.load, right.load = len(left.peer.tuples), len(right.peer.tuples)
	oldPeer.dropStore()
	newPeer.dropStore()
	n.count++
	n.refreshSizeUp(target)
	n.refreshBorderLeaf(left)
	n.refreshBorderLeaf(right)
	n.refreshBorderUp(target)
	return newPeer
}

// chooseSplit picks the dimension and value a zone splits at: the preferred
// dimension (by policy) first, then any other, using the median of the
// zone's tuples when it holds data (MIDAS's load-balancing split) and the
// midpoint otherwise. Returns ok=false when no dimension admits a value
// strictly inside the zone — midpoints of float-degenerate intervals can
// round onto the boundary, so every candidate is validated.
func (n *Network) chooseSplit(target *node) (int, float64, bool) {
	preferred := target.rect.WidestDim()
	if n.opts.Split == SplitAlternate {
		preferred = nodeDepth(target) % n.opts.Dims
		if target.rect.Extent(preferred) <= 0 {
			preferred = target.rect.WidestDim()
		}
	}
	dims := []int{preferred}
	for d := 0; d < n.opts.Dims; d++ {
		if d != preferred {
			dims = append(dims, d)
		}
	}
	for _, dim := range dims {
		if v, ok := n.splitValue(target, dim); ok {
			return dim, v, true
		}
	}
	return 0, 0, false
}

func (n *Network) splitValue(target *node, dim int) (float64, bool) {
	lo, hi := target.rect.Lo[dim], target.rect.Hi[dim]
	valid := func(v float64) bool { return v > lo && v < hi }
	ts := target.peer.tuples
	if len(ts) >= 2 {
		vals := make([]float64, len(ts))
		for i, t := range ts {
			vals[i] = t.Vec[dim]
		}
		sort.Float64s(vals)
		if med := vals[len(vals)/2]; valid(med) {
			return med, true
		}
	}
	if mid := (lo + hi) / 2; valid(mid) {
		return mid, true
	}
	return 0, false
}

// Leave removes peer p from the network, keeping the structure a valid k-d
// tree. If p's sibling is a leaf, the sibling absorbs the merged zone. If the
// sibling subtree is internal, the deepest leaf pair inside it is merged and
// the freed peer takes over p's zone and tuples (the standard k-d-tree DHT
// departure protocol).
func (n *Network) Leave(p *Peer) {
	if n.count == 1 {
		panic("midas: cannot remove the last peer")
	}
	leaf := p.leaf
	parent := leaf.parent
	sib := parent.left
	if sib == leaf {
		sib = parent.right
	}

	if sib.isLeaf() {
		// Sibling absorbs parent's whole rectangle and both tuple sets.
		survivor := sib.peer
		survivor.tuples = append(survivor.tuples, p.tuples...)
		parent.peer = survivor
		parent.left, parent.right = nil, nil
		survivor.leaf = parent
		n.count--
		p.leaf, p.tuples = nil, nil
		survivor.dropStore()
		p.dropStore()
		n.refreshSizeUp(parent)
		n.refreshBorderUp(parent)
		return
	}

	// Merge the deepest leaf pair inside the sibling subtree; the freed peer
	// becomes the new owner of the departing peer's zone.
	q := deepestLeafPair(sib)
	keeper, donor := q.left.peer, q.right.peer
	keeper.tuples = append(keeper.tuples, donor.tuples...)
	q.peer = keeper
	q.left, q.right = nil, nil
	keeper.leaf = q

	donor.tuples = p.tuples
	donor.leaf = leaf
	leaf.peer = donor

	n.count--
	p.leaf, p.tuples = nil, nil
	keeper.dropStore()
	donor.dropStore()
	p.dropStore()
	n.refreshSizeUp(q)
	n.refreshBorderUp(q)
	n.refreshBorderUp(leaf)
}

// deepestLeafPair returns the deepest internal node of sub whose children are
// both leaves (one always exists in a finite binary tree).
func deepestLeafPair(sub *node) *node {
	var best *node
	bestDepth := -1
	var walk func(nd *node, d int)
	walk = func(nd *node, d int) {
		if nd.isLeaf() {
			return
		}
		if nd.left.isLeaf() && nd.right.isLeaf() && d > bestDepth {
			best, bestDepth = nd, d
		}
		walk(nd.left, d+1)
		walk(nd.right, d+1)
	}
	walk(sub, 0)
	return best
}

func (n *Network) refreshSizeUp(nd *node) {
	for ; nd != nil; nd = nd.parent {
		if nd.isLeaf() {
			nd.size = 1
			nd.load = len(nd.peer.tuples)
		} else {
			nd.size = nd.left.size + nd.right.size
			nd.load = nd.left.load + nd.right.load
		}
	}
}

// isBorderLeaf reports whether a zone matches one of the §5.2 border
// patterns p_j: it touches the lower domain boundary on every dimension
// except at most one.
func isBorderLeaf(rect geom.Rect) bool {
	off := 0
	for i := range rect.Lo {
		if rect.Lo[i] > 0 {
			off++
			if off > 1 {
				return false
			}
		}
	}
	return true
}

// borderKey orders leaves by how close their zone sits to the lower domain
// boundaries: first by the number of dimensions off the boundary, then by the
// L1 norm of the lower corner. The §5.2 patterns p_j are exactly the leaves
// with off-dimension count <= 1, so preferring the minimal key generalises
// the paper's rule (a pattern leaf always wins over a non-pattern one) while
// still selecting the most-border peer in subtrees that contain no pattern
// leaf.
func borderKey(rect geom.Rect) (off int, sum float64) {
	for i := range rect.Lo {
		if rect.Lo[i] > 0 {
			off++
		}
		sum += rect.Lo[i]
	}
	return off, sum
}

func borderBetter(a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	ao, as := borderKey(a.rect)
	bo, bs := borderKey(b.rect)
	if ao != bo {
		if ao < bo {
			return a
		}
		return b
	}
	if as <= bs {
		return a
	}
	return b
}

func (n *Network) refreshBorderLeaf(nd *node) { nd.border = nd }

func (n *Network) refreshBorderUp(nd *node) {
	for ; nd != nil; nd = nd.parent {
		if nd.isLeaf() {
			n.refreshBorderLeaf(nd)
		} else {
			nd.border = borderBetter(nd.left.border, nd.right.border)
		}
	}
}

func nodeDepth(nd *node) int {
	d := 0
	for p := nd.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// ID implements overlay.Node: the binary root-to-leaf path of the peer.
func (p *Peer) ID() string {
	var bits []byte
	for nd := p.leaf; nd.parent != nil; nd = nd.parent {
		if nd.parent.left == nd {
			bits = append(bits, '0')
		} else {
			bits = append(bits, '1')
		}
	}
	for i, j := 0, len(bits)-1; i < j; i, j = i+1, j-1 {
		bits[i], bits[j] = bits[j], bits[i]
	}
	return string(bits)
}

// Depth returns the peer's depth in the virtual tree (= its number of links).
func (p *Peer) Depth() int { return nodeDepth(p.leaf) }

// Zone implements overlay.Node.
func (p *Peer) Zone() overlay.Region { return overlay.FromRect(p.leaf.rect) }

// Rect returns the peer's zone rectangle.
func (p *Peer) Rect() geom.Rect { return p.leaf.rect }

// Tuples implements overlay.Node.
func (p *Peer) Tuples() []dataset.Tuple { return p.tuples }

// Store implements storage.Provider: the peer's zone share behind the engine
// selected by Options.Storage. The store is built lazily on first use and
// dropped whenever the share changes (inserts, zone splits on join,
// departures), so the steady state — many queries between rare topology
// changes — reuses one index.
func (p *Peer) Store() storage.Store {
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	if p.store == nil {
		p.store = storage.New(p.net.opts.Storage, p.tuples)
	}
	return p.store
}

func (p *Peer) dropStore() {
	p.storeMu.Lock()
	p.store = nil
	p.storeMu.Unlock()
}

// Links implements overlay.Node: link i targets a peer inside the sibling
// subtree rooted at depth i+1 of the peer's path, and its region is that
// subtree's rectangle — a partition of the domain minus the peer's zone.
func (p *Peer) Links() []overlay.Link {
	// Collect the root-to-leaf path.
	var path []*node
	for nd := p.leaf; nd != nil; nd = nd.parent {
		path = append(path, nd)
	}
	// path is leaf..root; traverse from root down.
	var links []overlay.Link
	callerSalt := hashString(p.ID())
	for i := len(path) - 1; i > 0; i-- {
		cur, child := path[i], path[i-1]
		sib := cur.left
		if sib == child {
			sib = cur.right
		}
		rep := p.net.representative(sib, callerSalt+uint64(i)*0x9e3779b97f4a7c15)
		links = append(links, overlay.Link{To: rep, Region: overlay.FromRect(sib.rect)})
	}
	return links
}

// representative picks the peer a link targets inside a sibling subtree.
// With PreferBorder set and a border-pattern peer present, that peer is
// chosen (the §5.2 policy); otherwise a pseudo-random descent keyed by the
// calling peer makes the choice stable across queries yet varied across
// peers, matching MIDAS's freedom in link establishment.
func (n *Network) representative(sub *node, salt uint64) *Peer {
	if n.opts.PreferBorder && sub.border != nil {
		return sub.border.peer
	}
	h := splitmix64(salt)
	bits := 64
	for !sub.isLeaf() {
		if bits == 0 {
			h = splitmix64(h)
			bits = 64
		}
		if h&1 == 0 {
			sub = sub.left
		} else {
			sub = sub.right
		}
		h >>= 1
		bits--
	}
	return sub.peer
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// String renders the virtual tree for demos (Figure 1 style).
func (n *Network) String() string {
	var b strings.Builder
	var walk func(nd *node, indent string)
	walk = func(nd *node, indent string) {
		if nd.isLeaf() {
			fmt.Fprintf(&b, "%s- peer %q zone %v (%d tuples)\n", indent, nd.peer.ID(), nd.rect, len(nd.peer.tuples))
			return
		}
		fmt.Fprintf(&b, "%s* split dim %d @ %.4f\n", indent, nd.splitDim, nd.splitVal)
		walk(nd.left, indent+"  ")
		walk(nd.right, indent+"  ")
	}
	walk(n.root, "")
	return b.String()
}
