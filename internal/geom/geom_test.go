package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pt(vs ...float64) Point { return Point(vs) }

func TestPointDominates(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{pt(0, 0), pt(1, 1), true},
		{pt(0, 1), pt(1, 1), true},
		{pt(1, 1), pt(1, 1), false}, // equal points do not dominate
		{pt(1, 0), pt(0, 1), false}, // incomparable
		{pt(0, 1), pt(1, 0), false},
		{pt(2, 2), pt(1, 1), false},
		{pt(0, 0, 0), pt(0, 0), false}, // dimension mismatch
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%v.Dominates(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominanceIsStrictPartialOrder(t *testing.T) {
	// Irreflexivity and antisymmetry on random points; transitivity on
	// random chains.
	rng := rand.New(rand.NewSource(7))
	randPt := func() Point {
		p := make(Point, 3)
		// Small discrete grid so that ties and dominance both occur often.
		for i := range p {
			p[i] = float64(rng.Intn(4))
		}
		return p
	}
	for i := 0; i < 2000; i++ {
		a, b, c := randPt(), randPt(), randPt()
		if a.Dominates(a) {
			t.Fatalf("irreflexivity violated for %v", a)
		}
		if a.Dominates(b) && b.Dominates(a) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
		if a.Dominates(b) && b.Dominates(c) && !a.Dominates(c) {
			t.Fatalf("transitivity violated for %v, %v, %v", a, b, c)
		}
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Lo: pt(0, 0), Hi: pt(1, 1)}
	if !r.Contains(pt(0, 0)) {
		t.Error("lower corner must be inside (half-open)")
	}
	if r.Contains(pt(1, 1)) {
		t.Error("upper corner must be outside (half-open)")
	}
	if r.Contains(pt(0.5, 1)) {
		t.Error("upper face must be outside")
	}
	if !r.Contains(pt(0.999, 0)) {
		t.Error("interior point missing")
	}
}

func TestRectSplitPartitions(t *testing.T) {
	r := UnitCube(3)
	lo, hi := r.Split(1, 0.25)
	if lo.Overlaps(hi) {
		t.Fatal("split halves overlap")
	}
	if got := lo.Volume() + hi.Volume(); math.Abs(got-r.Volume()) > 1e-12 {
		t.Fatalf("split volumes %v do not sum to parent %v", got, r.Volume())
	}
	// Every point is in exactly one half.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := pt(rng.Float64(), rng.Float64(), rng.Float64())
		inLo, inHi := lo.Contains(p), hi.Contains(p)
		if inLo == inHi {
			t.Fatalf("point %v in lo=%v hi=%v; want exactly one", p, inLo, inHi)
		}
	}
}

func TestRectSplitPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for split at boundary")
		}
	}()
	UnitCube(2).Split(0, 0)
}

func TestRectIntersect(t *testing.T) {
	a := Rect{Lo: pt(0, 0), Hi: pt(0.6, 0.6)}
	b := Rect{Lo: pt(0.4, 0.4), Hi: pt(1, 1)}
	got := a.Intersect(b)
	want := Rect{Lo: pt(0.4, 0.4), Hi: pt(0.6, 0.6)}
	if !got.Equal(want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	c := Rect{Lo: pt(0.7, 0), Hi: pt(1, 0.3)}
	if !a.Intersect(c).IsEmpty() {
		t.Fatal("disjoint boxes should intersect to empty")
	}
	if a.Overlaps(c) {
		t.Fatal("Overlaps must agree with empty intersection")
	}
}

func TestDominatesRect(t *testing.T) {
	r := Rect{Lo: pt(0.5, 0.5), Hi: pt(1, 1)}
	if !DominatesRect(pt(0.1, 0.1), r) {
		t.Error("point below Lo must dominate the box")
	}
	if DominatesRect(pt(0.5, 0.5), r) {
		t.Error("Lo itself does not dominate the box (contains Lo)")
	}
	if DominatesRect(pt(0.1, 0.9), r) {
		t.Error("incomparable point must not dominate the box")
	}
}

func TestMetricDistances(t *testing.T) {
	a, b := pt(0, 0), pt(3, 4)
	if got := L1.Dist(a, b); got != 7 {
		t.Errorf("L1 = %v, want 7", got)
	}
	if got := L2.Dist(a, b); got != 5 {
		t.Errorf("L2 = %v, want 5", got)
	}
}

func TestMinMaxDist(t *testing.T) {
	r := Rect{Lo: pt(1, 1), Hi: pt(2, 2)}
	// Point inside: MinDist 0.
	if got := L2.MinDist(pt(1.5, 1.5), r); got != 0 {
		t.Errorf("inside MinDist = %v, want 0", got)
	}
	// Point left of the box.
	if got := L2.MinDist(pt(0, 1.5), r); got != 1 {
		t.Errorf("MinDist = %v, want 1", got)
	}
	if got := L2.MaxDist(pt(0, 1.5), r); math.Abs(got-math.Hypot(2, 0.5)) > 1e-12 {
		t.Errorf("MaxDist = %v, want %v", got, math.Hypot(2, 0.5))
	}
}

// Property: for random boxes and points, MinDist <= Dist(p, x) <= MaxDist for
// any x inside the box — the contract the pruning bounds rely on.
func TestMinMaxDistBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	for _, m := range []Metric{L1, L2, LpMetric{P: 3}} {
		m := m
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			d := 1 + r.Intn(5)
			lo, hi := make(Point, d), make(Point, d)
			for i := 0; i < d; i++ {
				a, b := r.Float64(), r.Float64()
				lo[i], hi[i] = math.Min(a, b), math.Max(a, b)+1e-9
			}
			box := Rect{Lo: lo, Hi: hi}
			p := make(Point, d)
			for i := range p {
				p[i] = r.Float64()*3 - 1
			}
			x := Lerp(lo, hi, r.Float64()) // a point inside the box
			dist := m.Dist(p, x)
			return m.MinDist(p, box) <= dist+1e-9 && dist <= m.MaxDist(p, box)+1e-9
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestClamp(t *testing.T) {
	r := Rect{Lo: pt(0, 0), Hi: pt(1, 1)}
	got := r.Clamp(pt(-1, 0.5))
	if !got.Equal(pt(0, 0.5)) {
		t.Fatalf("clamp = %v", got)
	}
}

func TestCorner(t *testing.T) {
	r := Rect{Lo: pt(0, 0), Hi: pt(1, 2)}
	if !r.Corner(0).Equal(pt(0, 0)) || !r.Corner(3).Equal(pt(1, 2)) || !r.Corner(1).Equal(pt(1, 0)) {
		t.Fatal("corner enumeration wrong")
	}
}

func TestWidestDim(t *testing.T) {
	r := Rect{Lo: pt(0, 0, 0), Hi: pt(0.2, 0.9, 0.5)}
	if got := r.WidestDim(); got != 1 {
		t.Fatalf("WidestDim = %d, want 1", got)
	}
}

func TestVolumeAndExtent(t *testing.T) {
	r := Rect{Lo: pt(0, 0), Hi: pt(0.5, 0.25)}
	if got := r.Volume(); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("Volume = %v", got)
	}
	if got := r.Extent(1); got != 0.25 {
		t.Fatalf("Extent = %v", got)
	}
	empty := Rect{Lo: pt(1, 1), Hi: pt(0, 0)}
	if empty.Volume() != 0 || !empty.IsEmpty() {
		t.Fatal("empty box should have zero volume")
	}
}

func TestPointHelpers(t *testing.T) {
	p := pt(0.25, 0.5)
	q := p.Clone()
	q[0] = 0.9
	if p[0] != 0.25 {
		t.Fatal("Clone must not share storage")
	}
	if p.Dims() != 2 || !p.Equal(pt(0.25, 0.5)) || p.Equal(pt(0.25)) {
		t.Fatal("Dims/Equal broken")
	}
	if !Origin(3).Equal(pt(0, 0, 0)) {
		t.Fatal("Origin broken")
	}
	if got := Lerp(pt(0, 0), pt(1, 2), 0.5); !got.Equal(pt(0.5, 1)) {
		t.Fatalf("Lerp = %v", got)
	}
	if s := p.String(); s != "(0.2500, 0.5000)" {
		t.Fatalf("String = %q", s)
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{Lo: pt(0, 0), Hi: pt(1, 0.5)}
	if !r.Center().Equal(pt(0.5, 0.25)) {
		t.Fatalf("Center = %v", r.Center())
	}
	c := r.Clone()
	c.Lo[0] = 0.9
	if r.Lo[0] != 0 {
		t.Fatal("Clone must not share storage")
	}
	if !r.ContainsRect(Rect{Lo: pt(0.1, 0.1), Hi: pt(0.2, 0.2)}) {
		t.Fatal("ContainsRect broken")
	}
	if r.ContainsRect(UnitCube(2)) {
		t.Fatal("ContainsRect must reject larger boxes")
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
	if L1.Name() != "L1" || L2.Name() != "L2" || (LpMetric{P: 3}).Name() != "L3" {
		t.Fatal("metric names wrong")
	}
}
