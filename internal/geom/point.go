// Package geom provides the geometric primitives used throughout the RIPPLE
// reproduction: points, axis-parallel boxes (hyper-rectangles), Pareto
// dominance tests, and Minkowski (Lp) distance metrics together with the
// point-to-box distance bounds that power RIPPLE's region pruning.
//
// All query domains in this repository are normalised to the unit hypercube
// [0,1]^d, and, following the paper's convention for skyline queries, lower
// attribute values are always considered better.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in d-dimensional space. Points are treated as immutable
// by every function in this module; callers that need to mutate a point
// should Clone it first.
type Point []float64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dims returns the dimensionality of p.
func (p Point) Dims() int { return len(p) }

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders p as "(x0, x1, ...)" with four significant decimals.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4f", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Dominates reports whether p dominates q under the "lower is better"
// convention: p is no worse than q on every dimension and strictly better on
// at least one. Points of mismatched dimensionality never dominate each other.
func (p Point) Dominates(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	strict := false
	for i := range p {
		switch {
		case p[i] > q[i]:
			return false
		case p[i] < q[i]:
			strict = true
		}
	}
	return strict
}

// Origin returns the d-dimensional origin, the best possible point under the
// skyline convention.
func Origin(d int) Point { return make(Point, d) }

// Lerp linearly interpolates between a and b: result = a + t*(b-a).
func Lerp(a, b Point, t float64) Point {
	p := make(Point, len(a))
	for i := range a {
		p[i] = a[i] + t*(b[i]-a[i])
	}
	return p
}

// Clamp returns the point of r closest to p coordinate-wise, i.e. p clamped
// into the box r.
func (r Rect) Clamp(p Point) Point {
	q := make(Point, len(p))
	for i := range p {
		q[i] = math.Max(r.Lo[i], math.Min(r.Hi[i], p[i]))
	}
	return q
}
