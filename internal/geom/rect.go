package geom

import (
	"fmt"
	"math"
)

// Rect is a half-open axis-parallel box [Lo, Hi): a point p lies inside when
// Lo[i] <= p[i] < Hi[i] on every dimension i. Half-open boxes let a set of
// boxes partition the domain without double-counting boundary points, which
// is exactly the property RIPPLE's exactly-once delivery guarantee rests on.
//
// The sole exception to half-openness is the upper domain boundary: a box
// whose Hi[i] equals the domain maximum also contains points with
// p[i] == Hi[i]; this is handled by the overlay layer, which always works in
// [0,1]^d and places keys strictly inside the open cube.
type Rect struct {
	Lo, Hi Point
}

// UnitCube returns the d-dimensional unit hypercube [0,1)^d.
func UnitCube(d int) Rect {
	return Rect{Lo: make(Point, d), Hi: ones(d)}
}

func ones(d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = 1
	}
	return p
}

// Dims returns the dimensionality of r.
func (r Rect) Dims() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect { return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()} }

// IsEmpty reports whether r contains no point, i.e. Lo[i] >= Hi[i] on some
// dimension.
func (r Rect) IsEmpty() bool {
	for i := range r.Lo {
		if r.Lo[i] >= r.Hi[i] {
			return true
		}
	}
	return len(r.Lo) == 0
}

// Contains reports whether p lies inside the half-open box r.
func (r Rect) Contains(p Point) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for i := range p {
		if p[i] < r.Lo[i] || p[i] >= r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s is entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Equal reports whether r and s are the same box.
func (r Rect) Equal(s Rect) bool { return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi) }

// Intersect returns the intersection of r and s. The result may be empty;
// test with IsEmpty.
func (r Rect) Intersect(s Rect) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Hi))
	for i := range lo {
		lo[i] = math.Max(r.Lo[i], s.Lo[i])
		hi[i] = math.Min(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).IsEmpty() }

// Split cuts r at value v along dimension dim and returns the lower and upper
// halves. It panics when v lies outside the open interval (Lo[dim], Hi[dim]),
// since such a split would create an empty box and break the zone-partition
// invariant of the overlays.
func (r Rect) Split(dim int, v float64) (lo, hi Rect) {
	if v <= r.Lo[dim] || v >= r.Hi[dim] {
		panic(fmt.Sprintf("geom: split value %v outside rect dim %d (%v, %v)", v, dim, r.Lo[dim], r.Hi[dim]))
	}
	lo, hi = r.Clone(), r.Clone()
	lo.Hi[dim] = v
	hi.Lo[dim] = v
	return lo, hi
}

// Center returns the centroid of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range c {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Volume returns the d-dimensional volume of r (zero when empty).
func (r Rect) Volume() float64 {
	if r.IsEmpty() {
		return 0
	}
	v := 1.0
	for i := range r.Lo {
		v *= r.Hi[i] - r.Lo[i]
	}
	return v
}

// Extent returns the side length of r along dimension dim.
func (r Rect) Extent(dim int) float64 { return r.Hi[dim] - r.Lo[dim] }

// WidestDim returns the dimension along which r is widest.
func (r Rect) WidestDim() int {
	best, bestExt := 0, math.Inf(-1)
	for i := range r.Lo {
		if e := r.Extent(i); e > bestExt {
			best, bestExt = i, e
		}
	}
	return best
}

// DominatesRect reports whether point s dominates every possible point of
// region r. Because r.Lo is the best (Pareto-minimal) point of r, s dominates
// the whole box exactly when it dominates r.Lo.
func DominatesRect(s Point, r Rect) bool { return s.Dominates(r.Lo) }

// Corner returns the corner of r selected by mask: bit i of mask chooses the
// high (1) or low (0) side along dimension i. Used for evaluating bounds of
// multilinear functions over boxes.
func (r Rect) Corner(mask uint) Point {
	c := make(Point, len(r.Lo))
	for i := range c {
		if mask&(1<<uint(i)) != 0 {
			c[i] = r.Hi[i]
		} else {
			c[i] = r.Lo[i]
		}
	}
	return c
}

// String renders r as "[lo -> hi]".
func (r Rect) String() string { return fmt.Sprintf("[%v -> %v]", r.Lo, r.Hi) }
