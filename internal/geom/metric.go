package geom

import "math"

// Metric is a distance function between points together with the box bounds
// RIPPLE needs for pruning: the minimum and maximum distance between a point
// and any point of a box. The paper uses L1 for the MIRFLICKR diversification
// workload and Euclidean distance for link ordering; both are Minkowski
// metrics, so a single implementation parameterised by the exponent covers
// every use in the repository.
type Metric interface {
	// Dist returns the distance between a and b.
	Dist(a, b Point) float64
	// MinDist returns min over x in r of Dist(p, x).
	MinDist(p Point, r Rect) float64
	// MaxDist returns max over x in r of Dist(p, x).
	MaxDist(p Point, r Rect) float64
	// Name identifies the metric in reports ("L1", "L2", ...).
	Name() string
}

// LpMetric is the Minkowski metric of order P >= 1.
type LpMetric struct{ P float64 }

var (
	// L1 is the Manhattan metric used for MIRFLICKR relevance/diversity.
	L1 Metric = LpMetric{P: 1}
	// L2 is the Euclidean metric.
	L2 Metric = LpMetric{P: 2}
)

// Name implements Metric.
func (m LpMetric) Name() string {
	switch m.P {
	case 1:
		return "L1"
	case 2:
		return "L2"
	default:
		return "L" + formatP(m.P)
	}
}

func formatP(p float64) string {
	if p == math.Trunc(p) {
		return string('0' + byte(int(p)%10))
	}
	return "p"
}

// Dist implements Metric.
func (m LpMetric) Dist(a, b Point) float64 {
	switch m.P {
	case 1:
		s := 0.0
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	case 2:
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	default:
		s := 0.0
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), m.P)
		}
		return math.Pow(s, 1/m.P)
	}
}

// MinDist implements Metric. The closest point of a box to p is p clamped
// into the box, for every Minkowski order.
func (m LpMetric) MinDist(p Point, r Rect) float64 {
	return m.Dist(p, r.Clamp(p))
}

// MaxDist implements Metric. The farthest point of a box from p is, per
// dimension, whichever of the two faces is farther.
func (m LpMetric) MaxDist(p Point, r Rect) float64 {
	far := make(Point, len(p))
	for i := range p {
		if p[i]-r.Lo[i] > r.Hi[i]-p[i] {
			far[i] = r.Lo[i]
		} else {
			far[i] = r.Hi[i]
		}
	}
	return m.Dist(p, far)
}
