package netpeer

// Client half of the multiplexed transport (wire/mux.go): all concurrent
// calls to the same remote share one connection. Each call registers a
// stream in a pending table, writes one tagged frame, and waits on its own
// channel; a single read loop per connection routes reply frames back by
// stream ID, in whatever order the remote finishes them. A connection that
// dies fails every in-flight stream at once — each caller feeds its error
// into the ordinary per-call retry/backoff policy, so the failure semantics
// per logical call are exactly the legacy ones.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"ripple/internal/wire"
)

// streamTimeoutError marks a stream abandoned at its call deadline while the
// connection itself stayed healthy. It implements net.Error so isTimeout
// classifies it like a legacy read-deadline expiry: hung peer, not dead peer.
type streamTimeoutError struct{}

func (streamTimeoutError) Error() string   { return "netpeer: mux stream timed out awaiting reply" }
func (streamTimeoutError) Timeout() bool   { return true }
func (streamTimeoutError) Temporary() bool { return true }

var errStreamTimeout net.Error = streamTimeoutError{}

type muxResult struct {
	reply *wire.Reply
	err   error
}

// muxConn is one multiplexed connection and its pending-stream table.
type muxConn struct {
	conn         net.Conn
	writeTimeout time.Duration

	wmu sync.Mutex // serialises frame writes and their deadlines

	mu      sync.Mutex
	pending map[uint32]chan muxResult
	nextID  uint32
	dead    error // non-nil once the connection has failed
}

func newMuxConn(conn net.Conn, writeTimeout time.Duration) *muxConn {
	return &muxConn{
		conn:         conn,
		writeTimeout: writeTimeout,
		pending:      make(map[uint32]chan muxResult),
	}
}

// register allocates a stream ID and its reply channel.
func (m *muxConn) register() (uint32, chan muxResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead != nil {
		return 0, nil, m.dead
	}
	for {
		m.nextID++
		if m.nextID == 0 { // 32-bit wrap: skip 0 so IDs stay non-zero
			m.nextID = 1
		}
		if _, taken := m.pending[m.nextID]; !taken {
			break
		}
	}
	ch := make(chan muxResult, 1)
	m.pending[m.nextID] = ch
	return m.nextID, ch, nil
}

func (m *muxConn) deregister(id uint32) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// writeFrame sends one tagged frame under the write deadline. Writes from
// concurrent streams interleave at frame granularity, never within a frame.
func (m *muxConn) writeFrame(id uint32, msg interface{}) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if err := m.conn.SetWriteDeadline(time.Now().Add(m.writeTimeout)); err != nil {
		return err
	}
	if err := wire.WriteMuxFrame(m.conn, id, msg); err != nil {
		return err
	}
	return m.conn.SetWriteDeadline(time.Time{})
}

// call performs one RPC as a stream on the shared connection. The timeout is
// enforced here, per stream, rather than as a read deadline on the shared
// socket: expiry abandons this stream only (hung peer — the legacy repeated-
// timeout behaviour), while a transport failure kills the connection and
// fails every stream at once.
func (m *muxConn) call(call *wire.Call, timeout time.Duration) (*wire.Reply, error) {
	id, ch, err := m.register()
	if err != nil {
		return nil, err
	}
	if err := m.writeFrame(id, call); err != nil {
		m.deregister(id)
		m.fail(err)
		return nil, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case res := <-ch:
		return res.reply, res.err
	case <-t.C:
		m.deregister(id)
		return nil, errStreamTimeout
	}
}

// readLoop routes reply frames to their pending streams until the
// connection fails. It reads without a deadline: the socket may sit idle for
// as long as the remote needs, and per-call liveness is the stream timers'
// job. Runs as one goroutine per connection, owned by whoever dialled it.
func (m *muxConn) readLoop() {
	for {
		var reply wire.Reply
		id, err := wire.ReadMuxFrame(m.conn, &reply)
		if err != nil {
			m.fail(fmt.Errorf("netpeer: mux connection lost: %w", err))
			return
		}
		m.mu.Lock()
		ch := m.pending[id]
		delete(m.pending, id)
		m.mu.Unlock()
		if ch != nil {
			ch <- muxResult{reply: &reply}
		}
	}
}

// fail marks the connection dead and fails every in-flight stream with err.
// Each waiter surfaces the error into its own retry policy, per call. Safe
// to call more than once; the first error wins.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.dead == nil {
		m.dead = err
	}
	pending := m.pending
	m.pending = make(map[uint32]chan muxResult)
	m.mu.Unlock()
	m.conn.Close()
	for _, ch := range pending {
		ch <- muxResult{err: err} // buffered: never blocks
	}
}

func (m *muxConn) isDead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead != nil
}

// muxHandshake sends the hello and reads the ack, all under one deadline so
// a hung remote surfaces as a retryable timeout rather than a stuck dial.
// The returned version is 0 when the remote declined multiplexing.
//
//ripplevet:transport
func muxHandshake(conn net.Conn, timeout time.Duration) (uint32, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	if err := wire.WriteMuxHello(conn, wire.MuxVersion); err != nil {
		return 0, err
	}
	ver, err := wire.ReadMuxHello(conn)
	if err != nil {
		return 0, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return 0, err
	}
	if ver > wire.MuxVersion {
		ver = wire.MuxVersion // both sides run the minimum
	}
	return ver, nil
}

// muxEntry is one address slot in the muxTable: either a settled connection
// (done closed) or a dial in flight that waiters block on.
type muxEntry struct {
	done   chan struct{}
	mc     *muxConn
	legacy bool
	err    error
}

// muxTable tracks, per remote address, the shared multiplexed connection —
// or the discovery that the remote only speaks the sequential protocol, in
// which case calls fall through to the legacy pooled path. Dials are
// single-flight: concurrent first calls to an address share one handshake.
type muxTable struct {
	mu     sync.Mutex
	conns  map[string]*muxEntry
	legacy map[string]bool
	closed bool
}

func newMuxTable() *muxTable {
	return &muxTable{
		conns:  make(map[string]*muxEntry),
		legacy: make(map[string]bool),
	}
}

// claim returns the entry for addr. owner=true means the caller must dial,
// fill the entry, and settle it. legacy=true means the address is known to
// speak only the sequential protocol.
func (t *muxTable) claim(addr string) (e *muxEntry, owner, legacy bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, false, false, errMuxClosed
	}
	if t.legacy[addr] {
		return nil, false, true, nil
	}
	if e := t.conns[addr]; e != nil {
		return e, false, false, nil
	}
	e = &muxEntry{done: make(chan struct{})}
	t.conns[addr] = e
	return e, true, false, nil
}

// settle records the outcome of the owner's dial: legacy addresses move to
// the sticky legacy set, failed dials vacate the slot for the next attempt.
// It reports whether the table is still open; a table closed mid-dial means
// the owner must tear its connection down instead of serving from it.
func (t *muxTable) settle(addr string, e *muxEntry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e.legacy {
		if t.conns[addr] == e {
			delete(t.conns, addr)
		}
		t.legacy[addr] = true
	} else if e.err != nil || t.closed {
		if t.conns[addr] == e {
			delete(t.conns, addr)
		}
	}
	return !t.closed
}

// drop vacates addr's slot if it still holds e (a dead or failed entry), so
// the next caller redials.
func (t *muxTable) drop(addr string, e *muxEntry) {
	t.mu.Lock()
	if t.conns[addr] == e {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
}

// close fails every settled connection. Dials still in flight are torn down
// by their owners, who see the closed table in settle.
func (t *muxTable) close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	entries := make([]*muxEntry, 0, len(t.conns))
	for _, e := range t.conns {
		entries = append(entries, e)
	}
	t.conns = make(map[string]*muxEntry)
	t.mu.Unlock()
	for _, e := range entries {
		select {
		case <-e.done:
			if e.mc != nil {
				e.mc.fail(errMuxClosed)
			}
		default:
		}
	}
}

// errMuxClosed reports calls attempted after the owning server shut down.
var errMuxClosed = fmt.Errorf("netpeer: server closed")

// muxFor returns the live muxed connection for addr, dialling and
// negotiating one if needed. legacy=true means the remote speaks only the
// sequential protocol and the caller must use the legacy pooled path.
func (s *Server) muxFor(addr string) (mc *muxConn, legacy bool, err error) {
	for {
		e, owner, legacy, err := s.mux.claim(addr)
		if err != nil {
			return nil, false, err
		}
		if legacy {
			return nil, true, nil
		}
		if owner {
			return s.dialMux(addr, e)
		}
		<-e.done
		switch {
		case e.legacy:
			return nil, true, nil
		case e.err != nil:
			return nil, false, e.err
		case e.mc.isDead():
			s.mux.drop(addr, e)
			continue // redial
		default:
			return e.mc, false, nil
		}
	}
}

// dialMux dials addr and negotiates the mux protocol into the claimed table
// entry. A remote that drops the hello (a pre-mux binary rejecting it as an
// oversized frame) or acks version 0 (mux disabled) is recorded as legacy;
// on a version-0 ack the half-used connection is handed to the legacy pool,
// since the sequential protocol continues on it. A handshake timeout is
// surfaced as a retryable error — a hung peer is not evidence of a legacy
// one.
//
//ripplevet:transport
func (s *Server) dialMux(addr string, e *muxEntry) (*muxConn, bool, error) {
	var seqConn net.Conn // ack-0 connection, reusable sequentially
	s.ins.dials.Inc()
	conn, err := net.DialTimeout("tcp", addr, s.opts.DialTimeout)
	if err != nil {
		s.ins.dialFailures.Inc()
		e.err = err
	} else {
		ver, herr := muxHandshake(conn, s.opts.DialTimeout)
		switch {
		case herr != nil && isTimeout(herr):
			conn.Close()
			e.err = herr
		case herr != nil:
			conn.Close()
			e.legacy = true
		case ver == 0:
			seqConn = conn
			e.legacy = true
		default:
			e.mc = newMuxConn(conn, s.opts.WriteTimeout)
		}
	}
	keep := s.mux.settle(addr, e)
	close(e.done)
	if !keep {
		if e.mc != nil {
			e.mc.fail(errMuxClosed)
		}
		if seqConn != nil {
			seqConn.Close()
		}
		return nil, false, errMuxClosed
	}
	if e.legacy {
		s.ins.muxFallbacks.Inc()
		if seqConn != nil {
			if s.pool != nil {
				s.pool.put(addr, seqConn)
			} else {
				seqConn.Close()
			}
		}
		return nil, true, nil
	}
	if e.err != nil {
		return nil, false, e.err
	}
	mc := e.mc
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		mc.readLoop()
	}()
	return mc, false, nil
}
