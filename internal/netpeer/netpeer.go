// Package netpeer runs RIPPLE peers as real network servers: each peer
// listens on a TCP address, holds its zone, tuples, and links (neighbour
// addresses with their regions), and processes wire.Call messages by
// executing its slice of Algorithm 3 — forwarding sub-calls to neighbour
// servers over TCP and aggregating their replies. It turns the simulated
// library into a deployable system: the exact protocol the in-process
// engines model, over actual sockets.
//
// The RPC realisation folds the paper's three upstream flows (state to the
// parent, answers to the initiator, fast-mode convergecast) into the reply
// chain; contents and cost accounting are identical, and hop clocks carried
// on the messages reproduce the engine's latency model.
package netpeer

import (
	"fmt"
	"net"
	"sort"
	"sync"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/overlay"
	"ripple/internal/sim"
	"ripple/internal/wire"
)

// LinkSpec is a neighbour as seen on the network: its address and the region
// of the domain this peer delegates to it.
type LinkSpec struct {
	Addr   string
	Region overlay.Region
}

// Config describes one peer's share of the overlay.
type Config struct {
	ID     string
	Zone   overlay.Region
	Tuples []dataset.Tuple
	Links  []LinkSpec
}

// Server is a RIPPLE peer process.
type Server struct {
	mu     sync.RWMutex
	cfg    Config
	codecs map[string]wire.Codec
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer creates a peer server supporting the given query codecs.
func NewServer(cfg Config, codecs ...wire.Codec) *Server {
	m := make(map[string]wire.Codec, len(codecs))
	for _, c := range codecs {
		m[c.Name()] = c
	}
	return &Server{cfg: cfg, codecs: m, closed: make(chan struct{})}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("netpeer %s: %w", s.cfg.ID, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// SetLinks installs the peer's neighbour table (done after all servers of a
// deployment have bound their addresses).
func (s *Server) SetLinks(links []LinkSpec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Links = links
}

// Close stops serving.
func (s *Server) Close() error {
	close(s.closed)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		var call wire.Call
		if err := wire.ReadMessage(conn, &call); err != nil {
			return // EOF or broken peer; drop the connection
		}
		reply := s.safeProcess(&call)
		if err := wire.WriteMessage(conn, reply); err != nil {
			return
		}
	}
}

// safeProcess shields the server from malformed calls (wrong dimensionality,
// bad payloads): a peer answers with an empty reply rather than crashing.
func (s *Server) safeProcess(call *wire.Call) (reply *wire.Reply) {
	defer func() {
		if recover() != nil {
			reply = &wire.Reply{}
		}
	}()
	reply, err := s.process(call)
	if err != nil {
		reply = &wire.Reply{}
	}
	return reply
}

// node adapts the peer's local share to the engine's Node interface.
type node struct{ cfg *Config }

func (n node) ID() string              { return n.cfg.ID }
func (n node) Zone() overlay.Region    { return n.cfg.Zone }
func (n node) Links() []overlay.Link   { return nil } // links live in LinkSpec form
func (n node) Tuples() []dataset.Tuple { return n.cfg.Tuples }

// process executes this peer's slice of Algorithm 3 for one delivery.
func (s *Server) process(call *wire.Call) (*wire.Reply, error) {
	s.mu.RLock()
	cfg := s.cfg
	s.mu.RUnlock()

	codec := s.codecs[call.QueryType]
	if codec == nil {
		return nil, fmt.Errorf("netpeer %s: unknown query type %q", cfg.ID, call.QueryType)
	}
	proc, err := codec.NewProcessor(call.Params)
	if err != nil {
		return nil, err
	}
	var global core.State
	if len(call.Global) == 0 {
		global = proc.InitialState() // the query's own neutral state
	} else {
		global, err = codec.DecodeState(call.Global)
		if err != nil {
			return nil, err
		}
	}

	w := node{cfg: &cfg}
	local := proc.LocalState(w, global)
	wGlobal := proc.GlobalState(w, global, local)

	reply := &wire.Reply{QueryMsgs: 1, Peers: []string{cfg.ID}}

	if call.R > 0 {
		// Slow phase: one link at a time in priority order, folding each
		// link's states back in before deciding the next.
		links := sortLinks(cfg.Links, proc, w)
		cursor := call.Hops
		for _, l := range links {
			sub := l.Region.Intersect(call.Restrict)
			if sub.IsEmpty() || !proc.LinkRelevant(w, sub, wGlobal) {
				continue
			}
			encGlobal, err := codec.EncodeState(wGlobal)
			if err != nil {
				return nil, err
			}
			childReply, err := s.callPeer(l.Addr, &wire.Call{
				QueryType: call.QueryType,
				Params:    call.Params,
				Global:    encGlobal,
				Restrict:  sub,
				R:         call.R - 1,
				Hops:      cursor + 1,
			})
			if err != nil {
				continue // unreachable neighbour: skip, stay available
			}
			states := []core.State{local}
			for _, sb := range childReply.States {
				st, err := codec.DecodeState(sb)
				if err != nil {
					return nil, err
				}
				states = append(states, st)
				reply.StateMsgs++
				reply.TuplesSent += proc.StateTuples(st)
			}
			local = proc.MergeStates(w, states)
			wGlobal = proc.GlobalState(w, global, local)
			cursor = childReply.Completion
			absorbChild(reply, childReply)
		}
		finishReply(reply, codec, proc, w, local, cursor)
		return reply, nil
	}

	// Fast phase: all relevant links at once, children called concurrently;
	// their replies are the convergecast.
	type out struct {
		reply *wire.Reply
		err   error
	}
	var calls []chan out
	encGlobal, err := codec.EncodeState(wGlobal)
	if err != nil {
		return nil, err
	}
	for _, l := range cfg.Links {
		sub := l.Region.Intersect(call.Restrict)
		if sub.IsEmpty() || !proc.LinkRelevant(w, sub, wGlobal) {
			continue
		}
		ch := make(chan out, 1)
		calls = append(calls, ch)
		go func(addr string, sub overlay.Region) {
			r, err := s.callPeer(addr, &wire.Call{
				QueryType: call.QueryType,
				Params:    call.Params,
				Global:    encGlobal,
				Restrict:  sub,
				R:         0,
				Hops:      call.Hops + 1,
			})
			ch <- out{reply: r, err: err}
		}(l.Addr, sub)
	}
	completion := call.Hops
	var childStates [][]byte
	for _, ch := range calls {
		o := <-ch
		if o.err != nil {
			continue
		}
		childStates = append(childStates, o.reply.States...)
		if o.reply.Completion > completion {
			completion = o.reply.Completion
		}
		absorbChild(reply, o.reply)
	}
	finishReply(reply, codec, proc, w, local, completion)
	reply.States = append(reply.States, childStates...)
	return reply, nil
}

// finishReply attaches this peer's own state, answer and completion time.
func finishReply(reply *wire.Reply, codec wire.Codec, proc core.Processor, w node, local core.State, completion int) {
	enc, err := codec.EncodeState(local)
	if err == nil {
		reply.States = append([][]byte{enc}, reply.States...)
	}
	if a := proc.LocalAnswer(w, local); len(a) > 0 {
		reply.Answers = append(a, reply.Answers...)
		reply.TuplesSent += len(a)
	}
	reply.Completion = completion
}

// absorbChild folds a child subtree's answers and counters into the reply.
func absorbChild(reply, child *wire.Reply) {
	reply.Answers = append(reply.Answers, child.Answers...)
	reply.QueryMsgs += child.QueryMsgs
	reply.StateMsgs += child.StateMsgs
	reply.TuplesSent += child.TuplesSent
	reply.Peers = append(reply.Peers, child.Peers...)
}

// callPeer performs one RPC over a fresh TCP connection.
func (s *Server) callPeer(addr string, call *wire.Call) (*wire.Reply, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := wire.WriteMessage(conn, call); err != nil {
		return nil, err
	}
	var reply wire.Reply
	if err := wire.ReadMessage(conn, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

func sortLinks(links []LinkSpec, proc core.Processor, w node) []LinkSpec {
	type ranked struct {
		link LinkSpec
		prio float64
	}
	rs := make([]ranked, len(links))
	for i, l := range links {
		rs[i] = ranked{link: l, prio: proc.LinkPriority(w, l.Region)}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].prio < rs[j].prio })
	out := make([]LinkSpec, len(rs))
	for i, r := range rs {
		out[i] = r.link
	}
	return out
}

// Query runs a query against a deployment from the peer at addr, returning
// the collected answers and cost statistics reconstructed from the reply.
func Query(addr, queryType string, params []byte, dims, r int) ([]dataset.Tuple, sim.Stats, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	defer conn.Close()
	call := &wire.Call{
		QueryType: queryType,
		Params:    params,
		Restrict:  overlay.Whole(dims),
		R:         r,
		Hops:      0,
	}
	if err := wire.WriteMessage(conn, call); err != nil {
		return nil, sim.Stats{}, err
	}
	var reply wire.Reply
	if err := wire.ReadMessage(conn, &reply); err != nil {
		return nil, sim.Stats{}, err
	}
	var stats sim.Stats
	for _, p := range reply.Peers {
		stats.Touch(p)
	}
	stats.Latency = reply.Completion
	stats.StateMsgs = reply.StateMsgs
	stats.TuplesSent = reply.TuplesSent
	return reply.Answers, stats, nil
}

// Deploy starts one server per peer of an overlay snapshot on loopback TCP,
// wiring link addresses, and returns the servers plus an id->address map.
// Callers must Close every server.
func Deploy(net_ overlay.Network, codecs ...wire.Codec) ([]*Server, map[string]string, error) {
	nodes := net_.Nodes()
	servers := make([]*Server, len(nodes))
	addrs := make(map[string]string, len(nodes))
	for i, n := range nodes {
		srv := NewServer(Config{ID: n.ID(), Zone: n.Zone(), Tuples: n.Tuples()}, codecs...)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			for _, s := range servers[:i] {
				s.Close()
			}
			return nil, nil, err
		}
		servers[i] = srv
		addrs[n.ID()] = addr
	}
	for i, n := range nodes {
		var links []LinkSpec
		for _, l := range n.Links() {
			links = append(links, LinkSpec{Addr: addrs[l.To.ID()], Region: l.Region})
		}
		servers[i].SetLinks(links)
	}
	return servers, addrs, nil
}
